"""Telemetry overhead benchmarks (ISSUE 4).

The acceptance bound: with telemetry disabled, the cost one instrument
call adds to an instrumented code path must be under 3 % of the cost of
one simulation-kernel event — i.e. turning the registry off makes the
telemetry layer disappear relative to the work the simulator is already
doing per event.

Run: ``pytest benchmarks/test_bench_obs.py --benchmark-only``
"""

from __future__ import annotations

import time

import pytest

from repro.experiments.report import format_table
from repro.obs.metrics import MetricsRegistry, NULL_METRICS
from repro.sim.kernel import Simulator

OPS = 200_000
KERNEL_EVENTS = 50_000


def _noop() -> None:
    return None


def _kernel_per_event_s() -> float:
    """Seconds per schedule+fire kernel event (median of 3 runs)."""
    samples = []
    for _ in range(3):
        sim = Simulator()
        t0 = time.perf_counter()
        for i in range(KERNEL_EVENTS):
            sim.schedule(1.0 + (i % 1000) * 1e-4, _noop)
        sim.run()
        samples.append((time.perf_counter() - t0) / KERNEL_EVENTS)
    return sorted(samples)[1]


def _per_op_s(fn, ops: int = OPS) -> float:
    """Seconds per call of ``fn`` over ``ops`` iterations (median of 3),
    with the cost of the bare loop subtracted."""

    def timed(body) -> float:
        samples = []
        for _ in range(3):
            t0 = time.perf_counter()
            for _ in range(ops):
                body()
            samples.append((time.perf_counter() - t0) / ops)
        return sorted(samples)[1]

    return max(0.0, timed(fn) - timed(_noop))


@pytest.mark.benchmark(group="obs-overhead")
def test_disabled_instruments_vanish_against_kernel_events(benchmark, report, record):
    per_event = _kernel_per_event_s()

    noop_counter = NULL_METRICS.counter("bench_counter")
    noop_hist = NULL_METRICS.histogram("bench_hist")
    enabled = MetricsRegistry()
    live_counter = enabled.counter("bench_counter")
    live_hist = enabled.histogram("bench_hist")

    costs = {
        "disabled counter.inc": _per_op_s(noop_counter.inc),
        "disabled histogram.observe": _per_op_s(lambda: noop_hist.observe(0.01)),
        "enabled counter.inc": _per_op_s(live_counter.inc),
        "enabled histogram.observe": _per_op_s(lambda: live_hist.observe(0.01)),
    }
    benchmark.pedantic(noop_counter.inc, rounds=3, iterations=OPS)

    rows = [
        (name, f"{1e9 * cost:.1f}", f"{100 * cost / per_event:.2f}%")
        for name, cost in costs.items()
    ]
    record("kernel_ns_per_event", 1e9 * per_event)
    for name, cost in costs.items():
        record(name.replace(" ", "_").replace(".", "_") + "_ns", 1e9 * cost)
    report("")
    report(
        format_table(
            ["instrument call", "ns/op", "% of one kernel event"],
            rows,
            title=(
                "Telemetry overhead vs simulation-kernel event cost "
                f"(kernel: {1e9 * per_event:.0f} ns/event)"
            ),
        )
    )

    # The acceptance bound: a disabled instrument call costs < 3 % of one
    # kernel event, so per-event instrumentation is free when off.
    for name in ("disabled counter.inc", "disabled histogram.observe"):
        ratio = costs[name] / per_event
        assert ratio < 0.03, (
            f"{name} costs {100 * ratio:.2f}% of a kernel event (bound: 3%)"
        )


@pytest.mark.benchmark(group="obs-overhead")
def test_enabled_recorder_tick_amortizes_below_gate(benchmark, report, record):
    """A live :class:`TimeseriesRecorder` tick over a figure4-sized
    registry (~260 series), amortized over the ~1000 kernel events one
    tick spans in the quick figure4 cell, must stay under 3 % of one
    kernel event — recording time series may not dominate simulation.
    """
    from repro.obs.timeseries import TimeseriesRecorder

    # The seeded quick figure4 cell averages ~1k fired events per 5 s
    # recorder tick; amortizing the tick cost over that span gives the
    # effective per-event recorder overhead.
    events_per_tick = 1000
    ticks = 200

    per_event = _kernel_per_event_s()
    sim = Simulator()
    registry = MetricsRegistry()
    counters = [
        registry.counter("bench_reads_total", idx=str(i)) for i in range(120)
    ]
    gauges = [
        registry.gauge("bench_depth", idx=str(i)) for i in range(60)
    ]
    hists = [
        registry.histogram("bench_wait_seconds", idx=str(i))
        for i in range(80)
    ]
    # Default capacity (4096): like the real quick cell, the measured
    # ticks never hit ring eviction.
    recorder = TimeseriesRecorder(sim, registry, interval=1.0).start()
    sim.run(until=0.5)  # adopt the baseline; no tick has fired yet

    def one_tick() -> None:
        for counter in counters:
            counter.inc(3)
        for j, gauge in enumerate(gauges):
            gauge.set(j)
        for hist in hists[::4]:
            hist.observe(0.05)
        recorder._record()

    samples = []
    for _ in range(3):
        t0 = time.perf_counter()
        for _ in range(ticks):
            one_tick()
        samples.append((time.perf_counter() - t0) / ticks)
    tick_cost = sorted(samples)[1]
    # Subtract the instrument mutations themselves: they belong to the
    # instrumented code path, not the recorder.
    mutation_cost = _per_op_s(counters[0].inc, ops=20_000) * 120
    mutation_cost += _per_op_s(lambda: gauges[0].set(1), ops=20_000) * 60
    mutation_cost += _per_op_s(lambda: hists[0].observe(0.05), ops=20_000) * 20
    tick_cost = max(0.0, tick_cost - mutation_cost)

    benchmark.pedantic(one_tick, rounds=3, iterations=50)
    amortized = tick_cost / events_per_tick
    ratio = amortized / per_event
    report(
        f"enabled recorder tick: {1e6 * tick_cost:.0f} us over "
        f"{len(registry.instruments())} series -> {1e9 * amortized:.0f} ns "
        f"per event ({100 * ratio:.2f}% of one kernel event)"
    )
    record("recorder_tick_us", 1e6 * tick_cost)
    record("recorder_amortized_ns_per_event", 1e9 * amortized)
    assert ratio < 0.03, (
        f"enabled recorder costs {100 * ratio:.2f}% of a kernel event "
        "amortized (bound: 3%)"
    )


@pytest.mark.benchmark(group="obs-overhead")
def test_span_emission_disabled_is_one_attribute_check(benchmark, report, record):
    """Instrumented code guards span construction on ``trace.enabled``, so
    the disabled cost is the guard itself — far below one kernel event."""
    from repro.sim.tracing import NULL_TRACE

    per_event = _kernel_per_event_s()

    def guarded_emit() -> None:
        if NULL_TRACE.enabled:  # pragma: no cover - never taken
            NULL_TRACE.emit(0.0, "span", "bench", span="req-0", name="x")

    cost = _per_op_s(guarded_emit)
    benchmark.pedantic(guarded_emit, rounds=3, iterations=OPS)
    ratio = cost / per_event
    report(
        f"disabled span guard: {1e9 * cost:.1f} ns/op "
        f"({100 * ratio:.2f}% of one kernel event)"
    )
    record("disabled_span_guard_ns", 1e9 * cost)
    assert ratio < 0.03
