"""Simulation-kernel benchmarks (ISSUE 2).

Event throughput of the kernel under a realistic schedule/cancel/run
mix — the regime the tombstone compaction and event free list target
(deadline timers that are nearly always cancelled before firing).

The runner-speedup measurement (quick Figure 4 sweep at several
``--jobs`` levels) lives in ``test_bench_figure4.py``.

Run: ``pytest benchmarks/test_bench_kernel.py --benchmark-only``
"""

from __future__ import annotations

import time

import pytest

from repro.sim.kernel import Simulator


def _timed_pedantic(benchmark, fn, *, args=(), rounds=1):
    """Run via benchmark.pedantic, returning (result, mean_seconds).

    Falls back to wall-clock timing when stats are absent
    (``--benchmark-disable`` runs the function once without timing it).
    """
    t0 = time.perf_counter()
    result = benchmark.pedantic(fn, args=args, rounds=rounds, iterations=1)
    elapsed = time.perf_counter() - t0
    if benchmark.stats is not None:
        return result, benchmark.stats.stats.mean
    return result, elapsed / rounds


# ---------------------------------------------------------------------------
# Kernel event throughput
# ---------------------------------------------------------------------------
def _timer_mix(events: int, cancel_every: int = 10) -> Simulator:
    """Schedule ``events`` timers, cancel all but every ``cancel_every``-th
    (the deadline-timer pattern: most are cancelled by an earlier reply),
    then run to idle."""
    sim = Simulator()
    survivors = 0
    for i in range(events):
        event = sim.schedule(1.0 + (i % 1000) * 1e-4, _noop)
        if i % cancel_every:
            event.cancel()
        else:
            survivors += 1
    sim.run()
    assert sim.events_processed == survivors
    return sim


def _noop() -> None:
    return None


def _fire_all(events: int) -> Simulator:
    """Pure schedule+fire mix (no cancels): free-list reuse dominates."""
    sim = Simulator()
    for i in range(events):
        sim.schedule(1.0 + (i % 1000) * 1e-4, _noop)
    sim.run()
    assert sim.events_processed == events
    return sim


@pytest.mark.benchmark(group="kernel-throughput")
def test_kernel_timer_mix_throughput(benchmark, report):
    events = 50_000
    sim, mean_s = _timed_pedantic(benchmark, _timer_mix, args=(events,), rounds=3)
    per_sec = events / mean_s
    report(
        f"kernel timer mix (90% cancelled): {per_sec:,.0f} scheduled events/s, "
        f"{sim.compactions} compactions, final heap {sim.heap_size()}"
    )
    assert sim.compactions > 0  # the tombstone path actually exercised


@pytest.mark.benchmark(group="kernel-throughput")
def test_kernel_fire_throughput(benchmark, report):
    events = 50_000
    _, mean_s = _timed_pedantic(benchmark, _fire_all, args=(events,), rounds=3)
    per_sec = events / mean_s
    report(f"kernel schedule+fire: {per_sec:,.0f} events/s")
