"""Simulation-kernel benchmarks (ISSUE 2).

Event throughput of the kernel under a realistic schedule/cancel/run
mix — the regime the tombstone compaction and event free list target
(deadline timers that are nearly always cancelled before firing).

The runner-speedup measurement (quick Figure 4 sweep at several
``--jobs`` levels) lives in ``test_bench_figure4.py``.

Run: ``pytest benchmarks/test_bench_kernel.py --benchmark-only``
"""

from __future__ import annotations

import time

import pytest

from repro.sim.kernel import Simulator


def _timed_pedantic(benchmark, fn, *, args=(), rounds=1):
    """Run via benchmark.pedantic, returning (result, mean_seconds).

    Falls back to wall-clock timing when stats are absent
    (``--benchmark-disable`` runs the function once without timing it).
    """
    t0 = time.perf_counter()
    result = benchmark.pedantic(fn, args=args, rounds=rounds, iterations=1)
    elapsed = time.perf_counter() - t0
    if benchmark.stats is not None:
        return result, benchmark.stats.stats.mean
    return result, elapsed / rounds


# ---------------------------------------------------------------------------
# Kernel event throughput
# ---------------------------------------------------------------------------
def _timer_mix(events: int, cancel_every: int = 10) -> Simulator:
    """Schedule ``events`` timers, cancel all but every ``cancel_every``-th
    (the deadline-timer pattern: most are cancelled by an earlier reply),
    then run to idle."""
    sim = Simulator()
    survivors = 0
    for i in range(events):
        event = sim.schedule(1.0 + (i % 1000) * 1e-4, _noop)
        if i % cancel_every:
            event.cancel()
        else:
            survivors += 1
    sim.run()
    assert sim.events_processed == survivors
    return sim


def _noop() -> None:
    return None


def _fire_all(events: int) -> Simulator:
    """Pure schedule+fire mix (no cancels): free-list reuse dominates."""
    sim = Simulator()
    for i in range(events):
        sim.schedule(1.0 + (i % 1000) * 1e-4, _noop)
    sim.run()
    assert sim.events_processed == events
    return sim


@pytest.mark.benchmark(group="kernel-throughput")
def test_kernel_timer_mix_throughput(benchmark, report, record):
    events = 50_000
    sim, mean_s = _timed_pedantic(benchmark, _timer_mix, args=(events,), rounds=3)
    per_sec = events / mean_s
    report(
        f"kernel timer mix (90% cancelled): {per_sec:,.0f} scheduled events/s, "
        f"{sim.compactions} compactions, final heap {sim.heap_size()}"
    )
    record("timer_mix_events_per_second", per_sec)
    assert sim.compactions > 0  # the tombstone path actually exercised


@pytest.mark.benchmark(group="kernel-throughput")
def test_kernel_fire_throughput(benchmark, report, record):
    events = 50_000
    _, mean_s = _timed_pedantic(benchmark, _fire_all, args=(events,), rounds=3)
    per_sec = events / mean_s
    report(f"kernel schedule+fire: {per_sec:,.0f} events/s")
    record("fire_events_per_second", per_sec)


# ---------------------------------------------------------------------------
# Batched scheduling (the aggregate tier's arrival fast path)
# ---------------------------------------------------------------------------
def _batch_fire_all(events: int, batch: int) -> Simulator:
    sim = Simulator()
    for start in range(0, events, batch):
        n = min(batch, events - start)
        sim.schedule_batch([1.0 + (start + i) * 1e-6 for i in range(n)], _noop)
    sim.run()
    assert sim.events_processed == events
    return sim


@pytest.mark.benchmark(group="kernel-throughput")
def test_kernel_batch_schedule_throughput(benchmark, report, record):
    events, batch = 50_000, 2_500
    _, mean_s = _timed_pedantic(
        benchmark, _batch_fire_all, args=(events, batch), rounds=3
    )
    per_sec = events / mean_s
    report(
        f"kernel schedule_batch (batches of {batch}): {per_sec:,.0f} events/s"
    )
    record("batch_schedule_events_per_second", per_sec)


# ---------------------------------------------------------------------------
# Hot message/request allocation (``slots=True`` dataclasses)
# ---------------------------------------------------------------------------
def _allocate_messages(count: int) -> int:
    from repro.core.requests import Reply, Request, RequestKind
    from repro.net.message import Message

    from repro.core.qos import QoSSpec

    qos = QoSSpec(2, 0.160, 0.9)
    total = 0
    for i in range(count):
        request = Request(
            request_id=i, client="c", method="get", args=(),
            kind=RequestKind.READ, qos=qos, sent_at=float(i),
        )
        reply = Reply(
            request_id=i, replica="p1", kind=RequestKind.READ,
            value=None, t1=0.1, gsn=i,
        )
        message = Message(
            sender="c", recipient="p1", payload=request, sent_at=float(i),
        )
        total += message.size_bytes + reply.gsn
    return total


@pytest.mark.benchmark(group="kernel-allocation")
def test_message_allocation_throughput(benchmark, report, record):
    """Allocation rate of the per-request wire objects.

    These are the busiest allocations in a run (every simulated request
    creates a Request, several Messages, and several Replies), which is
    why they carry ``slots=True``; this bench pins the win so a slots
    regression shows up as a rate drop.
    """
    count = 20_000
    _, mean_s = _timed_pedantic(
        benchmark, _allocate_messages, args=(count,), rounds=3
    )
    per_sec = count / mean_s
    report(f"request/reply/message allocation: {per_sec:,.0f} triples/s")
    record("message_allocation_triples_per_second", per_sec)
    # slots classes must not grow per-instance dicts.
    from repro.net.message import Message

    message = Message(sender="a", recipient="b", payload=None, sent_at=0.0)
    assert not hasattr(message, "__dict__")
