"""Component microbenchmarks.

Not a paper figure — these quantify the building blocks so regressions in
the hot paths (the ones Figure 3's overhead is made of, plus the
simulation substrate itself) are visible:

* pmf construction + convolution (the §5.2 prediction inner loop);
* the Poisson staleness factor (Eq. 4);
* Algorithm 1 proper (selection only — the paper's "remaining 10 %");
* simulator event throughput and reliable-multicast round-trips.

Run: ``pytest benchmarks/test_bench_components.py --benchmark-only``
"""

import pytest

from repro.core.qos import QoSSpec
from repro.core.selection import ReplicaView, StateBasedSelection
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry
from repro.stats.pmf import DiscretePmf
from repro.stats.poisson import poisson_cdf


# ---------------------------------------------------------------------------
# Prediction inner loop
# ---------------------------------------------------------------------------
@pytest.mark.benchmark(group="components-pmf")
def test_pmf_from_samples(benchmark):
    rng = RngRegistry(0).stream("bench")
    samples = [max(0.0, rng.gauss(0.1, 0.05)) for _ in range(20)]
    pmf = benchmark(DiscretePmf.from_samples, samples)
    assert pmf.mass.sum() == pytest.approx(1.0)


@pytest.mark.benchmark(group="components-pmf")
def test_pmf_convolution(benchmark):
    rng = RngRegistry(1).stream("bench")
    a = DiscretePmf.from_samples([max(0.0, rng.gauss(0.1, 0.05)) for _ in range(20)])
    b = DiscretePmf.from_samples([max(0.0, rng.gauss(0.01, 0.01)) for _ in range(20)])
    conv = benchmark(a.convolve, b)
    assert conv.mean() == pytest.approx(a.mean() + b.mean(), abs=1e-9)


@pytest.mark.benchmark(group="components-pmf")
def test_pmf_cdf_evaluation(benchmark):
    rng = RngRegistry(2).stream("bench")
    pmf = DiscretePmf.from_samples(
        [max(0.0, rng.gauss(0.1, 0.05)) for _ in range(40)]
    )
    value = benchmark(pmf.cdf, 0.150)
    assert 0.0 <= value <= 1.0


@pytest.mark.benchmark(group="components-staleness")
def test_poisson_staleness_factor(benchmark):
    value = benchmark(poisson_cdf, 4, 2.5)
    assert 0.0 <= value <= 1.0


# ---------------------------------------------------------------------------
# Algorithm 1 alone
# ---------------------------------------------------------------------------
@pytest.mark.benchmark(group="components-selection")
@pytest.mark.parametrize("num_replicas", [5, 10, 20])
def test_algorithm1_selection_only(benchmark, num_replicas):
    rng = RngRegistry(3).stream("bench")
    candidates = [
        ReplicaView(
            name=f"r{i}",
            is_primary=i < num_replicas // 3,
            immediate_cdf=rng.random(),
            delayed_cdf=rng.random() * 0.5,
            ert=rng.random() * 10,
        )
        for i in range(num_replicas)
    ]
    qos = QoSSpec(2, 0.150, 0.9)
    strategy = StateBasedSelection()
    result = benchmark(strategy.select, candidates, qos, 0.7)
    assert len(result.replicas) >= 1


# ---------------------------------------------------------------------------
# Substrate throughput
# ---------------------------------------------------------------------------
@pytest.mark.benchmark(group="components-substrate")
def test_simulator_event_throughput(benchmark):
    def run_10k_events():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 10_000:
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return count[0]

    assert benchmark(run_10k_events) == 10_000


@pytest.mark.benchmark(group="components-substrate")
def test_reliable_multicast_round(benchmark):
    """One reliable FIFO multicast to 9 members, acks and all."""
    from repro.groups.group import GroupEndpoint
    from repro.groups.membership import MembershipService
    from repro.net.latency import FixedLatency
    from repro.net.network import Network

    class Echo(GroupEndpoint):
        def __init__(self, name):
            super().__init__(name)
            self.count = 0

        def on_group_message(self, group, sender, payload):
            self.count += 1

    def build():
        sim = Simulator()
        network = Network(sim, RngRegistry(4), FixedLatency(0.001))
        service = MembershipService()
        network.attach(service)
        nodes = [Echo(f"n{i}") for i in range(10)]
        for node in nodes:
            network.attach(node)
            service.register("g", node.name)
            node.assume_membership("g")
        for node in nodes:
            node.adopt_view(service.view_of("g"))
        return sim, nodes

    def round_trip():
        sim, nodes = build()
        for i in range(20):
            nodes[0].gmcast("g", i)
        sim.run(until=5.0)
        return sum(n.count for n in nodes[1:])

    assert benchmark(round_trip) == 9 * 20
