"""Component microbenchmarks.

Not a paper figure — these quantify the building blocks so regressions in
the hot paths (the ones Figure 3's overhead is made of, plus the
simulation substrate itself) are visible:

* pmf construction + convolution (the §5.2 prediction inner loop);
* the Poisson staleness factor (Eq. 4);
* Algorithm 1 proper (selection only — the paper's "remaining 10 %");
* simulator event throughput and reliable-multicast round-trips.

Run: ``pytest benchmarks/test_bench_components.py --benchmark-only``
"""

import pytest

from repro.core.prediction import ResponseTimePredictor
from repro.core.qos import QoSSpec
from repro.core.repository import ClientInfoRepository
from repro.core.requests import PerfBroadcast
from repro.core.selection import ReplicaView, StateBasedSelection
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry
from repro.stats.pmf import DiscretePmf
from repro.stats.poisson import poisson_cdf
from repro.stats.sliding_window import SlidingWindow


# ---------------------------------------------------------------------------
# Prediction inner loop
# ---------------------------------------------------------------------------
@pytest.mark.benchmark(group="components-pmf")
def test_pmf_from_samples(benchmark):
    rng = RngRegistry(0).stream("bench")
    samples = [max(0.0, rng.gauss(0.1, 0.05)) for _ in range(20)]
    pmf = benchmark(DiscretePmf.from_samples, samples)
    assert pmf.mass.sum() == pytest.approx(1.0)


@pytest.mark.benchmark(group="components-pmf")
def test_pmf_from_histogram(benchmark):
    """Construction from a window's incremental histogram (no raw pass)."""
    rng = RngRegistry(0).stream("bench")
    window = SlidingWindow(20, quantum=1e-3)
    window.extend(max(0.0, rng.gauss(0.1, 0.05)) for _ in range(20))
    offset, counts = window.histogram(1e-3)
    pmf = benchmark(DiscretePmf.from_histogram, 1e-3, offset, counts)
    assert pmf.mass.sum() == pytest.approx(1.0)


@pytest.mark.benchmark(group="components-pmf")
def test_pmf_convolution(benchmark):
    rng = RngRegistry(1).stream("bench")
    a = DiscretePmf.from_samples([max(0.0, rng.gauss(0.1, 0.05)) for _ in range(20)])
    b = DiscretePmf.from_samples([max(0.0, rng.gauss(0.01, 0.01)) for _ in range(20)])
    conv = benchmark(a.convolve, b)
    assert conv.mean() == pytest.approx(a.mean() + b.mean(), abs=1e-9)


@pytest.mark.benchmark(group="components-pmf")
def test_pmf_cdf_evaluation(benchmark):
    rng = RngRegistry(2).stream("bench")
    pmf = DiscretePmf.from_samples(
        [max(0.0, rng.gauss(0.1, 0.05)) for _ in range(40)]
    )
    value = benchmark(pmf.cdf, 0.150)
    assert 0.0 <= value <= 1.0


@pytest.mark.benchmark(group="components-pmf")
def test_pmf_cdf_many(benchmark):
    """Batched CDF evaluation against the cached cumulative array."""
    rng = RngRegistry(2).stream("bench")
    pmf = DiscretePmf.from_samples(
        [max(0.0, rng.gauss(0.1, 0.05)) for _ in range(40)]
    )
    deadlines = [0.050 + 0.005 * i for i in range(32)]
    values = benchmark(pmf.cdf_many, deadlines)
    assert len(values) == 32


@pytest.mark.benchmark(group="components-staleness")
def test_poisson_staleness_factor(benchmark):
    value = benchmark(poisson_cdf, 4, 2.5)
    assert 0.0 <= value <= 1.0


# ---------------------------------------------------------------------------
# Versioned prediction cache (§5.2 hot path)
# ---------------------------------------------------------------------------
def _filled_predictor(use_cache: bool, replicas: int = 8, window: int = 20):
    rng = RngRegistry(5).stream("bench")
    repo = ClientInfoRepository(window)
    names = [f"r{i}" for i in range(replicas)]
    for name in names:
        for _ in range(window):
            repo.record_broadcast(
                PerfBroadcast(
                    replica=name,
                    ts=max(0.002, rng.gauss(0.100, 0.050)),
                    tq=max(0.0, rng.gauss(0.010, 0.010)),
                    tb=rng.uniform(0.0, 2.0),
                )
            )
        repo.record_reply(name, tg=rng.uniform(0.0005, 0.002), now=1.0)
    predictor = ResponseTimePredictor(repo, 2.0, use_cache=use_cache)
    return predictor, names


def _prediction_pass(predictor, names, deadline=0.150):
    for name in names:
        predictor.response_cdfs(name, deadline)


@pytest.mark.benchmark(group="components-prediction")
def test_prediction_pass_uncached(benchmark):
    """Fresh per-read recomputation (the paper's Figure 3 semantics)."""
    predictor, names = _filled_predictor(use_cache=False)
    benchmark(_prediction_pass, predictor, names)
    assert predictor.cache_hits == 0


@pytest.mark.benchmark(group="components-prediction")
def test_prediction_pass_cached_steady_state(benchmark):
    """Steady-state reads: every lookup after warmup hits the cache."""
    predictor, names = _filled_predictor(use_cache=True)
    _prediction_pass(predictor, names)  # warm the cache
    benchmark(_prediction_pass, predictor, names)
    assert predictor.cache_hits > 0
    assert predictor.cache_invalidations == 0


def test_prediction_cache_speedup_threshold(report, record):
    """Acceptance: ≥3x on steady-state reads, no regression under churn."""
    import time

    def timed_pass(predictor, names, reps=300):
        _prediction_pass(predictor, names)  # warmup / cache fill
        start = time.perf_counter()
        for _ in range(reps):
            _prediction_pass(predictor, names)
        return time.perf_counter() - start

    uncached, names = _filled_predictor(use_cache=False)
    cached, _ = _filled_predictor(use_cache=True)
    cold = timed_pass(uncached, names)
    warm = timed_pass(cached, names)
    speedup = cold / warm
    report(
        f"prediction cache steady-state: uncached {1e6 * cold / 300:.1f} us/pass, "
        f"cached {1e6 * warm / 300:.1f} us/pass, speedup {speedup:.1f}x"
    )
    record("prediction_uncached_us_per_pass", 1e6 * cold / 300)
    record("prediction_cached_us_per_pass", 1e6 * warm / 300)
    record("prediction_cache_speedup", speedup)
    assert speedup >= 3.0, f"expected >=3x steady-state speedup, got {speedup:.2f}x"
    assert cached.cache_hits > 0 and cached.cache_invalidations == 0


# ---------------------------------------------------------------------------
# Algorithm 1 alone
# ---------------------------------------------------------------------------
@pytest.mark.benchmark(group="components-selection")
@pytest.mark.parametrize("num_replicas", [5, 10, 20])
def test_algorithm1_selection_only(benchmark, num_replicas):
    rng = RngRegistry(3).stream("bench")
    candidates = [
        ReplicaView(
            name=f"r{i}",
            is_primary=i < num_replicas // 3,
            immediate_cdf=rng.random(),
            delayed_cdf=rng.random() * 0.5,
            ert=rng.random() * 10,
        )
        for i in range(num_replicas)
    ]
    qos = QoSSpec(2, 0.150, 0.9)
    strategy = StateBasedSelection()
    result = benchmark(strategy.select, candidates, qos, 0.7)
    assert len(result.replicas) >= 1


# ---------------------------------------------------------------------------
# Substrate throughput
# ---------------------------------------------------------------------------
@pytest.mark.benchmark(group="components-substrate")
def test_simulator_event_throughput(benchmark):
    def run_10k_events():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 10_000:
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return count[0]

    assert benchmark(run_10k_events) == 10_000


@pytest.mark.benchmark(group="components-substrate")
def test_reliable_multicast_round(benchmark):
    """One reliable FIFO multicast to 9 members, acks and all."""
    from repro.groups.group import GroupEndpoint
    from repro.groups.membership import MembershipService
    from repro.net.latency import FixedLatency
    from repro.net.network import Network

    class Echo(GroupEndpoint):
        def __init__(self, name):
            super().__init__(name)
            self.count = 0

        def on_group_message(self, group, sender, payload):
            self.count += 1

    def build():
        sim = Simulator()
        network = Network(sim, RngRegistry(4), FixedLatency(0.001))
        service = MembershipService()
        network.attach(service)
        nodes = [Echo(f"n{i}") for i in range(10)]
        for node in nodes:
            network.attach(node)
            service.register("g", node.name)
            node.assume_membership("g")
        for node in nodes:
            node.adopt_view(service.view_of("g"))
        return sim, nodes

    def round_trip():
        sim, nodes = build()
        for i in range(20):
            nodes[0].gmcast("g", i)
        sim.run(until=5.0)
        return sum(n.count for n in nodes[1:])

    assert benchmark(round_trip) == 9 * 20
