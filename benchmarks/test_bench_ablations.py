"""Ablation benches (A1–A9 in DESIGN.md).

The "other extensive experiments" the paper's conclusion mentions, plus
baseline-strategy, failure-injection, and extension studies.  Each bench
runs the reduced-scale §6 testbed, prints its table, and asserts the
expected trend.

Run: ``pytest benchmarks/test_bench_ablations.py --benchmark-only``
(filter with ``-k lui`` / ``-k request_delay`` / ``-k window`` /
``-k staleness`` / ``-k baseline`` / ``-k failover`` /
``-k adaptive_lui`` / ``-k overload`` / ``-k deferral``).
"""

import pytest

from repro.experiments.ablations import (
    _render_rows,
    adaptive_lui_study,
    baseline_comparison,
    deferral_model_study,
    failover_study,
    lui_sweep,
    overload_study,
    request_delay_sweep,
    staleness_sweep,
    window_sweep,
)
from repro.experiments.report import format_table

REQUESTS = 400


@pytest.mark.benchmark(group="ablations")
def test_ablation_lui(benchmark, report, record):
    """A1: longer lazy update interval ⇒ staler secondaries."""
    rows = benchmark.pedantic(
        lui_sweep, kwargs=dict(total_requests=REQUESTS), rounds=1
    )
    report("")
    report(_render_rows("A1 — lazy update interval", rows))
    record("lui_shortest_avg_selected", rows[0].avg_replicas_selected)
    record("lui_longest_avg_selected", rows[-1].avg_replicas_selected)
    record("lui_longest_deferred_fraction", rows[-1].deferred_fraction)
    # More replicas selected (or more deferrals) as the LUI grows 1s -> 8s.
    assert (
        rows[-1].avg_replicas_selected >= rows[0].avg_replicas_selected
        or rows[-1].deferred_fraction >= rows[0].deferred_fraction
    )


@pytest.mark.benchmark(group="ablations")
def test_ablation_request_delay(benchmark, report):
    """A2: shorter request delay ⇒ higher update rate ⇒ staler reads."""
    rows = benchmark.pedantic(
        request_delay_sweep, kwargs=dict(total_requests=REQUESTS), rounds=1
    )
    report("")
    report(_render_rows("A2 — request delay", rows))
    # The fastest client needs at least as many replicas as the slowest.
    assert rows[0].avg_replicas_selected >= rows[-1].avg_replicas_selected - 0.5


@pytest.mark.benchmark(group="ablations")
def test_ablation_window(benchmark, report):
    """A3: sliding-window size (the paper chose 20)."""
    rows = benchmark.pedantic(
        window_sweep, kwargs=dict(total_requests=REQUESTS), rounds=1
    )
    report("")
    report(_render_rows("A3 — sliding window size", rows))
    assert all(r.mean_response_time_ms > 0 for r in rows)


@pytest.mark.benchmark(group="ablations")
def test_ablation_staleness(benchmark, report):
    """A4: relaxing the staleness threshold frees more replicas (§6.1)."""
    rows = benchmark.pedantic(
        staleness_sweep, kwargs=dict(total_requests=REQUESTS), rounds=1
    )
    report("")
    report(_render_rows("A4 — staleness threshold", rows))
    # a=0 (strictest) needs at least as many replicas as a=16 (loosest),
    # and at least as many deferred reads.
    assert rows[0].avg_replicas_selected >= rows[-1].avg_replicas_selected
    assert rows[0].deferred_fraction >= rows[-1].deferred_fraction


@pytest.mark.benchmark(group="ablations")
def test_ablation_baselines(benchmark, report):
    """A5: Algorithm 1 vs. the naive strategies (§5's motivation)."""
    rows = benchmark.pedantic(
        baseline_comparison, kwargs=dict(total_requests=REQUESTS), rounds=1
    )
    report("")
    report(_render_rows("A5 — selection strategies", rows))
    by_label = {r.label: r for r in rows}
    algo = by_label["algorithm-1"]
    alls = by_label["all-replicas"]
    single = by_label["random-single"]
    # Algorithm 1 approaches the all-replicas failure rate with a fraction
    # of the replicas...
    assert algo.avg_replicas_selected < 0.7 * alls.avg_replicas_selected
    assert algo.timing_failure_probability <= alls.timing_failure_probability + 0.05
    # ...and beats blind single-replica selection on timing failures.
    assert algo.timing_failure_probability <= single.timing_failure_probability


@pytest.mark.benchmark(group="ablations")
def test_ablation_adaptive_lui(benchmark, report):
    """A7: closed-loop T_L tuning vs. static intervals under a two-phase
    update load (quiet then storm)."""
    rows = benchmark.pedantic(
        adaptive_lui_study, kwargs=dict(phase_length=60.0), rounds=1
    )
    report("")
    report(format_table(
        ["config", "lazy_msgs", "target_hit_fraction", "final_T_L"],
        [(r.label, r.lazy_updates_sent, r.staleness_target_hit_fraction,
          r.final_interval) for r in rows],
        title="A7 — adaptive lazy update interval",
    ))
    static_best = max(rows[0].staleness_target_hit_fraction,
                      rows[1].staleness_target_hit_fraction)
    adaptive = rows[2]
    # The controller must hold the staleness target where the static
    # intervals cannot (the storm phase blows the slow one, the quiet
    # phase wastes the fast one's messages without helping the storm).
    assert adaptive.staleness_target_hit_fraction >= 0.9
    assert adaptive.staleness_target_hit_fraction > static_best
    assert adaptive.final_interval < 1.0  # tightened for the storm


@pytest.mark.benchmark(group="ablations")
def test_ablation_overload(benchmark, report):
    """A8: a transiently overloaded replica (§1's motivation) must lose
    read duty while it is slow and regain it after, without a failure
    spike."""
    result = benchmark.pedantic(overload_study, rounds=1)
    report("")
    report(format_table(
        ["victim", "share_before", "share_during", "share_after",
         "P(fail) during"],
        [(result.victim, result.share_before, result.share_during,
          result.share_after, result.failure_rate_during)],
        title="A8 — transient overload adaptivity",
    ))
    assert result.share_during < result.share_before / 2
    assert result.share_after > result.share_during
    assert result.failure_rate_during <= 0.1


@pytest.mark.benchmark(group="ablations")
def test_ablation_deferral_model(benchmark, report):
    """A9: outside the paper's regime, Eq. 3's independent deferred term
    is over-confident (correlated deferrals); the correlation-aware
    variant restores the QoS guarantee.  DESIGN.md §5a."""
    rows = benchmark.pedantic(deferral_model_study, rounds=1)
    report("")
    report(_render_rows(
        "A9 — deferred-read correlation (out-of-regime)", rows
    ))
    paper, aware = rows
    assert aware.timing_failure_probability < paper.timing_failure_probability
    assert aware.meets_qos
    assert aware.avg_replicas_selected > paper.avg_replicas_selected


@pytest.mark.benchmark(group="ablations")
@pytest.mark.parametrize("crash", ["sequencer", "publisher", "secondary"])
def test_ablation_failover(benchmark, report, crash):
    """A6: crash a role mid-run; the service must adapt and converge."""
    result = benchmark.pedantic(
        failover_study,
        args=(crash,),
        kwargs=dict(total_requests=300),
        rounds=1,
    )
    report("")
    report(
        format_table(
            ["crash", "P(fail)", "reads", "sequencer_after", "publisher_after", "converged"],
            [(
                result.label,
                result.timing_failure_probability,
                result.reads,
                result.final_sequencer,
                result.final_publisher,
                "yes" if result.updates_converged else "NO",
            )],
            title=f"A6 — failure injection ({crash})",
        )
    )
    assert result.updates_converged
    assert result.reads == 150
    # Liveness after the crash: failures bounded well below 50 %.
    assert result.timing_failure_probability < 0.5
