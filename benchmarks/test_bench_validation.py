"""Model-validation benches (extends §6.1's "Validation of Probabilistic
Model").

* staleness-model calibration: Eq. 4 against simulator ground truth under
  Poisson and bursty update arrivals, plus the rate-mixture alternative;
* hot-spot avoidance: Algorithm 1's decreasing-``ert`` visiting order vs.
  the cdf-greedy variant.

Run: ``pytest benchmarks/test_bench_validation.py --benchmark-only``
"""

import pytest

from repro.core.staleness import RateMixtureStalenessModel
from repro.experiments.report import format_table
from repro.experiments.validation import (
    render_staleness,
    run_hotspot_validation,
    run_staleness_validation,
)


@pytest.mark.benchmark(group="validation")
def test_staleness_calibration_poisson(benchmark, report, record):
    rows = benchmark.pedantic(
        run_staleness_validation, kwargs=dict(duration=240.0), rounds=1
    )
    report("")
    report(render_staleness(
        "Staleness calibration — Poisson arrivals, Eq. 4", rows
    ))
    record("staleness_poisson_max_abs_error",
           max(abs(row.error) for row in rows))
    # Eq. 4 should be well calibrated when its assumption holds.
    assert all(abs(row.error) < 0.1 for row in rows)


@pytest.mark.benchmark(group="validation")
def test_staleness_calibration_bursty(benchmark, report, record):
    def both():
        poisson = run_staleness_validation(duration=240.0, bursty=True)
        mixture = run_staleness_validation(
            duration=240.0, bursty=True,
            staleness_model=RateMixtureStalenessModel(),
        )
        return poisson, mixture

    poisson, mixture = benchmark.pedantic(both, rounds=1)
    report("")
    report(render_staleness(
        "Staleness calibration — bursty arrivals, Eq. 4 (miscalibrated)",
        poisson,
    ))
    report("")
    report(render_staleness(
        "Staleness calibration — bursty arrivals, rate-mixture model",
        mixture,
    ))
    poisson_err = sum(abs(r.error) for r in poisson)
    mixture_err = sum(abs(r.error) for r in mixture)
    record("staleness_bursty_eq4_total_error", poisson_err)
    record("staleness_bursty_mixture_total_error", mixture_err)
    assert mixture_err < poisson_err


@pytest.mark.benchmark(group="validation")
def test_hotspot_avoidance(benchmark, report, record):
    result = benchmark.pedantic(
        run_hotspot_validation, kwargs=dict(reads=300), rounds=1
    )
    report("")
    report(format_table(
        ["strategy", "max/mean reads"],
        [
            ("Algorithm 1 (ert order)", result.with_ert_imbalance),
            ("cdf-greedy (no ert)", result.without_ert_imbalance),
        ],
        title="Hot-spot avoidance (§5.3): read-load imbalance",
    ))
    record("hotspot_ert_imbalance", result.with_ert_imbalance)
    record("hotspot_greedy_imbalance", result.without_ert_imbalance)
    assert result.with_ert_imbalance < 1.5
    assert result.without_ert_imbalance > result.with_ert_imbalance
