"""Aggregated client tier bench: arrivals/s at population scale.

Measures the fluid tier's wall-clock throughput on a 1M-user cell and the
speedup over the discrete per-request simulator (extrapolated from a
small calibration run — simulating a million discrete clients directly is
exactly what the tier exists to avoid).

Run: ``pytest benchmarks/test_bench_aggregate.py --benchmark-only``
"""

from __future__ import annotations

import time

import pytest

from repro.experiments.scale import run_scale_cell


@pytest.mark.benchmark(group="aggregate-tier")
def test_aggregate_million_user_cell(benchmark, report, record):
    """One 1M-user cell, 30 simulated seconds: wall budget + speedup."""

    def cell():
        return run_scale_cell(
            users=1_000_000, duration=30.0, warmup=5.0, mode="aggregate",
        )

    t0 = time.perf_counter()
    result = benchmark.pedantic(cell, rounds=1, iterations=1)
    elapsed = time.perf_counter() - t0
    wall = result.wall_seconds if result.wall_seconds > 0 else elapsed

    reference = run_scale_cell(
        users=500, duration=15.0, warmup=5.0, mode="discrete",
    )
    per_request = (
        reference.wall_seconds / reference.arrivals if reference.arrivals else 0.0
    )
    speedup = (per_request * result.arrivals / wall) if wall > 0 else 0.0

    report("")
    report(
        f"aggregate 1M-user cell: {result.arrivals:,} reads in {wall:.2f}s "
        f"wall ({result.arrivals_per_wall_second:,.0f} reads/s), "
        f"{speedup:,.0f}x vs discrete extrapolation "
        f"({1e3 * per_request:.2f} ms/request over "
        f"{reference.arrivals} calibration requests)"
    )
    record("million_user_reads", result.arrivals)
    record("million_user_wall_seconds", wall)
    record("million_user_reads_per_wall_second", result.arrivals_per_wall_second)
    record("speedup_vs_discrete", speedup)

    # The acceptance bar from the issue: >= 100x over discrete.
    assert speedup >= 100.0, f"speedup {speedup:.0f}x < 100x"
    # The tier resolved arrivals through the model, not just probes.
    assert result.sample_reads > 0.9 * result.arrivals
