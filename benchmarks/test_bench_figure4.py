"""Figure 4 bench: adaptivity of the probabilistic model (both panels).

Regenerates Figure 4(a) (average number of replicas selected) and 4(b)
(observed timing-failure probability with 95 % binomial CIs) for client 2
of the §6 experiment: deadline sweep 80–220 ms, P_c ∈ {0.9, 0.5},
LUI ∈ {2 s, 4 s}, 1000 alternating write/read requests per client per
cell, request delay 1000 ms.

The shape assertions encode the paper's observations: the selected-set
size falls as the deadline loosens, the observed failure probability stays
within 1 − P_c, and the longer LUI produces more timing failures.

Run: ``pytest benchmarks/test_bench_figure4.py --benchmark-only``
(this is the heaviest bench: ~32 full simulated runs).
"""

import pytest

from repro.experiments.figure4 import (
    DEADLINES_MS,
    Figure4Result,
    render,
    run_figure4,
)
from repro.experiments.runner import available_cpus, shutdown_pools
from repro.experiments.speedup import measure_speedup
from repro.experiments.speedup import render as render_speedup

TOTAL_REQUESTS = 1000

_results: dict[tuple[float, float], Figure4Result] = {}


@pytest.mark.benchmark(group="figure4-adaptivity")
@pytest.mark.parametrize("min_probability", [0.9, 0.5])
@pytest.mark.parametrize("lui", [2.0, 4.0])
def test_figure4_configuration(benchmark, min_probability, lui):
    """One (P_c, LUI) configuration: the full deadline sweep."""

    def sweep():
        return run_figure4(
            deadlines_ms=DEADLINES_MS,
            probabilities=(min_probability,),
            lazy_intervals=(lui,),
            total_requests=TOTAL_REQUESTS,
        )

    result = benchmark.pedantic(sweep, rounds=1, iterations=1)
    _results[(min_probability, lui)] = result

    series = result.series(min_probability, lui)
    assert len(series) == len(DEADLINES_MS)
    # Figure 4(a): the selected-set size falls as the deadline loosens.
    assert result.selection_decreases_with_deadline(min_probability, lui)
    # Figure 4(b): the model keeps failures within the client's tolerance.
    assert result.qos_met_everywhere(min_probability, lui)


@pytest.mark.benchmark(group="figure4-adaptivity")
def test_figure4_report(benchmark, report, record):
    """Merge the per-configuration sweeps and print both panels.

    Carries a (trivial) benchmark so ``--benchmark-only`` runs do not
    skip the report.
    """
    if not _results:
        pytest.skip("configuration benches did not run")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    merged = Figure4Result()
    for result in _results.values():
        merged.cells.update(result.cells)
    report("")
    report(render(merged))
    for (prob, lui), result in sorted(_results.items()):
        failures = sum(c.timing_failures for c in result.series(prob, lui))
        record(f"failures_pc{prob}_lui{lui:g}", failures)
    # Cross-configuration observation (§6.1): with the longer LUI the
    # replicas are staler, so (summed over the sweep) timing failures are
    # at least as frequent as with the shorter LUI.
    for prob in (0.9, 0.5):
        if (prob, 2.0) in _results and (prob, 4.0) in _results:
            short = sum(
                c.timing_failures for c in _results[(prob, 2.0)].series(prob, 2.0)
            )
            long = sum(
                c.timing_failures for c in _results[(prob, 4.0)].series(prob, 4.0)
            )
            assert long >= short


# ---------------------------------------------------------------------------
# Warm-worker runner speedup: one row per jobs level
# ---------------------------------------------------------------------------
@pytest.mark.benchmark(group="figure4-runner-speedup")
def test_quick_sweep_speedup_per_jobs_level(benchmark, report, record):
    """Quick Figure 4 grid timed at jobs ∈ {1, 2, 4, cores}.

    One row per jobs level with cells-per-second and the speedup over the
    serial run, plus the usable-core count — a "0.94x parallel" row is
    meaningless without knowing the box had one core.  The speedup gates
    only apply where the hardware can deliver them; `measure_speedup`
    itself asserts every level returns identical cells.
    """
    cores = available_cpus()
    levels = sorted({1, 2, 4, cores})

    try:
        result = benchmark.pedantic(
            lambda: measure_speedup(jobs_levels=levels),
            rounds=1, iterations=1,
        )
    finally:
        shutdown_pools()
    report("")
    report(render_speedup(result))
    record("usable_cores", cores)
    for row in result.rows:
        record(f"cells_per_second_jobs{row.jobs}", row.cells_per_second)

    if cores >= 2:
        row = result.row_for(2)
        assert row is not None and row.speedup >= 1.2, (
            f"--jobs 2 speedup {row and row.speedup:.2f}x < 1.2x on {cores} cores"
        )
    if cores >= 4:
        row = result.row_for(4)
        assert row is not None and row.speedup >= 2.5, (
            f"--jobs 4 speedup {row and row.speedup:.2f}x < 2.5x on {cores} cores"
        )
