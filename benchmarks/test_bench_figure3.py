"""Figure 3 bench: overhead of the probabilistic selection algorithm.

Regenerates the paper's Figure 3: per-read prediction + selection cost
versus the number of available replicas (2–10) for sliding windows of
sizes 10 and 20.  ``test_figure3_table`` prints the full table and
verifies the reproduction's shape claims; the parametrized benchmarks give
pytest-benchmark timings for the exact client-side code path at selected
points of the sweep.

Run: ``pytest benchmarks/test_bench_figure3.py --benchmark-only``
"""

import pytest

from repro.experiments.figure3 import (
    render,
    render_cache_comparison,
    run_cache_comparison,
    run_figure3,
)
from repro.experiments.harness import measure_selection_overhead


@pytest.mark.benchmark(group="figure3-selection-overhead")
@pytest.mark.parametrize("num_replicas", [2, 4, 6, 8, 10])
@pytest.mark.parametrize("window_size", [10, 20])
def test_selection_overhead_point(benchmark, num_replicas, window_size):
    """One (replica count, window) point of Figure 3, timed by the
    benchmark harness itself."""
    result = benchmark.pedantic(
        measure_selection_overhead,
        kwargs=dict(
            num_replicas=num_replicas,
            window_size=window_size,
            repetitions=50,
        ),
        rounds=3,
        iterations=1,
    )
    assert result.total_us > 0


def test_figure3_table(benchmark, report, record):
    """The whole Figure 3 sweep, printed, with shape assertions."""
    result = benchmark.pedantic(run_figure3, kwargs=dict(repetitions=200), rounds=1)
    report("")
    report(render(result))
    for (window, replicas), point in sorted(result.points.items()):
        record(f"selection_total_us_n{replicas}_l{window}", point.total_us)
    # Reproduction targets (shape, not absolute numbers — see DESIGN.md):
    assert result.is_monotone_in_replicas(10)
    assert result.is_monotone_in_replicas(20)
    assert result.window20_above_window10()
    # §6: distribution computation dominates the overhead (paper: ~90 %).
    assert all(p.distribution_share > 0.7 for p in result.points.values())
    # Figure 3 measures fresh recomputation: the cache must stay out of it.
    assert all(p.cache_hits == 0 for p in result.points.values())


def test_figure3_cached_comparison_table(benchmark, report, record):
    """Steady-state cached reads vs fresh recomputation, with acceptance
    thresholds: ≥3x steady-state speedup, no churn regression."""
    points = benchmark.pedantic(
        run_cache_comparison, kwargs=dict(repetitions=200), rounds=1
    )
    report("")
    report(render_cache_comparison(points))
    for n, point in points.items():
        record(f"cache_steady_speedup_n{n}", point.steady_speedup)
    for n, point in points.items():
        assert point.steady_speedup >= 3.0, (
            f"{n} replicas: steady-state speedup {point.steady_speedup:.2f}x < 3x"
        )
        assert point.steady_distribution_speedup >= 3.0
        # Every lookup after the first read is a version-key hit.
        assert point.steady.cache_hit_rate > 0.9
        assert point.steady.cache_invalidations == 0
        # Per-read invalidation: the cache may not slow the pass down
        # (generous margin because wall-clock timings are noisy).
        assert point.churn_ratio <= 1.5, (
            f"{n} replicas: churn ratio {point.churn_ratio:.2f} > 1.5"
        )
        assert point.churn_cached.cache_hits == 0
