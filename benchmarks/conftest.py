"""Shared benchmark fixtures.

Two artifact channels per bench session:

* ``results.txt`` — the human-readable tables every bench prints, stamped
  with the bench environment (usable cores) so numbers stay comparable
  across machines;
* ``BENCH_<name>.json`` — one flat metric-name → value JSON per bench
  module (``test_bench_kernel.py`` → ``BENCH_kernel.json``), written at
  session end and uploaded by CI so the perf trajectory is machine-
  trackable instead of living only in a text table.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.runner import available_cpus

RESULTS_FILE = Path(__file__).parent / "results.txt"

#: Session accumulator for the JSON artifacts: bench name -> {metric: value}.
_RECORDS: dict[str, dict[str, float]] = {}


def _bench_name(request: pytest.FixtureRequest) -> str:
    module = request.node.module.__name__.rsplit(".", 1)[-1]
    return module.removeprefix("test_bench_") or module


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_file():
    """Start each bench session with an empty, env-stamped transcript."""
    RESULTS_FILE.write_text(
        f"# bench environment: usable_cores={available_cpus()}\n"
    )
    yield


@pytest.fixture
def report(capfd):
    """Print a result table past pytest's fd-level capture.

    Tables are also appended to ``benchmarks/results.txt`` so a
    ``--benchmark-only`` run leaves a machine-readable transcript even
    when the console output is discarded.
    """

    def _report(text: str) -> None:
        with capfd.disabled():
            print(text, flush=True)
        with RESULTS_FILE.open("a") as sink:
            sink.write(text + "\n")

    return _report


@pytest.fixture
def record(request):
    """Accumulate one named metric for this module's ``BENCH_<name>.json``.

    Values are coerced to float; recording the same metric twice keeps
    the last value (a re-run within the session supersedes).
    """
    sink = _RECORDS.setdefault(_bench_name(request), {})

    def _record(metric: str, value: float) -> None:
        sink[str(metric)] = float(value)

    return _record


def pytest_sessionfinish(session, exitstatus):
    directory = Path(__file__).parent
    for name, metrics in sorted(_RECORDS.items()):
        path = directory / f"BENCH_{name}.json"
        path.write_text(json.dumps(metrics, indent=2, sort_keys=True) + "\n")
