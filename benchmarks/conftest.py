"""Shared benchmark fixtures."""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_FILE = Path(__file__).parent / "results.txt"


@pytest.fixture(scope="session", autouse=True)
def _fresh_results_file():
    """Start each bench session with an empty results transcript."""
    RESULTS_FILE.write_text("")
    yield


@pytest.fixture
def report(capfd):
    """Print a result table past pytest's fd-level capture.

    Tables are also appended to ``benchmarks/results.txt`` so a
    ``--benchmark-only`` run leaves a machine-readable transcript even
    when the console output is discarded.
    """

    def _report(text: str) -> None:
        with capfd.disabled():
            print(text, flush=True)
        with RESULTS_FILE.open("a") as sink:
            sink.write(text + "\n")

    return _report
