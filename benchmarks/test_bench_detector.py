"""φ-accrual detector overhead benchmarks (ISSUE 8).

The acceptance bound mirrors the telemetry one: with the detector
disabled (``ServiceConfig.detector = None``) the only cost left on the
client/replica hot paths is the ``if self.detector is not None`` guard,
and that guard must cost under 3 % of one simulation-kernel event.  The
enabled-path costs (record / phi / suspicion_check / adaptive_timeout)
are reported alongside so regressions stay visible, but only the
disabled guard is gated — the detector is default-off.

Run: ``pytest benchmarks/test_bench_detector.py --benchmark-only``
"""

from __future__ import annotations

import pytest

from repro.core.detector import DetectorConfig, PhiAccrualDetector
from repro.experiments.report import format_table

from test_bench_obs import OPS, _kernel_per_event_s, _per_op_s


class _Carrier:
    """Stand-in for a handler with the detector feature switched off."""

    detector = None


def _warm_detector() -> PhiAccrualDetector:
    det = PhiAccrualDetector(DetectorConfig(window_size=64, min_samples=8))
    t = 0.0
    for _ in range(80):  # fill the window past min_samples
        det.record("peer", t)
        t += 0.05
    return det


@pytest.mark.benchmark(group="detector-overhead")
def test_disabled_detector_guard_vanishes_against_kernel_events(
    benchmark, report, record
):
    per_event = _kernel_per_event_s()
    carrier = _Carrier()

    def guarded() -> None:
        if carrier.detector is not None:  # pragma: no cover - never taken
            carrier.detector.record("peer", 0.0)

    cost = _per_op_s(guarded)
    benchmark.pedantic(guarded, rounds=3, iterations=OPS)
    ratio = cost / per_event
    report(
        f"disabled detector guard: {1e9 * cost:.1f} ns/op "
        f"({100 * ratio:.2f}% of one kernel event)"
    )
    record("kernel_ns_per_event", 1e9 * per_event)
    record("disabled_guard_ns", 1e9 * cost)
    # The gate: default-off means the feature must be free when off.
    assert ratio < 0.03, (
        f"disabled guard costs {100 * ratio:.2f}% of a kernel event (bound: 3%)"
    )


@pytest.mark.benchmark(group="detector-overhead")
def test_enabled_detector_ops_are_reported(benchmark, report, record):
    per_event = _kernel_per_event_s()
    det = _warm_detector()
    clock = {"t": 100.0}

    def record_arrival() -> None:
        clock["t"] += 0.05
        det.record("peer", clock["t"])

    costs = {
        "record": _per_op_s(record_arrival, ops=OPS // 4),
        "phi": _per_op_s(lambda: det.phi("peer", clock["t"] + 0.04),
                         ops=OPS // 4),
        "suspicion_check": _per_op_s(
            lambda: det.suspicion_check("peer", clock["t"] + 0.04),
            ops=OPS // 4,
        ),
        "adaptive_timeout": _per_op_s(
            lambda: det.adaptive_timeout("peer", 0.5), ops=OPS // 4
        ),
    }
    benchmark.pedantic(
        lambda: det.phi("peer", clock["t"] + 0.04), rounds=3,
        iterations=OPS // 4,
    )

    rows = [
        (name, f"{1e9 * cost:.1f}", f"{100 * cost / per_event:.2f}%")
        for name, cost in costs.items()
    ]
    for name, cost in costs.items():
        record(f"enabled_{name}_ns", 1e9 * cost)
    report("")
    report(
        format_table(
            ["detector call", "ns/op", "% of one kernel event"],
            rows,
            title=(
                "Detector op cost vs simulation-kernel event cost "
                f"(kernel: {1e9 * per_event:.0f} ns/event)"
            ),
        )
    )
