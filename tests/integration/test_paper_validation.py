"""Scaled-down replication of the §6 validation experiment.

The full 1000-request sweep lives in the benchmark harness; here we run a
reduced version (enough requests to get past the bootstrap phase) and
assert the paper's two headline observations:

1. the selected replica sets meet the client's QoS (observed timing-
   failure probability within 1 − P_c);
2. the adaptive trends — fewer replicas at looser deadlines, more timing
   failures at longer lazy update intervals.
"""

import pytest

from repro.experiments.harness import run_figure4_cell

REQUESTS = 300  # 150 reads per cell


@pytest.mark.slow
def test_qos_met_for_strict_client():
    cell = run_figure4_cell(
        deadline=0.200,
        min_probability=0.9,
        lazy_update_interval=2.0,
        total_requests=REQUESTS,
    )
    assert cell.meets_qos(), (
        f"observed failure probability {cell.timing_failure_probability:.3f} "
        f"exceeds 1 - P_c"
    )


@pytest.mark.slow
def test_qos_met_for_lenient_client():
    cell = run_figure4_cell(
        deadline=0.140,
        min_probability=0.5,
        lazy_update_interval=2.0,
        total_requests=REQUESTS,
    )
    assert cell.meets_qos()


@pytest.mark.slow
def test_fewer_replicas_at_looser_deadline():
    tight = run_figure4_cell(0.100, 0.9, 2.0, total_requests=REQUESTS)
    loose = run_figure4_cell(0.220, 0.9, 2.0, total_requests=REQUESTS)
    assert loose.avg_replicas_selected < tight.avg_replicas_selected


@pytest.mark.slow
def test_stricter_probability_needs_more_replicas():
    strict = run_figure4_cell(0.120, 0.9, 4.0, total_requests=REQUESTS)
    lenient = run_figure4_cell(0.120, 0.5, 4.0, total_requests=REQUESTS)
    assert strict.avg_replicas_selected >= lenient.avg_replicas_selected


@pytest.mark.slow
def test_longer_lui_increases_failures_or_deferrals():
    """§6.1's second observation: as the interval between lazy updates
    increases, staleness (and with it deferred reads / timing failures)
    increases."""
    short = run_figure4_cell(0.160, 0.5, 1.0, total_requests=REQUESTS)
    long = run_figure4_cell(0.160, 0.5, 8.0, total_requests=REQUESTS)
    assert (
        long.timing_failure_probability >= short.timing_failure_probability
        or long.deferred_fraction > short.deferred_fraction
    )


@pytest.mark.slow
def test_failure_probability_falls_with_deadline():
    tight = run_figure4_cell(0.090, 0.5, 4.0, total_requests=REQUESTS)
    loose = run_figure4_cell(0.220, 0.5, 4.0, total_requests=REQUESTS)
    assert loose.timing_failure_probability <= tight.timing_failure_probability
