"""Property-based protocol fuzzing.

Hypothesis drives randomized scenarios — topology sizes, timing jitter,
client mixes, and crash schedules — and every run must uphold the
protocol's invariants:

* all serving primaries commit the identical update sequence (sequential
  handler) or converge to the same state (causal handler);
* committed GSNs are gap-free and counted exactly once;
* every delivered read is a consistent prefix (value == version stamp for
  the counter app);
* after quiescence plus a few lazy rounds, all live replicas converge.

Runs are kept small (tens of requests) so the whole battery stays fast.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.qos import OrderingGuarantee, QoSSpec
from repro.core.service import ServiceConfig, build_testbed
from repro.net.latency import LanLatency
from repro.sim.process import Process, Timeout
from repro.sim.rng import Constant

FUZZ_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _run_sequential_scenario(
    seed, num_primaries, num_secondaries, num_clients, updates_each, crash_p2
):
    config = ServiceConfig(
        name="svc",
        num_primaries=num_primaries,
        num_secondaries=num_secondaries,
        lazy_update_interval=0.5,
        read_service_time=Constant(0.008),
    )
    testbed = build_testbed(
        config,
        seed=seed,
        latency=LanLatency(mean_s=0.001, jitter_s=0.001),
    )
    service = testbed.service
    qos = QoSSpec(staleness_threshold=4, deadline=2.0, min_probability=0.5)
    reads = []

    for i in range(num_clients):
        client = service.create_client(f"c{i}", read_only_methods={"get"})

        def run(client=client, offset=0.003 * i):
            yield Timeout(offset)
            for _ in range(updates_each):
                yield client.call("increment")
                yield Timeout(0.05)
                outcome = yield client.call("get", (), qos)
                reads.append(outcome)
                yield Timeout(0.05)

        Process(testbed.sim, run())

    if crash_p2 and num_secondaries >= 1:
        testbed.sim.schedule_at(1.0, testbed.network.crash, "svc-s1")

    testbed.sim.run(until=300.0)
    testbed.sim.run(until=testbed.sim.now + 2.0)  # quiescent lazy rounds
    return testbed, reads


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    num_primaries=st.integers(min_value=1, max_value=4),
    num_secondaries=st.integers(min_value=0, max_value=4),
    num_clients=st.integers(min_value=1, max_value=3),
    updates_each=st.integers(min_value=2, max_value=8),
    crash_secondary=st.booleans(),
)
@FUZZ_SETTINGS
def test_sequential_invariants_fuzz(
    seed, num_primaries, num_secondaries, num_clients, updates_each,
    crash_secondary,
):
    testbed, reads = _run_sequential_scenario(
        seed, num_primaries, num_secondaries, num_clients, updates_each,
        crash_secondary,
    )
    service = testbed.service
    total_updates = num_clients * updates_each

    # Identical gap-free commit order on every serving primary.
    histories = {tuple(p.app.history) for p in service.primaries}
    assert len(histories) == 1
    history = next(iter(histories))
    assert list(history) == list(range(1, total_updates + 1))
    assert all(p.my_csn == total_updates for p in service.primaries)

    # Every answered read is a consistent prefix.
    for outcome in reads:
        if outcome.response_time is not None and outcome.value is not None:
            assert outcome.value == outcome.gsn
            assert 0 <= outcome.gsn <= total_updates

    # Quiescent convergence for every live replica.
    for replica in service.primaries + service.secondaries:
        if testbed.network.is_up(replica.name):
            assert replica.app.value == total_updates


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    num_primaries=st.integers(min_value=1, max_value=3),
    num_clients=st.integers(min_value=1, max_value=3),
    updates_each=st.integers(min_value=2, max_value=6),
)
@FUZZ_SETTINGS
def test_causal_convergence_fuzz(seed, num_primaries, num_clients, updates_each):
    """Causal handler: primaries may commit concurrent updates in different
    orders, but counts and final per-key state must converge."""
    from repro.apps.kvstore import KVStore

    config = ServiceConfig(
        name="svc",
        ordering=OrderingGuarantee.CAUSAL,
        num_primaries=num_primaries,
        num_secondaries=1,
        lazy_update_interval=0.5,
        read_service_time=Constant(0.008),
    )
    testbed = build_testbed(
        config,
        seed=seed,
        latency=LanLatency(mean_s=0.001, jitter_s=0.001),
        app_factory=KVStore,
    )
    service = testbed.service
    for i in range(num_clients):
        client = service.create_client(
            f"w{i}", read_only_methods=set(KVStore.READ_ONLY_METHODS)
        )

        def run(client=client, key=f"k{i}"):
            for j in range(updates_each):
                client.invoke("put", (key, j))
                yield Timeout(0.03)

        Process(testbed.sim, run())

    testbed.sim.run(until=120.0)
    expected = {f"k{i}": updates_each - 1 for i in range(num_clients)}
    for primary in service.primaries:
        assert primary.app.dump() == expected
        assert primary.vc.total() == num_clients * updates_each


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    drop=st.floats(min_value=0.0, max_value=0.25),
)
@FUZZ_SETTINGS
def test_reliability_under_random_loss_fuzz(seed, drop):
    """Any loss rate up to 25 %: the reliable channels must still deliver
    a gap-free commit history."""
    from repro.core.service import ReplicatedService
    from repro.groups.membership import MembershipConfig, MembershipService
    from repro.net.latency import FixedLatency
    from repro.net.network import Network
    from repro.sim.kernel import Simulator
    from repro.sim.rng import RngRegistry

    sim = Simulator()
    rng = RngRegistry(seed)
    network = Network(sim, rng, FixedLatency(0.001), drop_probability=drop)
    membership = MembershipService(
        config=MembershipConfig(
            heartbeat_interval=0.2, suspect_timeout=3.0, sweep_interval=0.2
        )
    )
    network.attach(membership)
    service = ReplicatedService(
        sim, network, membership, rng,
        ServiceConfig(
            name="svc", num_primaries=2, num_secondaries=1,
            lazy_update_interval=0.5, read_service_time=Constant(0.008),
        ),
    )
    client = service.create_client("c", read_only_methods={"get"})

    def run():
        for _ in range(10):
            yield client.call("increment")
            yield Timeout(0.05)

    Process(sim, run())
    sim.run(until=200.0)
    for primary in service.primaries:
        assert primary.app.history == list(range(1, 11))
