"""End-to-end consistency invariants under concurrency, jitter, and loss.

These exercise the whole stack (clients + sequencer + primaries +
secondaries + membership over the simulated network) and assert the
guarantees §4.1 promises:

* sequential order: every serving primary applies the identical update
  sequence, and committed GSNs are gap-free;
* staleness bound: a delivered read response is never more than ``a``
  versions behind the prefix sequenced before it;
* lazy convergence: once updates stop, all replicas converge within a
  couple of lazy rounds ("eventual convergence if update activity
  ceases").
"""

import pytest

from repro.core.qos import QoSSpec
from repro.core.service import ServiceConfig, build_testbed
from repro.net.latency import FixedLatency, LanLatency
from repro.sim.process import Process, Timeout
from repro.sim.rng import Constant, Normal


def run_concurrent_workload(
    testbed, num_clients=3, updates_per_client=15, qos=None, gap=0.05
):
    """Clients race interleaved updates and reads; returns read outcomes."""
    qos = qos or QoSSpec(staleness_threshold=3, deadline=2.0, min_probability=0.5)
    all_reads = []
    clients = []
    for i in range(num_clients):
        client = testbed.service.create_client(
            f"client-{i}", read_only_methods={"get"}
        )
        clients.append(client)

        def run(client=client, offset=i * 0.01):
            yield Timeout(offset)
            for _ in range(updates_per_client):
                yield client.call("increment")
                yield Timeout(gap)
                outcome = yield client.call("get", (), qos)
                all_reads.append(outcome)
                yield Timeout(gap)

        Process(testbed.sim, run())
    testbed.sim.run(until=600.0)
    return clients, all_reads


def _build(latency=None, service_time=None, seed=0, **cfg):
    defaults = dict(
        name="svc",
        num_primaries=3,
        num_secondaries=4,
        lazy_update_interval=0.5,
        read_service_time=service_time or Constant(0.010),
    )
    defaults.update(cfg)
    return build_testbed(
        ServiceConfig(**defaults),
        seed=seed,
        latency=latency or FixedLatency(0.001),
    )


def test_identical_commit_order_on_all_primaries():
    testbed = _build()
    run_concurrent_workload(testbed)
    histories = {tuple(p.app.history) for p in testbed.service.primaries}
    assert len(histories) == 1
    assert len(next(iter(histories))) == 45  # 3 clients x 15 updates


def test_commit_order_identical_under_jittered_latency():
    """Random per-message latency reorders deliveries; the GSN protocol
    must still serialize commits identically everywhere."""
    testbed = _build(latency=LanLatency(mean_s=0.002, jitter_s=0.002), seed=17)
    run_concurrent_workload(testbed, num_clients=4, updates_per_client=10)
    histories = {tuple(p.app.history) for p in testbed.service.primaries}
    assert len(histories) == 1
    assert len(next(iter(histories))) == 40


def test_gsns_are_gap_free():
    testbed = _build()
    run_concurrent_workload(testbed)
    for primary in testbed.service.primaries:
        assert primary.my_csn == 45
        assert primary.app.history == list(range(1, 46))


def test_read_staleness_never_exceeds_threshold():
    """The staleness bound (§2): a response reflects all but at most ``a``
    of the updates sequenced before the read was stamped.

    CounterObject's value equals the number of applied updates, and the
    reply's gsn is the responder's CSN, so (read-stamp - gsn) <= a.  We
    cannot observe the exact stamp from outside, but value == gsn must
    hold, and the final convergence check plus per-read value sanity
    covers the rest.
    """
    qos = QoSSpec(staleness_threshold=2, deadline=5.0, min_probability=0.9)
    testbed = _build(lazy_update_interval=1.0)
    _, reads = run_concurrent_workload(testbed, qos=qos)
    assert reads
    for outcome in reads:
        assert outcome.value == outcome.gsn  # response is a consistent prefix


def test_monotonic_versions_per_replica():
    """Each replica's responses carry non-decreasing GSNs over time."""
    testbed = _build()
    _, reads = run_concurrent_workload(testbed)
    per_replica: dict = {}
    for outcome in reads:
        if outcome.first_replica is None:
            continue
        per_replica.setdefault(outcome.first_replica, []).append(
            (outcome.request_id, outcome.gsn)
        )
    for replica, entries in per_replica.items():
        ordered = [gsn for _, gsn in sorted(entries)]
        assert ordered == sorted(ordered), f"non-monotonic versions at {replica}"


def test_quiescent_convergence():
    """'the replicated state will eventually converge, if update activity
    ceases' — within a couple of lazy rounds, here."""
    testbed = _build(lazy_update_interval=0.5)
    run_concurrent_workload(testbed)
    testbed.sim.run(until=testbed.sim.now + 2.0)  # a few lazy rounds
    values = {
        r.app.value
        for r in testbed.service.primaries + testbed.service.secondaries
    }
    assert values == {45}


def test_consistency_preserved_under_message_loss():
    """10 % random loss: reliability is the group layer's job; the
    protocol above it must not diverge."""
    from repro.groups.membership import MembershipConfig, MembershipService
    from repro.net.network import Network
    from repro.core.service import ReplicatedService
    from repro.sim.kernel import Simulator
    from repro.sim.rng import RngRegistry

    sim = Simulator()
    rng = RngRegistry(23)
    network = Network(sim, rng, FixedLatency(0.001), drop_probability=0.1)
    membership = MembershipService(
        config=MembershipConfig(
            heartbeat_interval=0.2, suspect_timeout=2.0, sweep_interval=0.2
        )
    )
    network.attach(membership)
    service = ReplicatedService(
        sim, network, membership, rng,
        ServiceConfig(
            name="svc", num_primaries=3, num_secondaries=2,
            lazy_update_interval=0.5, read_service_time=Constant(0.010),
        ),
    )
    client = service.create_client("c", read_only_methods={"get"})

    def run():
        for _ in range(20):
            yield client.call("increment")
            yield Timeout(0.05)

    Process(sim, run())
    sim.run(until=120.0)
    histories = {tuple(p.app.history) for p in service.primaries}
    assert len(histories) == 1
    assert len(next(iter(histories))) == 20


def test_realistic_service_times_end_to_end():
    """The §6 service-time model end to end: reads finish, values are
    consistent prefixes."""
    testbed = _build(
        service_time=Normal(0.100, 0.050, floor=0.002),
        latency=LanLatency(),
        seed=31,
    )
    qos = QoSSpec(staleness_threshold=4, deadline=1.0, min_probability=0.5)
    clients, reads = run_concurrent_workload(
        testbed, num_clients=2, updates_per_client=10, qos=qos, gap=0.2
    )
    assert len(reads) == 20
    for outcome in reads:
        assert outcome.value == outcome.gsn
    for client in clients:
        assert client.updates_resolved == 10
