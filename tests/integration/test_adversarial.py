"""Adversarial timing and scale tests."""

import pytest

from repro.core.qos import QoSSpec
from repro.core.service import ServiceConfig, build_testbed
from repro.groups.membership import MembershipConfig
from repro.net.latency import FixedLatency, LanLatency
from repro.sim.process import Process, Timeout
from repro.sim.rng import Constant, Normal


def make_testbed(**kwargs):
    defaults = dict(
        name="svc",
        num_primaries=3,
        num_secondaries=2,
        lazy_update_interval=0.5,
        read_service_time=Constant(0.010),
        heartbeat_interval=0.1,
        suspect_timeout=0.35,
    )
    defaults.update(kwargs)
    return build_testbed(
        ServiceConfig(**defaults),
        seed=kwargs.pop("seed", 43),
        latency=FixedLatency(0.001),
        membership_config=MembershipConfig(
            heartbeat_interval=0.1, suspect_timeout=0.35, sweep_interval=0.1
        ),
    )


QOS = QoSSpec(staleness_threshold=10, deadline=1.0, min_probability=0.5)


def test_sequencer_crash_with_unassigned_update_burst():
    """Crash the sequencer milliseconds after an update burst: some GSN
    assignments never leave it.  Failover must re-assign; every update
    commits exactly once, in identical order, everywhere."""
    testbed = make_testbed()
    service = testbed.service
    client = service.create_client("c", read_only_methods={"get"})
    acks = []

    def burst():
        yield Timeout(1.0)
        for i in range(10):
            client.invoke("increment", callback=acks.append)
        # Crash while the burst's assignments are (at best) in flight.
        yield Timeout(0.0015)
        testbed.network.crash("svc-seq")

    Process(testbed.sim, burst())
    testbed.sim.run(until=60.0)

    serving = [p for p in service.primaries if p.name != "svc-p1"]
    histories = {tuple(p.app.history) for p in serving}
    assert len(histories) == 1
    history = list(next(iter(histories)))
    assert history == list(range(1, 11))  # all 10, exactly once, in order
    assert len(acks) == 10  # every update acknowledged to the client


def test_two_successive_sequencer_crashes():
    """Crash the original sequencer, then its successor, mid-workload."""
    testbed = make_testbed(num_primaries=4)
    service = testbed.service
    client = service.create_client("c", read_only_methods={"get"})

    def workload():
        for _ in range(40):
            yield client.call("increment")
            yield Timeout(0.2)

    Process(testbed.sim, workload())
    testbed.sim.schedule_at(2.0, testbed.network.crash, "svc-seq")
    testbed.sim.schedule_at(5.0, testbed.network.crash, "svc-p1")
    testbed.sim.run(until=120.0)

    live_serving = [
        p for p in service.primaries[1:]  # p1 crashed
        if p.name != "svc-p2"  # p2 is the final sequencer
    ]
    assert all(p.app.history == list(range(1, 41)) for p in live_serving)
    assert client.updates_resolved == 40


def test_membership_service_outage_does_not_stop_traffic():
    """With the membership service down, views freeze but the data path
    (requests, GSN assignment, replies, lazy updates) keeps flowing."""
    testbed = make_testbed()
    service = testbed.service
    client = service.create_client("c", read_only_methods={"get"})
    testbed.network.crash("membership")
    reads = []

    def workload():
        for _ in range(10):
            yield client.call("increment")
            yield Timeout(0.1)
            outcome = yield client.call("get", (), QOS)
            reads.append(outcome)
            yield Timeout(0.1)

    Process(testbed.sim, workload())
    testbed.sim.run(until=30.0)
    assert len(reads) == 10
    assert all(o.value is not None for o in reads)
    assert service.primaries[0].my_csn == 10


def test_update_during_view_change_window():
    """Updates issued while eviction is being detected must not be lost."""
    testbed = make_testbed()
    service = testbed.service
    client = service.create_client("c", read_only_methods={"get"})

    def workload():
        yield Timeout(0.9)
        # Crash a serving primary, then immediately keep updating through
        # the detection window.
        testbed.network.crash("svc-p2")
        for _ in range(10):
            yield client.call("increment")
            yield Timeout(0.05)

    Process(testbed.sim, workload())
    testbed.sim.run(until=30.0)
    survivors = [p for p in service.primaries if p.name != "svc-p2"]
    assert all(p.app.history == list(range(1, 11)) for p in survivors)


@pytest.mark.slow
def test_scale_many_replicas_many_clients():
    """A larger deployment (20 serving replicas, 6 clients) stays correct
    and responsive."""
    # Parameters stay in the paper's regime (deadline much smaller than
    # the LUI) — outside it, Eq. 3's independence assumption for deferred
    # reads is over-confident; see DESIGN.md §5a.
    config = ServiceConfig(
        name="big",
        num_primaries=5,
        num_secondaries=15,
        lazy_update_interval=2.0,
        read_service_time=Normal(0.050, 0.020, floor=0.002),
    )
    testbed = build_testbed(config, seed=47, latency=LanLatency())
    service = testbed.service
    qos = QoSSpec(staleness_threshold=5, deadline=0.25, min_probability=0.8)
    clients = []
    reads = []
    for i in range(6):
        client = service.create_client(f"c{i}", read_only_methods={"get"})
        clients.append(client)

        def run(client=client):
            for _ in range(30):
                yield client.call("increment")
                yield Timeout(0.1)
                outcome = yield client.call("get", (), qos)
                reads.append(outcome)
                yield Timeout(0.1)

        Process(testbed.sim, run())
    testbed.sim.run(until=400.0)
    testbed.sim.run(until=testbed.sim.now + 3.0)

    total = 6 * 30
    assert len(reads) == total
    assert all(o.value == o.gsn for o in reads if o.value is not None)
    histories = {tuple(p.app.history) for p in service.primaries}
    assert len(histories) == 1 and len(next(iter(histories))) == total
    for secondary in service.secondaries:
        assert secondary.app.value == total
    # Past the bootstrap phase (first half: 20 replicas' windows filling),
    # the adaptive selection keeps timing failures moderate even at scale
    # and under a hard update rate (~20/s against a=5, LUI=1 s).
    steady = reads[total // 2:]
    steady_failures = sum(1 for o in steady if o.timing_failure)
    assert steady_failures / len(steady) < 0.25
