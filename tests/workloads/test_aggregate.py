"""Tests for the aggregated client tier (:mod:`repro.workloads.aggregate`)."""

import numpy as np
import pytest

from repro.core.qos import QoSSpec
from repro.core.service import ServiceConfig, build_testbed
from repro.net.latency import FixedLatency
from repro.sim.rng import Constant
from repro.workloads.aggregate import (
    AggregatedClientPool,
    AggregateStats,
    PopulationSpec,
)
from repro.workloads.generators import ArrivalRateController


def _testbed(seed=13):
    return build_testbed(
        ServiceConfig(
            name="svc",
            num_primaries=2,
            num_secondaries=2,
            lazy_update_interval=0.5,
            read_service_time=Constant(0.010),
        ),
        seed=seed,
        latency=FixedLatency(0.001),
    )


QOS = QoSSpec(staleness_threshold=10, deadline=1.0, min_probability=0.5)


def _spec(**overrides):
    base = dict(
        name="pop", clients=1000, qos=QOS, read_rate=0.02, update_rate=0.005
    )
    base.update(overrides)
    return PopulationSpec(**base)


def _pool(testbed, spec, **overrides):
    handler = testbed.service.create_client(
        "agg-gw", read_only_methods={"get"}, default_qos=QOS
    )
    kwargs = dict(duration=20.0, batch_window=0.5, seed=1)
    kwargs.update(overrides)
    return AggregatedClientPool(testbed.sim, handler, spec, **kwargs)


# ---------------------------------------------------------------------------
# PopulationSpec validation
# ---------------------------------------------------------------------------
def test_population_spec_rates_scale_with_clients():
    spec = _spec(clients=500, read_rate=0.04, update_rate=0.01)
    assert spec.total_read_rate == pytest.approx(20.0)
    assert spec.total_update_rate == pytest.approx(5.0)


@pytest.mark.parametrize(
    "overrides",
    [
        {"clients": 0},
        {"read_rate": -1.0},
        {"update_rate": -0.1},
        {"read_rate": 0.0, "update_rate": 0.0},
        {"arrival": "fractal"},
        {"duty_cycle": 0.0},
        {"duty_cycle": 1.5},
    ],
)
def test_population_spec_rejects_invalid(overrides):
    with pytest.raises(ValueError):
        _spec(**overrides)


# ---------------------------------------------------------------------------
# Pool construction validation
# ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "overrides",
    [
        {"duration": 0.0},
        {"batch_window": 0.0},
        {"probe_reads": -1},
        {"probe_updates": -1},
        {"warmup": -1.0},
        {"warmup": 20.0},  # warmup must be < duration
    ],
)
def test_pool_rejects_invalid_parameters(overrides):
    testbed = _testbed()
    with pytest.raises(ValueError):
        _pool(testbed, _spec(), **overrides)


# ---------------------------------------------------------------------------
# End-to-end pool behaviour
# ---------------------------------------------------------------------------
def test_pool_models_most_arrivals_and_probes_a_few():
    testbed = _testbed()
    pool = _pool(testbed, _spec())  # 20 reads/s, 5 updates/s merged
    testbed.sim.run(until=30.0)
    assert pool.finished
    stats = pool.stats
    # ~400 read arrivals over 20 s; probes capped at 1/batch (40 batches).
    assert 300 <= stats.reads <= 520
    assert 0 < stats.probe_reads <= stats.batches
    assert stats.reads_modeled > 5 * stats.probe_reads
    assert stats.batches == 40
    # Updates split the same way.
    assert stats.probe_updates > 0
    assert stats.updates_modeled > 0
    # Modeled outcomes resolved through the §5 pmfs.
    assert int(stats.response_hist.sum()) + stats.unresolved == stats.reads_modeled
    assert stats.avg_replicas_selected >= 1.0
    assert 0.0 <= stats.failure_probability <= 1.0


def test_pool_is_deterministic_for_a_seed():
    def run(seed):
        testbed = _testbed()
        pool = _pool(testbed, _spec(), seed=seed)
        testbed.sim.run(until=30.0)
        stats = pool.stats
        return (
            stats.reads_modeled,
            stats.failures_modeled,
            stats.deferred_modeled,
            stats.response_sum,
            stats.probe_reads,
        )

    assert run(7) == run(7)
    assert run(7) != run(8)


def test_pool_warmup_skips_modeled_arrivals():
    testbed = _testbed()
    pool = _pool(testbed, _spec(), warmup=10.0)
    testbed.sim.run(until=30.0)
    stats = pool.stats
    assert stats.warmup_skipped > 0
    # Roughly half the modeled arrivals fall inside the 10 s warmup.
    assert 0.25 <= stats.warmup_skipped / (
        stats.warmup_skipped + stats.reads_modeled
    ) <= 0.75


def test_pool_rate_controller_scales_arrivals():
    def total_reads(controller):
        testbed = _testbed()
        pool = _pool(testbed, _spec(), rate_controller=controller, seed=3)
        testbed.sim.run(until=30.0)
        return pool.stats.reads

    calm = total_reads(None)
    stormy = total_reads(ArrivalRateController(3.0))
    assert stormy > 2.0 * calm


def test_bursty_pool_preserves_mean_rate():
    testbed = _testbed()
    spec = _spec(arrival="bursty", duty_cycle=0.2)
    pool = _pool(testbed, spec, seed=5)
    testbed.sim.run(until=30.0)
    # Mean preserved: still ~400 read arrivals over 20 s.
    assert 280 <= pool.stats.reads <= 540


def test_pool_feeds_gateway_metrics():
    testbed = _testbed()
    pool = _pool(testbed, _spec())
    testbed.sim.run(until=30.0)
    metrics = pool.handler.metrics
    labels = {"client": pool.handler.name, "population": "pop"}
    assert metrics.counter("aggregate_batches", **labels).value == 40
    assert (
        metrics.counter("aggregate_reads_modeled", **labels).value
        == pool.stats.reads_modeled
    )


# ---------------------------------------------------------------------------
# AggregateStats accounting
# ---------------------------------------------------------------------------
def _stats(quantum=0.01, bins=100):
    return AggregateStats(
        quantum=quantum, response_hist=np.zeros(bins + 1, dtype=np.int64)
    )


def test_stats_empty_is_all_zeros():
    stats = _stats()
    assert stats.reads == 0
    assert stats.failure_probability == 0.0
    assert stats.deferred_fraction == 0.0
    assert stats.avg_replicas_selected == 0.0
    assert stats.mean_response_time == 0.0
    assert np.all(stats.response_cdf([0.1, 1.0]) == 0.0)
    assert np.all(stats.modeled_response_cdf([0.1, 1.0]) == 0.0)


def test_stats_combined_and_modeled_views_differ():
    stats = _stats()
    stats.reads_modeled = 80
    stats.failures_modeled = 8
    stats.deferred_modeled = 4
    stats.probe_reads = 20
    stats.probe_failures = 12
    assert stats.reads == 100
    assert stats.failure_probability == pytest.approx(0.20)
    assert stats.modeled_failure_probability == pytest.approx(0.10)
    assert stats.deferred_fraction == pytest.approx(0.04)
    assert stats.modeled_deferred_fraction == pytest.approx(0.05)


def test_stats_response_cdf_mixes_grid_and_probe_times():
    stats = _stats(quantum=0.01)
    # 6 modeled responses at 20 ms, 4 at 50 ms.
    stats.response_hist[2] = 6
    stats.response_hist[5] = 4
    stats.reads_modeled = 10
    # 2 probe responses straddling the 30 ms evaluation point.
    stats.probe_reads = 2
    stats.probe_response_times = [0.025, 0.060]
    cdf = stats.response_cdf([0.030, 0.100])
    assert cdf[0] == pytest.approx((6 + 1) / 12)
    assert cdf[1] == pytest.approx(1.0)
    modeled = stats.modeled_response_cdf([0.030, 0.100])
    assert modeled[0] == pytest.approx(6 / 10)
    assert modeled[1] == pytest.approx(1.0)


def test_stats_cdf_counts_unresolved_in_denominator():
    stats = _stats(quantum=0.01)
    stats.response_hist[1] = 5
    stats.reads_modeled = 10  # 5 never resolved
    stats.unresolved = 5
    assert stats.modeled_response_cdf([10.0])[0] == pytest.approx(0.5)


def test_stats_overflow_bin_not_counted_as_finite():
    stats = _stats(quantum=0.01, bins=10)
    stats.response_hist[-1] = 3  # overflow slot: beyond-grid responses
    stats.response_hist[2] = 7
    stats.reads_modeled = 10
    # At the far edge of the grid only the 7 on-grid responses count.
    assert stats.modeled_response_cdf([0.09])[0] == pytest.approx(0.7)


# ---------------------------------------------------------------------------
# Vectorized Poisson CDF helper
# ---------------------------------------------------------------------------
def test_poisson_cdf_many_matches_scalar_reference():
    from repro.stats.poisson import poisson_cdf

    means = np.array([0.0, 0.1, 1.0, 3.7, 10.0])
    for threshold in (0, 1, 2, 5):
        got = AggregatedClientPool._poisson_cdf_many(threshold, means)
        expected = [poisson_cdf(threshold, mean) for mean in means]
        assert np.allclose(got, expected, atol=1e-12)
