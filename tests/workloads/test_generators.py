"""Tests for the open-loop generators in :mod:`repro.workloads.generators`.

Focus: :class:`ArrivalRateController` storm edge cases (nested storms,
end-without-begin) and how :class:`PeriodicReader` / :class:`BurstyUpdater`
gaps respond to rate-factor changes mid-run, plus the
:class:`PoissonReader` discrete reference used by the aggregate-tier
validation.
"""

import pytest

from repro.core.qos import QoSSpec
from repro.core.service import ServiceConfig, build_testbed
from repro.net.latency import FixedLatency
from repro.sim.rng import Constant, RngRegistry
from repro.workloads.generators import (
    ArrivalRateController,
    BurstyUpdater,
    OpenLoopUpdater,
    PeriodicReader,
    PoissonReader,
)


def _testbed():
    return build_testbed(
        ServiceConfig(
            name="svc",
            num_primaries=2,
            num_secondaries=2,
            lazy_update_interval=0.5,
            read_service_time=Constant(0.010),
        ),
        seed=11,
        latency=FixedLatency(0.001),
    )


QOS = QoSSpec(staleness_threshold=10, deadline=1.0, min_probability=0.5)


# ---------------------------------------------------------------------------
# ArrivalRateController storm edge cases
# ---------------------------------------------------------------------------
def test_controller_defaults_to_unity_and_rejects_bad_factors():
    controller = ArrivalRateController()
    assert controller.factor == 1.0
    assert not controller.storming
    with pytest.raises(ValueError):
        ArrivalRateController(0.0)
    with pytest.raises(ValueError):
        ArrivalRateController(-2.0)
    with pytest.raises(ValueError):
        controller.begin_storm(0.0)
    with pytest.raises(ValueError):
        controller.begin_storm(-1.0)
    # The rejected begin_storm changed nothing.
    assert controller.factor == 1.0
    assert controller.storms_started == 0


def test_nested_storms_overwrite_factor_and_count_each_begin():
    """A second begin_storm before end_storm replaces the factor (storms
    do not stack multiplicatively) and still counts as a started storm."""
    controller = ArrivalRateController()
    controller.begin_storm(3.0)
    assert controller.factor == 3.0
    assert controller.storming
    controller.begin_storm(5.0)
    assert controller.factor == 5.0  # replaced, not 15.0
    assert controller.storms_started == 2
    # One end_storm fully unwinds the nesting — storms are not a stack.
    controller.end_storm()
    assert controller.factor == 1.0
    assert not controller.storming


def test_end_storm_without_begin_is_harmless():
    controller = ArrivalRateController(2.5)
    controller.end_storm()  # never began a storm; resets to the neutral 1.0
    assert controller.factor == 1.0
    assert controller.storms_started == 0
    controller.end_storm()  # idempotent
    assert controller.factor == 1.0


# ---------------------------------------------------------------------------
# PeriodicReader gap behaviour under factor changes
# ---------------------------------------------------------------------------
def test_periodic_reader_gap_tracks_controller_factor():
    testbed = _testbed()
    handler = testbed.service.create_client("c", read_only_methods={"get"})
    controller = ArrivalRateController()
    reader = PeriodicReader(
        testbed.sim, handler, QOS, period=0.1,
        duration=10.0, rate_controller=controller,
    )
    assert reader._gap() == pytest.approx(0.1)
    controller.begin_storm(4.0)
    assert reader._gap() == pytest.approx(0.025)  # storm: 4x faster
    controller.end_storm()
    assert reader._gap() == pytest.approx(0.1)


def test_periodic_reader_issues_more_during_storm():
    """Raising the factor mid-run takes effect on the next gap: the
    duration-mode reader issues ~factor times as many reads per second."""
    testbed = _testbed()
    handler = testbed.service.create_client("c", read_only_methods={"get"})
    controller = ArrivalRateController()
    reader = PeriodicReader(
        testbed.sim, handler, QOS, period=0.1,
        duration=20.0, rate_controller=controller,
    )
    testbed.sim.schedule(10.0, lambda: controller.begin_storm(3.0))
    testbed.sim.run(until=30.0)
    # ~100 reads in the first 10 s, ~300 in the stormy second 10 s.
    assert 350 <= reader.issued <= 450


def test_periodic_reader_without_controller_uses_fixed_period():
    testbed = _testbed()
    handler = testbed.service.create_client("c", read_only_methods={"get"})
    reader = PeriodicReader(testbed.sim, handler, QOS, period=0.5, count=6)
    testbed.sim.run(until=30.0)
    assert reader.issued == 6
    assert len(reader.outcomes) == 6


# ---------------------------------------------------------------------------
# BurstyUpdater gap behaviour
# ---------------------------------------------------------------------------
def test_bursty_updater_mean_rate_is_duty_cycle_weighted():
    testbed = _testbed()
    handler = testbed.service.create_client("u", read_only_methods={"get"})
    updater = BurstyUpdater(
        testbed.sim, handler, RngRegistry(3),
        burst_rate=20.0, burst_length=1.0, idle_length=3.0, duration=40.0,
    )
    assert updater.mean_rate == pytest.approx(5.0)  # 20 * 1/(1+3)
    testbed.sim.run(until=60.0)
    # ~5/s over 40 s = ~200 issued; allow generous Poisson slack.
    assert 140 <= updater.issued <= 260


def test_bursty_updater_zero_idle_degenerates_to_poisson():
    testbed = _testbed()
    handler = testbed.service.create_client("u", read_only_methods={"get"})
    updater = BurstyUpdater(
        testbed.sim, handler, RngRegistry(4),
        burst_rate=10.0, burst_length=0.5, idle_length=0.0, duration=20.0,
    )
    assert updater.mean_rate == pytest.approx(10.0)
    testbed.sim.run(until=40.0)
    assert 140 <= updater.issued <= 260


def test_bursty_updater_rejects_invalid_shapes():
    testbed = _testbed()
    handler = testbed.service.create_client("u", read_only_methods={"get"})
    rng = RngRegistry(5)
    with pytest.raises(ValueError):
        BurstyUpdater(testbed.sim, handler, rng, 0.0, 1.0, 1.0, 10.0)
    with pytest.raises(ValueError):
        BurstyUpdater(testbed.sim, handler, rng, 10.0, 0.0, 1.0, 10.0)
    with pytest.raises(ValueError):
        BurstyUpdater(testbed.sim, handler, rng, 10.0, 1.0, -0.5, 10.0)
    with pytest.raises(ValueError):
        BurstyUpdater(testbed.sim, handler, rng, 10.0, 1.0, 1.0, 0.0)


# ---------------------------------------------------------------------------
# OpenLoopUpdater under a controller (the storm consumer the chaos engine
# actually drives)
# ---------------------------------------------------------------------------
def test_open_loop_updater_rate_tracks_controller():
    testbed = _testbed()
    handler = testbed.service.create_client("u", read_only_methods={"get"})
    controller = ArrivalRateController()
    updater = OpenLoopUpdater(
        testbed.sim, handler, RngRegistry(6), rate=10.0, duration=20.0,
        rate_controller=controller,
    )
    assert updater._effective_rate() == pytest.approx(10.0)
    controller.begin_storm(2.0)
    assert updater._effective_rate() == pytest.approx(20.0)
    controller.end_storm()
    assert updater._effective_rate() == pytest.approx(10.0)


# ---------------------------------------------------------------------------
# PoissonReader — the aggregate tier's discrete reference
# ---------------------------------------------------------------------------
def test_poisson_reader_issues_at_rate_and_records_issue_times():
    testbed = _testbed()
    handler = testbed.service.create_client("c", read_only_methods={"get"})
    reader = PoissonReader(
        testbed.sim, handler, RngRegistry(7), QOS, rate=20.0, duration=30.0,
    )
    testbed.sim.run(until=60.0)
    # ~600 expected; wide Poisson tolerance.
    assert 480 <= reader.issued <= 720
    assert len(reader.records) == reader.issued
    issue_times = [issued_at for issued_at, _ in reader.records]
    assert all(0.0 <= t <= 30.0 for t in issue_times)
    # Every outcome actually resolved.
    assert all(outcome.response_time is not None for _, outcome in reader.records)


def test_poisson_reader_respects_rate_controller():
    testbed = _testbed()
    handler = testbed.service.create_client("c", read_only_methods={"get"})
    controller = ArrivalRateController(3.0)
    reader = PoissonReader(
        testbed.sim, handler, RngRegistry(8), QOS, rate=10.0, duration=20.0,
        rate_controller=controller,
    )
    testbed.sim.run(until=40.0)
    # Effective 30/s over 20 s = ~600.
    assert 480 <= reader.issued <= 720


def test_poisson_reader_rejects_invalid_parameters():
    testbed = _testbed()
    handler = testbed.service.create_client("c", read_only_methods={"get"})
    rng = RngRegistry(9)
    with pytest.raises(ValueError):
        PoissonReader(testbed.sim, handler, rng, QOS, rate=0.0, duration=10.0)
    with pytest.raises(ValueError):
        PoissonReader(testbed.sim, handler, rng, QOS, rate=5.0, duration=0.0)
