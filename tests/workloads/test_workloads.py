"""Tests for workload generators and the §6 scenario builder."""

import pytest

from repro.core.qos import QoSSpec
from repro.core.service import ServiceConfig, build_testbed
from repro.net.latency import FixedLatency
from repro.sim.rng import Constant
from repro.workloads.clients import AlternatingClient, ClientWorkloadConfig
from repro.workloads.generators import OpenLoopUpdater, PeriodicReader
from repro.workloads.scenarios import build_paper_scenario


def _testbed():
    return build_testbed(
        ServiceConfig(
            name="svc",
            num_primaries=2,
            num_secondaries=2,
            lazy_update_interval=0.5,
            read_service_time=Constant(0.010),
        ),
        seed=8,
        latency=FixedLatency(0.001),
    )


QOS = QoSSpec(staleness_threshold=10, deadline=1.0, min_probability=0.5)


# ---------------------------------------------------------------------------
# AlternatingClient (§6 pattern)
# ---------------------------------------------------------------------------
def test_alternating_pattern_counts():
    testbed = _testbed()
    handler = testbed.service.create_client("c", read_only_methods={"get"})
    workload = AlternatingClient(
        testbed.sim,
        handler,
        ClientWorkloadConfig(total_requests=10, request_delay=0.05, qos=QOS),
    )
    testbed.sim.run(until=60.0)
    assert workload.finished
    assert len(workload.update_outcomes) == 5
    assert len(workload.read_outcomes) == 5


def test_request_delay_is_completion_to_issue():
    """§6: the delay elapses *after completion* of the previous request."""
    testbed = _testbed()
    handler = testbed.service.create_client("c", read_only_methods={"get"})
    delay = 0.5
    workload = AlternatingClient(
        testbed.sim,
        handler,
        ClientWorkloadConfig(total_requests=4, request_delay=delay, qos=QOS),
    )
    testbed.sim.run(until=60.0)
    # 4 requests, each ~12 ms of service+network plus a 0.5 s gap after
    # each: the run must take at least 4 * 0.5 s.
    assert testbed.sim.now >= 4 * delay


def test_metrics_computed_over_reads():
    testbed = _testbed()
    handler = testbed.service.create_client("c", read_only_methods={"get"})
    workload = AlternatingClient(
        testbed.sim,
        handler,
        ClientWorkloadConfig(total_requests=8, request_delay=0.05, qos=QOS),
    )
    testbed.sim.run(until=60.0)
    assert workload.timing_failure_probability() == pytest.approx(
        workload.timing_failure_count() / 4
    )
    assert workload.average_replicas_selected() >= 1.0
    assert workload.mean_response_time() > 0.0
    assert 0.0 <= workload.deferred_fraction() <= 1.0


def test_warmup_requests_excluded():
    testbed = _testbed()
    handler = testbed.service.create_client("c", read_only_methods={"get"})
    workload = AlternatingClient(
        testbed.sim,
        handler,
        ClientWorkloadConfig(
            total_requests=10, request_delay=0.05, qos=QOS, warmup_requests=4
        ),
    )
    testbed.sim.run(until=60.0)
    assert workload.warmup_skipped == 4
    assert len(workload.read_outcomes) + len(workload.update_outcomes) == 6


def test_empty_metrics_are_zero():
    testbed = _testbed()
    handler = testbed.service.create_client("c", read_only_methods={"get"})
    workload = AlternatingClient(
        testbed.sim, handler, ClientWorkloadConfig(total_requests=0, qos=QOS)
    )
    testbed.sim.run(until=1.0)
    assert workload.timing_failure_probability() == 0.0
    assert workload.average_replicas_selected() == 0.0
    assert workload.mean_response_time() == 0.0


def test_config_validation():
    with pytest.raises(ValueError):
        ClientWorkloadConfig(total_requests=-1)
    with pytest.raises(ValueError):
        ClientWorkloadConfig(request_delay=-0.1)
    with pytest.raises(ValueError):
        ClientWorkloadConfig(warmup_requests=-1)


# ---------------------------------------------------------------------------
# Open-loop generators
# ---------------------------------------------------------------------------
def test_open_loop_updater_rate():
    testbed = _testbed()
    handler = testbed.service.create_client("u", read_only_methods={"get"})
    updater = OpenLoopUpdater(
        testbed.sim, handler, testbed.rng, rate=10.0, duration=20.0
    )
    testbed.sim.run(until=30.0)
    # Poisson with rate 10 for 20 s -> ~200 updates (tolerate 4 sigma).
    assert 140 <= updater.issued <= 260
    assert testbed.service.primaries[0].app.value == updater.issued


def test_periodic_updater_exact_count():
    testbed = _testbed()
    handler = testbed.service.create_client("u", read_only_methods={"get"})
    updater = OpenLoopUpdater(
        testbed.sim, handler, testbed.rng, rate=5.0, duration=2.0, poisson=False
    )
    testbed.sim.run(until=10.0)
    assert updater.issued == 10  # gaps of 0.2 s: issues at 0.2 .. 2.0


def test_periodic_reader_collects_outcomes():
    testbed = _testbed()
    handler = testbed.service.create_client("r", read_only_methods={"get"})
    reader = PeriodicReader(
        testbed.sim, handler, QOS, period=0.2, count=5
    )
    testbed.sim.run(until=10.0)
    assert len(reader.outcomes) == 5


def test_generator_validation():
    testbed = _testbed()
    handler = testbed.service.create_client("x", read_only_methods={"get"})
    with pytest.raises(ValueError):
        OpenLoopUpdater(testbed.sim, handler, testbed.rng, rate=0.0, duration=1.0)
    with pytest.raises(ValueError):
        OpenLoopUpdater(testbed.sim, handler, testbed.rng, rate=1.0, duration=0.0)
    with pytest.raises(ValueError):
        PeriodicReader(testbed.sim, handler, QOS, period=0.0, count=1)
    with pytest.raises(ValueError):
        PeriodicReader(testbed.sim, handler, QOS, period=1.0, count=-1)


# ---------------------------------------------------------------------------
# Paper scenario (§6)
# ---------------------------------------------------------------------------
def test_paper_scenario_topology():
    scenario = build_paper_scenario(total_requests=4)
    service = scenario.service
    assert len(service.primaries) == 4
    assert len(service.secondaries) == 6
    assert service.sequencer_name == "svc-seq"
    assert scenario.client1.config.qos.staleness_threshold == 4
    assert scenario.client1.config.qos.min_probability == 0.1
    assert scenario.client2.config.qos.staleness_threshold == 2


def test_paper_scenario_runs_to_completion():
    scenario = build_paper_scenario(total_requests=8, request_delay=0.1)
    scenario.run()
    assert scenario.client1.finished and scenario.client2.finished
    assert len(scenario.client2.read_outcomes) == 4


def test_paper_scenario_seed_reproducibility():
    def failure_counts(seed):
        scenario = build_paper_scenario(
            total_requests=20, request_delay=0.05, seed=seed
        )
        scenario.run()
        return (
            scenario.client2.timing_failure_count(),
            scenario.client2.average_replicas_selected(),
        )

    assert failure_counts(11) == failure_counts(11)
