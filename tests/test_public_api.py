"""The public API surface: everything a README user would import."""

import importlib

import pytest


def test_top_level_lazy_exports():
    import repro

    assert repro.QoSSpec is not None
    assert repro.ReplicatedService is not None
    assert repro.ServiceConfig is not None
    assert repro.OrderingGuarantee is not None
    assert repro.__version__
    with pytest.raises(AttributeError):
        repro.does_not_exist


@pytest.mark.parametrize(
    "module",
    [
        "repro.sim",
        "repro.net",
        "repro.groups",
        "repro.stats",
        "repro.core",
        "repro.core.handlers",
        "repro.baselines",
        "repro.apps",
        "repro.workloads",
        "repro.experiments",
        "repro.cli",
    ],
)
def test_packages_importable_and_documented(module):
    mod = importlib.import_module(module)
    assert mod.__doc__, f"{module} lacks a module docstring"


@pytest.mark.parametrize(
    "module",
    [
        "repro.sim",
        "repro.net",
        "repro.groups",
        "repro.stats",
        "repro.core",
        "repro.baselines",
        "repro.apps",
        "repro.workloads",
        "repro.experiments",
    ],
)
def test_dunder_all_resolves(module):
    mod = importlib.import_module(module)
    for name in getattr(mod, "__all__", []):
        assert getattr(mod, name, None) is not None, f"{module}.{name} missing"


def test_core_public_classes_have_docstrings():
    import repro.core as core

    for name in core.__all__:
        obj = getattr(core, name)
        if isinstance(obj, type):
            assert obj.__doc__, f"repro.core.{name} lacks a docstring"


def test_readme_quickstart_snippet_runs():
    """The README's quickstart must stay executable verbatim-ish."""
    from repro.core.qos import QoSSpec
    from repro.core.service import ServiceConfig, build_testbed
    from repro.sim.process import Process

    testbed = build_testbed(
        ServiceConfig(num_primaries=4, num_secondaries=6,
                      lazy_update_interval=2.0),
        seed=42,
    )
    client = testbed.service.create_client("alice", read_only_methods={"get"})
    qos = QoSSpec(staleness_threshold=2, deadline=0.150, min_probability=0.9)
    results = []

    def workload():
        yield client.call("increment")
        outcome = yield client.call("get", (), qos)
        results.append(outcome)

    Process(testbed.sim, workload())
    testbed.sim.run(until=10.0)
    assert len(results) == 1
    assert results[0].value == 1
