"""Unit tests for the trace facility."""

from repro.sim.tracing import NULL_TRACE, Trace


def test_emit_records_fields():
    trace = Trace()
    trace.emit(1.5, "cat", "actor", key="value")
    record = trace.records[0]
    assert record.time == 1.5
    assert record.category == "cat"
    assert record.actor == "actor"
    assert record.detail == {"key": "value"}


def test_disabled_trace_records_nothing():
    trace = Trace(enabled=False)
    trace.emit(1.0, "cat", "actor")
    assert trace.records == []


def test_null_trace_is_disabled():
    assert NULL_TRACE.enabled is False


def test_filter_by_category_and_actor():
    trace = Trace()
    trace.emit(1.0, "a", "x")
    trace.emit(2.0, "b", "x")
    trace.emit(3.0, "a", "y")
    assert len(list(trace.filter(category="a"))) == 2
    assert len(list(trace.filter(actor="x"))) == 2
    assert len(list(trace.filter(category="a", actor="y"))) == 1


def test_count_matches_filter():
    trace = Trace()
    for i in range(5):
        trace.emit(float(i), "tick", "clock")
    assert trace.count("tick") == 5
    assert trace.count("tock") == 0


def test_last_returns_most_recent_match():
    trace = Trace()
    trace.emit(1.0, "x", "a", n=1)
    trace.emit(2.0, "x", "a", n=2)
    assert trace.last("x").detail["n"] == 2
    assert trace.last("missing") is None


def test_capacity_drops_overflow():
    trace = Trace(capacity=2)
    for i in range(5):
        trace.emit(float(i), "x", "a")
    assert len(trace.records) == 2
    assert trace.dropped == 3


def test_subscribers_see_live_records():
    trace = Trace()
    seen = []
    trace.subscribe(seen.append)
    trace.emit(1.0, "x", "a")
    assert len(seen) == 1 and seen[0].category == "x"


def test_clear_resets():
    trace = Trace(capacity=1)
    trace.emit(1.0, "x", "a")
    trace.emit(2.0, "x", "a")
    trace.clear()
    assert trace.records == [] and trace.dropped == 0


def test_overflow_reaching_subscriber_is_not_dropped():
    """A record past capacity that a subscriber observed was not lost."""
    trace = Trace(capacity=1)
    seen = []
    trace.subscribe(seen.append)
    trace.emit(1.0, "x", "a")
    trace.emit(2.0, "x", "a")
    assert len(trace.records) == 1
    assert len(seen) == 2
    assert trace.dropped == 0


def test_to_jsonl_round_trips():
    import json

    trace = Trace()
    trace.emit(1.0, "x", "a", n=1)
    trace.emit(2.0, "y", "b")
    lines = trace.to_jsonl().splitlines()
    assert len(lines) == 2
    first, second = (json.loads(line) for line in lines)
    assert first == {"time": 1.0, "category": "x", "actor": "a", "detail": {"n": 1}}
    assert second == {"time": 2.0, "category": "y", "actor": "b"}


def test_to_jsonl_stringifies_unserializable_detail():
    import enum
    import json

    class Kind(enum.Enum):
        READ = "read"

    trace = Trace()
    trace.emit(1.0, "x", "a", kind=Kind.READ)
    parsed = json.loads(trace.to_jsonl())
    assert parsed["detail"]["kind"] == str(Kind.READ)


def test_to_jsonl_empty_trace_is_empty_string():
    assert Trace().to_jsonl() == ""
