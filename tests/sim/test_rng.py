"""Unit and property tests for RNG streams and distributions."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.rng import (
    Constant,
    Empirical,
    Exponential,
    LogNormal,
    Mixture,
    Normal,
    RngRegistry,
    Uniform,
)


# ---------------------------------------------------------------------------
# RngRegistry
# ---------------------------------------------------------------------------
def test_same_seed_same_stream_sequence():
    a = RngRegistry(7).stream("x")
    b = RngRegistry(7).stream("x")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_give_different_streams():
    reg = RngRegistry(7)
    xs = [reg.stream("x").random() for _ in range(5)]
    ys = [reg.stream("y").random() for _ in range(5)]
    assert xs != ys


def test_different_seeds_give_different_streams():
    a = RngRegistry(1).stream("x").random()
    b = RngRegistry(2).stream("x").random()
    assert a != b


def test_stream_is_cached():
    reg = RngRegistry(0)
    assert reg.stream("x") is reg.stream("x")


def test_new_stream_does_not_perturb_existing():
    reg1 = RngRegistry(3)
    s = reg1.stream("a")
    first = [s.random() for _ in range(3)]

    reg2 = RngRegistry(3)
    reg2.stream("b")  # extra consumer created first
    s2 = reg2.stream("a")
    second = [s2.random() for _ in range(3)]
    assert first == second


def test_spawn_derives_independent_registry():
    parent = RngRegistry(5)
    child1 = parent.spawn("rep1")
    child2 = parent.spawn("rep2")
    assert child1.seed != child2.seed
    assert parent.spawn("rep1").seed == child1.seed


# ---------------------------------------------------------------------------
# Distributions
# ---------------------------------------------------------------------------
@pytest.fixture
def stream():
    return RngRegistry(99).stream("dist")


def test_constant_always_same(stream):
    d = Constant(0.5)
    assert all(d.sample(stream) == 0.5 for _ in range(10))
    assert d.mean() == 0.5


def test_constant_rejects_negative():
    with pytest.raises(ValueError):
        Constant(-1.0)


def test_uniform_within_bounds(stream):
    d = Uniform(0.2, 0.8)
    samples = [d.sample(stream) for _ in range(200)]
    assert all(0.2 <= s <= 0.8 for s in samples)
    assert abs(sum(samples) / len(samples) - d.mean()) < 0.05


def test_uniform_rejects_bad_bounds():
    with pytest.raises(ValueError):
        Uniform(0.5, 0.1)
    with pytest.raises(ValueError):
        Uniform(-0.1, 0.5)


def test_normal_respects_floor(stream):
    d = Normal(0.0, 1.0, floor=0.01)
    assert all(d.sample(stream) >= 0.01 for _ in range(500))


def test_normal_sample_mean_near_mu(stream):
    d = Normal(0.100, 0.010)
    samples = [d.sample(stream) for _ in range(2000)]
    assert abs(sum(samples) / len(samples) - 0.100) < 0.002


def test_normal_rejects_negative_sigma():
    with pytest.raises(ValueError):
        Normal(0.1, -0.1)


def test_exponential_mean(stream):
    d = Exponential(mean=0.05)
    samples = [d.sample(stream) for _ in range(5000)]
    assert abs(sum(samples) / len(samples) - 0.05) < 0.005
    assert d.mean() == 0.05


def test_exponential_offset_shifts_support(stream):
    d = Exponential(mean=0.05, offset=0.1)
    assert all(d.sample(stream) >= 0.1 for _ in range(100))
    assert d.mean() == pytest.approx(0.15)


def test_exponential_rejects_nonpositive_mean():
    with pytest.raises(ValueError):
        Exponential(0.0)


def test_lognormal_mean(stream):
    d = LogNormal(math.log(0.1), 0.25)
    expected = math.exp(math.log(0.1) + 0.25**2 / 2)
    samples = [d.sample(stream) for _ in range(5000)]
    assert abs(sum(samples) / len(samples) - expected) < 0.01
    assert d.mean() == pytest.approx(expected)


def test_empirical_samples_from_values(stream):
    d = Empirical([0.1, 0.2, 0.3])
    assert all(d.sample(stream) in (0.1, 0.2, 0.3) for _ in range(50))
    assert d.mean() == pytest.approx(0.2)


def test_empirical_rejects_empty_and_negative():
    with pytest.raises(ValueError):
        Empirical([])
    with pytest.raises(ValueError):
        Empirical([0.1, -0.2])


def test_mixture_mean_is_weighted(stream):
    d = Mixture([Constant(0.1), Constant(0.5)], weights=[3.0, 1.0])
    assert d.mean() == pytest.approx(0.2)
    samples = [d.sample(stream) for _ in range(4000)]
    assert abs(sum(samples) / len(samples) - 0.2) < 0.01


def test_mixture_validation():
    with pytest.raises(ValueError):
        Mixture([])
    with pytest.raises(ValueError):
        Mixture([Constant(1.0)], weights=[1.0, 2.0])
    with pytest.raises(ValueError):
        Mixture([Constant(1.0)], weights=[0.0])


# ---------------------------------------------------------------------------
# Property tests
# ---------------------------------------------------------------------------
@given(
    seed=st.integers(min_value=0, max_value=2**31),
    name=st.text(min_size=1, max_size=20),
)
@settings(max_examples=50)
def test_streams_are_reproducible_property(seed, name):
    a = RngRegistry(seed).stream(name).random()
    b = RngRegistry(seed).stream(name).random()
    assert a == b


@given(
    mu=st.floats(min_value=0.0, max_value=10.0),
    sigma=st.floats(min_value=0.0, max_value=5.0),
    floor=st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=50)
def test_normal_samples_never_below_floor(mu, sigma, floor):
    stream = RngRegistry(0).stream("prop")
    d = Normal(mu, sigma, floor=floor)
    assert all(d.sample(stream) >= floor for _ in range(20))


@given(low=st.floats(min_value=0, max_value=5), span=st.floats(min_value=0, max_value=5))
@settings(max_examples=50)
def test_uniform_sample_in_range_property(low, span):
    stream = RngRegistry(1).stream("prop")
    d = Uniform(low, low + span)
    for _ in range(20):
        s = d.sample(stream)
        assert low <= s <= low + span
