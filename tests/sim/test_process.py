"""Unit tests for generator-based processes."""

import pytest

from repro.sim.kernel import SimulationError, Simulator
from repro.sim.process import Interrupt, Process, Signal, Timeout, all_of


def test_timeout_advances_virtual_time(sim):
    seen = []

    def proc():
        yield Timeout(1.5)
        seen.append(sim.now)

    Process(sim, proc())
    sim.run()
    assert seen == [1.5]


def test_sequential_timeouts_accumulate(sim):
    seen = []

    def proc():
        yield Timeout(1.0)
        seen.append(sim.now)
        yield Timeout(2.0)
        seen.append(sim.now)

    Process(sim, proc())
    sim.run()
    assert seen == [1.0, 3.0]


def test_timeout_value_is_delivered(sim):
    got = []

    def proc():
        got.append((yield Timeout(1.0, value="payload")))

    Process(sim, proc())
    sim.run()
    assert got == ["payload"]


def test_negative_timeout_rejected():
    with pytest.raises(SimulationError):
        Timeout(-1.0)


def test_process_result_captured(sim):
    def proc():
        yield Timeout(1.0)
        return 42

    p = Process(sim, proc())
    sim.run()
    assert p.result == 42
    assert not p.alive


def test_signal_wakes_all_waiters(sim):
    signal = Signal("test")
    woken = []

    def waiter(tag):
        value = yield signal
        woken.append((tag, value, sim.now))

    Process(sim, waiter("a"))
    Process(sim, waiter("b"))
    sim.schedule(2.0, signal.fire, "go")
    sim.run()
    assert sorted(woken) == [("a", "go", 2.0), ("b", "go", 2.0)]


def test_signal_fire_returns_waiter_count(sim):
    signal = Signal()

    def waiter():
        yield signal

    Process(sim, waiter())
    Process(sim, waiter())
    counts = []
    sim.schedule(1.0, lambda: counts.append(signal.fire()))
    sim.run()
    assert counts == [2]


def test_signal_refire_wakes_only_new_waiters(sim):
    signal = Signal()
    log = []

    def waiter(tag, delay):
        yield Timeout(delay)
        value = yield signal
        log.append((tag, value))

    Process(sim, waiter("early", 0.0))
    Process(sim, waiter("late", 3.0))
    sim.schedule(1.0, signal.fire, "first")
    sim.schedule(5.0, signal.fire, "second")
    sim.run()
    assert ("early", "first") in log
    assert ("late", "second") in log


def test_join_process_receives_result(sim):
    def child():
        yield Timeout(2.0)
        return "done"

    results = []

    def parent():
        result = yield Process(sim, child(), name="child")
        results.append((result, sim.now))

    Process(sim, parent())
    sim.run()
    assert results == [("done", 2.0)]


def test_join_already_finished_process(sim):
    def child():
        return "instant"
        yield  # pragma: no cover

    child_proc = Process(sim, child())
    results = []

    def parent():
        yield Timeout(5.0)
        result = yield child_proc
        results.append(result)

    Process(sim, parent())
    sim.run()
    assert results == ["instant"]


def test_interrupt_raises_inside_process(sim):
    log = []

    def proc():
        try:
            yield Timeout(10.0)
        except Interrupt as interrupt:
            log.append((interrupt.cause, sim.now))

    p = Process(sim, proc())
    sim.schedule(1.0, p.interrupt, "cancelled")
    sim.run()
    assert log == [("cancelled", 1.0)]
    assert not p.alive


def test_interrupt_cancels_pending_timeout(sim):
    log = []

    def proc():
        try:
            yield Timeout(10.0)
            log.append("timeout-completed")
        except Interrupt:
            yield Timeout(1.0)
            log.append(f"resumed-{sim.now}")

    p = Process(sim, proc())
    sim.schedule(2.0, p.interrupt)
    sim.run()
    assert log == ["resumed-3.0"]


def test_uncaught_interrupt_terminates_quietly(sim):
    def proc():
        yield Timeout(10.0)

    p = Process(sim, proc())
    sim.schedule(1.0, p.interrupt)
    sim.run()
    assert not p.alive
    assert p.result is None


def test_interrupt_dead_process_is_noop(sim):
    def proc():
        yield Timeout(1.0)

    p = Process(sim, proc())
    sim.run()
    p.interrupt()  # must not raise
    assert not p.alive


def test_unsupported_yield_raises(sim):
    def proc():
        yield "nonsense"

    Process(sim, proc())
    with pytest.raises(SimulationError):
        sim.run()


def test_done_signal_fires_with_result(sim, recorder):
    def proc():
        yield Timeout(1.0)
        return 99

    p = Process(sim, proc())
    waiter_log = []

    def waiter():
        value = yield p.done_signal
        waiter_log.append(value)

    Process(sim, waiter())
    sim.run()
    assert waiter_log == [99]


def test_all_of_waits_for_every_process(sim):
    def child(delay, value):
        yield Timeout(delay)
        return value

    children = [Process(sim, child(d, d)) for d in (3.0, 1.0, 2.0)]
    gathered = all_of(sim, children)
    sim.run()
    assert gathered.result == [3.0, 1.0, 2.0]
    assert sim.now == 3.0


def test_process_names_unique_by_default(sim):
    def proc():
        yield Timeout(0.0)

    a = Process(sim, proc())
    b = Process(sim, proc())
    assert a.name != b.name
