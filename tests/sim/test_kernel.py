"""Unit tests for the event kernel."""

import math

import pytest

from repro.sim.kernel import SimulationError, Simulator


def test_initial_clock_is_zero():
    assert Simulator().now == 0.0


def test_custom_start_time():
    assert Simulator(start_time=5.0).now == 5.0


def test_events_fire_in_time_order(sim, recorder):
    sim.schedule(3.0, recorder, "c")
    sim.schedule(1.0, recorder, "a")
    sim.schedule(2.0, recorder, "b")
    sim.run()
    assert recorder.calls == ["a", "b", "c"]


def test_ties_fire_in_scheduling_order(sim, recorder):
    for label in "abcde":
        sim.schedule(1.0, recorder, label)
    sim.run()
    assert recorder.calls == list("abcde")


def test_priority_breaks_ties_before_seq(sim, recorder):
    sim.schedule(1.0, recorder, "late", priority=1)
    sim.schedule(1.0, recorder, "early", priority=0)
    sim.run()
    assert recorder.calls == ["early", "late"]


def test_clock_advances_to_event_time(sim, recorder):
    sim.schedule(2.5, lambda: recorder(sim.now))
    sim.run()
    assert recorder.calls == [2.5]


def test_run_until_bound_excludes_later_events(sim, recorder):
    sim.schedule(1.0, recorder, "in")
    sim.schedule(5.0, recorder, "out")
    sim.run(until=2.0)
    assert recorder.calls == ["in"]
    assert sim.now == 2.0


def test_run_until_advances_clock_even_without_events(sim):
    sim.run(until=7.0)
    assert sim.now == 7.0


def test_bounded_runs_compose(sim, recorder):
    sim.schedule(1.0, recorder, "a")
    sim.schedule(3.0, recorder, "b")
    sim.run(until=2.0)
    sim.run(until=4.0)
    assert recorder.calls == ["a", "b"]
    assert sim.now == 4.0


def test_negative_delay_rejected(sim):
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_scheduling_in_the_past_rejected(sim, recorder):
    sim.schedule(5.0, recorder, "x")
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(1.0, recorder, "y")


def test_nan_time_rejected(sim):
    with pytest.raises(SimulationError):
        sim.schedule_at(math.nan, lambda: None)


def test_cancelled_event_does_not_fire(sim, recorder):
    event = sim.schedule(1.0, recorder, "x")
    event.cancel()
    sim.run()
    assert recorder.calls == []


def test_cancel_is_idempotent(sim, recorder):
    event = sim.schedule(1.0, recorder, "x")
    event.cancel()
    event.cancel()
    sim.run()
    assert recorder.calls == []


def test_cancel_from_within_callback(sim, recorder):
    later = sim.schedule(2.0, recorder, "later")
    sim.schedule(1.0, later.cancel)
    sim.run()
    assert recorder.calls == []


def test_events_scheduled_during_run_fire(sim, recorder):
    def outer():
        recorder("outer")
        sim.schedule(1.0, recorder, "inner")

    sim.schedule(1.0, outer)
    sim.run()
    assert recorder.calls == ["outer", "inner"]
    assert sim.now == 2.0


def test_stop_halts_run(sim, recorder):
    sim.schedule(1.0, recorder, "a")
    sim.schedule(2.0, sim.stop)
    sim.schedule(3.0, recorder, "b")
    stopped_at = sim.run()
    assert recorder.calls == ["a"]
    assert stopped_at == 2.0
    # A subsequent run resumes from where it stopped.
    sim.run()
    assert recorder.calls == ["a", "b"]


def test_step_processes_single_event(sim, recorder):
    sim.schedule(1.0, recorder, "a")
    sim.schedule(2.0, recorder, "b")
    assert sim.step() is True
    assert recorder.calls == ["a"]
    assert sim.step() is True
    assert sim.step() is False


def test_step_skips_cancelled_events(sim, recorder):
    event = sim.schedule(1.0, recorder, "a")
    sim.schedule(2.0, recorder, "b")
    event.cancel()
    assert sim.step() is True
    assert recorder.calls == ["b"]


def test_events_processed_counter(sim, recorder):
    for i in range(5):
        sim.schedule(float(i + 1), recorder, i)
    sim.run()
    assert sim.events_processed == 5


def test_pending_counts_uncancelled(sim):
    a = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    a.cancel()
    assert sim.pending() == 1


def test_reentrant_run_rejected(sim):
    def nested():
        sim.run()

    sim.schedule(1.0, nested)
    with pytest.raises(SimulationError):
        sim.run()


def test_callback_args_passed_through(sim, recorder):
    sim.schedule(1.0, recorder, 1, 2, 3)
    sim.run()
    assert recorder.calls == [(1, 2, 3)]


def test_zero_delay_event_fires_at_current_time(sim, recorder):
    sim.schedule(0.0, lambda: recorder(sim.now))
    sim.run()
    assert recorder.calls == [0.0]


# ---------------------------------------------------------------------------
# Tombstone compaction and event recycling
# ---------------------------------------------------------------------------
def test_mass_cancel_does_not_grow_heap_unboundedly(sim):
    """Timer-heavy regression: cancelled events must not linger in the heap
    until popped (the pre-compaction kernel kept every tombstone)."""
    total = 20_000
    for i in range(total):
        event = sim.schedule(1.0 + i * 1e-6, lambda: None)
        event.cancel()
    assert sim.compactions > 0
    assert sim.heap_size() < total // 4
    assert sim.pending() == 0
    sim.run()
    assert sim.events_processed == 0


def test_mass_cancel_interleaved_with_live_timers(sim, recorder):
    """Cancel 99% of timers; the survivors still fire in order."""
    kept = []
    for i in range(5_000):
        event = sim.schedule(1.0 + i * 1e-4, recorder, i)
        if i % 100 != 0:
            event.cancel()
        else:
            kept.append(i)
    assert sim.heap_size() < 5_000
    sim.run()
    assert recorder.calls == kept
    assert sim.tombstones == 0


def test_pending_accounts_for_tombstones_after_compaction(sim):
    events = [sim.schedule(1.0, lambda: None) for _ in range(200)]
    for event in events[:150]:
        event.cancel()
    assert sim.pending() == 50


def test_compaction_preserves_ordering_and_determinism():
    """Two identical schedules — one with enough cancels to compact —
    fire the surviving callbacks at identical (time, order) points."""
    from repro.sim.kernel import Simulator

    def trace(mass_cancel: bool) -> list[tuple[float, int]]:
        sim = Simulator()
        calls: list[tuple[float, int]] = []
        live = [
            sim.schedule(0.5 + i * 0.01, lambda i=i: calls.append((sim.now, i)))
            for i in range(50)
        ]
        if mass_cancel:
            doomed = [sim.schedule(2.0, lambda: None) for _ in range(1_000)]
            for event in doomed:
                event.cancel()
        del live
        sim.run()
        return calls

    assert trace(mass_cancel=True) == trace(mass_cancel=False)


def test_recycled_event_not_cancellable_through_stale_reference(sim, recorder):
    """A handle kept by a client must never alias a recycled event: firing
    the original and cancelling it afterwards is a safe no-op."""
    held = sim.schedule(1.0, recorder, "held")
    sim.schedule(2.0, recorder, "later")
    sim.run(until=1.5)
    held.cancel()  # fired already; must not kill any newly scheduled event
    follow = sim.schedule(1.0, recorder, "follow")
    assert follow is not held or follow.cancelled is False
    sim.run()
    assert recorder.calls == ["held", "later", "follow"]


def test_free_list_reuses_unreferenced_events(sim):
    """Events nobody holds are recycled instead of reallocated."""
    for i in range(100):
        sim.schedule(float(i + 1), lambda: None)
    sim.run()
    first = sim.schedule(1000.0, lambda: None)
    assert isinstance(first.seq, int)  # reinitialized, valid event
    sim.run()
    assert sim.events_processed == 101


# ---------------------------------------------------------------------------
# Bulk scheduling (schedule_batch)
# ---------------------------------------------------------------------------
def test_schedule_batch_fires_in_time_order(sim, recorder):
    sim.schedule_batch([3.0, 1.0, 2.0], recorder, args_list=[("c",), ("a",), ("b",)])
    sim.run()
    assert recorder.calls == ["a", "b", "c"]


def test_schedule_batch_matches_loop_of_schedule_at():
    """The bulk path is observationally identical to m schedule_at calls."""
    times = [5.0, 1.0, 1.0, 3.0, 2.0, 1.0, 4.0]

    def run(use_batch):
        sim = Simulator()
        order = []
        if use_batch:
            sim.schedule_batch(
                times, order.append, args_list=[(i,) for i in range(len(times))]
            )
        else:
            for i, t in enumerate(times):
                sim.schedule_at(t, order.append, i)
        sim.run()
        return order

    assert run(True) == run(False)


def test_schedule_batch_tie_break_is_input_order(sim, recorder):
    sim.schedule_batch([1.0] * 4, recorder, args_list=[(l,) for l in "abcd"])
    sim.run()
    assert recorder.calls == list("abcd")


def test_schedule_batch_interleaves_with_existing_events(sim, recorder):
    # A heap already larger than 8x the batch exercises the push path;
    # then a batch larger than heap/8 exercises extend+heapify.
    for i in range(100):
        sim.schedule_at(10.0 + i, recorder, f"old{i}")
    sim.schedule_batch([0.5, 11.5], recorder, args_list=[("b0",), ("b1",)])
    sim.schedule_batch(
        [float(i) + 0.25 for i in range(1, 31)],
        recorder,
        args_list=[(f"big{i}",) for i in range(30)],
    )
    sim.run()
    assert recorder.calls[0] == "b0"
    assert recorder.calls[1] == "big0"
    assert len(recorder.calls) == 132


def test_schedule_batch_empty_is_noop(sim):
    assert sim.schedule_batch([], lambda: None) == []
    sim.run()
    assert sim.events_processed == 0


def test_schedule_batch_shared_args(sim, recorder):
    """Without args_list every event fires the callback with no args."""
    hits = []
    sim.schedule_batch([1.0, 2.0], lambda: hits.append(sim.now))
    sim.run()
    assert hits == [1.0, 2.0]


def test_schedule_batch_validates_before_scheduling(sim, recorder):
    with pytest.raises(SimulationError):
        sim.schedule_batch([1.0, float("nan")], recorder, args_list=[("a",), ("b",)])
    with pytest.raises(SimulationError):
        sim.schedule_batch([-1.0], recorder, args_list=[("a",)])
    with pytest.raises(SimulationError):
        sim.schedule_batch([1.0], recorder, args_list=[("a",), ("b",)])
    # Nothing leaked into the heap from the rejected batches.
    sim.run()
    assert recorder.calls == []


def test_schedule_batch_events_cancellable(sim, recorder):
    events = sim.schedule_batch([1.0, 2.0, 3.0], recorder, args_list=[("a",), ("b",), ("c",)])
    events[1].cancel()
    sim.run()
    assert recorder.calls == ["a", "c"]


def test_schedule_batch_reuses_free_list(sim):
    for i in range(50):
        sim.schedule(float(i + 1), lambda: None)
    sim.run()
    events = sim.schedule_batch([100.0 + i for i in range(50)], lambda: None)
    assert len(events) == 50
    sim.run()
    assert sim.events_processed == 100
