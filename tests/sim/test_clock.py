"""Unit tests for logical clocks and version stamps."""

import pytest

from repro.sim.clock import LamportClock, Version, ZERO_VERSION


def test_clock_starts_at_zero():
    assert LamportClock().time == 0


def test_custom_start():
    assert LamportClock(5).time == 5


def test_negative_start_rejected():
    with pytest.raises(ValueError):
        LamportClock(-1)


def test_tick_increments():
    clock = LamportClock()
    assert clock.tick() == 1
    assert clock.tick() == 2


def test_witness_adopts_max_plus_one():
    clock = LamportClock(3)
    assert clock.witness(10) == 11
    assert clock.witness(2) == 12  # local already ahead


def test_witness_rejects_negative():
    with pytest.raises(ValueError):
        LamportClock().witness(-1)


def test_lamport_happens_before_property():
    """If A sends to B, B's timestamp exceeds A's send timestamp."""
    a, b = LamportClock(), LamportClock()
    send_ts = a.tick()
    recv_ts = b.witness(send_ts)
    assert recv_ts > send_ts


def test_versions_order_by_sequence():
    assert Version(1) < Version(2)
    assert Version(2, "a") < Version(2, "b")  # author is tie-break only


def test_version_next():
    v = Version(4, "x").next("y")
    assert v.sequence == 5
    assert v.author == "y"


def test_negative_version_rejected():
    with pytest.raises(ValueError):
        Version(-1)


def test_zero_version_is_least():
    assert ZERO_VERSION <= Version(0)
    assert ZERO_VERSION < Version(1)


def test_versions_hashable_and_frozen():
    v = Version(1, "a")
    assert v in {Version(1, "a")}
    with pytest.raises(AttributeError):
        v.sequence = 2  # type: ignore[misc]
