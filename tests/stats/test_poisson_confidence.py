"""Unit tests for the Poisson CDF and binomial confidence intervals,
cross-checked against scipy."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats as sps

from repro.stats.confidence import (
    binomial_confidence_interval,
    intervals_overlap,
    proportions_agree,
    wilson_interval,
)
from repro.stats.poisson import poisson_cdf, poisson_pmf, poisson_quantile


# ---------------------------------------------------------------------------
# Poisson
# ---------------------------------------------------------------------------
def test_pmf_matches_scipy():
    for mean in (0.1, 1.0, 5.0, 20.0):
        for n in range(0, 30, 3):
            assert poisson_pmf(n, mean) == pytest.approx(
                sps.poisson.pmf(n, mean), abs=1e-12
            )


def test_cdf_matches_scipy():
    for mean in (0.01, 0.5, 2.0, 10.0):
        for a in range(0, 25, 2):
            assert poisson_cdf(a, mean) == pytest.approx(
                sps.poisson.cdf(a, mean), abs=1e-10
            )


def test_cdf_zero_mean_is_one():
    assert poisson_cdf(0, 0.0) == 1.0
    assert poisson_cdf(5, 0.0) == 1.0


def test_cdf_negative_threshold_is_zero():
    assert poisson_cdf(-1, 2.0) == 0.0


def test_pmf_zero_mean():
    assert poisson_pmf(0, 0.0) == 1.0
    assert poisson_pmf(3, 0.0) == 0.0


def test_validation():
    with pytest.raises(ValueError):
        poisson_pmf(-1, 1.0)
    with pytest.raises(ValueError):
        poisson_pmf(1, -1.0)
    with pytest.raises(ValueError):
        poisson_cdf(1, -0.5)


def test_quantile_inverts_cdf():
    for mean in (0.5, 3.0, 12.0):
        for q in (0.1, 0.5, 0.9, 0.99):
            a = poisson_quantile(q, mean)
            assert poisson_cdf(a, mean) >= q
            if a > 0:
                assert poisson_cdf(a - 1, mean) < q


@given(
    a=st.integers(min_value=0, max_value=50),
    mean=st.floats(min_value=0.0, max_value=50.0),
)
@settings(max_examples=100)
def test_cdf_in_unit_interval_and_monotone(a, mean):
    value = poisson_cdf(a, mean)
    assert 0.0 <= value <= 1.0
    assert poisson_cdf(a + 1, mean) >= value - 1e-12


# ---------------------------------------------------------------------------
# Binomial confidence intervals (§6: 95 % level)
# ---------------------------------------------------------------------------
def test_wald_interval_contains_point_estimate():
    low, high = binomial_confidence_interval(20, 100)
    assert low <= 0.2 <= high


def test_wald_interval_matches_formula():
    low, high = binomial_confidence_interval(50, 100, 0.95)
    half = 1.959963984540054 * math.sqrt(0.25 / 100)
    assert low == pytest.approx(0.5 - half)
    assert high == pytest.approx(0.5 + half)


def test_interval_clamped_to_unit():
    low, high = binomial_confidence_interval(0, 10)
    assert low == 0.0
    low, high = binomial_confidence_interval(10, 10)
    assert high == 1.0


def test_wilson_matches_scipy_binomtest():
    result = sps.binomtest(13, 100).proportion_ci(0.95, method="wilson")
    low, high = wilson_interval(13, 100, 0.95)
    assert low == pytest.approx(result.low, abs=1e-9)
    assert high == pytest.approx(result.high, abs=1e-9)


def test_wilson_never_degenerate_at_extremes():
    low, high = wilson_interval(0, 50)
    assert high > 0.0  # unlike Wald, which collapses to [0, 0]


def test_interval_narrows_with_more_trials():
    narrow = binomial_confidence_interval(100, 1000)
    wide = binomial_confidence_interval(10, 100)
    assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])


def test_validation_errors():
    with pytest.raises(ValueError):
        binomial_confidence_interval(1, 0)
    with pytest.raises(ValueError):
        binomial_confidence_interval(5, 4)
    with pytest.raises(ValueError):
        binomial_confidence_interval(1, 10, level=0.77)
    with pytest.raises(ValueError):
        wilson_interval(-1, 10)


@given(
    trials=st.integers(min_value=1, max_value=10000),
    frac=st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=80)
def test_intervals_well_formed_property(trials, frac):
    successes = int(round(frac * trials))
    for fn in (binomial_confidence_interval, wilson_interval):
        low, high = fn(successes, trials)
        assert 0.0 <= low <= high <= 1.0
        assert low <= successes / trials + 1e-12
        assert high >= successes / trials - 1e-12


# ---------------------------------------------------------------------------
# Interval-overlap agreement (the aggregate-tier validation criterion)
# ---------------------------------------------------------------------------
def test_intervals_overlap_cases():
    assert intervals_overlap((0.1, 0.3), (0.2, 0.5))
    assert intervals_overlap((0.2, 0.5), (0.1, 0.3))  # symmetric
    assert intervals_overlap((0.1, 0.2), (0.2, 0.4))  # touching endpoints
    assert intervals_overlap((0.1, 0.5), (0.2, 0.3))  # containment
    assert not intervals_overlap((0.1, 0.2), (0.3, 0.4))
    assert not intervals_overlap((0.3, 0.4), (0.1, 0.2))


def test_proportions_agree_identical_and_disjoint():
    # Same underlying proportion with decent samples: agree.
    assert proportions_agree(10, 100, 12, 100)
    # Wildly different proportions with large samples: disagree.
    assert not proportions_agree(5, 1000, 500, 1000)


def test_proportions_agree_zero_trials_is_vacuous():
    assert proportions_agree(0, 0, 50, 100)
    assert proportions_agree(50, 100, 0, 0)
    assert proportions_agree(0, 0, 0, 0)


def test_proportions_agree_small_samples_are_forgiving():
    # Wilson intervals at n=10 are wide: 0/10 vs 3/10 still overlaps.
    assert proportions_agree(0, 10, 3, 10)


def test_proportions_agree_level_tightens_intervals():
    # A borderline pair can agree at 99% but not at a looser 80% level.
    args = (12, 200, 30, 200)
    assert proportions_agree(*args, level=0.99)
    assert not proportions_agree(*args, level=0.80)
