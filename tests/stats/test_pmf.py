"""Unit and property tests for discrete pmfs and convolution."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.pmf import DiscretePmf, convolve_all

Q = 1e-3


# ---------------------------------------------------------------------------
# Construction
# ---------------------------------------------------------------------------
def test_from_samples_relative_frequency():
    pmf = DiscretePmf.from_samples([0.010, 0.010, 0.020, 0.030], Q)
    assert pmf.cdf(0.010) == pytest.approx(0.5)
    assert pmf.cdf(0.020) == pytest.approx(0.75)
    assert pmf.cdf(0.030) == pytest.approx(1.0)


def test_from_samples_quantizes_to_grid():
    pmf = DiscretePmf.from_samples([0.0104, 0.0096], Q)  # both round to 10 ms
    assert pmf.mass.size == 1
    assert pmf.mean() == pytest.approx(0.010)


def test_from_samples_clamps_negative():
    pmf = DiscretePmf.from_samples([-0.5, 0.002], Q)
    assert pmf.support_min == 0.0


def test_from_samples_empty_rejected():
    with pytest.raises(ValueError):
        DiscretePmf.from_samples([], Q)


def test_from_samples_accepts_any_iterable():
    pmf = DiscretePmf.from_samples((s for s in [0.010, 0.020]), Q)
    assert pmf.mean() == pytest.approx(0.015)


def test_from_histogram_matches_from_samples():
    samples = [0.010, 0.010, 0.020, 0.030]
    fresh = DiscretePmf.from_samples(samples, Q)
    counts = np.zeros(21)
    counts[0], counts[10], counts[20] = 2.0, 1.0, 1.0  # bins 10, 20, 30
    binned = DiscretePmf.from_histogram(Q, 10, counts)
    assert binned.offset == fresh.offset
    np.testing.assert_array_equal(binned.mass, fresh.mass)


def test_from_histogram_validation():
    with pytest.raises(ValueError):
        DiscretePmf.from_histogram(Q, 0, [])
    with pytest.raises(ValueError):
        DiscretePmf.from_histogram(Q, -1, [1.0])


def test_degenerate_point_mass():
    pmf = DiscretePmf.degenerate(0.005, Q)
    assert pmf.mean() == pytest.approx(0.005)
    assert pmf.cdf(0.004) == 0.0
    assert pmf.cdf(0.005) == 1.0


def test_validation():
    with pytest.raises(ValueError):
        DiscretePmf(0.0, 0, np.array([1.0]))
    with pytest.raises(ValueError):
        DiscretePmf(Q, -1, np.array([1.0]))
    with pytest.raises(ValueError):
        DiscretePmf(Q, 0, np.array([]))
    with pytest.raises(ValueError):
        DiscretePmf(Q, 0, np.array([-0.5, 1.0]))
    with pytest.raises(ValueError):
        DiscretePmf(Q, 0, np.array([0.0]))


def test_mass_is_normalized():
    pmf = DiscretePmf(Q, 0, np.array([2.0, 2.0]))
    assert pmf.mass.sum() == pytest.approx(1.0)


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------
def test_cdf_bounds():
    pmf = DiscretePmf.from_samples([0.010, 0.020], Q)
    assert pmf.cdf(0.0) == 0.0
    assert pmf.cdf(1.0) == 1.0


def test_mean_and_variance():
    pmf = DiscretePmf.from_samples([0.010, 0.030], Q)
    assert pmf.mean() == pytest.approx(0.020)
    assert pmf.variance() == pytest.approx(0.0001, rel=1e-6)


def test_quantile():
    pmf = DiscretePmf.from_samples([0.010, 0.020, 0.030, 0.040], Q)
    assert pmf.quantile(0.25) == pytest.approx(0.010)
    assert pmf.quantile(0.5) == pytest.approx(0.020)
    assert pmf.quantile(1.0) == pytest.approx(0.040)
    with pytest.raises(ValueError):
        pmf.quantile(1.5)


def test_cdf_many_matches_scalar_cdf():
    pmf = DiscretePmf.from_samples([0.010, 0.010, 0.020, 0.030], Q)
    xs = [-0.5, 0.0, 0.0099, 0.010, 0.015, 0.020, 0.030, 5.0]
    batched = pmf.cdf_many(xs)
    assert batched.tolist() == [pmf.cdf(x) for x in xs]


def test_cdf_many_exact_bounds():
    pmf = DiscretePmf.from_samples([0.010, 0.020], Q)
    values = pmf.cdf_many([0.0, 100.0])
    assert values[0] == 0.0
    assert values[1] == 1.0  # exactly, like the scalar path


def test_cdf_many_accepts_numpy_input():
    pmf = DiscretePmf.degenerate(0.005, Q)
    out = pmf.cdf_many(np.array([0.004, 0.005]))
    assert out.tolist() == [0.0, 1.0]


def test_repeated_cdf_calls_use_cached_cumulative():
    pmf = DiscretePmf.from_samples([0.010, 0.020, 0.030], Q)
    first = pmf.cdf(0.020)
    assert pmf._cumulative() is pmf._cumulative()  # materialized once
    assert pmf.cdf(0.020) == first


# ---------------------------------------------------------------------------
# Algebra
# ---------------------------------------------------------------------------
def test_convolution_of_point_masses():
    a = DiscretePmf.degenerate(0.010, Q)
    b = DiscretePmf.degenerate(0.005, Q)
    c = a.convolve(b)
    assert c.mean() == pytest.approx(0.015)
    assert c.cdf(0.0149) == 0.0
    assert c.cdf(0.015) == 1.0


def test_convolution_mean_additive():
    a = DiscretePmf.from_samples([0.010, 0.020, 0.020], Q)
    b = DiscretePmf.from_samples([0.005, 0.015], Q)
    assert a.convolve(b).mean() == pytest.approx(a.mean() + b.mean())


def test_convolution_commutative():
    a = DiscretePmf.from_samples([0.010, 0.030], Q)
    b = DiscretePmf.from_samples([0.005, 0.015, 0.025], Q)
    ab, ba = a.convolve(b), b.convolve(a)
    assert ab.offset == ba.offset
    np.testing.assert_allclose(ab.mass, ba.mass)


def test_convolution_quantum_mismatch_rejected():
    a = DiscretePmf.degenerate(0.01, 1e-3)
    b = DiscretePmf.degenerate(0.01, 1e-4)
    with pytest.raises(ValueError):
        a.convolve(b)


def test_shift_moves_support():
    pmf = DiscretePmf.from_samples([0.010], Q).shift(0.007)
    assert pmf.mean() == pytest.approx(0.017)


def test_shift_negative_beyond_support_rejected():
    with pytest.raises(ValueError):
        DiscretePmf.degenerate(0.001, Q).shift(-0.005)


def test_mixture_weights():
    a = DiscretePmf.degenerate(0.010, Q)
    b = DiscretePmf.degenerate(0.030, Q)
    mix = a.mix(b, 0.25)
    assert mix.cdf(0.010) == pytest.approx(0.25)
    assert mix.cdf(0.030) == pytest.approx(1.0)
    assert mix.mean() == pytest.approx(0.25 * 0.010 + 0.75 * 0.030)


def test_mixture_validation():
    a = DiscretePmf.degenerate(0.010, Q)
    with pytest.raises(ValueError):
        a.mix(a, 1.5)


def test_convolve_all():
    pmfs = [DiscretePmf.degenerate(0.001 * i, Q) for i in (1, 2, 3)]
    assert convolve_all(pmfs).mean() == pytest.approx(0.006)
    with pytest.raises(ValueError):
        convolve_all([])


# ---------------------------------------------------------------------------
# Property tests
# ---------------------------------------------------------------------------
samples_strategy = st.lists(
    st.floats(min_value=0.0, max_value=2.0), min_size=1, max_size=40
)


@given(samples=samples_strategy)
@settings(max_examples=80)
def test_mass_always_sums_to_one(samples):
    pmf = DiscretePmf.from_samples(samples, Q)
    assert pmf.mass.sum() == pytest.approx(1.0)


@given(samples=samples_strategy)
@settings(max_examples=80)
def test_cdf_is_monotone(samples):
    pmf = DiscretePmf.from_samples(samples, Q)
    xs = np.linspace(0, 2.5, 50)
    values = [pmf.cdf(x) for x in xs]
    assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))
    assert values[-1] == pytest.approx(1.0)


@given(a=samples_strategy, b=samples_strategy)
@settings(max_examples=60)
def test_convolution_mean_additive_property(a, b):
    pa = DiscretePmf.from_samples(a, Q)
    pb = DiscretePmf.from_samples(b, Q)
    conv = pa.convolve(pb)
    assert conv.mean() == pytest.approx(pa.mean() + pb.mean(), abs=1e-9)
    assert conv.mass.sum() == pytest.approx(1.0)


@given(a=samples_strategy, b=samples_strategy)
@settings(max_examples=60)
def test_convolution_cdf_dominated_by_components(a, b):
    """P(X+Y <= d) <= min(P(X <= d), P(Y <= d)) for non-negative X, Y."""
    pa = DiscretePmf.from_samples(a, Q)
    pb = DiscretePmf.from_samples(b, Q)
    conv = pa.convolve(pb)
    for d in (0.05, 0.5, 1.5):
        assert conv.cdf(d) <= min(pa.cdf(d), pb.cdf(d)) + 1e-9


@given(samples=samples_strategy, q=st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=60)
def test_quantile_inverts_cdf(samples, q):
    pmf = DiscretePmf.from_samples(samples, Q)
    v = pmf.quantile(q)
    assert pmf.cdf(v) >= q - 1e-9


@given(
    samples=samples_strategy,
    xs=st.lists(st.floats(min_value=-1.0, max_value=3.0), min_size=1, max_size=30),
)
@settings(max_examples=80)
def test_cdf_many_identical_to_scalar_property(samples, xs):
    """Batched evaluation must equal the scalar path element for element."""
    pmf = DiscretePmf.from_samples(samples, Q)
    assert pmf.cdf_many(xs).tolist() == [pmf.cdf(x) for x in xs]


# ---------------------------------------------------------------------------
# convolve_all: balanced tree + FFT fast path
# ---------------------------------------------------------------------------
def _direct_fold(pmfs):
    """The historical exact reference: left fold over DiscretePmf.convolve
    (pairwise np.convolve with per-step renormalization)."""
    result = pmfs[0]
    for pmf in pmfs[1:]:
        result = result.convolve(pmf)
    return result


def _wide_pmf(rng, bins, offset):
    mass = rng.random(bins) + 1e-6  # strictly positive, un-normalized
    return DiscretePmf(Q, offset, mass)


def test_convolve_all_small_inputs_bit_identical_to_fold():
    """Below the FFT threshold the historical fold runs unchanged."""
    rng = np.random.default_rng(7)
    pmfs = [_wide_pmf(rng, bins, off) for bins, off in ((30, 1), (50, 0), (20, 4), (40, 2))]
    tree = convolve_all(pmfs)
    fold = _direct_fold(pmfs)
    assert tree.offset == fold.offset
    np.testing.assert_array_equal(tree.mass, fold.mass)


def test_convolve_all_fft_path_matches_direct():
    from repro.stats.pmf import CONVOLVE_FFT_THRESHOLD

    rng = np.random.default_rng(11)
    pmfs = [_wide_pmf(rng, 500, i) for i in range(4)]
    assert sum(p.mass.size for p in pmfs) >= CONVOLVE_FFT_THRESHOLD
    fast = convolve_all(pmfs)
    exact = _direct_fold(pmfs)
    assert fast.offset == exact.offset
    assert fast.mass.size == exact.mass.size
    np.testing.assert_allclose(fast.mass, exact.mass, atol=1e-12)
    assert fast.mass.min() >= 0.0
    assert fast.mass.sum() == pytest.approx(1.0)


def test_convolve_all_quantum_mismatch_rejected():
    a = DiscretePmf.degenerate(0.010, Q)
    b = DiscretePmf.degenerate(0.010, 2 * Q)
    with pytest.raises(ValueError):
        convolve_all([a, b])


@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    sizes=st.lists(st.integers(min_value=200, max_value=700), min_size=2, max_size=5),
)
@settings(max_examples=20, deadline=None)
def test_convolve_all_fft_exactness_property(seed, sizes):
    """Property (ISSUE 2): the FFT/tree path agrees with direct convolution
    within 1e-12 on every bin, for arbitrary positive mass shapes."""
    rng = np.random.default_rng(seed)
    pmfs = [_wide_pmf(rng, bins, int(rng.integers(0, 10))) for bins in sizes]
    fast = convolve_all(pmfs)
    exact = _direct_fold(pmfs)
    assert fast.offset == exact.offset
    np.testing.assert_allclose(fast.mass, exact.mass, atol=1e-12)
    assert fast.mean() == pytest.approx(exact.mean(), abs=1e-9)


# ---------------------------------------------------------------------------
# Vectorized sampling (the aggregate tier's outcome-draw primitive)
# ---------------------------------------------------------------------------
def test_sample_edge_cases():
    pmf = DiscretePmf.degenerate(0.010, Q)
    rng = np.random.default_rng(0)
    assert pmf.sample(0, rng).size == 0
    with pytest.raises(ValueError):
        pmf.sample(-1, rng)


def test_sample_degenerate_returns_the_single_value():
    pmf = DiscretePmf.degenerate(0.025, Q)
    draws = pmf.sample(100, np.random.default_rng(1))
    np.testing.assert_allclose(draws, 0.025)


def test_sample_values_are_grid_points_of_the_support():
    pmf = DiscretePmf.from_samples([0.010, 0.020, 0.020, 0.040], Q)
    draws = pmf.sample(2000, np.random.default_rng(2))
    support = {
        round((pmf.offset + i) * Q, 9)
        for i in range(pmf.mass.size)
        if pmf.mass[i] > 0
    }
    assert {round(v, 9) for v in draws} <= support


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=15, deadline=None)
def test_sample_distribution_matches_mass_property(seed):
    """Empirical frequencies converge on the pmf's mass vector."""
    rng = np.random.default_rng(seed)
    mass = rng.random(6) + 0.05
    mass /= mass.sum()
    pmf = DiscretePmf(offset=3, mass=mass, quantum=Q)
    n = 20_000
    draws = pmf.sample(n, rng)
    indices = np.rint(draws / Q).astype(int) - pmf.offset
    counts = np.bincount(indices, minlength=mass.size)
    np.testing.assert_allclose(counts / n, mass, atol=0.02)
    # Sample mean tracks the analytic mean.
    assert abs(draws.mean() - pmf.mean()) < 5 * Q
