"""Unit tests for running summaries and percentiles."""

import statistics

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.summary import RunningSummary, percentile


def test_mean_and_variance_match_statistics_module():
    values = [1.0, 4.0, 2.5, 9.0, -3.0]
    summary = RunningSummary()
    summary.extend(values)
    assert summary.mean == pytest.approx(statistics.mean(values))
    assert summary.variance == pytest.approx(statistics.variance(values))
    assert summary.stddev == pytest.approx(statistics.stdev(values))
    assert summary.minimum == -3.0
    assert summary.maximum == 9.0
    assert summary.count == 5


def test_empty_summary_mean_raises():
    with pytest.raises(ValueError):
        RunningSummary().mean


def test_single_sample_variance_zero():
    summary = RunningSummary()
    summary.record(5.0)
    assert summary.variance == 0.0


def test_merge_equals_combined():
    a_values = [1.0, 2.0, 3.0]
    b_values = [10.0, 20.0]
    a, b = RunningSummary(), RunningSummary()
    a.extend(a_values)
    b.extend(b_values)
    merged = a.merge(b)
    combined = a_values + b_values
    assert merged.count == 5
    assert merged.mean == pytest.approx(statistics.mean(combined))
    assert merged.variance == pytest.approx(statistics.variance(combined))
    assert merged.minimum == 1.0 and merged.maximum == 20.0


def test_merge_with_empty():
    a = RunningSummary()
    a.record(2.0)
    merged = a.merge(RunningSummary())
    assert merged.count == 1 and merged.mean == 2.0


def test_percentile_basic():
    values = [1, 2, 3, 4, 5]
    assert percentile(values, 0) == 1
    assert percentile(values, 50) == 3
    assert percentile(values, 100) == 5
    assert percentile(values, 25) == 2


def test_percentile_interpolates():
    assert percentile([0.0, 1.0], 50) == pytest.approx(0.5)


def test_percentile_single_value():
    assert percentile([7.0], 90) == 7.0


def test_percentile_validation():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 101)


@given(
    values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=200
    )
)
@settings(max_examples=60)
def test_welford_matches_two_pass_property(values):
    summary = RunningSummary()
    summary.extend(values)
    assert summary.mean == pytest.approx(statistics.mean(values), rel=1e-9, abs=1e-6)
    assert summary.variance == pytest.approx(
        statistics.variance(values), rel=1e-6, abs=1e-6
    )


@given(
    values=st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=50),
    q=st.floats(min_value=0, max_value=100),
)
@settings(max_examples=60)
def test_percentile_within_range_property(values, q):
    p = percentile(values, q)
    assert min(values) <= p <= max(values)
