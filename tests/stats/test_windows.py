"""Unit tests for sliding windows."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.sliding_window import PairWindow, SlidingWindow


# ---------------------------------------------------------------------------
# SlidingWindow
# ---------------------------------------------------------------------------
def test_records_in_order():
    window = SlidingWindow(5)
    window.extend([1.0, 2.0, 3.0])
    assert window.samples() == [1.0, 2.0, 3.0]
    assert window.latest == 3.0


def test_evicts_oldest_when_full():
    window = SlidingWindow(3)
    window.extend([1, 2, 3, 4, 5])
    assert window.samples() == [3.0, 4.0, 5.0]
    assert window.total_recorded == 5
    assert window.full


def test_len_bool_iter():
    window = SlidingWindow(3)
    assert not window and len(window) == 0
    window.record(1.0)
    assert window and list(window) == [1.0]


def test_mean():
    window = SlidingWindow(4)
    window.extend([1.0, 3.0])
    assert window.mean() == 2.0
    with pytest.raises(ValueError):
        SlidingWindow(2).mean()


def test_latest_none_when_empty():
    assert SlidingWindow(2).latest is None


def test_clear():
    window = SlidingWindow(2)
    window.record(1.0)
    window.clear()
    assert len(window) == 0


def test_invalid_size_rejected():
    with pytest.raises(ValueError):
        SlidingWindow(0)


@given(
    size=st.integers(min_value=1, max_value=20),
    values=st.lists(st.floats(min_value=-1e6, max_value=1e6), max_size=100),
)
@settings(max_examples=60)
def test_window_keeps_most_recent_property(size, values):
    window = SlidingWindow(size)
    window.extend(values)
    assert window.samples() == [float(v) for v in values[-size:]]


# ---------------------------------------------------------------------------
# PairWindow (update-rate estimation, §5.4.1)
# ---------------------------------------------------------------------------
def test_pair_window_rate():
    window = PairWindow(5)
    window.record(4, 2.0)
    window.record(2, 1.0)
    assert window.rate() == pytest.approx(2.0)


def test_pair_window_evicts():
    window = PairWindow(2)
    window.record(100, 1.0)
    window.record(2, 1.0)
    window.record(2, 1.0)
    assert window.rate() == pytest.approx(2.0)
    assert len(window) == 2


def test_pair_window_default_without_time():
    assert PairWindow(3).rate(default=7.0) == 7.0


def test_pair_window_validation():
    with pytest.raises(ValueError):
        PairWindow(0)
    window = PairWindow(2)
    with pytest.raises(ValueError):
        window.record(-1, 1.0)
    with pytest.raises(ValueError):
        window.record(1, -1.0)


def test_pair_window_pairs_snapshot():
    window = PairWindow(3)
    window.record(1, 0.5)
    assert window.pairs() == [(1, 0.5)]
