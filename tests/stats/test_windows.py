"""Unit tests for sliding windows."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.pmf import DiscretePmf
from repro.stats.sliding_window import PairWindow, SlidingWindow, quantize_bin

Q = 1e-3


# ---------------------------------------------------------------------------
# SlidingWindow
# ---------------------------------------------------------------------------
def test_records_in_order():
    window = SlidingWindow(5)
    window.extend([1.0, 2.0, 3.0])
    assert window.samples() == [1.0, 2.0, 3.0]
    assert window.latest == 3.0


def test_evicts_oldest_when_full():
    window = SlidingWindow(3)
    window.extend([1, 2, 3, 4, 5])
    assert window.samples() == [3.0, 4.0, 5.0]
    assert window.total_recorded == 5
    assert window.full


def test_len_bool_iter():
    window = SlidingWindow(3)
    assert not window and len(window) == 0
    window.record(1.0)
    assert window and list(window) == [1.0]


def test_mean():
    window = SlidingWindow(4)
    window.extend([1.0, 3.0])
    assert window.mean() == 2.0
    with pytest.raises(ValueError):
        SlidingWindow(2).mean()


def test_latest_none_when_empty():
    assert SlidingWindow(2).latest is None


def test_clear():
    window = SlidingWindow(2)
    window.record(1.0)
    window.clear()
    assert len(window) == 0


def test_invalid_size_rejected():
    with pytest.raises(ValueError):
        SlidingWindow(0)


@given(
    size=st.integers(min_value=1, max_value=20),
    values=st.lists(st.floats(min_value=-1e6, max_value=1e6), max_size=100),
)
@settings(max_examples=60)
def test_window_keeps_most_recent_property(size, values):
    window = SlidingWindow(size)
    window.extend(values)
    assert window.samples() == [float(v) for v in values[-size:]]


# ---------------------------------------------------------------------------
# Versioning + incremental histogram (prediction-cache substrate)
# ---------------------------------------------------------------------------
def test_version_increments_on_record_and_clear():
    window = SlidingWindow(2)
    assert window.version == 0
    window.record(1.0)
    window.record(2.0)
    window.record(3.0)  # eviction still bumps: contents changed
    assert window.version == 3
    window.clear()
    assert window.version == 4


def test_histogram_tracks_contents_incrementally():
    window = SlidingWindow(3, quantum=Q)
    window.extend([0.001, 0.001, 0.002, 0.003])  # first 1 ms sample evicted
    offset, counts = window.histogram(Q)
    assert offset == 1
    assert counts.tolist() == [1.0, 1.0, 1.0]


def test_histogram_collapses_bins_on_eviction():
    window = SlidingWindow(2, quantum=Q)
    window.extend([0.005, 0.001, 0.001])  # the 5 ms bin must disappear
    offset, counts = window.histogram(Q)
    assert offset == 1
    assert counts.tolist() == [2.0]


def test_histogram_empty_or_mismatched_quantum_returns_none():
    window = SlidingWindow(3, quantum=Q)
    assert window.histogram(Q) is None  # empty
    window.record(0.001)
    assert window.histogram(Q) is not None
    assert window.histogram(1e-4) is None  # different grid


def test_histogram_clamps_negative_samples():
    window = SlidingWindow(3, quantum=Q)
    window.extend([-0.5, 0.001])
    offset, counts = window.histogram(Q)
    assert offset == 0
    assert counts.tolist() == [1.0, 1.0]


def test_quantize_bin_matches_numpy_rint():
    for value in (-1.0, 0.0, 0.0005, 0.0015, 0.0025, 0.9987, 123.456):
        expected = int(np.rint(max(0.0, value) / Q))
        assert quantize_bin(value, Q) == expected


@given(
    size=st.integers(min_value=1, max_value=10),
    values=st.lists(
        st.floats(min_value=-1.0, max_value=5.0), min_size=1, max_size=60
    ),
)
@settings(max_examples=100)
def test_histogram_pmf_identical_to_from_samples(size, values):
    """The incremental histogram must reproduce §5.2's relative-frequency
    pmf bit for bit across arbitrary record/evict interleavings."""
    window = SlidingWindow(size, quantum=Q)
    window.extend(values)
    offset, counts = window.histogram(Q)
    incremental = DiscretePmf.from_histogram(Q, offset, counts)
    fresh = DiscretePmf.from_samples(window.samples(), Q)
    assert incremental.offset == fresh.offset
    assert np.array_equal(incremental.mass, fresh.mass)


# ---------------------------------------------------------------------------
# PairWindow (update-rate estimation, §5.4.1)
# ---------------------------------------------------------------------------
def test_pair_window_rate():
    window = PairWindow(5)
    window.record(4, 2.0)
    window.record(2, 1.0)
    assert window.rate() == pytest.approx(2.0)


def test_pair_window_evicts():
    window = PairWindow(2)
    window.record(100, 1.0)
    window.record(2, 1.0)
    window.record(2, 1.0)
    assert window.rate() == pytest.approx(2.0)
    assert len(window) == 2


def test_pair_window_default_without_time():
    assert PairWindow(3).rate(default=7.0) == 7.0


def test_pair_window_validation():
    with pytest.raises(ValueError):
        PairWindow(0)
    window = PairWindow(2)
    with pytest.raises(ValueError):
        window.record(-1, 1.0)
    with pytest.raises(ValueError):
        window.record(1, -1.0)


def test_pair_window_pairs_snapshot():
    window = PairWindow(3)
    window.record(1, 0.5)
    assert window.pairs() == [(1, 0.5)]


def test_pair_window_version_increments():
    window = PairWindow(2)
    assert window.version == 0
    window.record(1, 1.0)
    window.record(1, 1.0)
    window.record(1, 1.0)  # eviction
    assert window.version == 3


def test_pair_window_rate_exact_zero_after_zero_durations():
    window = PairWindow(2)
    window.record(3, 0.0)
    window.record(4, 0.0)
    window.record(5, 0.0)
    assert window.rate(default=9.0) == 9.0


@given(
    size=st.integers(min_value=1, max_value=8),
    pairs=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=1000),
            # Zero or >= 1 ms: realistic durations, so incremental
            # add/subtract cannot hit catastrophic cancellation.
            st.one_of(
                st.just(0.0), st.floats(min_value=1e-3, max_value=1e4)
            ),
        ),
        max_size=60,
    ),
)
@settings(max_examples=80)
def test_pair_window_running_sums_match_recompute(size, pairs):
    """O(1) rate() must agree with re-summing the visible window."""
    window = PairWindow(size)
    for count, duration in pairs:
        window.record(count, duration)
    visible = window.pairs()
    total_time = sum(t for _, t in visible)
    if total_time <= 0:
        assert window.rate(default=-1.0) == -1.0
    else:
        expected = sum(c for c, _ in visible) / total_time
        assert window.rate() == pytest.approx(expected, rel=1e-9, abs=1e-12)
