"""End-to-end span trees from real testbed runs.

The acceptance shape: a hedged read reconstructs as ONE judged request tree
whose root carries exactly two replica dispatch edges (the selected target
and the hedge), each with the serve/reply activity stitched underneath.
"""

from repro.baselines.strategies import RoundRobinSelection
from repro.core.client import RetryPolicy
from repro.core.qos import QoSSpec
from repro.core.service import ServiceConfig, build_testbed
from repro.net.latency import FixedLatency
from repro.obs.spans import build_span_trees
from repro.sim.process import Process, Timeout
from repro.sim.rng import Constant
from repro.sim.tracing import Trace

QOS = QoSSpec(staleness_threshold=10, deadline=1.0, min_probability=0.95)


def make_traced_testbed(seed=21):
    config = ServiceConfig(
        name="svc",
        num_primaries=2,
        num_secondaries=2,
        lazy_update_interval=0.4,
        read_service_time=Constant(0.010),
    )
    return build_testbed(
        config, seed=seed, latency=FixedLatency(0.001), trace=Trace(enabled=True)
    )


def run_reads(testbed, client, reads=10):
    def run():
        yield client.call("increment")
        for _ in range(reads):
            yield client.call("get", (), QOS)
            yield Timeout(0.1)

    Process(testbed.sim, run())
    testbed.sim.run(until=5.0)


def test_hedged_read_is_one_tree_with_two_dispatches():
    testbed = make_traced_testbed()
    client = testbed.service.create_client(
        "c",
        read_only_methods={"get"},
        strategy=RoundRobinSelection(),
        retry_policy=RetryPolicy(hedge=True, hedge_min_probability=0.95),
    )
    run_reads(testbed, client)
    assert client.hedges_sent > 0

    trees = build_span_trees(testbed.trace)
    hedged_roots = [
        root
        for root in trees.values()
        if root.name == "read"
        and any(
            d.annotations.get("reason") == "hedge" for d in root.find("dispatch")
        )
    ]
    assert hedged_roots, "no hedged read reconstructed"
    for root in hedged_roots:
        judges = root.find("judge")
        assert len(judges) == 1  # judged exactly once despite two dispatches
        replica_dispatches = [
            d
            for d in root.find("dispatch")
            if d.annotations["reason"] in ("select", "hedge")
        ]
        assert len(replica_dispatches) == 2
        assert {d.annotations["reason"] for d in replica_dispatches} == {
            "select",
            "hedge",
        }
        # Both dispatch edges point at distinct replicas.
        targets = {d.annotations["target"] for d in replica_dispatches}
        assert len(targets) == 2
        # At least one target actually served the read, and the serve span
        # stitched under that dispatch edge.
        serves = root.find("serve")
        assert serves
        for serve in serves:
            assert serve.annotations["kind"] == "read"


def test_read_tree_carries_reply_and_annotations():
    testbed = make_traced_testbed()
    client = testbed.service.create_client("c", read_only_methods={"get"})
    run_reads(testbed, client, reads=5)

    trees = build_span_trees(testbed.trace)
    read_roots = [r for r in trees.values() if r.name == "read"]
    assert read_roots
    resolved = [r for r in read_roots if r.find("reply")]
    assert resolved
    root = resolved[0]
    assert root.annotations["deadline"] == QOS.deadline
    assert 0.0 <= root.annotations["predicted"] <= 1.0
    reply = root.find("reply")[0]
    assert reply.annotations["response_time"] > 0.0
    judge = root.find("judge")[0]
    assert judge.annotations["timely"] in (True, False)


def test_update_tree_reaches_sequencer_and_replicas():
    testbed = make_traced_testbed()
    client = testbed.service.create_client("c", read_only_methods={"get"})
    run_reads(testbed, client, reads=2)

    trees = build_span_trees(testbed.trace)
    update_roots = [r for r in trees.values() if r.name == "update"]
    assert update_roots
    root = update_roots[0]
    sequenced = root.find("sequence")
    assert sequenced and sequenced[0].annotations["gsn"] >= 1
