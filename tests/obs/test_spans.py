"""Request-span tracing: emission, tree reconstruction, stitching rules."""

from repro.obs.spans import (
    SPAN_CATEGORY,
    build_span_trees,
    emit_span,
    request_id_of,
    span_root,
)
from repro.sim.tracing import NULL_TRACE, Trace


def test_span_ids():
    assert span_root(7) == "req-7"
    assert request_id_of("req-7/d0") == 7
    assert request_id_of("req-7") == 7
    assert request_id_of("other") is None
    assert request_id_of("req-x/d0") is None


def test_emit_span_rides_the_trace():
    trace = Trace()
    emit_span(trace, 1.0, "c", "req-1", "read", deadline=0.2)
    record = trace.records[0]
    assert record.category == SPAN_CATEGORY
    assert record.detail["span"] == "req-1"
    assert record.detail["parent"] is None
    assert record.detail["deadline"] == 0.2
    emit_span(NULL_TRACE, 1.0, "c", "req-1", "read")  # no-op, no error


def test_explicit_parent_stitching():
    trace = Trace()
    emit_span(trace, 1.0, "c", "req-1", "read")
    emit_span(trace, 1.1, "c", "req-1/d0", "dispatch", parent_id="req-1",
              target="r1", reason="select")
    emit_span(trace, 1.5, "c", "req-1/j", "judge", parent_id="req-1",
              timely=True)
    trees = build_span_trees(trace)
    root = trees[1]
    assert {c.name for c in root.children} == {"dispatch", "judge"}
    assert len(root.find("judge")) == 1


def test_replica_spans_stitch_to_matching_dispatch():
    trace = Trace()
    emit_span(trace, 1.0, "c", "req-1", "read")
    emit_span(trace, 1.0, "c", "req-1/d0", "dispatch", parent_id="req-1",
              target="r1", reason="select")
    emit_span(trace, 1.0, "c", "req-1/d1", "dispatch", parent_id="req-1",
              target="r2", reason="select")
    # Replica-side serve spans carry no parent pointer.
    emit_span(trace, 1.2, "r2", "req-1/s/r2", "serve", ts=0.1)
    trees = build_span_trees(trace)
    dispatches = trees[1].find("dispatch")
    to_r2 = next(d for d in dispatches if d.annotations["target"] == "r2")
    assert [c.name for c in to_r2.children] == ["serve"]


def test_retry_redispatch_claims_later_serve():
    """A serve after a retry stitches under the retry's dispatch edge, not
    the original one — latest matching dispatch wins."""
    trace = Trace()
    emit_span(trace, 1.0, "c", "req-1", "read")
    emit_span(trace, 1.0, "c", "req-1/d0", "dispatch", parent_id="req-1",
              target="r1", reason="select")
    emit_span(trace, 2.0, "c", "req-1/d1", "dispatch", parent_id="req-1",
              target="r1", reason="timeout")
    emit_span(trace, 2.5, "r1", "req-1/s/r1", "serve", ts=0.1)
    trees = build_span_trees(trace)
    dispatches = trees[1].find("dispatch")
    retry = next(d for d in dispatches if d.annotations["reason"] == "timeout")
    original = next(d for d in dispatches if d.annotations["reason"] == "select")
    assert [c.name for c in retry.children] == ["serve"]
    assert original.children == []


def test_orphan_spans_fall_back_to_root():
    trace = Trace()
    emit_span(trace, 1.0, "c", "req-1", "read")
    # A sequencer span with no parent and no matching dispatch.
    emit_span(trace, 1.1, "seq", "req-1/q", "sequence", gsn=4)
    trees = build_span_trees(trace)
    assert [c.name for c in trees[1].children] == ["sequence"]


def test_requests_without_roots_are_skipped():
    trace = Trace()
    emit_span(trace, 1.0, "r1", "req-9/s/r1", "serve")
    assert build_span_trees(trace) == {}


def test_walk_and_to_dict():
    trace = Trace()
    emit_span(trace, 1.0, "c", "req-1", "read")
    emit_span(trace, 1.5, "c", "req-1/j", "judge", parent_id="req-1")
    root = build_span_trees(trace)[1]
    assert [s.name for s in root.walk()] == ["read", "judge"]
    payload = root.to_dict()
    assert payload["span"] == "req-1"
    assert payload["children"][0]["name"] == "judge"
