"""SLO specs, burn-rate math, alert edges, and staleness attribution."""

from __future__ import annotations

import pytest

from repro.obs.slo import (
    ATTRIBUTION_COMPONENTS,
    SloEngine,
    SloSpec,
    attribution_summary,
    parse_series,
)
from repro.obs.timeseries import Timeline


# ---------------------------------------------------------------------------
# parse_series / spec validation
# ---------------------------------------------------------------------------
def test_parse_series_splits_name_and_labels():
    assert parse_series("reads_total") == ("reads_total", {})
    assert parse_series('reads_total{client="a"}') == (
        "reads_total",
        {"client": "a"},
    )
    name, labels = parse_series('x{client="a",priority="gold",region="eu"}')
    assert name == "x"
    assert labels == {"client": "a", "priority": "gold", "region": "eu"}


def test_spec_validation_and_budget():
    spec = SloSpec(name="t", objective=0.9)
    assert spec.budget == pytest.approx(0.1)
    assert spec.selector() == {}
    with pytest.raises(ValueError):
        SloSpec(name="bad", objective=1.0)
    with pytest.raises(ValueError):
        SloSpec(name="bad", objective=0.0)
    with pytest.raises(ValueError):
        SloSpec(name="bad", objective=0.9, kind="latency")
    with pytest.raises(ValueError):
        SloSpec(name="bad", objective=0.9, kind="staleness")


def test_spec_selector_includes_only_set_labels():
    spec = SloSpec(name="t", objective=0.9, client="a", region="eu")
    assert spec.selector() == {"client": "a", "region": "eu"}


def test_engine_rejects_duplicate_spec_names():
    spec = SloSpec(name="t", objective=0.9)
    with pytest.raises(ValueError):
        SloEngine([spec, SloSpec(name="t", objective=0.99)])


# ---------------------------------------------------------------------------
# Timeliness compliance and burn alerts over a synthetic timeline
# ---------------------------------------------------------------------------
def _timeliness_timeline():
    """10 judged reads per tick; 2 failures on ticks 3 and 4."""
    return Timeline(
        1.0,
        start=0,
        length=10,
        series={
            'client_reads_judged{client="a"}': {
                "type": "counter",
                "deltas": [10] * 10,
            },
            'client_timing_failures{client="a"}': {
                "type": "counter",
                "deltas": [0, 0, 0, 2, 2, 0, 0, 0, 0, 0],
            },
        },
    )


def _spec(**overrides):
    base = dict(name="timeliness:a", objective=0.99, client="a")
    base.update(overrides)
    return SloSpec(**base)


def test_compliance_and_budget_consumed_are_cumulative():
    report = SloEngine([_spec()]).evaluate(_timeliness_timeline())["timeliness:a"]
    assert report.times == [float(i + 1) for i in range(10)]
    assert report.total_good == 96
    assert report.total_bad == 4
    assert report.compliance[2] == pytest.approx(1.0)
    assert report.compliance[3] == pytest.approx(38 / 40)
    assert report.compliance[-1] == pytest.approx(96 / 100)
    # 4 bad out of a budget of 100 * 0.01 = 1 allowed: 4x over.
    assert report.budget_consumed[-1] == pytest.approx(4.0)
    assert not report.met()


def test_fast_burn_pages_on_the_bad_tick_only():
    report = SloEngine([_spec()]).evaluate(_timeliness_timeline())["timeliness:a"]
    # Fast window = 1 tick: burn on tick 3 is (2/10) / 0.01 = 20.
    assert report.fast_burn[3] == pytest.approx(20.0)
    assert report.fast_burn[5] == pytest.approx(0.0)
    page = report.first_alert("page")
    assert page is not None
    assert (page.tick, page.time) == (3, 4.0)
    assert page.burn == pytest.approx(20.0)
    # One rising edge: tick 4 keeps the alert active, no second alert.
    assert [a.severity for a in report.alerts].count("page") == 1
    assert report.alert_active[3] and report.alert_active[4]
    assert not report.alert_active[5]


def test_slow_burn_ticket_requires_short_window_confirmation():
    report = SloEngine([_spec()]).evaluate(_timeliness_timeline())["timeliness:a"]
    # Tick 4: window covers ticks 0-4 -> 4 bad / 50 = 0.08 -> burn 8 >= 6,
    # and the 1-tick confirmation window burns at 20: ticket fires.
    ticket = report.first_alert("ticket")
    assert ticket is not None
    assert ticket.tick == 4
    # Tick 5: the 6-tick window still burns at (4/60)/0.01 = 6.67 >= 6 but
    # the confirmation window (tick 5 alone) is clean, so no new ticket.
    assert report.slow_burn[5] == pytest.approx((4 / 60) / 0.01)
    assert [a.severity for a in report.alerts].count("ticket") == 1


def test_selector_mismatch_sees_no_events():
    engine = SloEngine([_spec(name="timeliness:b", client="b")])
    report = engine.evaluate(_timeliness_timeline())["timeliness:b"]
    assert report.total_good == 0 and report.total_bad == 0
    assert all(c == 1.0 for c in report.compliance)
    assert report.alerts == []
    assert report.met()


def test_empty_timeline_yields_empty_report_that_is_met():
    report = SloEngine([_spec()]).evaluate(Timeline(1.0))["timeliness:a"]
    assert report.times == []
    assert report.met()
    assert report.first_alert() is None


def test_spec_registered_mid_run_sees_only_the_suffix():
    # A spec evaluated against a timeline that starts mid-run (earlier
    # ticks already garbage-collected): compliance and burn cover the
    # surviving suffix only, with no index errors at the seam.
    timeline = Timeline(
        1.0,
        start=5,
        length=5,
        series={
            'client_reads_judged{client="a"}': {
                "type": "counter",
                "deltas": [10] * 5,
            },
            'client_timing_failures{client="a"}': {
                "type": "counter",
                "deltas": [0, 2, 0, 0, 0],
            },
        },
    )
    report = SloEngine([_spec()]).evaluate(timeline)["timeliness:a"]
    assert report.times == [6.0, 7.0, 8.0, 9.0, 10.0]
    assert report.total_good == 48 and report.total_bad == 2
    signals = SloEngine([_spec()]).signals(timeline)["timeliness:a"]
    assert signals["time"] == 10.0
    assert signals["compliance"] == pytest.approx(48 / 50)


def test_all_shed_window_burns_nothing():
    # Ticks where every read was shed (zero judged events) are *no
    # evidence*: burn must be 0.0 there — never NaN or a division error —
    # and compliance holds its last value.
    timeline = Timeline(
        1.0,
        start=0,
        length=6,
        series={
            'client_reads_judged{client="a"}': {
                "type": "counter",
                "deltas": [10, 10, 0, 0, 0, 10],
            },
            'client_timing_failures{client="a"}': {
                "type": "counter",
                "deltas": [0, 1, 0, 0, 0, 0],
            },
        },
    )
    report = SloEngine([_spec()]).evaluate(timeline)["timeliness:a"]
    # Fast window (1 tick) over the shed ticks: empty -> zero burn.
    assert report.fast_burn[2] == 0.0
    assert report.fast_burn[3] == 0.0
    assert report.compliance[4] == pytest.approx(19 / 20)
    signals = SloEngine([_spec()]).signals(timeline)["timeliness:a"]
    assert signals["fast_burn"] == 0.0
    assert signals["fast_burn"] == signals["fast_burn"]  # not NaN


def test_degenerate_budget_never_divides_by_zero():
    # The burn kernel's denominator guard: a budget of exactly zero must
    # not raise ZeroDivisionError or yield NaN — bad events burn
    # "infinitely", clean windows burn nothing.  (SloSpec validation
    # keeps objective < 1, so this is only reachable through the kernel;
    # the tightest representable spec must stay finite and NaN-free.)
    from repro.obs.slo import _burn

    cum_total = [0.0, 10.0, 20.0]
    cum_bad = [0.0, 0.0, 2.0]
    assert _burn(cum_total, cum_bad, 1, 1, 0.0) == float("inf")
    assert _burn(cum_total, cum_bad, 0, 1, 0.0) == 0.0
    spec = _spec(objective=0.99999999999999)
    report = SloEngine([spec]).evaluate(_timeliness_timeline())["timeliness:a"]
    for burn in report.fast_burn + report.slow_burn:
        assert burn == burn  # no NaN anywhere
        assert burn != float("inf")


def test_signals_zero_judged_reads_everywhere():
    # A timeline with ticks but no judged events at all: compliance 1.0,
    # full budget, zero burn (the no-evidence defaults, not NaN).
    timeline = Timeline(
        1.0,
        start=0,
        length=4,
        series={
            'client_reads_judged{client="a"}': {
                "type": "counter",
                "deltas": [0, 0, 0, 0],
            },
        },
    )
    signals = SloEngine([_spec()]).signals(timeline)["timeliness:a"]
    assert signals["compliance"] == 1.0
    assert signals["budget_remaining"] == 1.0
    assert signals["fast_burn"] == 0.0
    assert signals["slow_burn"] == 0.0
    assert signals["alerting"] == 0.0


# ---------------------------------------------------------------------------
# Staleness-kind specs bucket against the bound
# ---------------------------------------------------------------------------
def _staleness_timeline():
    return Timeline(
        1.0,
        start=0,
        length=1,
        series={
            'replica_staleness_wait_seconds{client="a"}': {
                "type": "histogram",
                "boundaries": [0.1, 1.0],
                "counts": [[5, 3, 2]],
                "sums": [2.9],
                "totals": [10],
            },
        },
    )


def test_staleness_spec_counts_buckets_above_bound_as_bad():
    spec = SloSpec(
        name="stale:a",
        objective=0.9,
        kind="staleness",
        staleness_bound=0.5,
        client="a",
    )
    report = SloEngine([spec]).evaluate(_staleness_timeline())["stale:a"]
    # Buckets with upper edge 1.0 and +inf exceed the 0.5 s bound: 5 bad.
    assert report.total_bad == 5
    assert report.compliance[-1] == pytest.approx(0.5)


def test_staleness_spec_with_loose_bound_is_clean():
    spec = SloSpec(
        name="stale:a",
        objective=0.9,
        kind="staleness",
        staleness_bound=2.0,
    )
    report = SloEngine([spec]).evaluate(_staleness_timeline())["stale:a"]
    # Only the +inf overflow bucket exceeds a 2.0 s bound.
    assert report.total_bad == 2


# ---------------------------------------------------------------------------
# signals(): the stable controller surface
# ---------------------------------------------------------------------------
SIGNAL_KEYS = {
    "time",
    "compliance",
    "objective",
    "budget_remaining",
    "fast_burn",
    "slow_burn",
    "alerting",
}


def test_signals_populated_timeline():
    signals = SloEngine([_spec()]).signals(_timeliness_timeline())
    out = signals["timeliness:a"]
    assert set(out) == SIGNAL_KEYS
    assert out["time"] == 10.0
    assert out["compliance"] == pytest.approx(0.96)
    assert out["objective"] == 0.99
    assert out["budget_remaining"] == pytest.approx(1.0 - 4.0)
    assert out["alerting"] == 0.0


def test_signals_empty_timeline_defaults():
    out = SloEngine([_spec()]).signals(Timeline(1.0))["timeliness:a"]
    assert set(out) == SIGNAL_KEYS
    assert out == {
        "time": 0.0,
        "compliance": 1.0,
        "objective": 0.99,
        "budget_remaining": 1.0,
        "fast_burn": 0.0,
        "slow_burn": 0.0,
        "alerting": 0.0,
    }


# ---------------------------------------------------------------------------
# Attribution aggregation
# ---------------------------------------------------------------------------
def _attribution_timeline():
    series = {
        'replica_staleness_wait_seconds{replica="r1"}': {
            "type": "histogram",
            "boundaries": [1.0],
            "counts": [[3, 1]],
            "sums": [2.4],
            "totals": [4],
        },
    }
    for component, amount in (
        ("lazy_publisher", 1.5),
        ("queue", 0.6),
        ("network", 0.3),
    ):
        key = 'replica_staleness_wait_component_seconds{component="%s"}' % component
        series[key] = {"type": "counter", "deltas": [amount]}
    return Timeline(1.0, start=0, length=1, series=series)


def test_attribution_summary_from_timeline():
    summary = attribution_summary(_attribution_timeline())
    assert summary["observed_seconds"] == pytest.approx(2.4)
    assert summary["reads"] == 4
    assert set(summary["components"]) == set(ATTRIBUTION_COMPONENTS)
    assert sum(summary["components"].values()) == pytest.approx(
        summary["observed_seconds"]
    )
    assert summary["fractions"]["lazy_publisher"] == pytest.approx(1.5 / 2.4)
    assert sum(summary["fractions"].values()) == pytest.approx(1.0)


def test_attribution_summary_from_snapshot():
    snapshot = {
        'replica_staleness_wait_seconds{replica="r1"}': {
            "type": "histogram",
            "sum": 2.0,
            "count": 3,
        },
        'replica_staleness_wait_component_seconds{component="queue"}': {
            "type": "counter",
            "value": 0.5,
        },
        'replica_staleness_wait_component_seconds{component="lazy_publisher"}': {
            "type": "counter",
            "value": 1.5,
        },
        'replica_staleness_wait_component_seconds{component="network"}': {
            "type": "counter",
            "value": 0.0,
        },
    }
    summary = attribution_summary(snapshot)
    assert summary["observed_seconds"] == pytest.approx(2.0)
    assert summary["reads"] == 3
    assert summary["components"]["queue"] == pytest.approx(0.5)
    assert summary["fractions"]["network"] == 0.0


def test_attribution_summary_empty_sources():
    for source in (Timeline(1.0), {}):
        summary = attribution_summary(source)
        assert summary["observed_seconds"] == 0.0
        assert summary["reads"] == 0
        assert all(v == 0.0 for v in summary["fractions"].values())
