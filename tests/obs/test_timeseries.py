"""Timeline recording, merge algebra, and the compact timeline codec."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import (
    MetricsRegistry,
    decode_snapshot,
    encode_snapshot,
)
from repro.obs.timeseries import (
    TIMELINE_CODEC_VERSION,
    Timeline,
    TimeseriesRecorder,
    decode_timeline,
    encode_timeline,
)
from repro.sim.kernel import Simulator


# ---------------------------------------------------------------------------
# Recorder
# ---------------------------------------------------------------------------
def test_recorder_deltas_counters_per_tick():
    sim = Simulator()
    registry = MetricsRegistry()
    reads = registry.counter("reads_total", client="a")
    recorder = TimeseriesRecorder(sim, registry, interval=1.0).start()
    sim.schedule(0.2, lambda: reads.inc(3))
    sim.schedule(1.5, lambda: reads.inc(5))
    sim.run(until=2.5)
    timeline = recorder.timeline()
    assert timeline.deltas('reads_total{client="a"}') == [3, 5]
    assert timeline.rate('reads_total{client="a"}') == [3.0, 5.0]
    assert timeline.times() == [1.0, 2.0]


def test_recorder_baseline_excludes_prestart_counts():
    sim = Simulator()
    registry = MetricsRegistry()
    counter = registry.counter("setup_total")
    counter.inc(7)  # happens before the recorder starts
    recorder = TimeseriesRecorder(sim, registry, interval=1.0).start()
    sim.schedule(0.5, counter.inc)
    sim.run(until=1.5)
    assert recorder.timeline().deltas("setup_total") == [1]


def test_recorder_gauges_sample_last_value():
    sim = Simulator()
    registry = MetricsRegistry()
    depth = registry.gauge("queue_depth")
    recorder = TimeseriesRecorder(sim, registry, interval=1.0).start()
    sim.schedule(0.1, lambda: depth.set(4))
    sim.schedule(0.9, lambda: depth.set(2))
    sim.schedule(1.3, lambda: depth.set(9))
    sim.run(until=2.5)
    assert recorder.timeline().values("queue_depth") == [2.0, 9.0]


def test_recorder_histograms_record_windowed_rows():
    sim = Simulator()
    registry = MetricsRegistry()
    hist = registry.histogram("wait_seconds", boundaries=(0.1, 1.0))
    recorder = TimeseriesRecorder(sim, registry, interval=1.0).start()
    sim.schedule(0.2, lambda: hist.observe(0.05))
    sim.schedule(0.3, lambda: hist.observe(0.5))
    sim.schedule(1.4, lambda: hist.observe(5.0))
    sim.run(until=2.5)
    entry = recorder.timeline().series["wait_seconds"]
    assert entry["counts"] == [[1, 1, 0], [0, 0, 1]]
    assert entry["totals"] == [2, 1]
    assert entry["sums"] == pytest.approx([0.55, 5.0])
    # Windowed quantiles: tick 0 observations are all <= 1.0.
    assert recorder.timeline().quantiles("wait_seconds", 0.99) == [1.0, 1.0]


def test_recorder_backfills_series_created_mid_run():
    sim = Simulator()
    registry = MetricsRegistry()
    registry.counter("early_total")
    recorder = TimeseriesRecorder(sim, registry, interval=1.0).start()
    sim.schedule(2.5, lambda: registry.counter("late_total").inc(4))
    sim.run(until=3.5)
    timeline = recorder.timeline()
    assert timeline.deltas("early_total") == [0, 0, 0]
    assert timeline.deltas("late_total") == [0, 0, 4]


def test_recorder_flush_captures_partial_tail_once():
    sim = Simulator()
    registry = MetricsRegistry()
    counter = registry.counter("ops_total")
    recorder = TimeseriesRecorder(sim, registry, interval=1.0).start()
    sim.schedule(1.4, lambda: counter.inc(2))
    sim.run(until=1.6)  # the tick at t=2.0 never fires
    assert recorder.timeline().deltas("ops_total") == [0]
    recorder.flush()
    assert recorder.timeline().deltas("ops_total") == [0, 2]
    recorder.flush()  # nothing changed: no extra tick
    assert recorder.timeline().length == 2


def test_recorder_ring_evicts_oldest_and_advances_start():
    sim = Simulator()
    registry = MetricsRegistry()
    counter = registry.counter("ops_total")
    recorder = TimeseriesRecorder(sim, registry, interval=1.0, capacity=3)
    recorder.start()

    def pulse(n):
        return lambda: counter.inc(n)

    for i in range(6):
        sim.schedule(i + 0.5, pulse(i + 1))
    sim.run(until=6.5)
    timeline = recorder.timeline()
    assert timeline.length == 3
    assert timeline.start == 3
    assert timeline.deltas("ops_total") == [4, 5, 6]
    assert timeline.times() == [4.0, 5.0, 6.0]


def test_recorder_schedules_nothing_before_start():
    sim = Simulator()
    TimeseriesRecorder(sim, MetricsRegistry(), interval=1.0)
    assert sim.heap_size() == 0


def test_recorder_rejects_bad_parameters():
    sim = Simulator()
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        TimeseriesRecorder(sim, registry, interval=0.0)
    with pytest.raises(ValueError):
        TimeseriesRecorder(sim, registry, capacity=0)
    with pytest.raises(ValueError):
        Timeline(interval=-1.0)


# ---------------------------------------------------------------------------
# Timeline views and merge algebra
# ---------------------------------------------------------------------------
def _counter_timeline(start, deltas, name="ops_total", interval=1.0):
    return Timeline(
        interval,
        start=start,
        length=len(deltas),
        series={name: {"type": "counter", "deltas": list(deltas)}},
    )


def test_entry_accessors_enforce_types():
    t = _counter_timeline(0, [1, 2])
    with pytest.raises(TypeError):
        t.values("ops_total")
    with pytest.raises(KeyError):
        t.deltas("missing_total")


def test_merge_aligns_on_absolute_ticks():
    a = _counter_timeline(0, [1, 2])
    b = _counter_timeline(1, [10, 20])
    merged = Timeline.merge(a, b)
    assert merged.start == 0
    assert merged.length == 3
    assert merged.deltas("ops_total") == [1, 12, 20]


def test_merge_is_commutative_and_associative():
    a = _counter_timeline(0, [1, 2])
    b = _counter_timeline(2, [5])
    c = _counter_timeline(1, [7, 7, 7])
    assert Timeline.merge(a, b) == Timeline.merge(b, a)
    assert Timeline.merge(Timeline.merge(a, b), c) == Timeline.merge(
        a, Timeline.merge(b, c)
    )


def test_merge_gauges_take_max_of_present_samples():
    a = Timeline(
        1.0, 0, 2,
        {"g": {"type": "gauge", "values": [1.0, None]}},
    )
    b = Timeline(
        1.0, 0, 2,
        {"g": {"type": "gauge", "values": [3.0, 2.0]}},
    )
    merged = Timeline.merge(a, b)
    assert merged.values("g") == [3.0, 2.0]


def test_merge_histograms_add_rows_sums_totals():
    def h(start, row, s, n):
        return Timeline(
            1.0, start, 1,
            {
                "h": {
                    "type": "histogram",
                    "boundaries": [0.1],
                    "counts": [list(row)],
                    "sums": [s],
                    "totals": [n],
                }
            },
        )

    merged = Timeline.merge(h(0, [1, 0], 0.05, 1), h(0, [0, 2], 4.0, 2))
    entry = merged.series["h"]
    assert entry["counts"] == [[1, 2]]
    assert entry["sums"] == [4.05]
    assert entry["totals"] == [3]


def test_merge_rejects_interval_and_type_conflicts():
    with pytest.raises(ValueError):
        Timeline.merge(_counter_timeline(0, [1]), _counter_timeline(0, [1], interval=2.0))
    gauge = Timeline(1.0, 0, 1, {"ops_total": {"type": "gauge", "values": [1.0]}})
    with pytest.raises(TypeError):
        Timeline.merge(_counter_timeline(0, [1]), gauge)


def test_merge_of_nothing_is_empty():
    assert Timeline.merge().length == 0
    assert Timeline.merge(None, None).length == 0
    empty = Timeline(0.5)
    assert Timeline.merge(empty, None).interval == 0.5


def test_to_dict_round_trip_and_equality():
    t = _counter_timeline(3, [1, 2, 3])
    clone = Timeline.from_dict(t.to_dict())
    assert clone == t
    clone.series["ops_total"]["deltas"][0] = 99
    assert clone != t  # to_dict copied, not aliased


# ---------------------------------------------------------------------------
# Timeline codec
# ---------------------------------------------------------------------------
def _rich_timeline():
    return Timeline(
        0.5,
        start=4,
        length=3,
        series={
            "int_total": {"type": "counter", "deltas": [1, 0, 7]},
            'float_total{client="a"}': {
                "type": "counter",
                "deltas": [0.5, 0.0, 1.25],
            },
            "depth": {"type": "gauge", "values": [None, 2.0, -1.5]},
            'wait_seconds{replica="p1"}': {
                "type": "histogram",
                "boundaries": [0.1, 1.0],
                "counts": [[1, 0, 0], [0, 2, 0], [0, 0, 3]],
                "sums": [0.05, 0.9, 30.0],
                "totals": [1, 2, 3],
            },
            'wait_seconds{replica="p2"}': {
                "type": "histogram",
                "boundaries": [0.1, 1.0],
                "counts": [[0, 0, 0]] * 3,
                "sums": [0.0] * 3,
                "totals": [0] * 3,
            },
        },
    )


def test_timeline_codec_round_trip_is_exact():
    t = _rich_timeline()
    decoded = decode_timeline(encode_timeline(t))
    assert decoded == t
    assert decoded.to_dict() == t.to_dict()
    # Value types survive: int counters stay int, float counters float.
    assert all(isinstance(v, int) for v in decoded.deltas("int_total"))
    assert all(
        isinstance(v, float)
        for v in decoded.deltas('float_total{client="a"}')
    )
    assert decoded.values("depth")[0] is None


def test_timeline_codec_dedupes_boundary_tables():
    import json
    import struct

    payload = encode_timeline(_rich_timeline())
    header_len = struct.unpack_from("<III", payload, 0)[0]
    header = json.loads(payload[12 : 12 + header_len])
    assert header["boundaries"] == [[0.1, 1.0]]  # stored once, shared


def test_timeline_codec_rejects_unknown_version():
    payload = bytearray(encode_timeline(Timeline(1.0)))
    # Corrupt the version digit inside the JSON header.
    at = payload.find(b'"v":%d' % TIMELINE_CODEC_VERSION)
    payload[at + 4 : at + 5] = b"9"
    with pytest.raises(ValueError):
        decode_timeline(bytes(payload))


# ---------------------------------------------------------------------------
# Hypothesis: random timelines and snapshots round-trip exactly
# ---------------------------------------------------------------------------
_finite = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e12, max_value=1e12
)
_names = st.text(
    alphabet="abcdefgh_", min_size=1, max_size=8
).map(lambda s: s + "_total")


def _series_strategy(length):
    width = 3  # two boundaries + overflow
    counter = st.one_of(
        st.lists(st.integers(-1000, 1000), min_size=length, max_size=length),
        st.lists(_finite, min_size=length, max_size=length),
    ).map(lambda deltas: {"type": "counter", "deltas": deltas})
    gauge = st.lists(
        st.one_of(st.none(), _finite), min_size=length, max_size=length
    ).map(lambda values: {"type": "gauge", "values": values})
    histogram = st.tuples(
        st.lists(
            st.lists(st.integers(0, 50), min_size=width, max_size=width),
            min_size=length,
            max_size=length,
        ),
        st.lists(_finite, min_size=length, max_size=length),
        st.lists(st.integers(0, 500), min_size=length, max_size=length),
    ).map(
        lambda parts: {
            "type": "histogram",
            "boundaries": [0.1, 1.0],
            "counts": parts[0],
            "sums": parts[1],
            "totals": parts[2],
        }
    )
    return st.one_of(counter, gauge, histogram)


@st.composite
def _timelines(draw):
    length = draw(st.integers(0, 5))
    names = draw(
        st.lists(_names, min_size=0, max_size=5, unique=True)
    )
    series = {name: draw(_series_strategy(length)) for name in names}
    return Timeline(
        interval=draw(st.sampled_from([0.1, 0.25, 1.0, 5.0])),
        start=draw(st.integers(0, 100)),
        length=length,
        series=series,
    )


@settings(max_examples=60, deadline=None)
@given(_timelines())
def test_timeline_codec_round_trip_property(timeline):
    decoded = decode_timeline(encode_timeline(timeline))
    assert decoded == timeline
    assert decoded.to_dict() == timeline.to_dict()


@st.composite
def _snapshots(draw):
    names = draw(st.lists(_names, min_size=0, max_size=6, unique=True))
    out = {}
    for name in names:
        kind = draw(st.sampled_from(["counter", "gauge", "histogram"]))
        if kind == "histogram":
            boundaries = draw(
                st.sampled_from([[], [0.5], [0.1, 1.0, 10.0]])
            )
            counts = draw(
                st.lists(
                    st.integers(0, 100),
                    min_size=len(boundaries) + 1,
                    max_size=len(boundaries) + 1,
                )
            )
            out[name] = {
                "type": "histogram",
                "boundaries": boundaries,
                "counts": counts,
                "sum": draw(_finite),
                "count": sum(counts),
            }
        else:
            value = draw(st.one_of(st.integers(-(2**62), 2**62), _finite))
            out[name] = {"type": kind, "value": value}
    return out


@settings(max_examples=60, deadline=None)
@given(_snapshots())
def test_snapshot_codec_round_trip_property(snapshot):
    decoded = decode_snapshot(encode_snapshot(snapshot))
    assert decoded == snapshot
    for name, entry in decoded.items():
        want = snapshot[name]
        if entry["type"] in ("counter", "gauge"):
            assert type(entry["value"]) is type(want["value"])


# ---------------------------------------------------------------------------
# Recorder output is internally consistent with the registry
# ---------------------------------------------------------------------------
def test_recorder_totals_reconcile_with_final_registry_state():
    sim = Simulator()
    registry = MetricsRegistry()
    counter = registry.counter("ops_total")
    hist = registry.histogram("wait_seconds", boundaries=(0.1, 1.0))

    def work():
        counter.inc(2)
        hist.observe(0.05 * (1 + sim.now))

    for i in range(20):
        sim.schedule(0.3 * (i + 1), work)
    recorder = TimeseriesRecorder(sim, registry, interval=1.0).start()
    sim.run(until=6.2)  # past the last work event, mid-tick
    recorder.flush()
    timeline = recorder.timeline()
    snap = registry.snapshot()
    assert sum(timeline.deltas("ops_total")) == snap["ops_total"]["value"]
    entry = timeline.series["wait_seconds"]
    assert sum(entry["totals"]) == snap["wait_seconds"]["count"]
    assert sum(entry["sums"]) == pytest.approx(snap["wait_seconds"]["sum"])
    columns = [
        sum(row[i] for row in entry["counts"])
        for i in range(len(snap["wait_seconds"]["counts"]))
    ]
    assert columns == snap["wait_seconds"]["counts"]
