"""Metrics registry: instruments, snapshots, merge/diff, exporters."""

import json

import pytest

from repro.obs.export import (
    metrics_event,
    prometheus_text,
    summarize_histogram,
    write_jsonl,
)
from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    MetricsRegistry,
    NULL_METRICS,
    decode_snapshot,
    encode_snapshot,
)


# ---------------------------------------------------------------------------
# Instruments
# ---------------------------------------------------------------------------
def test_counter_and_gauge_basics():
    registry = MetricsRegistry()
    counter = registry.counter("requests")
    counter.inc()
    counter.inc(3)
    assert counter.value == 4
    gauge = registry.gauge("depth")
    gauge.set(7.0)
    gauge.dec(2.0)
    assert gauge.value == 5.0


def test_instruments_memoized_per_label_set():
    registry = MetricsRegistry()
    a = registry.counter("reads", client="c1")
    b = registry.counter("reads", client="c1")
    c = registry.counter("reads", client="c2")
    assert a is b
    assert a is not c


def test_type_conflict_raises():
    registry = MetricsRegistry()
    registry.counter("thing")
    with pytest.raises(TypeError):
        registry.gauge("thing")


def test_histogram_buckets_mean_and_quantile():
    registry = MetricsRegistry()
    hist = registry.histogram("lat", boundaries=(0.1, 1.0, 10.0))
    for value in (0.05, 0.5, 0.5, 5.0, 50.0):
        hist.observe(value)
    assert hist.count == 5
    assert hist.counts == [1, 2, 1, 1]  # last is overflow
    assert hist.mean == pytest.approx(56.05 / 5)
    assert hist.quantile(0.5) == 1.0


def test_default_time_buckets_are_log_scale():
    assert DEFAULT_TIME_BUCKETS[0] == pytest.approx(1e-4)
    ratios = [
        b / a for a, b in zip(DEFAULT_TIME_BUCKETS, DEFAULT_TIME_BUCKETS[1:])
    ]
    assert all(r == pytest.approx(2.0) for r in ratios)


def test_disabled_registry_hands_out_noops():
    registry = MetricsRegistry(enabled=False)
    counter = registry.counter("x")
    counter.inc(100)
    assert counter.value == 0
    hist = registry.histogram("y")
    hist.observe(1.0)
    assert hist.count == 0
    assert registry.snapshot() == {}
    assert NULL_METRICS.counter("z") is NULL_METRICS.histogram("z")


# ---------------------------------------------------------------------------
# Snapshot / merge / diff
# ---------------------------------------------------------------------------
def make_snapshot(reads, depth, observations):
    registry = MetricsRegistry()
    registry.counter("reads", client="c").inc(reads)
    registry.gauge("depth").set(depth)
    hist = registry.histogram("lat", boundaries=(1.0, 2.0))
    for value in observations:
        hist.observe(value)
    return registry.snapshot()


def test_snapshot_shape():
    snap = make_snapshot(3, 5.0, [0.5, 1.5])
    assert snap['reads{client="c"}'] == {"type": "counter", "value": 3}
    assert snap["depth"] == {"type": "gauge", "value": 5.0}
    assert snap["lat"]["counts"] == [1, 1, 0]
    assert snap["lat"]["count"] == 2


def test_merge_counters_add_gauges_max_histograms_add():
    a = make_snapshot(3, 5.0, [0.5])
    b = make_snapshot(4, 2.0, [1.5, 3.0])
    merged = MetricsRegistry.merge(a, b)
    assert merged['reads{client="c"}']["value"] == 7
    assert merged["depth"]["value"] == 5.0
    assert merged["lat"]["counts"] == [1, 1, 1]
    assert merged["lat"]["count"] == 3


def test_merge_is_commutative():
    a = make_snapshot(3, 5.0, [0.5])
    b = make_snapshot(4, 2.0, [1.5])
    c = make_snapshot(1, 9.0, [])
    assert MetricsRegistry.merge(a, b, c) == MetricsRegistry.merge(c, b, a)


def test_merge_does_not_mutate_inputs():
    a = make_snapshot(3, 5.0, [0.5])
    b = make_snapshot(4, 2.0, [1.5])
    before = json.loads(json.dumps(a))
    MetricsRegistry.merge(a, b)
    assert a == before


def test_merge_rejects_mismatched_boundaries():
    registry = MetricsRegistry()
    registry.histogram("lat", boundaries=(1.0,)).observe(0.5)
    other = MetricsRegistry()
    other.histogram("lat", boundaries=(2.0,)).observe(0.5)
    with pytest.raises(ValueError):
        MetricsRegistry.merge(registry.snapshot(), other.snapshot())


def test_diff_reports_deltas():
    old = make_snapshot(3, 5.0, [0.5])
    new = make_snapshot(10, 1.0, [0.5, 1.5])
    delta = MetricsRegistry.diff(new, old)
    assert delta['reads{client="c"}']["value"] == 7
    assert delta["depth"]["value"] == 1.0  # gauges report the new value
    assert delta["lat"]["count"] == 1


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------
def test_prometheus_text_counters_and_types():
    text = prometheus_text(make_snapshot(3, 5.0, []))
    assert "# TYPE reads counter" in text
    assert 'reads{client="c"} 3' in text
    assert "# TYPE depth gauge" in text


def test_prometheus_histogram_expansion_is_cumulative():
    text = prometheus_text(make_snapshot(0, 0.0, [0.5, 1.5, 5.0]))
    lines = [l for l in text.splitlines() if l.startswith("lat")]
    assert 'lat_bucket{le="1"} 1' in lines
    assert 'lat_bucket{le="2"} 2' in lines
    assert 'lat_bucket{le="+Inf"} 3' in lines
    assert "lat_count 3" in lines


def test_prometheus_labelled_histogram_splices_le():
    registry = MetricsRegistry()
    registry.histogram("lat", boundaries=(1.0,), replica="r1").observe(0.5)
    text = prometheus_text(registry.snapshot())
    assert 'lat_bucket{replica="r1",le="1"} 1' in text


def test_metrics_event_and_write_jsonl(tmp_path):
    snap = make_snapshot(2, 0.0, [])
    record = metrics_event(snap, kind="cell", time=1.5, seed=7)
    path = write_jsonl(tmp_path / "sub" / "m.jsonl", [record])
    parsed = [json.loads(line) for line in path.read_text().splitlines()]
    assert parsed[0]["event"] == "cell"
    assert parsed[0]["time"] == 1.5
    assert parsed[0]["seed"] == 7
    assert parsed[0]["metrics"]['reads{client="c"}']["value"] == 2


def test_summarize_histogram():
    snap = make_snapshot(0, 0.0, [0.5, 0.5, 1.5, 5.0])
    summary = summarize_histogram(snap["lat"])
    assert summary["count"] == 4
    assert summary["mean"] == pytest.approx(7.5 / 4)
    assert summary["p50"] == 1.0
    assert summarize_histogram({"count": 0}) == {
        "count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0,
    }


# ---------------------------------------------------------------------------
# Compact snapshot codec (parallel-runner wire format)
# ---------------------------------------------------------------------------
def test_codec_round_trip_is_exact():
    registry = MetricsRegistry()
    registry.counter("reads", client="c1").inc(41)
    registry.counter("reads", client="c2").inc(7)
    registry.gauge("depth").set(3.25)
    registry.gauge("interval").set(2.0)
    hist = registry.histogram("latency", client="c1")
    for value in (0.0001, 0.004, 0.004, 1.5, 500.0):
        hist.observe(value)
    registry.histogram("latency", client="c2").observe(0.02)
    snapshot = registry.snapshot()
    payload = encode_snapshot(snapshot)
    assert isinstance(payload, bytes)
    decoded = decode_snapshot(payload)
    assert decoded == snapshot
    # ...including value *types*: counters stay int, gauges stay float.
    assert isinstance(decoded['reads{client="c1"}']["value"], int)
    assert isinstance(decoded["depth"]["value"], float)
    assert isinstance(decoded['latency{client="c1"}']["sum"], float)
    assert isinstance(decoded['latency{client="c1"}']["count"], int)


def test_codec_deduplicates_shared_boundary_tables():
    registry = MetricsRegistry()
    for i in range(40):
        registry.histogram("h", client=f"c{i}").observe(0.01 * i)
    payload = encode_snapshot(registry.snapshot())
    # 40 histograms share DEFAULT_TIME_BUCKETS: one table, not 40 copies.
    header_len = int.from_bytes(payload[0:4], "little")
    header = json.loads(payload[12 : 12 + header_len].decode("utf-8"))
    assert len(header["boundaries"]) == 1


def test_codec_preserves_exact_floats():
    registry = MetricsRegistry()
    registry.gauge("g").set(0.1 + 0.2)  # 0.30000000000000004
    h = registry.histogram("h")
    h.observe(1e-300)
    h.observe(1.7976931348623157e308)
    snapshot = registry.snapshot()
    assert decode_snapshot(encode_snapshot(snapshot)) == snapshot


def test_codec_empty_and_merge_compatible():
    assert decode_snapshot(encode_snapshot({})) == {}
    a = MetricsRegistry()
    a.counter("n").inc(2)
    b = MetricsRegistry()
    b.counter("n").inc(3)
    via_codec = MetricsRegistry.merge(
        decode_snapshot(encode_snapshot(a.snapshot())),
        decode_snapshot(encode_snapshot(b.snapshot())),
    )
    assert via_codec == MetricsRegistry.merge(a.snapshot(), b.snapshot())
    assert via_codec["n"]["value"] == 5


def test_codec_rejects_unknown_version():
    payload = bytearray(encode_snapshot({"n": {"type": "counter", "value": 1}}))
    header_len = int.from_bytes(payload[0:4], "little")
    header = json.loads(payload[12 : 12 + header_len].decode("utf-8"))
    header["v"] = 99
    new_header = json.dumps(header, separators=(",", ":")).encode("utf-8")
    rebuilt = (
        len(new_header).to_bytes(4, "little")
        + payload[4:12]
        + new_header
        + payload[12 + header_len :]
    )
    with pytest.raises(ValueError, match="codec version"):
        decode_snapshot(bytes(rebuilt))
