"""Calibration tracker: reliability buckets, Brier score, merge."""

import random

import pytest

from repro.obs.calibration import CalibrationTracker


def test_bucketing_and_counts():
    tracker = CalibrationTracker(buckets=10)
    tracker.observe("s", 0.95, True)
    tracker.observe("s", 0.91, False)
    tracker.observe("s", 0.15, True)
    rows = tracker.reliability("s")
    assert [(r.low, r.count) for r in rows] == [(0.1, 1), (0.9, 2)]
    top = rows[-1]
    assert top.timely == 1
    assert top.observed == 0.5
    assert top.mean_predicted == pytest.approx(0.93)


def test_predictions_clamped_to_unit_interval():
    tracker = CalibrationTracker(buckets=4)
    tracker.observe("s", 1.7, True)
    tracker.observe("s", -0.3, False)
    rows = tracker.reliability("s")
    assert rows[0].low == 0.0 and rows[-1].high == 1.0
    assert tracker.observations("s") == 2


def test_brier_score():
    tracker = CalibrationTracker()
    tracker.observe("s", 1.0, True)   # perfect: 0
    tracker.observe("s", 0.0, True)   # worst: 1
    assert tracker.brier_score("s") == pytest.approx(0.5)
    assert tracker.brier_score("missing") == 0.0


def test_honest_forecaster_is_well_calibrated():
    rng = random.Random(7)
    tracker = CalibrationTracker()
    for _ in range(2000):
        p = rng.uniform(0.3, 1.0)
        tracker.observe("s", p, rng.random() < p)
    assert tracker.well_calibrated("s")


def test_dishonest_forecaster_is_not_well_calibrated():
    rng = random.Random(7)
    tracker = CalibrationTracker()
    for _ in range(2000):
        # Claims 95 % but delivers a coin flip.
        tracker.observe("s", 0.95, rng.random() < 0.5)
    assert not tracker.well_calibrated("s")


def test_well_calibrated_ignores_sparse_buckets():
    tracker = CalibrationTracker()
    # 3 inconsistent samples: far too few to fail the check on their own.
    for _ in range(3):
        tracker.observe("s", 0.95, False)
    assert not tracker.well_calibrated("s")  # no bucket with >= 10 samples
    for _ in range(50):
        tracker.observe("s", 0.55, True)
        tracker.observe("s", 0.55, False)
    assert tracker.well_calibrated("s", min_count=10)


def test_round_trip_and_merge():
    a = CalibrationTracker()
    b = CalibrationTracker()
    for _ in range(20):
        a.observe("s", 0.9, True)
        b.observe("s", 0.9, True)
        b.observe("t", 0.4, False)
    merged = CalibrationTracker.merge([a.to_dict(), None, b.to_dict()])
    assert merged.observations("s") == 40
    assert merged.observations("t") == 20
    assert merged.strategies() == ["s", "t"]
    clone = CalibrationTracker.from_dict(merged.to_dict())
    assert clone.to_dict() == merged.to_dict()


def test_merge_order_independent():
    a = CalibrationTracker()
    b = CalibrationTracker()
    a.observe("s", 0.8, True)
    b.observe("s", 0.2, False)
    ab = CalibrationTracker.merge([a.to_dict(), b.to_dict()]).to_dict()
    ba = CalibrationTracker.merge([b.to_dict(), a.to_dict()]).to_dict()
    assert ab == ba


def test_merge_rejects_bucket_mismatch():
    a = CalibrationTracker(buckets=10)
    b = CalibrationTracker(buckets=5)
    a.observe("s", 0.5, True)
    b.observe("s", 0.5, True)
    with pytest.raises(ValueError):
        CalibrationTracker.merge([a.to_dict(), b.to_dict()])


def test_rejects_bad_bucket_count():
    with pytest.raises(ValueError):
        CalibrationTracker(buckets=0)
