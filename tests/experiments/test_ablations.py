"""Smoke tests for the ablation studies (small request counts)."""

import pytest

from repro.experiments.ablations import (
    baseline_comparison,
    baseline_strategies,
    failover_study,
    lui_sweep,
    staleness_sweep,
    window_sweep,
)


def test_lui_sweep_rows_and_trend():
    rows = lui_sweep(luis=(0.5, 8.0), total_requests=60, deadline=0.160)
    assert [r.label for r in rows] == ["LUI=0.5s", "LUI=8s"]
    # A much longer LUI leaves secondaries staler: more replicas selected
    # or more deferrals (weak-form check to stay robust at small n).
    assert (
        rows[1].avg_replicas_selected >= rows[0].avg_replicas_selected
        or rows[1].deferred_fraction >= rows[0].deferred_fraction
    )


def test_staleness_sweep_relaxing_threshold_never_hurts():
    rows = staleness_sweep(thresholds=(0, 16), total_requests=60)
    assert rows[0].avg_replicas_selected >= rows[1].avg_replicas_selected - 0.5


def test_window_sweep_runs():
    rows = window_sweep(windows=(5, 20), total_requests=40)
    assert len(rows) == 2
    assert all(r.mean_response_time_ms > 0 for r in rows)


def test_baseline_comparison_includes_all_strategies():
    rows = baseline_comparison(total_requests=40)
    labels = {r.label for r in rows}
    assert labels == set(baseline_strategies())
    by_label = {r.label: r for r in rows}
    assert by_label["all-replicas"].avg_replicas_selected == pytest.approx(10.0)
    assert by_label["random-single"].avg_replicas_selected == pytest.approx(1.0)
    # Algorithm 1 uses far fewer replicas than all-replicas.
    assert by_label["algorithm-1"].avg_replicas_selected < 8.0


@pytest.mark.parametrize("crash", ["sequencer", "publisher", "secondary"])
def test_failover_study_converges(crash):
    result = failover_study(crash, total_requests=60, crash_after=10.0)
    assert result.updates_converged
    assert result.reads == 30
    assert result.final_sequencer is not None


def test_failover_study_rejects_unknown_target():
    with pytest.raises(ValueError):
        failover_study("nonsense", total_requests=10)


@pytest.mark.slow
def test_deferral_model_study_direction():
    from repro.experiments.ablations import deferral_model_study

    rows = deferral_model_study(reads_per_client=15)
    paper, aware = rows
    assert aware.timing_failure_probability <= paper.timing_failure_probability
    assert aware.avg_replicas_selected >= paper.avg_replicas_selected


@pytest.mark.slow
def test_overload_study_routes_around_slow_replica():
    from repro.experiments.ablations import overload_study

    result = overload_study(phase_length=25.0)
    assert result.share_during < result.share_before
    assert result.share_after > result.share_during
    assert result.failure_rate_during <= 0.15


@pytest.mark.slow
def test_adaptive_lui_study_beats_static():
    from repro.experiments.ablations import adaptive_lui_study

    rows = adaptive_lui_study(phase_length=30.0)
    assert [r.label.startswith(p) for r, p in zip(rows, ("static", "static", "adaptive"))]
    adaptive = rows[2]
    assert adaptive.staleness_target_hit_fraction >= 0.85
    assert adaptive.staleness_target_hit_fraction >= max(
        rows[0].staleness_target_hit_fraction,
        rows[1].staleness_target_hit_fraction,
    )
