"""Parallel-runner telemetry equality: --jobs N must not change totals.

Each cell's registry snapshot is produced in whatever worker process ran
the cell; MetricsRegistry.merge and CalibrationTracker.merge are
commutative folds, so the merged totals must be byte-identical whatever
the job count or scheduling order.
"""

from repro.experiments.figure4 import merged_telemetry, run_figure4

GRID = dict(
    deadlines_ms=(120, 200),
    probabilities=(0.9,),
    lazy_intervals=(2.0,),
    total_requests=60,
    seed=3,
    collect_metrics=True,
)


def drop_wall_clock(snapshot):
    """The selection-overhead histogram times *wall-clock* CPU work (like
    the Figure 3 measurement), so it is legitimately nondeterministic; all
    simulation-derived series must match exactly."""
    return {
        series: entry
        for series, entry in snapshot.items()
        if not series.startswith("client_selection_overhead_seconds")
    }


def test_jobs4_metrics_equal_jobs1():
    serial = run_figure4(jobs=1, **GRID)
    parallel = run_figure4(jobs=4, **GRID)

    metrics_1, calibration_1 = merged_telemetry(serial)
    metrics_4, calibration_4 = merged_telemetry(parallel)
    assert drop_wall_clock(metrics_1) == drop_wall_clock(metrics_4)
    assert calibration_1 == calibration_4
    # Sanity: the telemetry is real, not two empty dicts agreeing.
    reads = [
        entry["value"]
        for series, entry in metrics_1.items()
        if series.startswith("client_reads_issued")
    ]
    assert sum(reads) > 0
    assert calibration_1 is not None
    assert sum(calibration_1["strategies"]["state-based"]["count"]) > 0


def test_every_cell_carries_its_own_snapshot():
    result = run_figure4(jobs=2, **GRID)
    for cell in result.cells.values():
        assert cell.metrics is not None
        assert cell.calibration is not None
        assert any(
            series.startswith("client_reads_issued")
            for series in cell.metrics
        )


def test_metrics_off_by_default():
    result = run_figure4(
        jobs=1,
        deadlines_ms=(200,),
        probabilities=(0.9,),
        lazy_intervals=(2.0,),
        total_requests=20,
        seed=3,
    )
    cell = next(iter(result.cells.values()))
    assert cell.metrics is None
    assert cell.calibration is None
