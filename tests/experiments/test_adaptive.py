"""Adaptive campaign: decision audits, cells, scoring, bit-identity."""

from __future__ import annotations

import json

import pytest

from repro.core.controller import ControllerConfig
from repro.experiments.adaptive import (
    ADAPTIVE_CONFIG,
    STATIC_GRID,
    AdaptiveCellResult,
    audit_decisions,
    check_bit_identity,
    pooled_score,
    run_adaptive_cell,
    satisfaction_from_signals,
)
from repro.workloads.scenarios import OPERATION_CLASSES


CFG = ControllerConfig(
    epoch=0.5, cooldown_epochs=2, hold_epochs=2, max_relax_steps=2,
    t_l_min=0.05, t_l_max=1.2,
)
CLASSES = {cls.name: cls for cls in OPERATION_CLASSES}


def decision(
    epoch,
    *,
    t_l=0.3,
    index=0,
    state="measure",
    regression=False,
    rollback=False,
    actions=(),
    knobs=None,
):
    return {
        "epoch": epoch,
        "time": epoch * 0.5,
        "previous_state": state,
        "state": state,
        "relax_index": index,
        "last_good_index": 0,
        "regression": regression,
        "healthy": not regression,
        "rollback": rollback,
        "t_l": t_l,
        "knobs": knobs or {},
        "ladder_level": 0,
        "actions": list(actions),
        "signals": {},
    }


# ---------------------------------------------------------------------------
# audit_decisions
# ---------------------------------------------------------------------------
def test_audit_clean_log_passes():
    log = [
        decision(1),
        decision(2, actions=["relax:0->1"], index=1, t_l=0.6),
        decision(4, actions=["relax:1->2"], index=2, t_l=1.2),
        decision(
            5, regression=True, rollback=True, index=0, actions=["rollback:2->0"]
        ),
        decision(8, actions=["relax:0->1"], index=1, t_l=0.6),
    ]
    assert audit_decisions(log, CFG, CLASSES) == []


def test_audit_flags_t_l_out_of_bounds():
    log = [decision(1, t_l=5.0)]
    violations = audit_decisions(log, CFG, CLASSES)
    assert any("bounds" in v and "T_L" in v for v in violations)


def test_audit_flags_index_out_of_bounds():
    log = [decision(1, index=CFG.max_relax_steps + 1)]
    violations = audit_decisions(log, CFG, CLASSES)
    assert any("relax index" in v for v in violations)


def test_audit_flags_knobs_past_class_guardrails():
    cart = CLASSES["cart"]
    bad = {
        "cart": {
            "staleness_threshold": cart.bounds.staleness_ceiling + 1,
            "min_probability": cart.bounds.probability_floor - 0.05,
        }
    }
    violations = audit_decisions([decision(1, knobs=bad)], CFG, CLASSES)
    assert any("above ceiling" in v for v in violations)
    assert any("below floor" in v for v in violations)


def test_audit_flags_unrolled_regression_while_relaxed():
    log = [
        decision(1, index=1),
        decision(2, index=1, regression=True),  # regressed, no rollback
    ]
    violations = audit_decisions(log, CFG, CLASSES)
    assert any("without rolling back" in v for v in violations)


def test_audit_flags_rollback_that_does_not_decrease_index():
    log = [
        decision(1, index=1),
        decision(2, index=1, regression=True, rollback=True),
    ]
    violations = audit_decisions(log, CFG, CLASSES)
    assert any("claimed a rollback" in v for v in violations)


def test_audit_flags_relaxes_closer_than_cooldown():
    log = [
        decision(1, actions=["relax:0->1"], index=1, t_l=0.6),
        decision(2, actions=["relax:1->2"], index=2, t_l=1.2),
    ]
    violations = audit_decisions(log, CFG, CLASSES)
    assert any("anti-flap" in v and "cooldown" in v for v in violations)


def test_audit_flags_relax_inside_post_rollback_hold():
    log = [
        decision(1, index=1),
        decision(
            2, index=0, regression=True, rollback=True,
            actions=["rollback:1->0"],
        ),
        decision(3, index=1, actions=["relax:0->1"], t_l=0.6),
    ]
    violations = audit_decisions(log, CFG, CLASSES)
    assert any("hold after rollback" in v for v in violations)


# ---------------------------------------------------------------------------
# Scoring helpers
# ---------------------------------------------------------------------------
def test_satisfaction_excludes_the_staleness_guard():
    signals = {
        "timeliness-a": {"compliance": 0.95, "objective": 0.95},
        "timeliness-b": {"compliance": 0.99, "objective": 0.90},  # capped at 1
        "staleness-guard": {"compliance": 0.10, "objective": 0.70},
    }
    assert satisfaction_from_signals(signals) == pytest.approx(1.0)
    assert satisfaction_from_signals({}) == 0.0
    assert (
        satisfaction_from_signals(
            {"staleness-guard": {"compliance": 0.1, "objective": 0.7}}
        )
        == 0.0
    )


def _cell(mode, satisfaction, cost):
    return AdaptiveCellResult(
        seed=0,
        mode=mode,
        duration=1.0,
        violations=[],
        storms=0,
        satisfaction=satisfaction,
        compliance={},
        cost_per_read=cost,
        reads_judged=100,
        replicas_selected=200,
        lazy_messages=10,
        rollbacks=0,
        relaxes=0,
        final_relax_index=0,
    )


def test_pooled_score_is_mean_satisfaction_over_mean_cost():
    results = [
        _cell("controller", 0.9, 2.0),
        _cell("controller", 1.0, 3.0),
        _cell("static-0", 0.5, 2.0),
    ]
    assert pooled_score(results, "controller") == pytest.approx(0.95 / 2.5)
    assert pooled_score(results, "static-0") == pytest.approx(0.25)
    assert pooled_score(results, "static-1") == 0.0


def test_cell_score_and_clean():
    cell = _cell("controller", 0.8, 2.0)
    assert cell.score == pytest.approx(0.4)
    assert cell.clean
    cell.violations.append("x")
    assert not cell.clean


# ---------------------------------------------------------------------------
# One real cell end to end (small)
# ---------------------------------------------------------------------------
@pytest.mark.slow
def test_controller_cell_runs_and_audits_clean():
    result = run_adaptive_cell(31, "controller", duration=5.0)
    assert result.violations == []
    assert result.reads_judged > 0
    assert result.cost_per_read > 0
    assert result.decisions, "controller cell must log decisions"
    assert set(result.compliance) == {
        f"timeliness-{cls.name}" for cls in OPERATION_CLASSES
    }
    json.dumps(result.decisions)  # artifact-safe


@pytest.mark.slow
def test_static_cell_pins_knobs_open_loop():
    result = run_adaptive_cell(31, "static-1", duration=4.0)
    assert result.violations == []
    assert result.rollbacks == 0 and result.relaxes == 0
    assert result.final_relax_index == 1
    assert not result.decisions


def test_static_grid_covers_the_ladder():
    assert STATIC_GRID[0] == 0
    assert list(STATIC_GRID) == sorted(STATIC_GRID)
    assert ADAPTIVE_CONFIG.max_relax_steps <= max(STATIC_GRID)


# ---------------------------------------------------------------------------
# Bit-identity property: a disabled/dry controller is invisible
# ---------------------------------------------------------------------------
@pytest.mark.slow
def test_dry_run_controller_is_bit_identical_to_no_controller():
    assert check_bit_identity(seed=5, duration=3.0) == []
