"""End-to-end timeline plumbing through the figure-4 harness.

Covers the observability acceptance criteria: recorder-off purity (the
telemetry path must not perturb results), parallel-runner determinism
(modulo the one wall-clock series), the cell codec round trip, the
merged-timeline artifact, and per-read staleness-attribution additivity.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.experiments.figure4 import (
    merged_timeline,
    run_figure4,
    write_metrics_artifact,
)
from repro.experiments.harness import (
    pack_figure4_cell,
    run_figure4_cell,
    unpack_figure4_cell,
)
from repro.obs.timeseries import Timeline
from repro.sim.tracing import Trace
from repro.workloads.scenarios import build_paper_scenario

#: Figure-3 selection overhead is measured with ``perf_counter`` — real
#: wall-clock seconds — so it is the one series allowed to differ between
#: serial and parallel runs of the same seeded cell.
WALLCLOCK_PREFIX = "client_selection_overhead_seconds"

QUICK = dict(
    deadline=0.200,
    min_probability=0.5,
    lazy_update_interval=4.0,
    total_requests=100,
    seed=7,
)


def _strip_wallclock(timeline: Timeline) -> Timeline:
    series = {
        name: entry
        for name, entry in timeline.series.items()
        if not name.startswith(WALLCLOCK_PREFIX)
    }
    return Timeline(
        timeline.interval, timeline.start, timeline.length, series
    )


@pytest.fixture(scope="module")
def quick_cell_with_timeline():
    return run_figure4_cell(timeseries=5.0, **QUICK)


def test_recorder_off_leaves_results_bit_identical(quick_cell_with_timeline):
    """The recorder must be a pure observer: same cell with it disabled."""
    plain = run_figure4_cell(**QUICK)
    assert plain.timeline is None and plain.metrics is None
    for field in dataclasses.fields(plain):
        if field.name in ("metrics", "calibration", "timeline"):
            continue
        assert getattr(plain, field.name) == getattr(
            quick_cell_with_timeline, field.name
        ), field.name


def test_timeline_totals_match_cell_summary(quick_cell_with_timeline):
    cell = quick_cell_with_timeline
    timeline = Timeline.from_dict(cell.timeline)
    judged = sum(
        sum(entry["deltas"])
        for name, entry in timeline.series.items()
        if name.startswith("client_reads_judged")
    )
    # Both clients judge reads; client 2 alone contributes ``cell.reads``.
    assert (
        sum(
            timeline.series['client_reads_judged{client="client-2"}'][
                "deltas"
            ]
        )
        == cell.reads
    )
    assert judged >= cell.reads


def test_pack_unpack_round_trips_timeline(quick_cell_with_timeline):
    cell = quick_cell_with_timeline
    packed = pack_figure4_cell(cell)
    assert isinstance(packed.timeline, bytes)
    unpacked = unpack_figure4_cell(packed)
    assert unpacked.timeline == cell.timeline
    assert unpacked == cell


@pytest.mark.slow
def test_parallel_runner_merges_identical_timelines(tmp_path):
    kwargs = dict(
        deadlines_ms=[80, 200],
        probabilities=[0.5],
        lazy_intervals=[4.0],
        total_requests=60,
        seed=11,
        timeseries=5.0,
    )
    serial = run_figure4(jobs=1, **kwargs)
    parallel = run_figure4(jobs=2, **kwargs)
    assert set(serial.cells) == set(parallel.cells)
    for key in serial.cells:
        a = _strip_wallclock(Timeline.from_dict(serial.cells[key].timeline))
        b = _strip_wallclock(
            Timeline.from_dict(parallel.cells[key].timeline)
        )
        assert a == b, key

    merged = merged_timeline(serial)
    assert merged is not None
    assert _strip_wallclock(merged) == _strip_wallclock(
        Timeline.merge(
            *(
                Timeline.from_dict(c.timeline)
                for c in serial.cells.values()
            )
        )
    )

    out = tmp_path / "metrics.jsonl"
    write_metrics_artifact(str(out), serial)
    records = [json.loads(line) for line in out.read_text().splitlines()]
    events = [r["event"] for r in records]
    assert "timeline" in events
    payload = next(r for r in records if r["event"] == "timeline")
    assert payload["kind"] == "merged"
    restored = Timeline.from_dict(payload["timeline"])
    assert _strip_wallclock(restored) == _strip_wallclock(merged)


def test_attribution_components_sum_to_observed_staleness():
    """Per-read decomposition additivity on a cell that actually defers."""
    trace = Trace()
    scenario = build_paper_scenario(
        deadline=0.080,
        min_probability=0.5,
        lazy_update_interval=4.0,
        total_requests=80,
        seed=3,
        trace=trace,
    )
    scenario.run()
    records = trace.filter(category="replica.attribution")
    assert records, "deferring cell produced no attribution records"
    positive = 0
    for record in records:
        detail = record.detail
        reconstructed = (
            detail["lazy_publisher"] + detail["queue"] + detail["network"]
        )
        assert abs(detail["observed"] - reconstructed) < 1e-9
        if detail["observed"] > 0:
            positive += 1
    assert positive > 0
