"""The ``repro dash`` renderer: sparklines, selection, HTML export, CLI."""

from __future__ import annotations

import json

import pytest

from repro.experiments.dashboard import (
    default_slos,
    export_html,
    load_controller_records,
    load_timeline_records,
    main,
    render_controller,
    render_dashboard,
    render_timeline,
    select_timeline,
    sparkline,
)
from repro.experiments.report import write_experiment_artifact
from repro.obs.slo import SloEngine
from repro.obs.timeseries import Timeline


def _timeline(length=8):
    return Timeline(
        1.0,
        start=0,
        length=length,
        series={
            'client_reads_judged{client="a"}': {
                "type": "counter",
                "deltas": [10] * length,
            },
            'client_timing_failures{client="a"}': {
                "type": "counter",
                "deltas": [2] + [0] * (length - 1),
            },
            "queue_depth": {
                "type": "gauge",
                "values": [float(i) for i in range(length)],
            },
            "wait_seconds": {
                "type": "histogram",
                "boundaries": [0.1, 1.0],
                "counts": [[1, 1, 0]] * length,
                "sums": [0.6] * length,
                "totals": [2] * length,
            },
        },
    )


def test_sparkline_shapes():
    assert sparkline([]) == ""
    flat = sparkline([0.0, 0.0, 0.0])
    assert len(flat) == 3 and len(set(flat)) == 1
    line = sparkline([0.0, 1.0, 2.0, 4.0])
    assert len(line) == 4
    assert line[0] != line[-1]  # normalized to the max
    # Longer series bucket down to the requested width.
    assert len(sparkline(list(range(1000)), width=40)) == 40


def test_render_timeline_lists_active_series():
    text = render_timeline(_timeline())
    assert "8 ticks x 1s" in text
    assert 'client_reads_judged{client="a"}' in text
    assert "wait_seconds p95" in text
    assert render_timeline(Timeline(1.0)) == "(empty timeline)"


def test_default_slos_cover_judged_clients():
    specs = default_slos(_timeline(), objective=0.9)
    assert any(s.client == "a" and s.kind == "timeliness" for s in specs)
    with_stale = default_slos(
        _timeline(), objective=0.9, staleness_bound=0.5
    )
    assert len(with_stale) >= len(specs)


def test_render_dashboard_includes_slo_table():
    timeline = _timeline()
    specs = default_slos(timeline, objective=0.9)
    reports = SloEngine(specs).evaluate(timeline)
    text = render_dashboard(timeline, reports)
    assert "compliance" in text
    assert "timeliness" in text


def test_export_html_is_self_contained(tmp_path):
    timeline = _timeline()
    specs = default_slos(timeline, objective=0.9)
    reports = SloEngine(specs).evaluate(timeline)
    out = export_html(tmp_path / "dash.html", timeline, reports)
    html = out.read_text()
    assert html.startswith("<!doctype html>")
    assert "<svg" in html
    assert "src=" not in html  # no external assets


@pytest.fixture()
def artifact(tmp_path):
    path = tmp_path / "metrics.jsonl"
    records = [
        {
            "event": "timeline",
            "kind": "cell",
            "mode": "shed",
            "timeline": _timeline(4).to_dict(),
        },
        {
            "event": "timeline",
            "kind": "merged",
            "timeline": _timeline(8).to_dict(),
        },
    ]
    write_experiment_artifact(path, "dashtest", records, seed=1)
    return path


def test_load_and_select_prefers_merged(artifact):
    meta, records = load_timeline_records(artifact)
    assert meta["experiment"] == "dashtest"
    assert len(records) == 2
    assert select_timeline(records).length == 8
    assert select_timeline(records, {"kind": "cell"}).length == 4
    assert select_timeline(records, {"mode": "missing"}) is None


def test_cli_renders_and_exports_html(artifact, tmp_path, capsys):
    html = tmp_path / "dash.html"
    code = main([str(artifact), "--html", str(html)])
    assert code == 0
    out = capsys.readouterr().out
    assert "repro dash" in out and "dashtest" in out
    assert html.exists()


def test_cli_watch_stops_after_iterations(artifact, capsys):
    code = main([str(artifact), "--watch", "0.01", "--iterations", "2"])
    assert code == 0
    assert capsys.readouterr().out.count("dashtest") >= 2


def test_cli_reports_missing_timeline(tmp_path, capsys):
    path = tmp_path / "empty.jsonl"
    path.write_text(json.dumps({"event": "meta", "experiment": "x"}) + "\n")
    assert main([str(path)]) == 1
    assert "no timeline" in capsys.readouterr().err.lower()


# ---------------------------------------------------------------------------
# Closed-loop controller panel
# ---------------------------------------------------------------------------
def _controller_record(mode="controller", seed=7):
    def d(epoch, state, index, t_l, actions=()):
        return {
            "epoch": epoch,
            "time": epoch * 0.5,
            "state": state,
            "relax_index": index,
            "t_l": t_l,
            "actions": list(actions),
        }

    return {
        "event": "controller",
        "mode": mode,
        "seed": seed,
        "decisions": [
            d(1, "conservative", 0, 0.3),
            d(2, "measure", 0, 0.3),
            d(3, "relax", 1, 0.6, ["relax:0->1"]),
            d(4, "rollback", 0, 0.3, ["rollback:1->0"]),
            d(5, "measure", 0, 0.3),
        ],
    }


def test_render_controller_panel():
    text = render_controller([_controller_record()])
    assert "closed-loop controller" in text
    assert "mode=controller seed=7" in text
    assert "5 epochs, 1 relaxes, 1 rollbacks" in text
    assert "index" in text and "T_L" in text and "state" in text
    assert "rollback:1->0" in text
    # Empty/decision-free inputs render nothing rather than a bare title.
    assert render_controller([]) == ""
    assert render_controller([{"event": "controller", "decisions": []}]) == ""


def test_load_controller_records_filters_events(tmp_path):
    path = tmp_path / "metrics.jsonl"
    record = _controller_record()
    write_experiment_artifact(
        path,
        "adaptive",
        [record, {"event": "cell", "mode": "static-0"}],
        seed=1,
    )
    loaded = load_controller_records(path)
    assert len(loaded) == 1
    assert loaded[0]["mode"] == "controller"
    assert len(loaded[0]["decisions"]) == 5


def test_export_html_includes_controller_section(tmp_path):
    timeline = _timeline()
    specs = default_slos(timeline, objective=0.9)
    reports = SloEngine(specs).evaluate(timeline)
    out = export_html(
        tmp_path / "dash.html",
        timeline,
        reports,
        controllers=[_controller_record()],
    )
    html = out.read_text()
    assert "Closed-loop controller" in html
    assert "mode=<code>controller</code>" in html
    assert "1 rollbacks" in html
