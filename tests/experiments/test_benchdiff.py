"""The bench-trajectory gate: direction inference, diffing, baselines."""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.benchdiff import (
    diff_benches,
    load_bench_files,
    main,
    metric_direction,
    update_baselines,
)


def test_metric_direction_suffixes():
    assert metric_direction("selection_total_us") == "lower"
    assert metric_direction("kernel_ns_per_event") == "lower"
    assert metric_direction("fire_events_per_second") == "higher"
    assert metric_direction("cache_steady_speedup") == "higher"
    assert metric_direction("usable_cores") is None


def _write(directory: Path, module: str, values: dict) -> None:
    directory.mkdir(parents=True, exist_ok=True)
    (directory / f"BENCH_{module}.json").write_text(json.dumps(values))


def test_diff_flags_regressions_by_direction(tmp_path):
    baseline = tmp_path / "baselines"
    current = tmp_path / "current"
    _write(baseline, "x", {"op_us": 100.0, "ops_per_s": 100.0, "cores": 4})
    _write(
        current,
        "x",
        {"op_us": 150.0, "ops_per_s": 70.0, "cores": 8, "new_us": 1.0},
    )
    rows, regressions = diff_benches(
        load_bench_files(current), load_bench_files(baseline), 0.2
    )
    verdicts = {(r[0], r[1]): r[5] for r in rows}
    assert verdicts[("x", "op_us")] == "REGRESSION"  # +50% latency
    assert verdicts[("x", "ops_per_s")] == "REGRESSION"  # -30% throughput
    assert verdicts[("x", "cores")] == "untracked"  # unknown direction
    assert verdicts[("x", "new_us")] == "new"
    assert len(regressions) == 2


def test_diff_within_gate_is_ok(tmp_path):
    baseline = tmp_path / "baselines"
    current = tmp_path / "current"
    _write(baseline, "x", {"op_us": 100.0, "gone_us": 5.0})
    _write(current, "x", {"op_us": 110.0})
    rows, regressions = diff_benches(
        load_bench_files(current), load_bench_files(baseline), 0.2
    )
    verdicts = {(r[0], r[1]): r[5] for r in rows}
    assert verdicts[("x", "op_us")] == "ok"
    assert verdicts[("x", "gone_us")] == "retired"
    assert regressions == []


def test_update_baselines_round_trips(tmp_path):
    current = tmp_path / "current"
    baseline = tmp_path / "baselines"
    _write(current, "x", {"op_us": 42.0})
    written = update_baselines(load_bench_files(current), baseline)
    assert [p.name for p in written] == ["BENCH_x.json"]
    assert load_bench_files(baseline) == load_bench_files(current)


def test_main_exit_codes(tmp_path, capsys):
    current = tmp_path / "current"
    baseline = tmp_path / "baselines"
    # No current results at all.
    assert main(["--current", str(current)]) == 1
    _write(current, "x", {"op_us": 100.0})
    # No baselines yet.
    assert (
        main(["--current", str(current), "--baseline", str(baseline)]) == 1
    )
    # Seed, then a clean diff.
    assert (
        main(
            [
                "--current",
                str(current),
                "--baseline",
                str(baseline),
                "--update",
            ]
        )
        == 0
    )
    assert (
        main(["--current", str(current), "--baseline", str(baseline)]) == 0
    )
    # A regression past the gate fails.
    _write(current, "x", {"op_us": 200.0})
    assert (
        main(["--current", str(current), "--baseline", str(baseline)]) == 1
    )
    capsys.readouterr()
