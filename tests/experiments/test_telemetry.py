"""The ``repro metrics`` cell: calibration acceptance + artifacts + report."""

import json

import pytest

from repro.experiments import telemetry
from repro.experiments.report import render_report
from repro.obs.calibration import CalibrationTracker


@pytest.fixture(scope="module")
def instrumented_cell():
    return telemetry.run_instrumented_cell(total_requests=200, seed=0)


# ---------------------------------------------------------------------------
# Acceptance: the model-based strategy's predictions are honest
# ---------------------------------------------------------------------------
def test_seeded_cell_is_well_calibrated(instrumented_cell):
    _, calibration, scenario = instrumented_cell
    strategy = scenario.client2.handler.strategy.name
    assert strategy == "state-based"
    rows = calibration.reliability(strategy)
    assert rows, "no populated reliability buckets"
    for row in [r for r in rows if r.count >= 10]:
        assert row.ci_low <= row.mean_predicted <= row.ci_high
    assert calibration.well_calibrated(strategy)


def test_cell_metrics_cover_every_layer(instrumented_cell):
    metrics, _, _ = instrumented_cell
    snapshot = metrics.snapshot()
    for prefix in (
        "client_reads_issued",       # client
        "replica_reads_served",      # replica base
        "replica_lazy_updates_sent", # lazy publisher
        "net_messages_delivered",    # network
        "predictor_evaluations",     # prediction model
    ):
        total = sum(
            entry["value"]
            for series, entry in snapshot.items()
            if series.startswith(prefix) and entry["type"] == "counter"
        )
        assert total > 0, f"no activity recorded under {prefix}"


def test_render_report_prints_calibration_table(instrumented_cell):
    metrics, calibration, _ = instrumented_cell
    text = render_report(
        metrics=metrics.snapshot(), calibration=calibration, title="t"
    )
    assert "calibration — state-based" in text
    assert "Brier=" in text
    assert "within CI" in text
    assert "client_reads_issued" in text


def test_watch_emits_periodic_deltas():
    lines = []
    telemetry.run_instrumented_cell(
        total_requests=20, seed=0, watch=10.0, watch_sink=lines.append
    )
    assert len(lines) >= 2
    assert any("client_reads_issued" in line for line in lines)


# ---------------------------------------------------------------------------
# CLI artifacts
# ---------------------------------------------------------------------------
def test_main_writes_parsable_artifacts(tmp_path, capsys):
    out = tmp_path / "telemetry.jsonl"
    prom = tmp_path / "metrics.prom"
    code = telemetry.main(
        [
            "--quick",
            "--check",
            "--metrics-out", str(out),
            "--prometheus", str(prom),
        ]
    )
    assert code == 0
    printed = capsys.readouterr().out
    assert "calibration — state-based" in printed
    assert "calibration check passed" in printed

    records = [json.loads(line) for line in out.read_text().splitlines()]
    assert records[0]["event"] == "meta"
    merged = records[-1]
    assert merged["event"] == "merged"
    reads = [
        entry["value"]
        for series, entry in merged["metrics"].items()
        if series.startswith("client_reads_issued")
    ]
    assert sum(reads) > 0
    tracker = CalibrationTracker.from_dict(merged["calibration"])
    assert tracker.observations("state-based") > 0

    prom_text = prom.read_text()
    assert "# TYPE client_reads_issued counter" in prom_text
    assert "_bucket{" in prom_text


def test_figure4_metrics_artifact(tmp_path):
    from repro.experiments.figure4 import run_figure4, write_metrics_artifact

    result = run_figure4(
        deadlines_ms=(200,),
        probabilities=(0.9,),
        lazy_intervals=(2.0,),
        total_requests=40,
        seed=0,
        collect_metrics=True,
    )
    path = tmp_path / "fig4.jsonl"
    write_metrics_artifact(str(path), result, meta={"quick": True})
    records = [json.loads(line) for line in path.read_text().splitlines()]
    meta = records[0]
    assert meta["event"] == "meta"
    assert meta["experiment"] == "figure4"
    assert meta["quick"] is True
    assert [r["event"] for r in records[1:]] == ["cell", "merged"]
    assert records[1]["deadline_ms"] == 200
