"""Tests for the parallel experiment runner (ISSUE 2 tentpole).

The load-bearing property is *serial equivalence*: any sweep must produce
identical results for any ``jobs`` value, because cells are independent
simulations whose seeds are data carried in the spec, not a function of
execution order.
"""

from __future__ import annotations

import io
import os

import pytest

from repro.experiments.figure4 import run_figure4
from repro.experiments.runner import (
    CellError,
    CellSpec,
    SweepProgress,
    add_jobs_argument,
    available_cpus,
    resolve_chunk_size,
    resolve_jobs,
    run_cells,
    shutdown_pools,
    warm_pool,
)
from repro.sim.rng import RngRegistry, seed_for


@pytest.fixture(autouse=True, scope="module")
def _drain_pools():
    """Leave no warm worker pools behind for the rest of the suite."""
    yield
    shutdown_pools()


# Workers must be module-level so specs pickle across process boundaries.
def _square(x):
    return x * x


def _seeded_stream_head(seed, name):
    return RngRegistry(seed).stream(name).random()


def _boom(x):
    raise RuntimeError(f"cell {x} exploded")


def _die(x):
    os._exit(13)  # simulate a segfault/OOM-kill: no exception, no cleanup


def _concat(a, b):
    return f"{a}|{b}"


def _stamp(x):
    return ("encoded", x)


# ---------------------------------------------------------------------------
# CellSpec / run_cells basics
# ---------------------------------------------------------------------------
def test_cellspec_runs_function_with_kwargs():
    spec = CellSpec(key="k", fn=_square, kwargs={"x": 7})
    assert spec.run() == 49


def test_run_cells_serial_preserves_order():
    specs = [CellSpec(key=i, fn=_square, kwargs={"x": i}) for i in range(10)]
    assert run_cells(specs, jobs=1) == [i * i for i in range(10)]


def test_run_cells_parallel_preserves_order():
    specs = [CellSpec(key=i, fn=_square, kwargs={"x": i}) for i in range(10)]
    assert run_cells(specs, jobs=3) == [i * i for i in range(10)]


def test_run_cells_parallel_matches_serial_with_seeded_cells():
    specs = [
        CellSpec(key=i, fn=_seeded_stream_head,
                 kwargs={"seed": seed_for(0, i), "name": "s"})
        for i in range(8)
    ]
    assert run_cells(specs, jobs=1) == run_cells(specs, jobs=4)


def test_run_cells_empty():
    assert run_cells([], jobs=4) == []


def test_run_cells_serial_exception_propagates():
    specs = [CellSpec(key=0, fn=_boom, kwargs={"x": 0})]
    with pytest.raises(RuntimeError, match="cell 0 exploded"):
        run_cells(specs, jobs=1)


def test_run_cells_parallel_exception_propagates():
    specs = [CellSpec(key=i, fn=_boom, kwargs={"x": i}) for i in range(3)]
    with pytest.raises(RuntimeError, match="exploded"):
        run_cells(specs, jobs=2)


def test_resolve_jobs():
    assert resolve_jobs(1) == 1
    assert resolve_jobs(5) == 5
    assert resolve_jobs(None) >= 1
    assert resolve_jobs(0) >= 1
    assert resolve_jobs(-3) >= 1


def test_available_cpus_prefers_process_cpu_count(monkeypatch):
    """``os.process_cpu_count`` (3.13+) is cgroup/affinity-aware; when it
    exists it must win over ``os.cpu_count``."""
    monkeypatch.setattr(os, "process_cpu_count", lambda: 3, raising=False)
    assert available_cpus() == 3
    assert resolve_jobs(0) == 3
    assert resolve_jobs(None) == 3


def test_available_cpus_falls_back_to_affinity(monkeypatch):
    monkeypatch.setattr(os, "process_cpu_count", None, raising=False)
    if hasattr(os, "sched_getaffinity"):
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 1}, raising=False)
        assert available_cpus() == 2
    else:  # pragma: no cover - non-Linux
        assert available_cpus() >= 1


# ---------------------------------------------------------------------------
# Chunk-size heuristic
# ---------------------------------------------------------------------------
def test_resolve_chunk_size_heuristic():
    # ~4 chunks per worker on large grids; 1 cell per chunk on small ones.
    assert resolve_chunk_size(None, 12, 4) == 1
    assert resolve_chunk_size(None, 160, 4) == 10
    assert resolve_chunk_size(None, 1000, 8) == 31
    assert resolve_chunk_size(None, 0, 4) == 1
    # An explicit chunk size wins; nonsense is rejected.
    assert resolve_chunk_size(7, 12, 4) == 7
    with pytest.raises(ValueError):
        resolve_chunk_size(0, 12, 4)


@pytest.mark.parametrize("chunk_size", [None, 1, 2, 3, 10])
def test_run_cells_chunked_matches_serial(chunk_size):
    """The chunk size may only affect wall clock, never results."""
    specs = [
        CellSpec(key=i, fn=_seeded_stream_head,
                 kwargs={"seed": seed_for(1, i), "name": "s"})
        for i in range(7)
    ]
    serial = run_cells(specs, jobs=1)
    chunked = run_cells(specs, jobs=3, chunk_size=chunk_size)
    assert chunked == serial


# ---------------------------------------------------------------------------
# Shared common config
# ---------------------------------------------------------------------------
def test_common_kwargs_merge_with_spec_precedence():
    specs = [
        CellSpec(key=0, fn=_concat, kwargs={"b": "spec"}),
        CellSpec(key=1, fn=_concat, kwargs={}),
    ]
    common = {"a": "shared", "b": "common"}
    expected = ["shared|spec", "shared|common"]
    assert run_cells(specs, jobs=1, common=common) == expected
    assert run_cells(specs, jobs=2, common=common) == expected
    assert run_cells(specs, jobs=2, chunk_size=2, common=common) == expected


def test_warm_pool_reused_for_same_common_config():
    first = warm_pool(2, {"a": 1})
    again = warm_pool(2, {"a": 1})
    other = warm_pool(2, {"a": 2})
    assert first is again
    assert first is not other


# ---------------------------------------------------------------------------
# encode/decode hooks
# ---------------------------------------------------------------------------
def test_encode_decode_hooks_applied_on_parallel_path():
    specs = [CellSpec(key=i, fn=_square, kwargs={"x": i}) for i in range(5)]

    def decode(payload):
        tag, value = payload
        assert tag == "encoded"
        return value

    assert run_cells(specs, jobs=2, encode=_stamp, decode=decode) == [
        i * i for i in range(5)
    ]


def test_serial_path_never_invokes_codec():
    """jobs=1 is the exact historical loop: no worker, no codec."""

    def explode(_):
        raise AssertionError("codec ran on the serial path")

    specs = [CellSpec(key=0, fn=_square, kwargs={"x": 3})]
    assert run_cells(specs, jobs=1, encode=_stamp, decode=explode) == [9]


# ---------------------------------------------------------------------------
# Worker-crash handling
# ---------------------------------------------------------------------------
def test_cell_error_carries_key_and_remote_traceback():
    specs = [
        CellSpec(key=0, fn=_square, kwargs={"x": 2}),
        CellSpec(key="bad-cell", fn=_boom, kwargs={"x": 42}),
    ]
    with pytest.raises(CellError) as excinfo:
        run_cells(specs, jobs=2)
    message = str(excinfo.value)
    assert excinfo.value.key == "bad-cell"
    assert "RuntimeError: cell 42 exploded" in message  # the original traceback
    assert "_boom" in message  # down to the raising frame


def test_pool_stays_usable_after_cell_exception():
    with pytest.raises(CellError):
        run_cells([CellSpec(key=0, fn=_boom, kwargs={"x": 0}),
                   CellSpec(key=1, fn=_boom, kwargs={"x": 1})], jobs=2)
    specs = [CellSpec(key=i, fn=_square, kwargs={"x": i}) for i in range(6)]
    assert run_cells(specs, jobs=2) == [i * i for i in range(6)]


def test_dead_worker_raises_instead_of_hanging():
    """A worker that dies without raising (os._exit) must surface as an
    error promptly, and the next sweep must get a fresh working pool."""
    specs = [CellSpec(key=i, fn=_die, kwargs={"x": i}) for i in range(2)]
    with pytest.raises(RuntimeError, match="died abruptly"):
        run_cells(specs, jobs=2)
    healthy = [CellSpec(key=i, fn=_square, kwargs={"x": i}) for i in range(4)]
    assert run_cells(healthy, jobs=2) == [i * i for i in range(4)]


# ---------------------------------------------------------------------------
# --jobs flag parsing
# ---------------------------------------------------------------------------
def test_add_jobs_argument_forms():
    assert add_jobs_argument([]) == 1
    assert add_jobs_argument(["--quick"]) == 1
    assert add_jobs_argument(["--jobs", "4"]) == 4
    assert add_jobs_argument(["--jobs=8", "--quick"]) == 8
    assert add_jobs_argument(["--quick", "--jobs", "0"]) == 0
    assert add_jobs_argument(["--jobs=0"]) == 0


def test_add_jobs_argument_missing_value():
    with pytest.raises(SystemExit):
        add_jobs_argument(["--jobs"])
    with pytest.raises(SystemExit):
        add_jobs_argument(["--quick", "--jobs"])


def test_add_jobs_argument_rejects_garbage():
    with pytest.raises(SystemExit):
        add_jobs_argument(["--jobs", "-1"])
    with pytest.raises(SystemExit):
        add_jobs_argument(["--jobs=-4"])
    with pytest.raises(SystemExit):
        add_jobs_argument(["--jobs", "two"])
    with pytest.raises(SystemExit):
        add_jobs_argument(["--jobs="])


def test_add_jobs_argument_duplicate_flags_last_wins():
    assert add_jobs_argument(["--jobs", "2", "--jobs", "6"]) == 6
    assert add_jobs_argument(["--jobs=2", "--quick", "--jobs", "3"]) == 3
    assert add_jobs_argument(["--jobs", "4", "--jobs=0"]) == 0


# ---------------------------------------------------------------------------
# Progress / ETA reporting
# ---------------------------------------------------------------------------
def test_sweep_progress_writes_eta_line():
    stream = io.StringIO()
    progress = SweepProgress(4, label="demo", enabled=True, stream=stream)
    progress.update()
    progress.update()
    elapsed = progress.finish()
    out = stream.getvalue()
    assert "[demo] 2/4 cells" in out
    assert "eta" in out
    assert elapsed >= 0.0


def test_sweep_progress_disabled_is_silent():
    stream = io.StringIO()
    progress = SweepProgress(4, enabled=False, stream=stream)
    progress.update()
    progress.finish()
    assert stream.getvalue() == ""


# ---------------------------------------------------------------------------
# Deterministic seed derivation
# ---------------------------------------------------------------------------
def test_seed_for_is_deterministic_and_key_sensitive():
    assert seed_for(0, "a", 1) == seed_for(0, "a", 1)
    assert seed_for(0, "a", 1) != seed_for(0, "a", 2)
    assert seed_for(0, "a", 1) != seed_for(1, "a", 1)
    assert seed_for(0, 0.9, 2.0, 100) != seed_for(0, 0.5, 2.0, 100)


def test_seed_for_independent_of_evaluation_order():
    keys = [(p, lui, d) for p in (0.9, 0.5) for lui in (2.0,) for d in (100, 160)]
    forward = [seed_for(7, *key) for key in keys]
    backward = [seed_for(7, *key) for key in reversed(keys)]
    assert forward == list(reversed(backward))


# ---------------------------------------------------------------------------
# Figure 4 end-to-end: jobs=1 and jobs=4 are identical (ISSUE 2 property,
# extended to chunked dispatch and the telemetry codec by ISSUE 6)
# ---------------------------------------------------------------------------
def test_run_figure4_parallel_identical_to_serial():
    kwargs = dict(
        deadlines_ms=(100, 160),
        probabilities=(0.9, 0.5),
        lazy_intervals=(2.0,),
        total_requests=25,
        seed=3,
    )
    serial = run_figure4(jobs=1, **kwargs)
    parallel = run_figure4(jobs=4, **kwargs)
    assert serial.cells.keys() == parallel.cells.keys()
    for key, cell in serial.cells.items():
        assert parallel.cells[key] == cell, f"cell {key} diverged across jobs"


@pytest.mark.parametrize("chunk_size", [1, 2, 4])
def test_run_figure4_chunked_identical_to_serial(chunk_size):
    """Chunked dispatch at every chunk size reproduces the serial cells
    bit for bit — including the telemetry that rides through the compact
    snapshot codec (the wall-clock overhead histogram is excluded, as in
    test_metrics_merge, because it times real CPU work)."""

    def drop_wall_clock(snapshot):
        return {
            series: entry
            for series, entry in snapshot.items()
            if not series.startswith("client_selection_overhead_seconds")
        }

    kwargs = dict(
        deadlines_ms=(100, 160),
        probabilities=(0.9,),
        lazy_intervals=(2.0,),
        total_requests=25,
        seed=3,
        collect_metrics=True,
    )
    serial = run_figure4(jobs=1, **kwargs)
    chunked = run_figure4(jobs=4, chunk_size=chunk_size, **kwargs)
    assert serial.cells.keys() == chunked.cells.keys()
    for key, cell in serial.cells.items():
        other = chunked.cells[key]
        assert drop_wall_clock(cell.metrics) == drop_wall_clock(other.metrics)
        assert cell.calibration == other.calibration
        # Every simulation-derived field matches exactly.
        for field in (
            "avg_replicas_selected", "timing_failure_probability",
            "ci_low", "ci_high", "reads", "timing_failures",
            "deferred_fraction", "mean_response_time",
        ):
            assert getattr(cell, field) == getattr(other, field), (key, field)
