"""Tests for the parallel experiment runner (ISSUE 2 tentpole).

The load-bearing property is *serial equivalence*: any sweep must produce
identical results for any ``jobs`` value, because cells are independent
simulations whose seeds are data carried in the spec, not a function of
execution order.
"""

from __future__ import annotations

import io

import pytest

from repro.experiments.figure4 import run_figure4
from repro.experiments.runner import (
    CellSpec,
    SweepProgress,
    add_jobs_argument,
    resolve_jobs,
    run_cells,
)
from repro.sim.rng import RngRegistry, seed_for


# Workers must be module-level so specs pickle across process boundaries.
def _square(x):
    return x * x


def _seeded_stream_head(seed, name):
    return RngRegistry(seed).stream(name).random()


def _boom(x):
    raise RuntimeError(f"cell {x} exploded")


# ---------------------------------------------------------------------------
# CellSpec / run_cells basics
# ---------------------------------------------------------------------------
def test_cellspec_runs_function_with_kwargs():
    spec = CellSpec(key="k", fn=_square, kwargs={"x": 7})
    assert spec.run() == 49


def test_run_cells_serial_preserves_order():
    specs = [CellSpec(key=i, fn=_square, kwargs={"x": i}) for i in range(10)]
    assert run_cells(specs, jobs=1) == [i * i for i in range(10)]


def test_run_cells_parallel_preserves_order():
    specs = [CellSpec(key=i, fn=_square, kwargs={"x": i}) for i in range(10)]
    assert run_cells(specs, jobs=3) == [i * i for i in range(10)]


def test_run_cells_parallel_matches_serial_with_seeded_cells():
    specs = [
        CellSpec(key=i, fn=_seeded_stream_head,
                 kwargs={"seed": seed_for(0, i), "name": "s"})
        for i in range(8)
    ]
    assert run_cells(specs, jobs=1) == run_cells(specs, jobs=4)


def test_run_cells_empty():
    assert run_cells([], jobs=4) == []


def test_run_cells_serial_exception_propagates():
    specs = [CellSpec(key=0, fn=_boom, kwargs={"x": 0})]
    with pytest.raises(RuntimeError, match="cell 0 exploded"):
        run_cells(specs, jobs=1)


def test_run_cells_parallel_exception_propagates():
    specs = [CellSpec(key=i, fn=_boom, kwargs={"x": i}) for i in range(3)]
    with pytest.raises(RuntimeError, match="exploded"):
        run_cells(specs, jobs=2)


def test_resolve_jobs():
    assert resolve_jobs(1) == 1
    assert resolve_jobs(5) == 5
    assert resolve_jobs(None) >= 1
    assert resolve_jobs(0) >= 1


# ---------------------------------------------------------------------------
# --jobs flag parsing
# ---------------------------------------------------------------------------
def test_add_jobs_argument_forms():
    assert add_jobs_argument([]) == 1
    assert add_jobs_argument(["--quick"]) == 1
    assert add_jobs_argument(["--jobs", "4"]) == 4
    assert add_jobs_argument(["--jobs=8", "--quick"]) == 8
    assert add_jobs_argument(["--quick", "--jobs", "0"]) == 0


def test_add_jobs_argument_missing_value():
    with pytest.raises(SystemExit):
        add_jobs_argument(["--jobs"])


# ---------------------------------------------------------------------------
# Progress / ETA reporting
# ---------------------------------------------------------------------------
def test_sweep_progress_writes_eta_line():
    stream = io.StringIO()
    progress = SweepProgress(4, label="demo", enabled=True, stream=stream)
    progress.update()
    progress.update()
    elapsed = progress.finish()
    out = stream.getvalue()
    assert "[demo] 2/4 cells" in out
    assert "eta" in out
    assert elapsed >= 0.0


def test_sweep_progress_disabled_is_silent():
    stream = io.StringIO()
    progress = SweepProgress(4, enabled=False, stream=stream)
    progress.update()
    progress.finish()
    assert stream.getvalue() == ""


# ---------------------------------------------------------------------------
# Deterministic seed derivation
# ---------------------------------------------------------------------------
def test_seed_for_is_deterministic_and_key_sensitive():
    assert seed_for(0, "a", 1) == seed_for(0, "a", 1)
    assert seed_for(0, "a", 1) != seed_for(0, "a", 2)
    assert seed_for(0, "a", 1) != seed_for(1, "a", 1)
    assert seed_for(0, 0.9, 2.0, 100) != seed_for(0, 0.5, 2.0, 100)


def test_seed_for_independent_of_evaluation_order():
    keys = [(p, lui, d) for p in (0.9, 0.5) for lui in (2.0,) for d in (100, 160)]
    forward = [seed_for(7, *key) for key in keys]
    backward = [seed_for(7, *key) for key in reversed(keys)]
    assert forward == list(reversed(backward))


# ---------------------------------------------------------------------------
# Figure 4 end-to-end: jobs=1 and jobs=4 are identical (ISSUE 2 property)
# ---------------------------------------------------------------------------
def test_run_figure4_parallel_identical_to_serial():
    kwargs = dict(
        deadlines_ms=(100, 160),
        probabilities=(0.9, 0.5),
        lazy_intervals=(2.0,),
        total_requests=25,
        seed=3,
    )
    serial = run_figure4(jobs=1, **kwargs)
    parallel = run_figure4(jobs=4, **kwargs)
    assert serial.cells.keys() == parallel.cells.keys()
    for key, cell in serial.cells.items():
        assert parallel.cells[key] == cell, f"cell {key} diverged across jobs"
