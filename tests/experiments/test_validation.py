"""Tests for the model-validation experiments (reduced durations)."""

import pytest

from repro.core.staleness import RateMixtureStalenessModel
from repro.experiments.validation import (
    HotspotValidationResult,
    run_hotspot_validation,
    run_staleness_validation,
)


@pytest.mark.slow
def test_poisson_model_calibrated_under_poisson_arrivals():
    rows = run_staleness_validation(duration=120.0)
    assert all(abs(row.error) < 0.12 for row in rows)
    # Empirical freshness is monotone in the threshold.
    empirical = [row.empirical for row in rows]
    assert empirical == sorted(empirical)


@pytest.mark.slow
def test_poisson_model_overconfident_under_bursts():
    """Above the mean rate the single-rate model predicts freshness the
    bursts destroy (§5.1.3's assumption visibly failing)."""
    rows = run_staleness_validation(duration=120.0, bursty=True)
    high = [row for row in rows if row.threshold >= 4]
    assert any(row.error > 0.05 for row in high)


@pytest.mark.slow
def test_rate_mixture_better_calibrated_under_bursts():
    poisson_rows = run_staleness_validation(duration=120.0, bursty=True)
    mixture_rows = run_staleness_validation(
        duration=120.0, bursty=True, staleness_model=RateMixtureStalenessModel()
    )
    poisson_err = sum(abs(r.error) for r in poisson_rows)
    mixture_err = sum(abs(r.error) for r in mixture_rows)
    assert mixture_err < poisson_err


@pytest.mark.slow
def test_hotspot_avoidance_balances_load():
    result = run_hotspot_validation(reads=120)
    assert result.with_ert_imbalance < result.without_ert_imbalance
    assert result.with_ert_imbalance < 1.5
    # Without ert ordering some replicas starve entirely.
    assert min(result.without_ert_reads.values()) == 0


def test_imbalance_metric():
    result = HotspotValidationResult(
        with_ert_reads={"a": 10, "b": 10},
        without_ert_reads={"a": 20, "b": 0},
    )
    assert result.with_ert_imbalance == pytest.approx(1.0)
    assert result.without_ert_imbalance == pytest.approx(2.0)
    empty = HotspotValidationResult({}, {})
    assert empty.with_ert_imbalance == 1.0
