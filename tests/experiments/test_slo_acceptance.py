"""Acceptance: burn alerts lead the degradation ladder in an overload storm.

The SLO engine exists to give operators (and the future adaptive
controller) advance warning.  This pins the ISSUE's acceptance
scenario: in a seeded overload storm with a cautious degradation ladder
(1 s step cooldown), the fast-burn page on the bulk timeliness SLO fires
*before* the bulk client's ladder reaches CRITICAL — and the matching
calm run raises no alert at all.
"""

from __future__ import annotations

import pytest

from repro.core.overload import CRITICAL, DegradationConfig
from repro.experiments.overload import run_overload_cell
from repro.obs.slo import SloEngine, SloSpec
from repro.obs.timeseries import Timeline

SEED = 202
DURATION = 8.0
#: A 1 s step cooldown: the operationally cautious ladder an operator
#: would run when alerts, not automatic shedding, are the first response.
CAUTIOUS = DegradationConfig(step_cooldown=1.0)

BULK_SLO = SloSpec(
    name="timeliness:bulk",
    objective=0.99,
    client="bulk",
    fast_window=1.0,
    slow_window=6.0,
)


@pytest.fixture(scope="module")
def storm():
    return run_overload_cell(
        SEED, "shed", duration=DURATION, degradation_config=CAUTIOUS
    )


@pytest.fixture(scope="module")
def calm():
    return run_overload_cell(
        SEED,
        "shed",
        duration=DURATION,
        calm=True,
        degradation_config=CAUTIOUS,
    )


def _first_critical_tick(timeline: Timeline, client: str):
    """First tick at which the client's ladder gauge reads CRITICAL."""
    series = 'client_degradation_level{client="%s"}' % client
    if series not in timeline.series:
        return None
    for tick, value in enumerate(timeline.values(series)):
        if value is not None and value >= CRITICAL:
            return tick
    return None


@pytest.mark.slow
def test_fast_burn_page_leads_critical_degradation(storm):
    timeline = Timeline.from_dict(storm.timeline)
    report = SloEngine([BULK_SLO]).evaluate(timeline)["timeliness:bulk"]
    page = report.first_alert("page")
    assert page is not None, "storm never paged"
    critical_tick = _first_critical_tick(timeline, "bulk")
    assert critical_tick is not None, "storm never reached CRITICAL"
    assert page.tick < critical_tick, (
        f"page at tick {page.tick} did not lead CRITICAL at {critical_tick}"
    )
    assert not report.met()


@pytest.mark.slow
def test_calm_run_raises_no_alert(calm):
    assert calm.clean
    timeline = Timeline.from_dict(calm.timeline)
    report = SloEngine([BULK_SLO]).evaluate(timeline)["timeliness:bulk"]
    assert report.alerts == []
    assert report.met()
    assert _first_critical_tick(timeline, "bulk") is None


@pytest.mark.slow
def test_storm_attribution_components_stay_additive(storm):
    """Aggregated components never exceed the observed staleness total."""
    from repro.obs.slo import attribution_summary

    summary = attribution_summary(Timeline.from_dict(storm.timeline))
    total = sum(summary["components"].values())
    assert total <= summary["observed_seconds"] + 1e-9
