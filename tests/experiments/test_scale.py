"""Tests for the million-user scale experiment (:mod:`repro.experiments.scale`).

The load-bearing piece is the *validation property*: across seeds, the
fluid tier's modeled outcome proportions must sit inside Wilson-interval
agreement with the discrete per-request simulator at N=100 and N=1000.
"""

import json

import pytest

from repro.experiments.scale import (
    ScaleCellResult,
    compare_cells,
    main as scale_main,
    render_surface,
    render_validation,
    run_scale_cell,
    run_scale_surface,
    run_scale_validation,
)
from repro.experiments.harness import Figure4Cell


# ---------------------------------------------------------------------------
# Single cells
# ---------------------------------------------------------------------------
def test_run_scale_cell_aggregate_smoke():
    result = run_scale_cell(
        users=10_000, duration=20.0, warmup=5.0, seed=1, mode="aggregate",
    )
    assert result.mode == "aggregate"
    assert result.users == 10_000
    # 10k users * 0.05 reads/s * 15 s post-warmup window ~ 7500 arrivals.
    assert result.arrivals > 3_000
    assert result.batches > 0
    assert 0 < result.probe_reads < result.arrivals
    assert result.sample_reads > 0.9 * result.arrivals  # modeled dominates
    assert result.wall_seconds > 0
    assert result.arrivals_per_wall_second > 0
    assert isinstance(result.cell, Figure4Cell)
    assert len(result.cdf_counts) == len(result.cdf_points) == 3
    # CDF numerators are monotone in x.
    assert list(result.cdf_counts) == sorted(result.cdf_counts)


def test_run_scale_cell_discrete_smoke():
    result = run_scale_cell(
        users=100, duration=20.0, warmup=5.0, seed=1, mode="discrete",
        total_read_rate=2.0, total_update_rate=0.5,
    )
    assert result.mode == "discrete"
    assert result.batches == 0
    assert result.probe_reads == 0
    # Discrete sampling keeps the post-warmup arrivals (no probe split).
    assert 0 < result.sample_reads <= result.arrivals
    assert 10 <= result.arrivals <= 80  # ~2/s over the 15 s kept window


def test_run_scale_cell_rejects_unknown_mode():
    with pytest.raises(ValueError):
        run_scale_cell(users=10, mode="hybrid")


# ---------------------------------------------------------------------------
# Agreement machinery
# ---------------------------------------------------------------------------
def _cell(mode, reads, failures, deferred, cdf_counts):
    return ScaleCellResult(
        users=100, mode=mode,
        cell=Figure4Cell(
            deadline=0.160, min_probability=0.9, lazy_update_interval=2.0,
            avg_replicas_selected=2.0,
            timing_failure_probability=failures / reads,
            ci_low=0.0, ci_high=1.0,
            reads=reads, timing_failures=failures,
            deferred_fraction=0.0, mean_response_time=0.05,
        ),
        wall_seconds=1.0, sim_seconds=10.0, arrivals=reads,
        batches=0, probe_reads=0,
        sample_reads=reads, sample_failures=failures,
        sample_deferred=deferred,
        cdf_points=(0.08, 0.16, 0.24), cdf_counts=cdf_counts,
    )


def test_compare_cells_agreeing_pair():
    aggregate = _cell("aggregate", 400, 6, 10, (300, 380, 395))
    discrete = _cell("discrete", 380, 4, 12, (290, 360, 375))
    validation = compare_cells(aggregate, discrete)
    assert validation.failure_agree
    assert validation.deferred_agree
    assert all(validation.cdf_agree)
    assert validation.agree


def test_compare_cells_detects_failure_mismatch():
    aggregate = _cell("aggregate", 1000, 5, 0, (900, 980, 995))
    discrete = _cell("discrete", 1000, 300, 0, (900, 980, 995))
    validation = compare_cells(aggregate, discrete)
    assert not validation.failure_agree
    assert not validation.agree


def test_compare_cells_detects_cdf_mismatch():
    aggregate = _cell("aggregate", 1000, 5, 0, (100, 980, 995))
    discrete = _cell("discrete", 1000, 6, 0, (900, 980, 995))
    validation = compare_cells(aggregate, discrete)
    assert validation.failure_agree
    assert not validation.cdf_agree[0]
    assert not validation.agree


# ---------------------------------------------------------------------------
# The acceptance property: fluid ≈ discrete across seeds and populations
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_validation_agrees_across_seeds(seed):
    """ISSUE acceptance: Wilson-CI agreement at N=100 and N=1000,
    property-tested across seeds (default 240 s windows; ~3 s wall each)."""
    result = run_scale_validation(populations=(100, 1000), seed=seed)
    assert [cell.users for cell in result.cells] == [100, 1000]
    for cell in result.cells:
        # Enough modeled arrivals for the comparison to carry evidence.
        assert cell.aggregate.sample_reads > 100
        assert cell.discrete.sample_reads > 100
        assert cell.agree, (
            f"seed={seed} N={cell.users}: "
            f"failure_agree={cell.failure_agree} "
            f"deferred_agree={cell.deferred_agree} cdf={cell.cdf_agree}"
        )
    text = render_validation(result)
    assert "agree" in text


# ---------------------------------------------------------------------------
# Scaling surface + CLI entry
# ---------------------------------------------------------------------------
def test_run_scale_surface_reports_speedup():
    result = run_scale_surface(
        users_list=(10_000,), deadlines_ms=(160,),
        duration=10.0, warmup=2.0, calibration_users=200,
        calibration_duration=10.0,
    )
    assert (10_000, 160) in result.cells
    assert result.discrete_seconds_per_request > 0
    assert result.speedup(10_000, 160) > 1.0
    text = render_surface(result)
    assert "cells/s" not in text or text  # renders without raising
    assert "10,000" in text or "10000" in text


def test_main_quick_validate_saves_payload(tmp_path):
    out = tmp_path / "scale.json"
    code = scale_main(
        ["--validate", "--quick", "--check", "--save", str(out)]
    )
    assert code == 0
    document = json.loads(out.read_text())
    validation = document["results"]["validation"]
    assert validation["all_agree"] is True
    assert {cell["users"] for cell in validation["cells"]} == {100, 1000}
