"""Full-stack chaos campaigns: determinism, clean soaks, and the
invariant checkers' ability to actually catch violations."""

import pytest

from repro.core.requests import ReadOutcome, UpdateOutcome
from repro.experiments import chaos
from repro.experiments.chaos import (
    CampaignResult,
    run_campaign,
    run_chaos_suite,
    summarize,
)


@pytest.fixture(scope="module")
def short_campaign():
    return run_campaign(seed=101, duration=6.0)


def test_short_campaign_is_clean(short_campaign):
    result = short_campaign
    assert result.clean, result.violations
    assert result.faults_injected > 0
    assert result.reads_resolved > 0
    assert result.updates_acked > 0
    assert result.events


def test_campaign_reports_recovery_counters(short_campaign):
    recovery = short_campaign.recovery
    for key in (
        "retries_sent",
        "hedges_sent",
        "failover_redispatches",
        "retry_resolved",
        "hedge_resolved",
        "reads_salvaged",
        "state_transfers_started",
        "state_transfers_completed",
        "state_transfers_served",
    ):
        assert key in recovery
        assert recovery[key] >= 0


def test_same_seed_campaign_is_deterministic():
    first = run_campaign(seed=77, duration=5.0)
    second = run_campaign(seed=77, duration=5.0)
    assert first.events == second.events
    assert first.reads_resolved == second.reads_resolved
    assert first.timing_failures == second.timing_failures
    assert first.updates_acked == second.updates_acked
    assert first.recovery == second.recovery
    assert first.violations == second.violations


def test_membership_outage_campaign_is_clean():
    result = run_campaign(seed=5, duration=6.0, membership_outage=True)
    assert result.clean, result.violations


# ---------------------------------------------------------------------------
# The checkers catch real violations (they are not vacuous)
# ---------------------------------------------------------------------------
def make_update(request_id, gsn):
    return UpdateOutcome(
        request_id=request_id,
        value=None,
        response_time=0.01,
        first_replica="svc-p1",
        gsn=gsn,
    )


def test_checker_flags_unsequenced_and_duplicate_acks():
    from repro.core.service import build_testbed

    testbed = build_testbed()
    updates = [make_update(1, 0), make_update(2, 3), make_update(3, 3)]
    violations = chaos._check_invariants(testbed, [], updates, [], testbed.trace)
    assert any("acked without a GSN" in v for v in violations)
    assert any("acked for both" in v for v in violations)
    # ...and the acked GSN outruns every (still-empty) primary.
    assert any("lost acked updates" in v for v in violations)


def test_checker_flags_diverged_history():
    from repro.core.service import build_testbed

    testbed = build_testbed()
    # Two primaries claim the same commit slot with different operations.
    for handler, op in ((testbed.service.primaries[1], "rogue"),
                        (testbed.service.primaries[2], "other")):
        handler.app.history.append((op, (), 1))
        handler.my_csn = 1
    violations = chaos._check_invariants(testbed, [], [], [], testbed.trace)
    assert any("history diverges" in v for v in violations)


def test_checker_flags_unresolved_probe():
    from repro.core.service import build_testbed

    testbed = build_testbed()
    probe = ReadOutcome(
        request_id=9,
        value=None,
        response_time=None,
        timing_failure=True,
        replicas_selected=0,
        first_replica=None,
        deferred=False,
        gsn=-1,
    )
    violations = chaos._check_invariants(testbed, [], [], [probe], testbed.trace)
    assert any(v.startswith("liveness:") for v in violations)


# ---------------------------------------------------------------------------
# Soak harness + CLI plumbing
# ---------------------------------------------------------------------------
def test_suite_dumps_trace_artifact_on_violation(tmp_path, monkeypatch):
    monkeypatch.setattr(
        chaos, "_check_invariants", lambda *args: ["synthetic: planted"]
    )
    results = run_chaos_suite([42], duration=3.0, trace_dir=tmp_path)
    assert not results[0].clean
    artifact = tmp_path / "chaos-seed42.trace"
    assert artifact.exists()
    content = artifact.read_text()
    assert "VIOLATION synthetic: planted" in content
    assert "EVENT" in content
    assert "chaos.start" in content


def test_suite_writes_nothing_when_clean(tmp_path):
    results = run_chaos_suite([101], duration=3.0, trace_dir=tmp_path)
    assert results[0].clean, results[0].violations
    assert not list(tmp_path.iterdir())


def test_summarize_renders_counters():
    result = CampaignResult(
        seed=1,
        duration=5.0,
        violations=[],
        faults_injected=4,
        faults_skipped=1,
        reads_issued=50,
        reads_resolved=50,
        timing_failures=2,
        updates_acked=20,
        recovery={"retries_sent": 3, "state_transfers_completed": 1},
    )
    text = summarize([result])
    assert "chaos soak" in text
    assert "CLEAN" in text
    assert "retries_sent" in text


def test_main_runs_and_saves(tmp_path, capsys):
    save = tmp_path / "chaos.json"
    code = chaos.main(
        ["--seeds", "1", "--duration", "4", "--save", str(save)]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "chaos soak" in out
    assert "fault recovery" in out
    from repro.experiments.report import load_results

    document = load_results(str(save))
    assert document["meta"]["experiment"] == "chaos"
    assert len(document["results"]) == 1
