"""Full-stack overload campaigns: seeded storms through the shed and
unbounded configurations, the invariant audit, and the CLI plumbing."""

import json

import pytest

from repro.experiments import overload
from repro.experiments.overload import (
    OverloadCellResult,
    effective_latency,
    percentile,
    run_overload_cell,
    run_overload_suite,
    suite_violations,
    summarize,
    write_metrics_artifact,
)


@pytest.fixture(scope="module")
def short_pair():
    """One seed through both modes; shared across the module for speed."""
    shed = run_overload_cell(seed=202, mode="shed", duration=6.0)
    unbounded = run_overload_cell(seed=202, mode="unbounded", duration=6.0)
    return shed, unbounded


def test_shed_cell_is_clean_and_actually_stormed(short_pair):
    shed, _ = short_pair
    assert shed.clean, shed.violations
    assert shed.storms > 0
    assert shed.vip_issued > 0
    assert shed.overload_replies > 0  # replicas really bounced reads
    assert shed.replica_reads_shed > 0
    assert shed.degradation_steps_down > 0  # the ladder engaged


def test_unbounded_cell_never_sheds(short_pair):
    _, unbounded = short_pair
    assert unbounded.clean  # no audit runs, so no violations either
    assert unbounded.storms > 0
    assert unbounded.overload_replies == 0
    assert unbounded.replica_reads_shed == 0
    assert unbounded.client_reads_shed == 0
    assert unbounded.degradation_steps_down == 0


def test_queue_peaks_bounded_only_under_shedding(short_pair):
    shed, unbounded = short_pair
    bound = overload.SHED_CONFIG.queue_capacity + 2
    assert shed.queue_depth_peaks
    assert all(peak <= bound for peak in shed.queue_depth_peaks.values())
    # The unbounded cell is the control: storms push at least one queue
    # past the shed bound, otherwise the comparison proves nothing.
    assert max(unbounded.queue_depth_peaks.values()) > bound


def test_suite_p99_acceptance_holds(short_pair):
    shed, unbounded = short_pair
    assert suite_violations([shed, unbounded]) == []
    assert shed.vip_p99 < unbounded.vip_p99


def test_same_seed_cell_is_deterministic():
    first = run_overload_cell(seed=77, mode="shed", duration=4.0)
    second = run_overload_cell(seed=77, mode="shed", duration=4.0)
    assert first.events == second.events
    assert first.vip_latencies == second.vip_latencies
    assert first.queue_depth_peaks == second.queue_depth_peaks


def test_percentile_and_effective_latency_helpers():
    assert percentile([], 0.99) == float("inf")
    assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.0
    assert percentile([1.0, 2.0, 3.0, 4.0], 0.99) == 4.0

    class Outcome:
        def __init__(self, value, response_time):
            self.value = value
            self.response_time = response_time

    assert effective_latency(Outcome(1, 0.2), deadline=0.5) == 0.2
    assert effective_latency(Outcome(None, None), deadline=0.5) == 1.0
    assert effective_latency(Outcome(1, None), deadline=0.5) == 1.0


def test_run_overload_cell_rejects_unknown_mode():
    with pytest.raises(ValueError):
        run_overload_cell(seed=1, mode="bursty")


def test_suite_flags_p99_regression():
    good = OverloadCellResult(
        seed=1, mode="shed", duration=1.0, violations=[], storms=1,
        vip_issued=3, vip_resolved=3, vip_timing_failures=0,
        vip_latencies=[0.9, 0.9, 0.9], bulk_issued=3,
        bulk_timing_failures=0, replica_reads_shed=1, client_reads_shed=0,
        overload_replies=1, degradation_steps_down=1, degradation_steps_up=1,
    )
    bad = OverloadCellResult(
        seed=1, mode="unbounded", duration=1.0, violations=[], storms=1,
        vip_issued=3, vip_resolved=3, vip_timing_failures=0,
        vip_latencies=[0.1, 0.1, 0.1], bulk_issued=3,
        bulk_timing_failures=0, replica_reads_shed=0, client_reads_shed=0,
        overload_replies=0, degradation_steps_down=0, degradation_steps_up=0,
    )
    flagged = suite_violations([good, bad])
    assert len(flagged) == 1
    assert flagged[0].startswith("p99:")


def test_suite_dumps_trace_artifact_on_violation(tmp_path, monkeypatch):
    monkeypatch.setattr(
        overload,
        "_check_overload_invariants",
        lambda *args, **kwargs: ["synthetic: planted"],
    )
    result = run_overload_cell(
        seed=42, mode="shed", duration=4.0, trace_dir=str(tmp_path)
    )
    assert not result.clean
    artifact = tmp_path / "overload-seed42-shed.trace"
    assert artifact.exists()
    content = artifact.read_text()
    assert "VIOLATION synthetic: planted" in content
    assert "EVENT" in content
    jsonl = tmp_path / "overload-seed42-shed.jsonl"
    lines = [json.loads(line) for line in jsonl.read_text().splitlines()]
    assert lines  # the jsonl twin parses


def test_summarize_renders_table_and_telemetry(short_pair):
    text = summarize(list(short_pair))
    assert "overload campaign" in text
    assert "CLEAN" in text
    assert "shed-cell telemetry" in text
    assert "degradation_steps_down" in text


def test_metrics_artifact_round_trips(short_pair, tmp_path):
    path = tmp_path / "overload.jsonl"
    write_metrics_artifact(str(path), list(short_pair), seeds=[202])
    records = [json.loads(line) for line in path.read_text().splitlines()]
    meta = records[0]
    assert meta["event"] == "meta"
    assert meta["experiment"] == "overload"
    assert meta["seeds"] == [202]
    cells = [r for r in records if r["event"] == "cell"]
    pooled = [r for r in records if r["event"] == "pooled"]
    assert {c["mode"] for c in cells} == {"shed", "unbounded"}
    assert {p["mode"] for p in pooled} == {"shed", "unbounded"}
    by_mode = {p["mode"]: p["vip_p99"] for p in pooled}
    assert by_mode["shed"] < by_mode["unbounded"]


def test_main_runs_checks_and_saves(tmp_path, capsys):
    save = tmp_path / "overload.json"
    metrics_out = tmp_path / "overload-metrics.jsonl"
    code = overload.main(
        [
            "--seeds", "1", "--duration", "5", "--check",
            "--save", str(save), "--metrics-out", str(metrics_out),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "overload campaign" in out
    assert metrics_out.exists()
    from repro.experiments.report import load_results

    document = load_results(str(save))
    assert document["meta"]["experiment"] == "overload"
    assert document["meta"]["violations"] == []
    assert len(document["results"]) == 2  # one seed x two modes


def test_suite_runs_both_modes_seed_major():
    results = run_overload_suite([11], duration=4.0)
    assert [(r.seed, r.mode) for r in results] == [
        (11, "shed"), (11, "unbounded")
    ]
