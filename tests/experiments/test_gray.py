"""Gray-failure campaign harness: cells, acceptance checks, CLI plumbing,
and the two reproducibility properties the PR guarantees — detector-off
runs are bit-identical, and the suite is identical at any ``--jobs``."""

import json

import pytest

from repro.core.qos import QoSSpec
from repro.core.service import ServiceConfig, build_testbed
from repro.experiments import gray
from repro.experiments.gray import (
    DETECTOR_CONFIG,
    run_gray_cell,
    run_gray_suite,
    suite_violations,
    summarize,
    write_metrics_artifact,
)
from repro.net.latency import LanLatency
from repro.sim.process import Process, Timeout
from repro.sim.rng import Constant


@pytest.fixture(scope="module")
def short_pair():
    """One seed through both modes; shared across the module for speed."""
    detector = run_gray_cell(seed=303, mode="detector", duration=6.0)
    baseline = run_gray_cell(seed=303, mode="baseline", duration=6.0)
    return detector, baseline


def test_detector_cell_is_clean_and_actually_stormed(short_pair):
    detector, _ = short_pair
    assert detector.clean, detector.violations
    assert detector.gray_faults > 0
    assert detector.reads_issued > 0
    assert detector.suspects_total > 0  # the detector reacted
    assert detector.still_suspected == []  # every suspect was re-admitted
    assert detector.detection is not None
    assert detector.detection["false_positive_rate"] <= 0.5


def test_baseline_cell_runs_without_detector(short_pair):
    _, baseline = short_pair
    assert baseline.clean
    assert baseline.gray_faults > 0
    assert baseline.detector_ejections == 0
    assert baseline.detector_hedges == 0
    assert baseline.detector_probes == 0
    assert baseline.detection is None


def test_modes_see_the_same_fault_schedule(short_pair):
    detector, baseline = short_pair
    assert detector.gray_faults == baseline.gray_faults
    assert detector.faults_by_kind == baseline.faults_by_kind
    assert detector.reads_issued == baseline.reads_issued


def test_same_seed_cell_is_deterministic():
    a = run_gray_cell(seed=404, mode="detector", duration=5.0)
    b = run_gray_cell(seed=404, mode="detector", duration=5.0)
    assert a.latencies == b.latencies
    assert a.detector_ejections == b.detector_ejections
    assert a.detection == b.detection


def test_run_gray_cell_rejects_unknown_mode():
    with pytest.raises(ValueError):
        run_gray_cell(seed=1, mode="chaotic-neutral", duration=5.0)


def test_suite_flags_p99_regression(short_pair):
    detector, baseline = short_pair
    # Swap the latency pools so the detector looks *worse*: the
    # acceptance check must fire.
    worse = gray.GrayCellResult(**{**detector.__dict__})
    worse.latencies = [x + 0.5 for x in baseline.latencies]
    violations = suite_violations([worse, baseline])
    assert any(v.startswith("p99") for v in violations)


def test_suite_jobs_equivalence():
    """`--jobs 4` must produce exactly the single-process results."""
    seeds = [11, 12]
    serial = run_gray_suite(seeds, duration=5.0, jobs=1)
    parallel = run_gray_suite(seeds, duration=5.0, jobs=4)
    assert len(serial) == len(parallel)
    for a, b in zip(serial, parallel):
        assert (a.seed, a.mode) == (b.seed, b.mode)
        assert a.latencies == b.latencies
        assert a.violations == b.violations
        assert a.detection == b.detection


def test_summarize_renders_table(short_pair):
    text = summarize(list(short_pair))
    assert "gray-failure campaign" in text
    assert "eject/hedge/probe" in text


def test_metrics_artifact_round_trips(short_pair, tmp_path):
    path = tmp_path / "gray.jsonl"
    write_metrics_artifact(str(path), list(short_pair), [303])
    records = [json.loads(line) for line in path.read_text().splitlines()]
    events = [r["event"] for r in records]
    assert events[0] == "meta"
    assert events.count("cell") == 2
    assert events.count("pooled") == 2
    pooled = [r for r in records if r["event"] == "pooled"]
    assert {r["mode"] for r in pooled} == {"detector", "baseline"}
    for record in pooled:
        assert record["samples"] > 0


def test_main_quick_check_passes(tmp_path, capsys):
    out = tmp_path / "gray.jsonl"
    code = gray.main(
        ["--quick", "--check", "--jobs", "2", "--metrics-out", str(out)]
    )
    assert code == 0
    assert out.exists()
    captured = capsys.readouterr()
    assert "pooled:" in captured.out


# ---------------------------------------------------------------------------
# Bit-identical when disabled
# ---------------------------------------------------------------------------
def run_calm_cell(detector_config):
    """A fault-free service run; returns the full trace for comparison."""
    from repro.sim.tracing import Trace

    config = ServiceConfig(
        name="svc",
        num_primaries=2,
        num_secondaries=2,
        lazy_update_interval=0.3,
        read_service_time=Constant(0.010),
        detector=detector_config,
    )
    testbed = build_testbed(
        config, seed=31, latency=LanLatency(mean_s=0.001, jitter_s=0.001)
    )
    client = testbed.service.create_client("c", read_only_methods={"get"})
    qos = QoSSpec(staleness_threshold=10, deadline=0.5, min_probability=0.9)
    outcomes = []

    def run():
        for _ in range(40):
            yield client.call("increment")
            yield Timeout(0.02)
            outcomes.append((yield client.call("get", (), qos)))
            yield Timeout(0.02)

    Process(testbed.sim, run())
    testbed.sim.run(until=30.0)
    # request_id is a process-global counter, so it is excluded: only the
    # observable behavior (values, timing, routing) must match.
    return [
        (o.value, round(o.response_time, 12), o.first_replica,
         o.replicas_selected, o.gsn, o.timing_failure)
        for o in outcomes
    ]


def test_detector_is_bit_identical_on_a_calm_network():
    """With no faults the detector must be a pure observer: same replies
    from the same replicas at the same instants as a detector-free run."""
    assert run_calm_cell(None) == run_calm_cell(DETECTOR_CONFIG)
