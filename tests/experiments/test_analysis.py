"""Tests for the post-run analysis toolkit."""

import pytest

from repro.core.qos import QoSSpec
from repro.core.requests import ReadOutcome
from repro.core.service import ServiceConfig, build_testbed
from repro.experiments.analysis import (
    client_consistency_report,
    message_profile,
    replica_load_report,
    selection_profile,
)
from repro.net.latency import FixedLatency
from repro.sim.process import Process, Timeout
from repro.sim.rng import Constant
from repro.sim.tracing import Trace


@pytest.fixture
def run():
    trace = Trace(enabled=True)
    config = ServiceConfig(
        name="svc",
        num_primaries=2,
        num_secondaries=2,
        lazy_update_interval=0.5,
        read_service_time=Constant(0.010),
    )
    testbed = build_testbed(config, seed=41, latency=FixedLatency(0.001),
                            trace=trace)
    client = testbed.service.create_client("c", read_only_methods={"get"})
    qos = QoSSpec(staleness_threshold=5, deadline=0.5, min_probability=0.5)
    outcomes = []

    def workload():
        for _ in range(12):
            yield client.call("increment")
            yield Timeout(0.1)
            outcome = yield client.call("get", (), qos)
            outcomes.append(outcome)
            yield Timeout(0.1)

    Process(testbed.sim, workload())
    testbed.sim.run(until=60.0)
    return testbed, client, outcomes, trace


def test_replica_load_report(run):
    testbed, _, _, _ = run
    report = replica_load_report(testbed.service, elapsed=testbed.sim.now)
    by_name = {r.name: r for r in report.replicas}
    assert by_name["svc-seq"].role == "sequencer"
    assert by_name["svc-seq"].reads_served == 0
    assert by_name["svc-p1"].updates_committed == 12
    assert all(0.0 <= r.utilization <= 1.0 for r in report.replicas)
    # Each read is multicast to its selected set, so replicas together
    # serve at least one request per client read.
    assert report.total_reads() >= 12
    assert report.read_imbalance() >= 1.0
    assert len(report.rows()) == 5


def test_replica_load_report_validation(run):
    testbed, _, _, _ = run
    with pytest.raises(ValueError):
        replica_load_report(testbed.service, elapsed=0.0)


def test_message_profile_counts_protocol_traffic(run):
    _, _, _, trace = run
    profile = message_profile(trace)
    kinds = dict(profile.rows())
    # All the protocol's message types crossed the wire.
    assert kinds.get("GroupDataMsg", 0) > 0  # requests/replies/assigns
    assert kinds.get("GroupAckMsg", 0) > 0
    assert kinds.get("HeartbeatMsg", 0) > 0
    assert kinds.get("PerfBroadcast", 0) > 0
    assert profile.total_delivered() > 0


def test_client_consistency_report(run):
    _, _, outcomes, _ = run
    report = client_consistency_report(outcomes, staleness_thresholds=[5])
    assert report.reads == 12
    assert report.response_time_p50_ms > 0
    assert report.response_time_p95_ms >= report.response_time_p50_ms
    assert report.observed_staleness_max >= 0
    assert report.staleness_bound_violations == 0  # bound held everywhere
    assert 0.0 <= report.deferred_fraction <= 1.0


def test_client_consistency_staleness_detection():
    def outcome(gsn, rid):
        return ReadOutcome(
            request_id=rid, value=gsn, response_time=0.01,
            timing_failure=False, replicas_selected=1,
            first_replica="r", deferred=False, gsn=gsn,
        )

    # Versions: 5 then 2 -> the second response is 3 versions stale.
    outcomes = [outcome(5, 1), outcome(2, 2)]
    report = client_consistency_report(outcomes, staleness_thresholds=[1])
    assert report.observed_staleness_max == 3
    assert report.staleness_bound_violations == 1


def test_client_consistency_empty_rejected():
    with pytest.raises(ValueError):
        client_consistency_report([])


def test_selection_profile(run):
    _, client, _, _ = run
    profile = selection_profile(client)
    assert sum(profile.histogram.values()) == 12
    assert profile.mean() == pytest.approx(client.average_selected())
    assert profile.mode() in profile.histogram
    assert profile.rows() == sorted(profile.histogram.items())


def test_selection_profile_empty():
    from repro.experiments.analysis import SelectionProfile

    empty = SelectionProfile({})
    assert empty.mean() == 0.0
    assert empty.mode() == 0
