"""Tests for the experiment harness (scaled-down runs)."""

import pytest

from repro.baselines.strategies import AllReplicasSelection
from repro.experiments.figure3 import Figure3Result, render as render_fig3, run_figure3
from repro.experiments.figure4 import render as render_fig4, run_figure4
from repro.experiments.harness import (
    measure_selection_overhead,
    run_figure4_cell,
)
from repro.experiments.report import format_series, format_table


# ---------------------------------------------------------------------------
# Report formatting
# ---------------------------------------------------------------------------
def test_format_table_aligns_columns():
    text = format_table(["a", "long-header"], [[1, 2.5], ["xx", 3]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "long-header" in lines[1]
    assert len(lines) == 5


def test_format_series():
    text = format_series("s", [1, 2], [0.5, 0.25])
    assert text.startswith("s:")
    assert "(1, 0.5)" in text


def test_save_and_load_results_round_trip(tmp_path):
    from repro.experiments.report import load_results, save_results

    cell = run_figure4_cell(
        deadline=0.3, min_probability=0.5, lazy_update_interval=2.0,
        total_requests=8, request_delay=0.1,
    )
    path = save_results(
        tmp_path / "fig4.json", [cell], meta={"seed": 0, "requests": 8}
    )
    document = load_results(path)
    assert document["meta"]["seed"] == 0
    row = document["results"][0]
    assert row["__dataclass__"] == "Figure4Cell"
    assert row["deadline"] == 0.3
    assert row["reads"] == 4


def test_save_results_handles_nested_structures(tmp_path):
    from repro.experiments.report import load_results, save_results

    payload = {"series": [(1, 0.5), (2, 0.25)], "labels": {"a": [1, 2]}}
    path = save_results(tmp_path / "x.json", payload)
    assert load_results(path)["results"] == {
        "series": [[1, 0.5], [2, 0.25]],
        "labels": {"a": [1, 2]},
    }


# ---------------------------------------------------------------------------
# Figure 3 harness
# ---------------------------------------------------------------------------
def test_overhead_measurement_fields():
    result = measure_selection_overhead(num_replicas=4, window_size=10, repetitions=20)
    assert result.total_us > 0
    assert result.total_us == pytest.approx(
        result.distribution_us + result.selection_us
    )
    assert result.repetitions == 20
    assert 0.0 <= result.distribution_share <= 1.0


def test_overhead_distribution_dominates():
    """§6: computing the distributions is ~90 % of the overhead."""
    result = measure_selection_overhead(num_replicas=8, window_size=20, repetitions=50)
    assert result.distribution_share > 0.7


def test_overhead_grows_with_replica_count():
    small = measure_selection_overhead(2, 20, repetitions=60)
    large = measure_selection_overhead(10, 20, repetitions=60)
    assert large.total_us > small.total_us


def test_overhead_grows_with_window_size():
    w10 = measure_selection_overhead(6, 10, repetitions=60)
    w40 = measure_selection_overhead(6, 40, repetitions=60)
    assert w40.total_us > w10.total_us


def test_overhead_validation():
    with pytest.raises(ValueError):
        measure_selection_overhead(0, 10)


def test_figure3_shape_checks():
    result = run_figure3(repetitions=40, replica_counts=(2, 6, 10), window_sizes=(10, 20))
    assert result.is_monotone_in_replicas(10)
    assert result.is_monotone_in_replicas(20)
    assert result.window20_above_window10()
    text = render_fig3(result)
    assert "Figure 3" in text and "dist_share" in text


# ---------------------------------------------------------------------------
# Figure 4 harness (scaled down)
# ---------------------------------------------------------------------------
def test_figure4_cell_metrics():
    cell = run_figure4_cell(
        deadline=0.200,
        min_probability=0.5,
        lazy_update_interval=2.0,
        total_requests=40,
        request_delay=0.2,
    )
    assert cell.reads == 20
    assert 0.0 <= cell.timing_failure_probability <= 1.0
    assert cell.ci_low <= cell.timing_failure_probability <= cell.ci_high
    assert cell.avg_replicas_selected >= 1.0
    assert cell.mean_response_time > 0.0


def test_figure4_cell_with_baseline_strategy():
    cell = run_figure4_cell(
        deadline=0.200,
        min_probability=0.5,
        lazy_update_interval=2.0,
        total_requests=20,
        request_delay=0.2,
        strategy2=AllReplicasSelection(),
    )
    assert cell.avg_replicas_selected == pytest.approx(10.0)


def test_figure4_sweep_and_render():
    result = run_figure4(
        deadlines_ms=(120, 220),
        probabilities=(0.9,),
        lazy_intervals=(2.0,),
        total_requests=60,
    )
    assert len(result.cells) == 2
    series = result.series(0.9, 2.0)
    assert [int(c.deadline * 1000) for c in series] == [120, 220]
    text = render_fig4(result)
    assert "Figure 4(a)" in text and "Figure 4(b)" in text


def test_figure4_meets_qos_flag():
    # Small run: P_c=0.5 leaves enough slack that even the bootstrap
    # phase's deferred reads cannot push failures past 1 - P_c.  The
    # strict P_c=0.9 check over full 1000-request runs lives in the
    # integration suite and the Figure 4 bench.
    cell = run_figure4_cell(
        deadline=0.400,
        min_probability=0.5,
        lazy_update_interval=2.0,
        total_requests=30,
        request_delay=0.2,
    )
    assert cell.meets_qos()
