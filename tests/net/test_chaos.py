"""Unit tests for the seeded chaos engine (schedule determinism and
safety constraints; the full-stack invariant audit lives in
tests/experiments/test_chaos.py)."""

import random

import pytest

from repro.net.chaos import ChaosConfig, ChaosEngine, ChaosTargets
from repro.net.latency import FixedLatency
from repro.net.network import Endpoint, Network
from repro.net.node import Host
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry


class Sink(Endpoint):
    def deliver(self, message):
        pass


PRIMARIES = ("p1", "p2", "p3")
SECONDARIES = ("s1", "s2")


def make_fabric():
    sim = Simulator()
    network = Network(sim, RngRegistry(99), FixedLatency(0.001))
    for name in (*PRIMARIES, *SECONDARIES, "seq"):
        network.attach(Sink(name), Host(f"host-{name}"))
    return sim, network


def make_engine(network, seed=7, config=None, **target_kwargs):
    targets = ChaosTargets(
        primaries=PRIMARIES,
        secondaries=SECONDARIES,
        sequencer="seq",
        **target_kwargs,
    )
    return ChaosEngine(
        network,
        targets,
        config or ChaosConfig(duration=10.0, mean_interval=0.3),
        rng=random.Random(seed),
    )


# ---------------------------------------------------------------------------
# Configuration and target validation
# ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "kwargs",
    [
        {"duration": 0.0},
        {"mean_interval": 0.0},
        {"max_concurrent_down": 0},
        {"downtime": (0.0, 1.0)},
        {"downtime": (2.0, 1.0)},
        {"loss_probability": (0.2, 0.1)},
    ],
)
def test_chaos_config_rejects_bad_values(kwargs):
    with pytest.raises(ValueError):
        ChaosConfig(**kwargs)


def test_crashable_excludes_protected():
    targets = ChaosTargets(
        primaries=PRIMARIES,
        secondaries=SECONDARIES,
        sequencer="seq",
        protected=("p1", "seq"),
    )
    names = targets.crashable()
    assert "p1" not in names
    assert "seq" not in names
    assert set(names) == {"p2", "p3", "s1", "s2"}


def test_start_twice_rejected():
    _, network = make_fabric()
    engine = make_engine(network)
    engine.start()
    with pytest.raises(RuntimeError):
        engine.start()


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------
def schedule_of(seed):
    sim, network = make_fabric()
    engine = make_engine(network, seed=seed)
    engine.start()
    sim.run(until=15.0)
    return [(e.time, e.kind, e.target) for e in engine.events]


def test_same_seed_replays_identical_schedule():
    first = schedule_of(7)
    second = schedule_of(7)
    assert first == second
    assert len(first) > 3  # the campaign actually did things


def test_different_seed_differs():
    assert schedule_of(7) != schedule_of(8)


# ---------------------------------------------------------------------------
# Safety constraints
# ---------------------------------------------------------------------------
def test_protected_endpoints_are_never_faulted():
    sim, network = make_fabric()
    engine = make_engine(network, protected=("p1",))
    engine.start()

    def sample():
        assert network.is_up("p1")
        sim.schedule(0.05, sample)

    sim.schedule(0.05, sample)
    sim.run(until=15.0)
    assert engine.faults_injected > 0
    for event in engine.events:
        assert event.target != "p1"
        assert "p1" not in event.detail.get("minority", ())


def test_at_least_one_serving_primary_stays_live():
    sim, network = make_fabric()
    # Crash-only campaign with room to take everything down if unchecked.
    config = ChaosConfig(
        duration=12.0,
        mean_interval=0.1,
        crash_weight=1.0,
        partition_weight=0.0,
        overload_weight=0.0,
        loss_weight=0.0,
        max_concurrent_down=6,
        downtime=(2.0, 4.0),
    )
    engine = make_engine(network, config=config)
    engine.start()

    def sample():
        assert any(network.is_up(p) for p in PRIMARIES)
        sim.schedule(0.05, sample)

    sim.schedule(0.05, sample)
    sim.run(until=20.0)
    assert engine.faults_injected > 0


def test_concurrent_crashes_bounded():
    sim, network = make_fabric()
    config = ChaosConfig(
        duration=12.0,
        mean_interval=0.1,
        partition_weight=0.0,
        overload_weight=0.0,
        loss_weight=0.0,
        max_concurrent_down=2,
        downtime=(2.0, 4.0),
    )
    engine = make_engine(network, config=config)
    engine.start()

    def sample():
        down = sum(1 for n in network.endpoints() if not network.is_up(n))
        assert down <= 2
        sim.schedule(0.05, sample)

    sim.schedule(0.05, sample)
    sim.run(until=20.0)
    assert engine.faults_skipped > 0  # the cap actually bit


# ---------------------------------------------------------------------------
# End-of-campaign healing
# ---------------------------------------------------------------------------
def test_world_is_healed_after_campaign():
    sim, network = make_fabric()
    base_drop = network.drop_probability
    engine = make_engine(network, seed=3)
    engine.start()
    sim.run(until=30.0)

    assert engine.finished
    assert all(network.is_up(name) for name in network.endpoints())
    assert network.drop_probability == base_drop
    hosts = [network.host_of(n) for n in (*PRIMARIES, *SECONDARIES)]
    assert not any(h.overloaded for h in hosts if h is not None)


def test_repair_callback_replaces_plain_recover():
    sim, network = make_fabric()
    repaired = []
    config = ChaosConfig(
        duration=8.0,
        mean_interval=0.2,
        partition_weight=0.0,
        overload_weight=0.0,
        loss_weight=0.0,
        downtime=(0.5, 1.0),
    )
    targets = ChaosTargets(primaries=PRIMARIES, secondaries=SECONDARIES)

    def repair(name):
        network.recover(name)
        repaired.append(name)

    engine = ChaosEngine(
        network, targets, config, rng=random.Random(5), repair=repair
    )
    engine.start()
    sim.run(until=15.0)
    crashed = [e.target for e in engine.events if e.kind == "crash"]
    assert crashed  # something actually went down
    assert repaired == [e.target for e in engine.events if e.kind == "recover"]
    assert all(network.is_up(name) for name in network.endpoints())


# ---------------------------------------------------------------------------
# Load storms (DESIGN.md §11)
# ---------------------------------------------------------------------------
def storm_config(**overrides):
    defaults = dict(
        duration=10.0,
        mean_interval=0.3,
        crash_weight=0.0,
        partition_weight=0.0,
        overload_weight=0.0,
        loss_weight=0.0,
        load_storm_weight=1.0,
        storm_window=(0.5, 1.0),
        storm_factor=(2.0, 4.0),
    )
    defaults.update(overrides)
    return ChaosConfig(**defaults)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"crash_weight": -1.0},
        {"load_storm_weight": -0.5},
        {"storm_window": (0.0, 1.0)},
        {"storm_factor": (4.0, 2.0)},
    ],
)
def test_chaos_config_rejects_bad_storm_values(kwargs):
    with pytest.raises(ValueError):
        ChaosConfig(**kwargs)


def test_load_storm_drives_the_rate_controller():
    from repro.workloads.generators import ArrivalRateController

    sim, network = make_fabric()
    controller = ArrivalRateController()
    engine = ChaosEngine(
        network,
        ChaosTargets(primaries=PRIMARIES, secondaries=SECONDARIES),
        storm_config(),
        rng=random.Random(7),
        rate_controller=controller,
    )
    engine.start()

    peak = 0.0
    while sim.now < 15.0 and sim.step():
        peak = max(peak, controller.factor)

    storms = [e for e in engine.events if e.kind == "load-storm"]
    ends = [e for e in engine.events if e.kind == "storm-end"]
    assert storms, "storm-only mix must inject storms"
    assert len(ends) == len(storms)  # every storm healed
    assert peak >= 2.0  # the configured factor floor
    assert controller.factor == 1.0  # world healed after the campaign
    assert controller.storms_started == len(storms)
    for storm in storms:
        assert 2.0 <= storm.detail["factor"] <= 4.0


def test_one_storm_at_a_time():
    from repro.workloads.generators import ArrivalRateController

    sim, network = make_fabric()
    controller = ArrivalRateController()
    engine = ChaosEngine(
        network,
        ChaosTargets(primaries=PRIMARIES),
        storm_config(mean_interval=0.05, storm_window=(2.0, 3.0)),
        rng=random.Random(3),
        rate_controller=controller,
    )
    engine.start()
    sim.run(until=15.0)
    opened = 0
    for event in engine.events:
        if event.kind == "load-storm":
            assert opened == 0, "storms must never overlap"
            opened += 1
        elif event.kind == "storm-end":
            opened -= 1
    assert opened == 0


def test_storms_skipped_without_rate_controller():
    sim, network = make_fabric()
    engine = ChaosEngine(
        network,
        ChaosTargets(primaries=PRIMARIES),
        storm_config(),
        rng=random.Random(7),
    )
    engine.start()
    sim.run(until=15.0)
    assert not engine.events  # storm is the only weighted fault
    assert engine.faults_injected == 0


def test_zero_storm_weight_keeps_existing_schedules():
    """Adding the (default-off) storm fault must not perturb the RNG
    schedule of pre-existing campaigns, controller attached or not."""
    from repro.workloads.generators import ArrivalRateController

    def schedule(controller):
        sim, network = make_fabric()
        engine = ChaosEngine(
            network,
            ChaosTargets(primaries=PRIMARIES, secondaries=SECONDARIES,
                         sequencer="seq"),
            ChaosConfig(duration=10.0, mean_interval=0.3),
            rng=random.Random(11),
            rate_controller=controller,
        )
        engine.start()
        sim.run(until=15.0)
        return [(e.time, e.kind, e.target) for e in engine.events]

    assert schedule(None) == schedule(ArrivalRateController())


# ---------------------------------------------------------------------------
# Gray-fault family: slow nodes, flapping links, one-way cuts, dup storms
# ---------------------------------------------------------------------------
GRAY_CONFIG_KWARGS = dict(
    duration=12.0,
    mean_interval=0.25,
    crash_weight=0.0,
    partition_weight=0.0,
    overload_weight=0.0,
    loss_weight=0.0,
    slow_node_weight=2.0,
    flapping_link_weight=2.0,
    oneway_partition_weight=2.0,
    dup_storm_weight=2.0,
    slow_window=(0.5, 1.5),
    flap_window=(0.5, 1.5),
    dup_window=(0.5, 1.5),
)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"slow_factor": (0.5, 2.0)},
        {"slow_window": (2.0, 1.0)},
        {"flap_period": (0.0, 0.1)},
        {"dup_probability": (0.1, 1.5)},
        {"slow_jitter": (-0.01, 0.05)},
    ],
)
def test_chaos_config_rejects_bad_gray_values(kwargs):
    with pytest.raises(ValueError):
        ChaosConfig(**kwargs)


def run_gray_campaign(seed=5):
    sim, network = make_fabric()
    engine = make_engine(
        network, seed=seed, config=ChaosConfig(**GRAY_CONFIG_KWARGS)
    )
    engine.start()
    sim.run(until=20.0)
    return sim, network, engine


def test_gray_campaign_records_ground_truth():
    sim, network, engine = run_gray_campaign()
    assert engine.finished
    assert engine.gray_schedule, "no gray faults injected"
    kinds = {fault.kind for fault in engine.gray_schedule}
    assert kinds == {
        "slow_node", "flapping_link", "oneway_partition", "dup_storm"
    }
    names = set(network.endpoints())
    for fault in engine.gray_schedule:
        assert fault.target in names
        assert 0.0 < fault.start < fault.end <= sim.now
        assert fault.severity > 0.0


def test_gray_campaign_heals_the_world():
    sim, network, engine = run_gray_campaign()
    assert engine.finished
    assert network.active_partitions() == []
    for name in network.endpoints():
        assert network.is_up(name)
        assert not network.is_degraded(name)
    assert not network._churn  # dup storms fully uninstalled
    assert not network._degraded_links


def test_gray_schedule_is_deterministic():
    def ground_truth(seed):
        _, _, engine = run_gray_campaign(seed)
        return [fault.to_dict() for fault in engine.gray_schedule]

    assert ground_truth(5) == ground_truth(5)
    assert ground_truth(5) != ground_truth(6)


def test_slow_node_degrades_only_during_window():
    sim, network, engine = run_gray_campaign()
    # Replay: degradation observed mid-window has been removed by the end
    # (campaign healed), and the schedule says who was slow when.
    slow = [f for f in engine.gray_schedule if f.kind == "slow_node"]
    assert slow
    for fault in slow:
        assert fault.severity >= 1.0  # latency factor


def test_zero_gray_weights_keep_existing_schedules():
    """All-gray-off configs must replay the exact legacy fault schedule:
    the gray streams draw nothing when their weights are zero."""

    def schedule(**extra):
        sim, network = make_fabric()
        engine = ChaosEngine(
            network,
            ChaosTargets(primaries=PRIMARIES, secondaries=SECONDARIES,
                         sequencer="seq"),
            ChaosConfig(duration=10.0, mean_interval=0.3, **extra),
            rng=random.Random(11),
        )
        engine.start()
        sim.run(until=15.0)
        return [(e.time, e.kind, e.target) for e in engine.events]

    assert schedule() == schedule(
        slow_node_weight=0.0,
        flapping_link_weight=0.0,
        oneway_partition_weight=0.0,
        dup_storm_weight=0.0,
        slow_factor=(4.0, 9.0),  # shape knobs alone must not perturb
        flap_period=(0.05, 0.2),
    )
