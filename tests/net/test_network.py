"""Unit tests for the network fabric."""

import pytest

from repro.net.latency import FixedLatency
from repro.net.message import Message, next_message_id
from repro.net.network import Endpoint, Network, NetworkError


class Sink(Endpoint):
    def __init__(self, name):
        super().__init__(name)
        self.received = []

    def deliver(self, message):
        self.received.append((self.now, message))


@pytest.fixture
def pair(network):
    a, b = Sink("a"), Sink("b")
    network.attach(a)
    network.attach(b)
    return a, b


# ---------------------------------------------------------------------------
# Messages
# ---------------------------------------------------------------------------
def test_message_ids_are_unique():
    assert next_message_id() != next_message_id()


def test_message_kind_is_payload_type():
    msg = Message("a", "b", {"x": 1}, 0.0)
    assert msg.kind == "dict"


def test_message_rejects_negative_size():
    with pytest.raises(ValueError):
        Message("a", "b", None, 0.0, size_bytes=-1)


# ---------------------------------------------------------------------------
# Delivery
# ---------------------------------------------------------------------------
def test_unicast_delivers_after_latency(sim, pair):
    a, b = pair
    a.send("b", "hello")
    sim.run()
    assert len(b.received) == 1
    arrival, message = b.received[0]
    assert arrival == pytest.approx(0.001)
    assert message.payload == "hello"
    assert message.sender == "a"


def test_multicast_excludes_sender(sim, network, pair):
    a, b = pair
    c = Sink("c")
    network.attach(c)
    a.multicast(["a", "b", "c"], "fanout")
    sim.run()
    assert len(a.received) == 0
    assert len(b.received) == 1
    assert len(c.received) == 1


def test_per_link_latency_override(sim, network, pair):
    a, b = pair
    network.set_link("a", "b", FixedLatency(0.5))
    a.send("b", "slow")
    b.send("a", "fast")
    sim.run()
    assert b.received[0][0] == pytest.approx(0.5)
    assert a.received[0][0] == pytest.approx(0.001)


def test_symmetric_link_override(sim, network, pair):
    a, b = pair
    network.set_symmetric_link("a", "b", FixedLatency(0.25))
    a.send("b", 1)
    b.send("a", 2)
    sim.run()
    assert b.received[0][0] == pytest.approx(0.25)
    assert a.received[0][0] == pytest.approx(0.25)


def test_fifo_on_deterministic_link(sim, pair):
    a, b = pair
    for i in range(10):
        a.send("b", i)
    sim.run()
    assert [m.payload for _, m in b.received] == list(range(10))


def test_stats_counters(sim, network, pair):
    a, b = pair
    a.send("b", 1)
    a.send("nonexistent", 2)
    sim.run()
    assert network.messages_sent == 2
    assert network.messages_delivered == 1
    assert network.messages_dropped == 1


# ---------------------------------------------------------------------------
# Attach/detach validation
# ---------------------------------------------------------------------------
def test_duplicate_attach_rejected(network, pair):
    with pytest.raises(NetworkError):
        network.attach(Sink("a"))


def test_send_from_unattached_endpoint_rejected():
    orphan = Sink("orphan")
    with pytest.raises(NetworkError):
        orphan.send("x", 1)


def test_unknown_sender_rejected(network, pair):
    with pytest.raises(NetworkError):
        network.send("ghost", "a", 1)


def test_send_to_unknown_recipient_is_dropped(sim, network, pair):
    a, _ = pair
    a.send("ghost", 1)
    sim.run()
    assert network.messages_dropped == 1


def test_endpoint_lookup(network, pair):
    a, _ = pair
    assert network.endpoint("a") is a
    with pytest.raises(NetworkError):
        network.endpoint("ghost")
    assert network.endpoints() == ["a", "b"]


# ---------------------------------------------------------------------------
# Crashes
# ---------------------------------------------------------------------------
def test_crashed_sender_drops_messages(sim, network, pair):
    a, b = pair
    network.crash("a")
    a.send("b", 1)
    sim.run()
    assert b.received == []
    assert not network.is_up("a")


def test_crashed_recipient_drops_messages(sim, network, pair):
    a, b = pair
    network.crash("b")
    a.send("b", 1)
    sim.run()
    assert b.received == []


def test_crash_loses_in_flight_messages(sim, network, pair):
    a, b = pair
    a.send("b", "in-flight")
    # Crash strictly before the 1 ms delivery completes.
    sim.schedule(0.0005, network.crash, "b")
    sim.run()
    assert b.received == []


def test_recovery_restores_delivery(sim, network, pair):
    a, b = pair
    network.crash("b")
    a.send("b", "lost")
    sim.run()
    network.recover("b")
    a.send("b", "found")
    sim.run()
    assert [m.payload for _, m in b.received] == ["found"]


def test_crash_unknown_endpoint_rejected(network):
    with pytest.raises(NetworkError):
        network.crash("ghost")


# ---------------------------------------------------------------------------
# Partitions
# ---------------------------------------------------------------------------
def test_partition_blocks_both_directions(sim, network, pair):
    a, b = pair
    network.partition({"a"}, {"b"})
    a.send("b", 1)
    b.send("a", 2)
    sim.run()
    assert a.received == [] and b.received == []


def test_partition_does_not_block_same_side(sim, network, pair):
    a, b = pair
    c = Sink("c")
    network.attach(c)
    network.partition({"a", "b"}, {"c"})
    a.send("b", 1)
    sim.run()
    assert len(b.received) == 1


def test_partition_cuts_in_flight_messages(sim, network, pair):
    a, b = pair
    a.send("b", 1)
    sim.schedule(0.0005, network.partition, {"a"}, {"b"})
    sim.run()
    assert b.received == []


def test_heal_restores_traffic(sim, network, pair):
    a, b = pair
    network.partition({"a"}, {"b"})
    network.heal_partitions()
    a.send("b", 1)
    sim.run()
    assert len(b.received) == 1


# ---------------------------------------------------------------------------
# Random loss
# ---------------------------------------------------------------------------
def test_drop_probability_loses_some_messages(sim, rng, trace):
    from repro.net.network import Network

    lossy = Network(sim, rng, FixedLatency(0.001), trace=trace, drop_probability=0.5)
    a, b = Sink("a"), Sink("b")
    lossy.attach(a)
    lossy.attach(b)
    for i in range(200):
        a.send("b", i)
    sim.run()
    assert 0 < len(b.received) < 200
    # Delivered messages keep their relative order on a deterministic link.
    payloads = [m.payload for _, m in b.received]
    assert payloads == sorted(payloads)


def test_invalid_drop_probability_rejected(sim, rng):
    from repro.net.network import Network

    with pytest.raises(ValueError):
        Network(sim, rng, FixedLatency(0.001), drop_probability=1.0)


# ---------------------------------------------------------------------------
# Named and asymmetric partitions
# ---------------------------------------------------------------------------
def test_named_cuts_coexist_and_heal_individually(sim, network, pair):
    a, b = pair
    c = Sink("c")
    network.attach(c)
    network.partition(["a"], ["b"], name="ab")
    network.partition(["a"], ["c"], name="ac")
    assert network.active_partitions() == ["ab", "ac"]
    assert network.heal_partition("ab")
    a.send("b", 1)
    a.send("c", 2)
    sim.run()
    assert len(b.received) == 1
    assert len(c.received) == 0  # "ac" still cuts
    assert not network.heal_partition("ab")  # already healed


def test_duplicate_partition_name_rejected(network, pair):
    network.partition(["a"], ["b"], name="dup")
    with pytest.raises(NetworkError):
        network.partition(["a"], ["b"], name="dup")


def test_oneway_partition_blocks_single_direction(sim, network, pair):
    a, b = pair
    network.partition(["a"], ["b"], name="one-way", symmetric=False)
    a.send("b", "blocked")
    b.send("a", "flows")
    sim.run()
    assert len(b.received) == 0
    assert len(a.received) == 1


# ---------------------------------------------------------------------------
# Gray degradation
# ---------------------------------------------------------------------------
def test_degrade_node_slows_both_directions(sim, network, pair):
    a, b = pair
    network.degrade_node("b", factor=100.0)
    a.send("b", "in")
    b.send("a", "out")
    sim.run()
    assert b.received[0][0] == pytest.approx(0.1)
    assert a.received[0][0] == pytest.approx(0.1)
    assert network.is_degraded("b")


def test_restore_node_returns_to_base_latency(sim, network, pair):
    a, b = pair
    network.degrade_node("b", factor=100.0)
    assert network.restore_node("b")
    assert not network.restore_node("b")
    a.send("b", 1)
    sim.run()
    assert b.received[0][0] == pytest.approx(0.001)


def test_degrade_link_is_directed(sim, network, pair):
    a, b = pair
    network.degrade_link("a", "b", factor=50.0)
    a.send("b", "slow")
    b.send("a", "fast")
    sim.run()
    assert b.received[0][0] == pytest.approx(0.05)
    assert a.received[0][0] == pytest.approx(0.001)


def test_degradations_stack_multiplicatively(sim, network, pair):
    a, b = pair
    network.degrade_node("a", factor=10.0)
    network.degrade_node("b", factor=10.0)
    a.send("b", 1)
    sim.run()
    assert b.received[0][0] == pytest.approx(0.1)


def test_degrade_rejects_bad_severity(network, pair):
    with pytest.raises(ValueError):
        network.degrade_node("a", factor=0.5)
    with pytest.raises(ValueError):
        network.degrade_link("a", "b", factor=1.0, jitter_s=-0.1)
    with pytest.raises(NetworkError):
        network.degrade_node("ghost", factor=2.0)


def test_clear_degradations_restores_everything(sim, network, pair):
    a, b = pair
    network.degrade_node("a", factor=10.0)
    network.degrade_link("a", "b", factor=10.0)
    network.clear_degradations()
    assert not network.is_degraded("a")
    a.send("b", 1)
    sim.run()
    assert b.received[0][0] == pytest.approx(0.001)


# ---------------------------------------------------------------------------
# Link churn: duplication and reordering
# ---------------------------------------------------------------------------
def test_churn_validation():
    from repro.net.network import LinkChurn

    with pytest.raises(ValueError):
        LinkChurn(duplicate_probability=1.5)
    with pytest.raises(ValueError):
        LinkChurn(reorder_probability=-0.1)
    with pytest.raises(ValueError):
        LinkChurn(extra_delay=(0.5, 0.1))


def test_churn_duplicates_messages(sim, network, pair):
    from repro.net.network import LinkChurn

    a, b = pair
    network.set_churn("a", "b", LinkChurn(duplicate_probability=1.0))
    a.send("b", "twice")
    sim.run()
    assert [m.payload for _, m in b.received] == ["twice", "twice"]
    assert network.metrics.counter("net_messages_duplicated").value == 1


def test_churn_reorders_messages(sim, network, pair):
    from repro.net.network import LinkChurn

    a, b = pair
    network.set_churn(
        "a", "b",
        LinkChurn(reorder_probability=1.0, extra_delay=(0.05, 0.05)),
    )
    a.send("b", "first-sent")
    network.clear_churn("a", "b")
    a.send("b", "second-sent")
    sim.run()
    # The delayed first message is overtaken by the second.
    assert [m.payload for _, m in b.received] == ["second-sent", "first-sent"]


def test_churn_wildcard_precedence(sim, network, pair):
    from repro.net.network import LinkChurn

    a, b = pair
    network.set_churn("*", "*", LinkChurn(duplicate_probability=1.0))
    network.set_churn("a", "b", LinkChurn(duplicate_probability=0.0))
    a.send("b", "exact-pair-wins")
    sim.run()
    assert len(b.received) == 1
    network.clear_churn()
    a.send("b", "all-clear")
    sim.run()
    assert len(b.received) == 2


def test_churn_off_leaves_rng_schedule_untouched(trace):
    """The churn stream is only consumed when a matching rule exists, so
    configuring churn for an idle pair must not shift delivery timing of
    other traffic (bit-identical replay guarantee)."""
    from repro.net.latency import LanLatency
    from repro.net.network import LinkChurn, Network
    from repro.sim.kernel import Simulator
    from repro.sim.rng import RngRegistry

    def run(with_idle_churn):
        sim = Simulator()
        net = Network(sim, RngRegistry(4242), LanLatency(0.002, 0.002))
        a, b, c = Sink("a"), Sink("b"), Sink("c")
        for ep in (a, b, c):
            net.attach(ep)
        if with_idle_churn:
            net.set_churn(
                "b", "c", LinkChurn(duplicate_probability=0.9,
                                    reorder_probability=0.9)
            )
        for i in range(50):
            a.send("b", i)
        sim.run()
        return [(t, m.payload) for t, m in b.received]

    assert run(False) == run(True)
