"""Unit tests for the network fabric."""

import pytest

from repro.net.latency import FixedLatency
from repro.net.message import Message, next_message_id
from repro.net.network import Endpoint, Network, NetworkError


class Sink(Endpoint):
    def __init__(self, name):
        super().__init__(name)
        self.received = []

    def deliver(self, message):
        self.received.append((self.now, message))


@pytest.fixture
def pair(network):
    a, b = Sink("a"), Sink("b")
    network.attach(a)
    network.attach(b)
    return a, b


# ---------------------------------------------------------------------------
# Messages
# ---------------------------------------------------------------------------
def test_message_ids_are_unique():
    assert next_message_id() != next_message_id()


def test_message_kind_is_payload_type():
    msg = Message("a", "b", {"x": 1}, 0.0)
    assert msg.kind == "dict"


def test_message_rejects_negative_size():
    with pytest.raises(ValueError):
        Message("a", "b", None, 0.0, size_bytes=-1)


# ---------------------------------------------------------------------------
# Delivery
# ---------------------------------------------------------------------------
def test_unicast_delivers_after_latency(sim, pair):
    a, b = pair
    a.send("b", "hello")
    sim.run()
    assert len(b.received) == 1
    arrival, message = b.received[0]
    assert arrival == pytest.approx(0.001)
    assert message.payload == "hello"
    assert message.sender == "a"


def test_multicast_excludes_sender(sim, network, pair):
    a, b = pair
    c = Sink("c")
    network.attach(c)
    a.multicast(["a", "b", "c"], "fanout")
    sim.run()
    assert len(a.received) == 0
    assert len(b.received) == 1
    assert len(c.received) == 1


def test_per_link_latency_override(sim, network, pair):
    a, b = pair
    network.set_link("a", "b", FixedLatency(0.5))
    a.send("b", "slow")
    b.send("a", "fast")
    sim.run()
    assert b.received[0][0] == pytest.approx(0.5)
    assert a.received[0][0] == pytest.approx(0.001)


def test_symmetric_link_override(sim, network, pair):
    a, b = pair
    network.set_symmetric_link("a", "b", FixedLatency(0.25))
    a.send("b", 1)
    b.send("a", 2)
    sim.run()
    assert b.received[0][0] == pytest.approx(0.25)
    assert a.received[0][0] == pytest.approx(0.25)


def test_fifo_on_deterministic_link(sim, pair):
    a, b = pair
    for i in range(10):
        a.send("b", i)
    sim.run()
    assert [m.payload for _, m in b.received] == list(range(10))


def test_stats_counters(sim, network, pair):
    a, b = pair
    a.send("b", 1)
    a.send("nonexistent", 2)
    sim.run()
    assert network.messages_sent == 2
    assert network.messages_delivered == 1
    assert network.messages_dropped == 1


# ---------------------------------------------------------------------------
# Attach/detach validation
# ---------------------------------------------------------------------------
def test_duplicate_attach_rejected(network, pair):
    with pytest.raises(NetworkError):
        network.attach(Sink("a"))


def test_send_from_unattached_endpoint_rejected():
    orphan = Sink("orphan")
    with pytest.raises(NetworkError):
        orphan.send("x", 1)


def test_unknown_sender_rejected(network, pair):
    with pytest.raises(NetworkError):
        network.send("ghost", "a", 1)


def test_send_to_unknown_recipient_is_dropped(sim, network, pair):
    a, _ = pair
    a.send("ghost", 1)
    sim.run()
    assert network.messages_dropped == 1


def test_endpoint_lookup(network, pair):
    a, _ = pair
    assert network.endpoint("a") is a
    with pytest.raises(NetworkError):
        network.endpoint("ghost")
    assert network.endpoints() == ["a", "b"]


# ---------------------------------------------------------------------------
# Crashes
# ---------------------------------------------------------------------------
def test_crashed_sender_drops_messages(sim, network, pair):
    a, b = pair
    network.crash("a")
    a.send("b", 1)
    sim.run()
    assert b.received == []
    assert not network.is_up("a")


def test_crashed_recipient_drops_messages(sim, network, pair):
    a, b = pair
    network.crash("b")
    a.send("b", 1)
    sim.run()
    assert b.received == []


def test_crash_loses_in_flight_messages(sim, network, pair):
    a, b = pair
    a.send("b", "in-flight")
    # Crash strictly before the 1 ms delivery completes.
    sim.schedule(0.0005, network.crash, "b")
    sim.run()
    assert b.received == []


def test_recovery_restores_delivery(sim, network, pair):
    a, b = pair
    network.crash("b")
    a.send("b", "lost")
    sim.run()
    network.recover("b")
    a.send("b", "found")
    sim.run()
    assert [m.payload for _, m in b.received] == ["found"]


def test_crash_unknown_endpoint_rejected(network):
    with pytest.raises(NetworkError):
        network.crash("ghost")


# ---------------------------------------------------------------------------
# Partitions
# ---------------------------------------------------------------------------
def test_partition_blocks_both_directions(sim, network, pair):
    a, b = pair
    network.partition({"a"}, {"b"})
    a.send("b", 1)
    b.send("a", 2)
    sim.run()
    assert a.received == [] and b.received == []


def test_partition_does_not_block_same_side(sim, network, pair):
    a, b = pair
    c = Sink("c")
    network.attach(c)
    network.partition({"a", "b"}, {"c"})
    a.send("b", 1)
    sim.run()
    assert len(b.received) == 1


def test_partition_cuts_in_flight_messages(sim, network, pair):
    a, b = pair
    a.send("b", 1)
    sim.schedule(0.0005, network.partition, {"a"}, {"b"})
    sim.run()
    assert b.received == []


def test_heal_restores_traffic(sim, network, pair):
    a, b = pair
    network.partition({"a"}, {"b"})
    network.heal_partitions()
    a.send("b", 1)
    sim.run()
    assert len(b.received) == 1


# ---------------------------------------------------------------------------
# Random loss
# ---------------------------------------------------------------------------
def test_drop_probability_loses_some_messages(sim, rng, trace):
    from repro.net.network import Network

    lossy = Network(sim, rng, FixedLatency(0.001), trace=trace, drop_probability=0.5)
    a, b = Sink("a"), Sink("b")
    lossy.attach(a)
    lossy.attach(b)
    for i in range(200):
        a.send("b", i)
    sim.run()
    assert 0 < len(b.received) < 200
    # Delivered messages keep their relative order on a deterministic link.
    payloads = [m.payload for _, m in b.received]
    assert payloads == sorted(payloads)


def test_invalid_drop_probability_rejected(sim, rng):
    from repro.net.network import Network

    with pytest.raises(ValueError):
        Network(sim, rng, FixedLatency(0.001), drop_probability=1.0)
