"""Unit tests for latency models."""

import pytest

from repro.net.latency import FixedLatency, LanLatency, LatencyModel, WanLatency
from repro.net.message import Message
from repro.sim.rng import Constant, RngRegistry


@pytest.fixture
def stream():
    return RngRegistry(5).stream("latency")


def _msg(size=256):
    return Message("a", "b", None, 0.0, size_bytes=size)


def test_fixed_latency_is_deterministic(stream):
    model = FixedLatency(0.01)
    assert model.delay(_msg(), stream) == 0.01
    assert model.delay(_msg(100000), stream) == 0.01  # no bandwidth term


def test_bandwidth_term_scales_with_size(stream):
    model = LatencyModel(Constant(0.001), bandwidth_bytes_per_s=1e6)
    small = model.delay(_msg(1000), stream)
    large = model.delay(_msg(100000), stream)
    assert small == pytest.approx(0.001 + 0.001)
    assert large == pytest.approx(0.001 + 0.1)


def test_negative_bandwidth_rejected():
    with pytest.raises(ValueError):
        LatencyModel(Constant(0.001), bandwidth_bytes_per_s=-1)


def test_mean_delay_includes_bandwidth():
    model = LatencyModel(Constant(0.002), bandwidth_bytes_per_s=1e6)
    assert model.mean_delay(size_bytes=2000) == pytest.approx(0.004)


def test_lan_latency_sub_millisecond_scale(stream):
    model = LanLatency()
    samples = [model.delay(_msg(), stream) for _ in range(300)]
    assert all(0 < s < 0.005 for s in samples)
    assert sum(samples) / len(samples) < 0.001


def test_wan_latency_slower_than_lan(stream):
    lan = LanLatency()
    wan = WanLatency()
    lan_mean = sum(lan.delay(_msg(), stream) for _ in range(200)) / 200
    wan_mean = sum(wan.delay(_msg(), stream) for _ in range(200)) / 200
    assert wan_mean > 10 * lan_mean


def test_delay_never_negative(stream):
    model = LatencyModel(Constant(0.0))
    assert model.delay(_msg(), stream) >= 0.0
