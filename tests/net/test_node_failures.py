"""Unit tests for hosts and the failure injector."""

import pytest

from repro.net.failures import FailureInjector, OverloadWindow
from repro.net.latency import FixedLatency
from repro.net.network import Endpoint, Network
from repro.net.node import Host


class Sink(Endpoint):
    def __init__(self, name):
        super().__init__(name)
        self.received = []

    def deliver(self, message):
        self.received.append(message)


# ---------------------------------------------------------------------------
# Host
# ---------------------------------------------------------------------------
def test_host_scales_durations():
    host = Host("slow", speed_factor=3.0)
    assert host.scale(0.1) == pytest.approx(0.3)


def test_host_rejects_bad_args():
    with pytest.raises(ValueError):
        Host("", 1.0)
    with pytest.raises(ValueError):
        Host("x", 0.0)
    with pytest.raises(ValueError):
        Host("x", 1.0).scale(-1.0)


def test_overload_multiplies_base_factor():
    host = Host("h", speed_factor=2.0)
    host.begin_overload(3.0)
    assert host.speed_factor == pytest.approx(6.0)
    assert host.overloaded
    host.end_overload()
    assert host.speed_factor == pytest.approx(2.0)
    assert not host.overloaded


def test_overload_factor_below_one_rejected():
    with pytest.raises(ValueError):
        Host("h").begin_overload(0.5)


# ---------------------------------------------------------------------------
# OverloadWindow
# ---------------------------------------------------------------------------
def test_overload_window_validation():
    with pytest.raises(ValueError):
        OverloadWindow(start=2.0, end=1.0, factor=2.0)
    with pytest.raises(ValueError):
        OverloadWindow(start=0.0, end=1.0, factor=0.9)
    with pytest.raises(ValueError):
        OverloadWindow(start=-1.0, end=1.0, factor=2.0)


# ---------------------------------------------------------------------------
# FailureInjector
# ---------------------------------------------------------------------------
@pytest.fixture
def net(sim, rng):
    network = Network(sim, rng, FixedLatency(0.001))
    a, b = Sink("a"), Sink("b")
    network.attach(a)
    network.attach(b)
    return network, a, b


def test_crash_at_takes_effect_at_time(sim, net):
    network, a, b = net
    injector = FailureInjector(network)
    injector.crash_at(1.0, "b")

    sim.schedule(0.5, a.send, "b", "before")
    sim.schedule(1.5, a.send, "b", "after")
    sim.run()
    assert [m.payload for m in b.received] == ["before"]


def test_crash_with_recovery(sim, net):
    network, a, b = net
    FailureInjector(network).crash_at(1.0, "b", recover_at=2.0)
    sim.schedule(1.5, a.send, "b", "during")
    sim.schedule(2.5, a.send, "b", "after")
    sim.run()
    assert [m.payload for m in b.received] == ["after"]


def test_on_crash_hook_runs(sim, net, recorder):
    network, _, _ = net
    FailureInjector(network).crash_at(1.0, "b", on_crash=lambda: recorder("crashed"))
    sim.run()
    assert recorder.calls == ["crashed"]


def test_invalid_recovery_time_rejected(net):
    network, _, _ = net
    with pytest.raises(ValueError):
        FailureInjector(network).crash_at(2.0, "b", recover_at=1.0)


def test_partition_at_with_heal(sim, net):
    network, a, b = net
    FailureInjector(network).partition_at(1.0, ["a"], ["b"], heal_at=2.0)
    sim.schedule(0.5, a.send, "b", "pre")
    sim.schedule(1.5, a.send, "b", "cut")
    sim.schedule(2.5, a.send, "b", "healed")
    sim.run()
    assert [m.payload for m in b.received] == ["pre", "healed"]


def test_overload_injection_window(sim, net):
    network, _, _ = net
    host = Host("h")
    injector = FailureInjector(network)
    injector.overload(host, OverloadWindow(start=1.0, end=2.0, factor=4.0))
    checks = []
    sim.schedule(0.5, lambda: checks.append(host.speed_factor))
    sim.schedule(1.5, lambda: checks.append(host.speed_factor))
    sim.schedule(2.5, lambda: checks.append(host.speed_factor))
    sim.run()
    assert checks == [1.0, 4.0, 1.0]


def test_injector_log(sim, net):
    network, _, _ = net
    injector = FailureInjector(network)
    injector.crash_at(1.0, "b")
    assert any("crash b" in line for line in injector.injected)


# ---------------------------------------------------------------------------
# Idempotent crash / recover semantics
# ---------------------------------------------------------------------------
@pytest.fixture
def traced_net(sim, network, trace):
    a, b = Sink("a"), Sink("b")
    network.attach(a)
    network.attach(b)
    return network, trace


def test_crash_is_idempotent(traced_net):
    network, trace = traced_net
    assert network.crash("a") is True
    assert network.crash("a") is False  # already down: no-op
    assert trace.count("net.crash", "a") == 1


def test_recover_is_idempotent(traced_net):
    network, trace = traced_net
    assert network.recover("a") is False  # already up: no-op
    network.crash("a")
    assert network.recover("a") is True
    assert network.recover("a") is False
    assert trace.count("net.recover", "a") == 1


def test_crash_recover_unknown_endpoint_raises(traced_net):
    from repro.net.network import NetworkError

    network, _ = traced_net
    with pytest.raises(NetworkError):
        network.crash("ghost")
    with pytest.raises(NetworkError):
        network.recover("ghost")


def test_crash_at_rejects_unknown_endpoint(traced_net):
    network, _ = traced_net
    with pytest.raises(ValueError):
        FailureInjector(network).crash_at(1.0, "ghost")


def test_overlapping_injections_fire_hooks_once(sim, traced_net, recorder):
    """Two overlapping crash windows against the same endpoint: hooks and
    traces follow the real state transitions, not the injection count."""
    network, trace = traced_net
    injector = FailureInjector(network)
    injector.crash_at(
        1.0, "b", recover_at=3.0,
        on_crash=lambda: recorder("crash1"), on_recover=lambda: recorder("up1"),
    )
    injector.crash_at(
        2.0, "b", recover_at=4.0,
        on_crash=lambda: recorder("crash2"), on_recover=lambda: recorder("up2"),
    )
    sim.run()
    # b goes down once (at 1.0) and comes back once (at 3.0); the second
    # crash and the second recovery are no-ops.
    assert recorder.calls == ["crash1", "up1"]
    assert trace.count("net.crash", "b") == 1
    assert trace.count("net.recover", "b") == 1


def test_on_recover_hook_runs(sim, traced_net, recorder):
    network, _ = traced_net
    FailureInjector(network).crash_at(
        1.0, "b", recover_at=2.0, on_recover=lambda: recorder("up")
    )
    sim.run()
    assert recorder.calls == ["up"]
