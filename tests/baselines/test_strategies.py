"""Unit tests for the baseline selection strategies."""

import pytest

from repro.baselines.strategies import (
    AllReplicasSelection,
    FixedSizeSelection,
    PrimaryOnlySelection,
    RandomSingleSelection,
    RoundRobinSelection,
)
from repro.core.qos import QoSSpec
from repro.core.selection import ReplicaView

QOS = QoSSpec(staleness_threshold=2, deadline=0.1, min_probability=0.9)


def _candidates(n=5, primaries=2):
    return [
        ReplicaView(
            name=f"r{i}",
            is_primary=i < primaries,
            immediate_cdf=0.5 + 0.05 * i,
            delayed_cdf=0.1,
            ert=float(i),
        )
        for i in range(n)
    ]


def test_all_replicas_selects_everything():
    result = AllReplicasSelection().select(_candidates(), QOS, 1.0)
    assert len(result) == 5
    assert set(result.replicas) == {f"r{i}" for i in range(5)}


def test_all_replicas_empty():
    result = AllReplicasSelection().select([], QOS, 1.0)
    assert result.replicas == () and not result.satisfied


def test_random_single_picks_one_deterministically_per_seed():
    a = RandomSingleSelection(seed=1).select(_candidates(), QOS, 1.0)
    b = RandomSingleSelection(seed=1).select(_candidates(), QOS, 1.0)
    assert len(a) == 1
    assert a.replicas == b.replicas


def test_random_single_varies_across_calls():
    strategy = RandomSingleSelection(seed=2)
    picks = {strategy.select(_candidates(), QOS, 1.0).replicas[0] for _ in range(30)}
    assert len(picks) > 1


def test_round_robin_cycles_in_name_order():
    strategy = RoundRobinSelection()
    picks = [strategy.select(_candidates(3), QOS, 1.0).replicas[0] for _ in range(6)]
    assert picks == ["r0", "r1", "r2", "r0", "r1", "r2"]


def test_fixed_k_selects_exactly_k():
    strategy = FixedSizeSelection(3)
    result = strategy.select(_candidates(5), QOS, 1.0)
    assert len(result) == 3


def test_fixed_k_rotates_start():
    strategy = FixedSizeSelection(2)
    first = strategy.select(_candidates(4), QOS, 1.0).replicas
    second = strategy.select(_candidates(4), QOS, 1.0).replicas
    assert first != second


def test_fixed_k_caps_at_candidate_count():
    result = FixedSizeSelection(10).select(_candidates(3), QOS, 1.0)
    assert len(result) == 3


def test_fixed_k_validation():
    with pytest.raises(ValueError):
        FixedSizeSelection(0)


def test_primary_only_filters_primaries():
    result = PrimaryOnlySelection().select(_candidates(5, primaries=2), QOS, 1.0)
    assert set(result.replicas) == {"r0", "r1"}


def test_primary_only_empty_when_no_primaries():
    result = PrimaryOnlySelection().select(_candidates(3, primaries=0), QOS, 1.0)
    assert result.replicas == ()


def test_predictions_reported_with_model():
    """Baselines report the P_K(d) the paper's model assigns their choice."""
    result = AllReplicasSelection().select(_candidates(), QOS, stale_factor=1.0)
    expected = 1.0
    for c in _candidates():
        expected_term = 1.0 - c.immediate_cdf
        expected *= expected_term
    assert result.predicted_probability == pytest.approx(1.0 - expected)


def test_strategy_names_distinct():
    names = {
        AllReplicasSelection.name,
        RandomSingleSelection.name,
        RoundRobinSelection.name,
        FixedSizeSelection.name,
        PrimaryOnlySelection.name,
    }
    assert len(names) == 5
