"""Tests for the Conclusions' extensions: admission control and
priority/cost mapping."""

import math

import pytest

from repro.core.admission import (
    AdmissionConfig,
    AdmissionController,
    ClientProfile,
    evaluate_against_client,
)
from repro.core.prediction import ResponseTimePredictor
from repro.core.qos import QoSSpec
from repro.core.repository import ClientInfoRepository
from repro.core.requests import PerfBroadcast
from repro.core.priority import (
    DEFAULT_PRIORITY_LEVELS,
    CostMapper,
    PriorityMapper,
)
from repro.core.selection import ReplicaView


def _views(n, cdf=0.9, primaries=1):
    return [
        ReplicaView(f"r{i}", i < primaries, cdf, cdf * 0.5, ert=float(i))
        for i in range(n)
    ]


# ---------------------------------------------------------------------------
# AdmissionController — feasibility
# ---------------------------------------------------------------------------
def test_achievable_probability_excludes_best_member():
    controller = AdmissionController()
    # Two replicas at 0.9: with one excluded as crash victim, only one
    # contributes: achievable = 0.9, not 0.99.
    achievable = controller.achievable_probability(
        _views(2), QoSSpec(2, 0.1, 0.5), stale_factor=1.0
    )
    assert achievable == pytest.approx(0.9)


def test_achievable_probability_empty_pool_is_zero():
    controller = AdmissionController()
    assert controller.achievable_probability([], QoSSpec(2, 0.1, 0.5), 1.0) == 0.0


def test_infeasible_qos_rejected():
    controller = AdmissionController()
    profile = ClientProfile("c", QoSSpec(2, 0.1, 0.95), read_rate=0.1)
    decision = controller.evaluate(
        profile, _views(2, cdf=0.8), stale_factor=1.0, num_primaries=1
    )
    assert not decision.admitted
    assert "cannot reach" in decision.reason
    assert decision.achievable_probability < 0.95


def test_feasible_qos_admitted():
    controller = AdmissionController()
    profile = ClientProfile("c", QoSSpec(2, 0.1, 0.9), read_rate=0.1)
    decision = controller.evaluate(
        profile, _views(5, cdf=0.9), stale_factor=1.0, num_primaries=2
    )
    assert decision.admitted
    assert decision.achievable_probability >= 0.9


# ---------------------------------------------------------------------------
# AdmissionController — capacity
# ---------------------------------------------------------------------------
def test_capacity_rejects_overload():
    controller = AdmissionController(
        AdmissionConfig(max_utilization=0.5, mean_read_service_time=0.1)
    )
    # 10 reads/s * 0.1 s * 2 replicas = 2 replica-seconds/s over 5 replicas
    # = 0.4 utilization for the first client; a second identical client
    # doubles it past the 0.5 bound.
    first = ClientProfile("c1", QoSSpec(2, 0.5, 0.5), read_rate=10.0)
    d1 = controller.evaluate(first, _views(5), 1.0, num_primaries=1)
    assert d1.admitted
    controller.admit(first, d1)

    second = ClientProfile("c2", QoSSpec(2, 0.5, 0.5), read_rate=10.0)
    d2 = controller.evaluate(second, _views(5), 1.0, num_primaries=1)
    assert not d2.admitted
    assert "utilization" in d2.reason


def test_release_frees_capacity():
    controller = AdmissionController(
        AdmissionConfig(max_utilization=0.5, mean_read_service_time=0.1)
    )
    first = ClientProfile("c1", QoSSpec(2, 0.5, 0.5), read_rate=10.0)
    d1 = controller.evaluate(first, _views(5), 1.0, num_primaries=1)
    controller.admit(first, d1)
    controller.release("c1")
    second = ClientProfile("c2", QoSSpec(2, 0.5, 0.5), read_rate=10.0)
    assert controller.evaluate(second, _views(5), 1.0, num_primaries=1).admitted


def test_update_rate_counts_against_all_primaries():
    controller = AdmissionController(
        AdmissionConfig(max_utilization=0.5, mean_update_service_time=0.1)
    )
    # 10 updates/s * 0.1 s * 4 primaries = 4 replica-s/s over 5 replicas.
    profile = ClientProfile("c", QoSSpec(2, 0.5, 0.0), read_rate=0.0, update_rate=10.0)
    decision = controller.evaluate(profile, _views(5), 1.0, num_primaries=4)
    assert not decision.admitted


def test_admit_rejected_decision_raises():
    controller = AdmissionController()
    profile = ClientProfile("c", QoSSpec(2, 0.1, 0.99), read_rate=1.0)
    decision = controller.evaluate(profile, _views(1, cdf=0.5), 1.0, 1)
    with pytest.raises(ValueError):
        controller.admit(profile, decision)
    controller.reject(profile, decision)
    assert controller.rejections[0][0] == "c"


def test_profile_and_config_validation():
    with pytest.raises(ValueError):
        ClientProfile("c", QoSSpec(1, 0.1, 0.5), read_rate=-1.0)
    with pytest.raises(ValueError):
        AdmissionConfig(max_utilization=0.0)
    with pytest.raises(ValueError):
        AdmissionConfig(mean_read_service_time=0.0)


def test_evaluate_against_live_predictor():
    repo = ClientInfoRepository(10)
    for name in ("p1", "s1", "s2"):
        for _ in range(5):
            repo.record_broadcast(PerfBroadcast(name, ts=0.02, tq=0.0, tb=None))
        repo.record_reply(name, 0.001, now=1.0)
    predictor = ResponseTimePredictor(repo, lazy_update_interval=2.0)
    controller = AdmissionController()
    profile = ClientProfile("c", QoSSpec(5, 0.1, 0.9), read_rate=0.5)
    decision = evaluate_against_client(
        controller, profile, predictor, ["p1"], ["s1", "s2"], now=2.0
    )
    assert decision.admitted  # 20 ms responses easily meet a 100 ms deadline


# ---------------------------------------------------------------------------
# PriorityMapper
# ---------------------------------------------------------------------------
def test_default_levels_ranked():
    mapper = PriorityMapper()
    ranked = mapper.ranked_levels()
    assert ranked[0] == "platinum" and ranked[-1] == "best-effort"
    assert mapper.probability_for("gold") == DEFAULT_PRIORITY_LEVELS["gold"]


def test_priority_builds_qos():
    mapper = PriorityMapper()
    qos = mapper.qos_for("silver", staleness_threshold=3, deadline=0.2)
    assert qos == QoSSpec(3, 0.2, 0.7)


def test_unknown_priority_raises_with_known_levels():
    with pytest.raises(KeyError) as err:
        PriorityMapper().probability_for("diamond")
    assert "platinum" in str(err.value)


def test_custom_levels_validated():
    with pytest.raises(ValueError):
        PriorityMapper({})
    with pytest.raises(ValueError):
        PriorityMapper({"x": 1.5})
    with pytest.raises(ValueError):
        PriorityMapper({"": 0.5})


# ---------------------------------------------------------------------------
# CostMapper
# ---------------------------------------------------------------------------
def test_cost_zero_budget_gives_base():
    mapper = CostMapper(base_probability=0.5, failure_discount=0.5)
    assert mapper.probability_for(0.0) == pytest.approx(0.5)


def test_cost_monotone_with_diminishing_returns():
    mapper = CostMapper(base_probability=0.5, failure_discount=0.5)
    probs = [mapper.probability_for(b) for b in range(6)]
    assert all(b > a for a, b in zip(probs, probs[1:]))
    gains = [b - a for a, b in zip(probs, probs[1:])]
    assert all(later < earlier for earlier, later in zip(gains, gains[1:]))


def test_cost_capped_at_max():
    mapper = CostMapper(base_probability=0.5, failure_discount=0.5,
                        max_probability=0.9)
    assert mapper.probability_for(100.0) == pytest.approx(0.9)


def test_cost_inverse_round_trip():
    mapper = CostMapper(base_probability=0.5, failure_discount=0.5)
    for target in (0.6, 0.75, 0.9):
        budget = mapper.budget_for(target)
        assert mapper.probability_for(budget) == pytest.approx(target)


def test_cost_inverse_edge_cases():
    mapper = CostMapper(base_probability=0.5, failure_discount=0.5,
                        max_probability=0.95)
    assert mapper.budget_for(0.3) == 0.0
    with pytest.raises(ValueError):
        mapper.budget_for(0.99)
    with pytest.raises(ValueError):
        mapper.budget_for(1.5)
    with pytest.raises(ValueError):
        mapper.probability_for(-1.0)


def test_cost_mapper_validation():
    with pytest.raises(ValueError):
        CostMapper(base_probability=1.5)
    with pytest.raises(ValueError):
        CostMapper(failure_discount=1.0)
    with pytest.raises(ValueError):
        CostMapper(base_probability=0.8, max_probability=0.5)


def test_cost_qos_for():
    qos = CostMapper().qos_for(2.0, staleness_threshold=1, deadline=0.3)
    assert qos.staleness_threshold == 1
    assert qos.deadline == 0.3
    assert qos.min_probability == CostMapper().probability_for(2.0)


# ---------------------------------------------------------------------------
# AdmissionController — empty pool, churn, observed-demand reassessment
# ---------------------------------------------------------------------------
def test_evaluate_empty_pool_rejects_explicitly():
    controller = AdmissionController()
    profile = ClientProfile("c", QoSSpec(2, 0.1, 0.5), read_rate=1.0)
    decision = controller.evaluate(profile, [], stale_factor=1.0, num_primaries=1)
    assert not decision.admitted
    assert "no serving replicas" in decision.reason
    assert decision.achievable_probability == 0.0
    assert math.isinf(decision.projected_utilization)


def test_admit_release_churn_restores_baseline_utilization():
    """Property: any admit/release churn that ends with every transient
    client released leaves projected utilization exactly at baseline."""
    from hypothesis import given, settings
    from hypothesis import strategies as st

    probe = ClientProfile("probe", QoSSpec(2, 0.5, 0.5), read_rate=1.0)

    @settings(max_examples=40, deadline=None)
    @given(
        rates=st.lists(
            st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
            min_size=0,
            max_size=8,
        ),
        churn=st.integers(min_value=1, max_value=3),
    )
    def inner(rates, churn):
        controller = AdmissionController()
        baseline = controller.projected_utilization(
            probe, serving_replicas=5, avg_replicas_per_read=2.0, num_primaries=1
        )
        for _ in range(churn):
            for i, rate in enumerate(rates):
                profile = ClientProfile(
                    f"c{i}", QoSSpec(2, 0.5, 0.5), read_rate=rate
                )
                decision = controller.evaluate(
                    profile, _views(5), 1.0, num_primaries=1
                )
                if decision.admitted:
                    controller.admit(profile, decision)
                    controller.observe_demand(f"c{i}", rate * 2.0)
            for i in range(len(rates)):
                controller.release(f"c{i}")
        assert not controller.admitted
        assert not controller.observed
        after = controller.projected_utilization(
            probe, serving_replicas=5, avg_replicas_per_read=2.0, num_primaries=1
        )
        assert after == pytest.approx(baseline)

    inner()


def test_observe_demand_validates_and_ignores_unknown_clients():
    controller = AdmissionController()
    with pytest.raises(ValueError):
        controller.observe_demand("ghost", read_rate=-1.0)
    controller.observe_demand("ghost", read_rate=5.0)  # not admitted: ignored
    assert "ghost" not in controller.observed


def test_effective_profile_substitutes_observed_rates():
    controller = AdmissionController()
    profile = ClientProfile("c", QoSSpec(2, 0.5, 0.5), read_rate=1.0)
    decision = controller.evaluate(profile, _views(5), 1.0, num_primaries=1)
    controller.admit(profile, decision)
    assert controller.effective_profile("c").read_rate == 1.0
    controller.observe_demand("c", read_rate=7.0, update_rate=0.5)
    effective = controller.effective_profile("c")
    assert effective.read_rate == 7.0
    assert effective.update_rate == 0.5
    assert effective.qos == profile.qos


def test_reassess_flags_largest_observed_demand_first():
    controller = AdmissionController(
        AdmissionConfig(max_utilization=0.5, mean_read_service_time=0.1)
    )
    for name, declared in (("small", 1.0), ("big", 1.0)):
        profile = ClientProfile(name, QoSSpec(2, 0.5, 0.5), read_rate=declared)
        decision = controller.evaluate(profile, _views(5), 1.0, num_primaries=1)
        controller.admit(profile, decision)
    # Declared demand fits; observed demand from "big" does not.
    assert controller.reassess(serving_replicas=5, num_primaries=1) == []
    controller.observe_demand("big", read_rate=20.0)
    flagged = controller.reassess(serving_replicas=5, num_primaries=1)
    assert flagged == ["big"]
    # The surviving set now fits again.
    controller.release("big")
    assert controller.reassess(serving_replicas=5, num_primaries=1) == []


def test_reassess_with_no_serving_replicas_flags_everyone():
    controller = AdmissionController()
    profile = ClientProfile("c", QoSSpec(2, 0.5, 0.5), read_rate=0.1)
    decision = controller.evaluate(profile, _views(5), 1.0, num_primaries=1)
    controller.admit(profile, decision)
    assert controller.reassess(serving_replicas=0, num_primaries=1) == ["c"]
