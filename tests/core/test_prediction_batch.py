"""Batched prediction APIs pinned to the scalar path (ISSUE 6).

Three surfaces: ``immediate_cdf_many`` / ``response_cdfs_many`` (one
replica, a batch of deadlines — the ``Pmf.cdf_many`` gather) and
``candidate_cdfs`` (many replicas, one deadline — the fused per-read loop
the client gateway runs).  The load-bearing property is that none of them
may drift from the scalar methods: values within 1e-12 (exact in
practice, since both paths read the same cached cumulative array) and,
for the fused path, the *same counter increments in the same order* so
Figure 3/4 telemetry is unchanged.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.prediction import ResponseTimePredictor
from repro.core.repository import ClientInfoRepository
from repro.core.requests import PerfBroadcast
from repro.stats.pmf import DiscretePmf


def _repo(replicas, seed=0, window_size=20):
    """Replicas with distinct histories (some with tb, one empty)."""
    rng = np.random.default_rng(seed)
    repo = ClientInfoRepository(window_size=window_size)
    for i, name in enumerate(replicas):
        if name.startswith("empty"):
            continue  # bootstrap path: no history at all
        for _ in range(window_size):
            repo.record_broadcast(
                PerfBroadcast(
                    replica=name,
                    ts=max(0.002, rng.normal(0.08 + 0.01 * i, 0.03)),
                    tq=max(0.0, rng.normal(0.01, 0.008)),
                    tb=rng.uniform(0.0, 2.0) if i % 2 else None,
                )
            )
        repo.record_reply(name, tg=rng.uniform(0.0005, 0.002), now=1.0)
    return repo


REPLICAS = ["p1", "p2", "s1", "s2", "s3", "empty1"]
DEADLINES = [0.0, 0.001, 0.05, 0.08, 0.1, 0.15, 0.2, 0.5, 2.0]


@pytest.mark.parametrize("use_cache", [True, False])
def test_immediate_cdf_many_matches_scalar(use_cache):
    repo = _repo(REPLICAS)
    batch_p = ResponseTimePredictor(repo, 2.0, use_cache=use_cache)
    scalar_p = ResponseTimePredictor(repo, 2.0, use_cache=use_cache)
    for name in REPLICAS:
        batch = batch_p.immediate_cdf_many(name, DEADLINES)
        scalar = [scalar_p.immediate_cdf(name, d) for d in DEADLINES]
        assert batch == pytest.approx(scalar, abs=1e-12), name


@pytest.mark.parametrize("use_cache", [True, False])
def test_response_cdfs_many_matches_scalar(use_cache):
    repo = _repo(REPLICAS)
    batch_p = ResponseTimePredictor(repo, 2.0, use_cache=use_cache)
    scalar_p = ResponseTimePredictor(repo, 2.0, use_cache=use_cache)
    for name in REPLICAS:
        immediate, delayed = batch_p.response_cdfs_many(name, DEADLINES)
        pairs = [scalar_p.response_cdfs(name, d) for d in DEADLINES]
        assert immediate == pytest.approx([p[0] for p in pairs], abs=1e-12)
        assert delayed == pytest.approx([p[1] for p in pairs], abs=1e-12)


def test_batch_counts_one_evaluation_per_call():
    """A batch reads one convolved distribution however many points it
    evaluates — the evaluations counter reflects distribution
    computations (Figure 3), not cdf lookups."""
    repo = _repo(["s1"])
    predictor = ResponseTimePredictor(repo, 2.0)
    predictor.immediate_cdf_many("s1", DEADLINES)
    assert predictor.evaluations == 1
    predictor.response_cdfs_many("s1", DEADLINES)
    assert predictor.evaluations == 2
    # Bootstrap replicas never count as evaluations, matching the scalar.
    predictor.immediate_cdf_many("nobody", DEADLINES)
    assert predictor.evaluations == 2


def test_bootstrap_batch_returns_filled_arrays():
    repo = ClientInfoRepository(window_size=10)
    predictor = ResponseTimePredictor(repo, 2.0, bootstrap_cdf=0.7)
    out = predictor.immediate_cdf_many("ghost", DEADLINES)
    assert out.shape == (len(DEADLINES),)
    assert np.all(out == 0.7)
    immediate, delayed = predictor.response_cdfs_many("ghost", DEADLINES)
    assert np.all(immediate == 0.7) and np.all(delayed == 0.7)
    delayed[0] = 0.0  # the two arrays must not alias each other
    assert immediate[0] == 0.7


def test_candidate_cdfs_bit_identical_to_scalar_loop():
    """The fused per-read path replays the scalar sequence exactly: same
    values AND the same cache/evaluation counters afterwards."""
    primaries = ["p1", "p2"]
    secondaries = ["s1", "s2", "s3", "empty1"]
    repo = _repo(primaries + secondaries)
    fused_p = ResponseTimePredictor(repo, 2.0)
    scalar_p = ResponseTimePredictor(repo, 2.0)
    for deadline in (0.05, 0.1, 0.1, 0.25):  # repeat -> cache-hit round
        primary_cdfs, secondary_pairs = fused_p.candidate_cdfs(
            primaries, secondaries, deadline
        )
        expected_primary = [scalar_p.immediate_cdf(n, deadline) for n in primaries]
        expected_pairs = [scalar_p.response_cdfs(n, deadline) for n in secondaries]
        assert primary_cdfs == expected_primary  # exact, not approx
        assert secondary_pairs == expected_pairs
    assert fused_p.evaluations == scalar_p.evaluations
    assert fused_p.cache_stats == scalar_p.cache_stats


@settings(deadline=None, max_examples=40)
@given(
    samples=st.lists(
        st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
        min_size=1,
        max_size=40,
    ),
    xs=st.lists(
        st.floats(min_value=-1.0, max_value=10.0, allow_nan=False),
        min_size=1,
        max_size=30,
    ),
)
def test_cdf_many_identical_to_scalar_cdf(samples, xs):
    """The gather underneath every batch API: element-for-element equal
    to the scalar cdf, including edge bins, for arbitrary grids."""
    pmf = DiscretePmf.from_samples(samples)
    batch = pmf.cdf_many(xs)
    scalar = [pmf.cdf(x) for x in xs]
    assert batch.tolist() == scalar  # exact equality, same code path
