"""Overload protection (DESIGN.md §11): bounded queues, deadline-aware
shedding, pressure detection, the degradation ladder — and the default-off
guarantee that a service built without an OverloadConfig behaves
bit-identically to one carrying the inert ``disabled()`` config.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.overload import (
    CRITICAL,
    ELEVATED,
    HIGH,
    NOMINAL,
    DegradationConfig,
    DegradationPolicy,
    OverloadConfig,
    PressureMonitor,
    pressure_name,
)
from repro.core.qos import QoSSpec
from repro.core.selection import SelectionResult, SelectionStrategy
from repro.core.service import ServiceConfig, build_testbed
from repro.net.latency import FixedLatency
from repro.sim.process import Process, Timeout
from repro.sim.rng import Constant
from repro.sim.tracing import Trace
from repro.workloads.generators import PeriodicReader

QOS = QoSSpec(staleness_threshold=10, deadline=1.0, min_probability=0.5)


def make_testbed(
    overload=None,
    num_primaries=2,
    num_secondaries=2,
    lui=0.4,
    seed=21,
    **config_kwargs,
):
    config = ServiceConfig(
        name="svc",
        num_primaries=num_primaries,
        num_secondaries=num_secondaries,
        lazy_update_interval=lui,
        read_service_time=Constant(0.010),
        heartbeat_interval=0.1,
        suspect_timeout=0.35,
        gc_timeout=3.0,
        overload=overload,
        **config_kwargs,
    )
    return build_testbed(
        config,
        seed=seed,
        latency=FixedLatency(0.001),
        trace=Trace(enabled=True),
    )


def warm_up(testbed, client, reads=10, until=2.0):
    def run():
        yield client.call("increment")
        for _ in range(reads):
            yield client.call("get", (), QOS)
            yield Timeout(0.1)

    Process(testbed.sim, run())
    testbed.sim.run(until=until)


class SecondariesOnly(SelectionStrategy):
    def select(self, candidates, qos, stale_factor):
        names = tuple(c.name for c in candidates if not c.is_primary)
        return SelectionResult(names, 1.0, True)


# ---------------------------------------------------------------------------
# Configuration validation
# ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "kwargs",
    [
        {"queue_capacity": 0},
        {"defer_capacity": 0},
        {"min_retry_after": -0.1},
        {"pressure_alpha": 0.0},
        {"pressure_alpha": 1.5},
        {"hysteresis": 0.0},
        {"depth_thresholds": (4.0, 2.0, 16.0)},
        {"wait_ratio_thresholds": (1.0, 2.0)},
        {"wait_ratio_thresholds": (0.0, 1.0, 2.0)},
    ],
)
def test_overload_config_rejects_bad_values(kwargs):
    with pytest.raises(ValueError):
        OverloadConfig(**kwargs)


def test_disabled_config_is_inert():
    assert OverloadConfig.disabled().inert
    assert not OverloadConfig().inert


@pytest.mark.parametrize(
    "kwargs",
    [
        {"staleness_widen": -1},
        {"probability_relief": 1.5},
        {"max_level": 0},
        {"shed_level": 0},
        {"shed_level": 5},
        {"prefer_secondaries_level": 0},
        {"step_cooldown": -0.1},
        {"recovery_window": 0.0},
    ],
)
def test_degradation_config_rejects_bad_values(kwargs):
    with pytest.raises(ValueError):
        DegradationConfig(**kwargs)


def test_pressure_names():
    assert pressure_name(NOMINAL) == "nominal"
    assert pressure_name(CRITICAL) == "critical"
    assert pressure_name(99) == "critical"  # clamped


# ---------------------------------------------------------------------------
# PressureMonitor
# ---------------------------------------------------------------------------
def test_pressure_rises_immediately_on_heavy_samples():
    monitor = PressureMonitor()
    assert monitor.observe(queue_depth=20, tq=0.2, ts=0.01) == CRITICAL
    # First sample seeds the EWMAs outright — no slow ramp from zero.
    assert monitor.depth_ewma == 20.0


def test_pressure_descends_only_with_hysteresis():
    monitor = PressureMonitor(alpha=1.0)  # no smoothing: follow samples
    monitor.observe(queue_depth=9, tq=0.0, ts=0.01)
    assert monitor.level == ELEVATED + 1  # depth 9 >= both 4 and 8
    # A sample just below the held band is NOT enough to step down...
    monitor.observe(queue_depth=7, tq=0.0, ts=0.01)
    assert monitor.level == HIGH
    # ...but one clearing hysteresis * thresholds[1] = 0.7 * 8 is.
    monitor.observe(queue_depth=5, tq=0.0, ts=0.01)
    assert monitor.level == ELEVATED


def test_pressure_needs_both_signals_quiet_to_descend():
    monitor = PressureMonitor(alpha=1.0)
    monitor.observe(queue_depth=9, tq=0.05, ts=0.01)  # ratio 5 -> CRITICAL
    assert monitor.level == CRITICAL
    # Depth quiet, ratio still hot: hold the level.
    monitor.observe(queue_depth=0, tq=0.05, ts=0.01)
    assert monitor.level == CRITICAL
    # Both quiet: step down one level at a time.
    monitor.observe(queue_depth=0, tq=0.0, ts=0.01)
    assert monitor.level == HIGH


def test_expected_wait_tracks_service_time():
    monitor = PressureMonitor(alpha=1.0)
    monitor.observe(queue_depth=1, tq=0.0, ts=0.02)
    assert monitor.expected_wait(5) == pytest.approx(0.1)


# ---------------------------------------------------------------------------
# DegradationPolicy
# ---------------------------------------------------------------------------
def test_ladder_steps_down_on_overload_with_cooldown():
    policy = DegradationPolicy(DegradationConfig(step_cooldown=1.0))
    assert policy.note_overload(0.0) is not None
    assert policy.level == 1
    # Within the cooldown: evidence noted, no further step.
    assert policy.note_overload(0.5) is None
    assert policy.level == 1
    assert policy.note_overload(1.5) is not None
    assert policy.level == 2


def test_ladder_recovers_one_level_per_quiet_window():
    policy = DegradationPolicy(
        DegradationConfig(step_cooldown=0.0, recovery_window=1.0)
    )
    policy.note_overload(0.0)
    policy.note_overload(0.1)
    assert policy.level == 2
    assert policy.note_ok(0.5) is None  # window not yet elapsed
    step = policy.note_ok(1.2)
    assert step is not None and not step.down
    assert policy.level == 1
    # The up-step itself restarts the window.
    assert policy.note_ok(1.3) is None
    assert policy.note_ok(2.3) is not None
    assert policy.level == NOMINAL
    assert policy.note_ok(5.0) is None  # already nominal


def test_note_pressure_only_reacts_to_high_levels():
    policy = DegradationPolicy(DegradationConfig(step_cooldown=0.0))
    assert policy.note_pressure(0.0, ELEVATED) is None
    assert policy.note_pressure(0.0, HIGH) is not None
    assert policy.level == 1


def test_admit_relaxes_qos_per_level():
    policy = DegradationPolicy(
        DegradationConfig(staleness_widen=5, probability_relief=0.1)
    )
    assert policy.admit(QOS) is QOS  # nominal: untouched
    policy.note_overload(0.0)
    policy.note_overload(1.0)
    relaxed = policy.admit(QOS)
    assert relaxed.staleness_threshold == QOS.staleness_threshold + 10
    assert relaxed.min_probability == pytest.approx(0.3)
    assert relaxed.deadline == QOS.deadline


def test_shed_level_sheds_only_low_priority():
    policy = DegradationPolicy(DegradationConfig(step_cooldown=0.0))
    for t in range(3):
        policy.note_overload(float(t))
    assert policy.level == policy.config.shed_level
    vip = QoSSpec(staleness_threshold=10, deadline=1.0, min_probability=0.99)
    assert policy.admit(vip, priority="platinum") is not None
    assert policy.admit(QOS, priority="bronze") is None
    assert policy.admit(QOS) is None  # inferred from P_c <= bronze floor
    assert policy.reads_shed == 2
    stats = policy.stats()
    assert stats["degradation_steps_down"] == 3
    assert stats["degradation_reads_shed"] == 2


def test_prefer_secondaries_at_configured_level():
    policy = DegradationPolicy(DegradationConfig(step_cooldown=0.0))
    assert not policy.prefer_secondaries
    policy.note_overload(0.0)
    assert not policy.prefer_secondaries
    policy.note_overload(1.0)
    assert policy.prefer_secondaries


# ---------------------------------------------------------------------------
# Replica-side shedding
# ---------------------------------------------------------------------------
def test_full_queue_sheds_reads_with_explicit_reply():
    overload = OverloadConfig(queue_capacity=2, shed_predicted=False)
    testbed = make_testbed(overload=overload)
    client = testbed.service.create_client("c", read_only_methods={"get"})
    warm_up(testbed, client)

    outcomes = []
    for _ in range(50):  # one burst, no pacing: the queue must overflow
        client.invoke("get", (), QOS, callback=outcomes.append)
    testbed.sim.run(until=8.0)

    assert client.overload_replies > 0
    assert len(outcomes) == 50  # every read judged, shed or served
    for handler in testbed.service.all_replicas():
        # capacity + the in-service slot + one unsheddable update
        assert handler.queue_depth_peak <= 2 + 2
    shed_records = list(testbed.trace.filter("replica.shed"))
    assert shed_records
    assert all(r.detail["reason"] == "queue-full" for r in shed_records)


def test_expired_deadline_sheds_on_arrival():
    overload = OverloadConfig(queue_capacity=None, shed_predicted=False)
    testbed = make_testbed(overload=overload)
    client = testbed.service.create_client("c", read_only_methods={"get"})
    warm_up(testbed, client)

    # The link takes 1 ms; a 0.5 ms deadline has always expired on arrival.
    hopeless = QoSSpec(
        staleness_threshold=10, deadline=0.0005, min_probability=0.5
    )
    outcomes = []
    client.invoke("get", (), hopeless, callback=outcomes.append)
    testbed.sim.run(until=6.0)

    assert client.overload_replies > 0
    reasons = {
        r.detail["reason"] for r in testbed.trace.filter("replica.shed")
    }
    assert reasons == {"deadline-passed"}
    assert len(outcomes) == 1 and outcomes[0].timing_failure


def test_unbounded_service_never_sheds():
    testbed = make_testbed(overload=None)
    client = testbed.service.create_client("c", read_only_methods={"get"})
    warm_up(testbed, client)
    outcomes = []
    for _ in range(50):
        client.invoke("get", (), QOS, callback=outcomes.append)
    testbed.sim.run(until=8.0)
    assert client.overload_replies == 0
    assert all(o.value is not None for o in outcomes)


# ---------------------------------------------------------------------------
# Deferred-read expiry and recovery cleanup
# ---------------------------------------------------------------------------
def deferral_testbed(overload):
    """One primary + one stale secondary whose lazy update is far away."""
    testbed = make_testbed(
        overload=overload, num_primaries=1, num_secondaries=1, lui=30.0
    )
    client = testbed.service.create_client(
        "c", read_only_methods={"get"}, strategy=SecondariesOnly()
    )

    def seed():
        yield client.call("increment")  # secondary now one version behind

    Process(testbed.sim, seed())
    testbed.sim.run(until=1.0)
    return testbed, client


def test_deferred_read_expires_at_client_deadline():
    testbed, client = deferral_testbed(OverloadConfig())
    secondary = testbed.service.secondaries[0]
    tight = QoSSpec(staleness_threshold=0, deadline=0.3, min_probability=0.9)
    outcomes = []
    client.invoke("get", (), tight, callback=outcomes.append)
    testbed.sim.run(until=1.2)
    assert len(secondary._deferred) == 1  # buffered, lazy update 30 s away

    testbed.sim.run(until=5.0)
    assert len(secondary._deferred) == 0
    assert client.overload_replies == 1
    reasons = {
        r.detail["reason"] for r in testbed.trace.filter("replica.shed")
    }
    assert reasons == {"defer-expired"}
    assert len(outcomes) == 1 and outcomes[0].timing_failure


def test_recovery_bounces_deferred_reads_even_without_overload_config():
    """The silent-drop bugfix: a view change that clears the deferral
    buffer must send explicit failure replies — with or without overload
    protection configured."""
    testbed, client = deferral_testbed(None)
    service = testbed.service
    secondary = service.secondaries[0]
    tight = QoSSpec(staleness_threshold=0, deadline=5.0, min_probability=0.9)
    outcomes = []
    client.invoke("get", (), tight, callback=outcomes.append)
    testbed.sim.run(until=1.2)
    assert len(secondary._deferred) == 1

    testbed.network.crash(secondary.name)
    testbed.sim.run(until=2.0)
    service.recover_secondary(secondary.name)
    testbed.sim.run(until=3.0)

    assert len(secondary._deferred) == 0
    assert client.overload_replies == 1
    reasons = {
        r.detail["reason"] for r in testbed.trace.filter("replica.shed")
    }
    assert reasons == {"defer-dropped-recovery"}


# ---------------------------------------------------------------------------
# Default-off: None and disabled() are bit-identical
# ---------------------------------------------------------------------------
def run_signature(overload, seed):
    """Full outcome signature of a small mixed workload."""
    testbed = make_testbed(overload=overload, seed=seed)
    client = testbed.service.create_client("c", read_only_methods={"get"})
    warm_up(testbed, client)
    tight = QoSSpec(staleness_threshold=0, deadline=1.0, min_probability=0.9)
    reader = PeriodicReader(testbed.sim, client, QOS, period=0.05, count=30)
    stale_reader = PeriodicReader(
        testbed.sim, client, tight, period=0.07, count=10
    )

    def updates():
        for _ in range(10):
            yield client.call("increment")
            yield Timeout(0.11)

    Process(testbed.sim, updates())
    testbed.sim.run(until=10.0)
    # request_id is a process-global counter and differs across testbeds;
    # everything observable about each read must match exactly.
    return [
        (o.value, o.response_time, o.timing_failure,
         o.deferred, o.gsn, o.first_replica)
        for o in reader.outcomes + stale_reader.outcomes
    ]


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_default_off_is_bit_identical(seed):
    assert run_signature(None, seed) == run_signature(
        OverloadConfig.disabled(), seed
    )
