"""Failure-handling tests: sequencer failover, publisher failover, GSN
recovery, skips, and read re-stamping (our completion of §4.1's omitted
failure handling; see DESIGN.md)."""

import pytest

from repro.core.qos import QoSSpec
from repro.core.requests import GsnSkip
from repro.core.service import ServiceConfig, build_testbed
from repro.net.latency import FixedLatency
from repro.sim.process import Process, Timeout
from repro.sim.rng import Constant


def make_testbed(num_primaries=3, num_secondaries=2, lui=0.5, seed=5):
    config = ServiceConfig(
        name="svc",
        num_primaries=num_primaries,
        num_secondaries=num_secondaries,
        lazy_update_interval=lui,
        read_service_time=Constant(0.010),
        heartbeat_interval=0.1,
        suspect_timeout=0.35,
    )
    from repro.groups.membership import MembershipConfig

    return build_testbed(
        config,
        seed=seed,
        latency=FixedLatency(0.001),
        membership_config=MembershipConfig(
            heartbeat_interval=0.1, suspect_timeout=0.35, sweep_interval=0.1
        ),
    )


QOS = QoSSpec(staleness_threshold=10, deadline=1.0, min_probability=0.5)


def steady_workload(testbed, client, stop_at, gap=0.15):
    reads = []

    def run():
        while testbed.sim.now < stop_at:
            yield client.call("increment")
            yield Timeout(gap)
            outcome = yield client.call("get", (), QOS)
            reads.append(outcome)
            yield Timeout(gap)

    Process(testbed.sim, run())
    return reads


# ---------------------------------------------------------------------------
# Sequencer failover
# ---------------------------------------------------------------------------
def test_new_leader_becomes_sequencer_after_crash():
    testbed = make_testbed()
    service = testbed.service
    testbed.sim.schedule_at(2.0, testbed.network.crash, "svc-seq")
    testbed.sim.run(until=5.0)
    survivor = service.primaries[0]
    assert survivor.sequencer_name == "svc-p1"
    assert survivor.is_sequencer


def test_updates_continue_after_sequencer_crash():
    testbed = make_testbed()
    service = testbed.service
    client = service.create_client("c", read_only_methods={"get"})
    reads = steady_workload(testbed, client, stop_at=12.0)
    testbed.sim.schedule_at(4.0, testbed.network.crash, "svc-seq")
    testbed.sim.run(until=25.0)

    # Serving primaries (all but the new sequencer p1) must have converged
    # on an identical committed history covering every update.
    serving = [p for p in service.primaries if p.name != "svc-p1"]
    histories = {tuple(p.app.history) for p in serving}
    assert len(histories) == 1
    assert client.updates_resolved == client.updates_issued
    # Reads kept flowing after the crash too.
    assert any(not r.timing_failure for r in reads[-5:])


def test_gsn_strictly_monotonic_across_failover():
    testbed = make_testbed()
    service = testbed.service
    client = service.create_client("c", read_only_methods={"get"})
    update_gsns = []

    def run():
        for i in range(30):
            outcome = yield client.call("increment")
            update_gsns.append(outcome.gsn)
            yield Timeout(0.2)

    Process(testbed.sim, run())
    testbed.sim.schedule_at(2.0, testbed.network.crash, "svc-seq")
    testbed.sim.run(until=60.0)
    assert len(update_gsns) == 30
    assert update_gsns == sorted(update_gsns)
    assert len(set(update_gsns)) == 30  # no duplicate commits


def test_reads_restamped_after_sequencer_crash():
    """A read whose GSN stamp is lost re-requests it (GsnQuery path)."""
    testbed = make_testbed()
    service = testbed.service
    client = service.create_client("c", read_only_methods={"get"})
    outcomes = []

    def run():
        yield client.call("increment")
        yield Timeout(0.5)
        # Crash the sequencer, then immediately read: the stamp from the
        # dead sequencer never arrives; replicas must re-request.
        testbed.network.crash("svc-seq")
        client.invoke("get", qos=QOS, callback=outcomes.append)
        yield Timeout(10.0)

    Process(testbed.sim, run())
    testbed.sim.run(until=20.0)
    assert len(outcomes) == 1
    assert outcomes[0].value == 1
    queried = sum(p.gsn_queries_sent for p in service.primaries) + sum(
        s.gsn_queries_sent for s in service.secondaries
    )
    assert queried > 0


# ---------------------------------------------------------------------------
# Lazy publisher failover
# ---------------------------------------------------------------------------
def test_publisher_role_moves_on_crash():
    testbed = make_testbed()
    service = testbed.service
    assert service.primaries[0].is_lazy_publisher
    testbed.sim.schedule_at(2.0, testbed.network.crash, "svc-p1")
    testbed.sim.run(until=5.0)
    assert service.primaries[1].is_lazy_publisher


def test_lazy_propagation_continues_after_publisher_crash():
    testbed = make_testbed(lui=0.4)
    service = testbed.service
    client = service.create_client("c", read_only_methods={"get"})
    steady_workload(testbed, client, stop_at=10.0)
    testbed.sim.schedule_at(3.0, testbed.network.crash, "svc-p1")
    testbed.sim.run(until=20.0)
    new_publisher = service.primaries[1]
    assert new_publisher.lazy_updates_sent > 0
    final = max(p.my_csn for p in service.primaries[1:])
    for secondary in service.secondaries:
        assert secondary.my_csn >= final - 2  # within a couple of lazy rounds


# ---------------------------------------------------------------------------
# Skip handling
# ---------------------------------------------------------------------------
def test_gsn_skip_advances_commit_floor():
    testbed = make_testbed()
    primary = testbed.service.primaries[0]
    assert primary.my_csn == 0
    primary._on_skip(GsnSkip((1, 2, 3)))
    assert primary.my_csn == 3


def test_gsn_skip_ignores_already_committed():
    testbed = make_testbed()
    primary = testbed.service.primaries[0]
    primary.my_csn = 5
    primary._on_skip(GsnSkip((2, 3)))
    assert primary.my_csn == 5


def test_skip_unblocks_waiting_commit():
    """An update assigned GSN 2 can commit once GSN 1 is declared a skip."""
    from repro.core.replica import PendingRequest
    from repro.core.requests import Request, RequestKind

    testbed = make_testbed()
    primary = testbed.service.primaries[0]
    request = Request(999, "c", "increment", (), RequestKind.UPDATE, None, 0.0)
    pending = PendingRequest(request=request, arrived_at=0.0)
    primary._bind(pending, 2)
    assert primary.queue_depth == 0  # blocked on the gap at GSN 1
    primary._on_skip(GsnSkip((1,)))
    assert primary.queue_depth == 1  # ready to execute now


# ---------------------------------------------------------------------------
# Client-visible liveness under crashes
# ---------------------------------------------------------------------------
def test_client_survives_loss_of_selected_replica():
    """Algorithm 1 selects sets that tolerate one crash; killing one
    selected replica mid-request must not make the client hang."""
    testbed = make_testbed(num_primaries=3, num_secondaries=3)
    service = testbed.service
    client = service.create_client("c", read_only_methods={"get"})
    reads = steady_workload(testbed, client, stop_at=15.0)
    # Crash a secondary that will certainly be in early selections (all
    # replicas are selected early while windows bootstrap).
    testbed.sim.schedule_at(1.0, testbed.network.crash, "svc-s1")
    testbed.sim.run(until=40.0)
    assert len(reads) >= 20
    answered = [r for r in reads if r.response_time is not None]
    assert len(answered) >= len(reads) - 2


def test_membership_view_shrinks_after_crash():
    testbed = make_testbed()
    testbed.sim.schedule_at(1.0, testbed.network.crash, "svc-p2")
    testbed.sim.run(until=5.0)
    view = testbed.membership.view_of("svc.primary")
    assert "svc-p2" not in view
    # Replicas converged on the new view.
    assert "svc-p2" not in testbed.service.primaries[0].primary_view
