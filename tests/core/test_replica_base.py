"""Unit tests for the server-side handler base machinery."""

import pytest

from repro.core.qos import QoSSpec
from repro.core.replica import PendingRequest, ServiceGroups
from repro.core.requests import Request, RequestKind
from repro.core.service import ServiceConfig, build_testbed
from repro.net.latency import FixedLatency
from repro.sim.process import Process, Timeout
from repro.sim.rng import Constant


def _testbed(**kwargs):
    defaults = dict(
        name="svc",
        num_primaries=2,
        num_secondaries=1,
        lazy_update_interval=1.0,
        read_service_time=Constant(0.020),
    )
    defaults.update(kwargs)
    return build_testbed(
        ServiceConfig(**defaults), seed=53, latency=FixedLatency(0.001)
    )


QOS = QoSSpec(staleness_threshold=10, deadline=1.0, min_probability=0.5)


def test_pending_request_deferred_flag():
    request = Request(1, "c", "get", (), RequestKind.READ, QOS, 0.0)
    pending = PendingRequest(request=request, arrived_at=0.0)
    assert not pending.deferred
    pending.defer_started_at = 1.0
    assert pending.deferred
    fresh = PendingRequest(request=request, arrived_at=0.0, tb=0.5)
    assert fresh.deferred


def test_service_groups_names():
    groups = ServiceGroups("x")
    assert (groups.primary, groups.secondary, groups.qos) == (
        "x.primary", "x.secondary", "x.qos"
    )


def test_queue_depth_and_serialization():
    """Requests execute one at a time; queue depth reflects backlog."""
    testbed = _testbed()
    primary = testbed.service.primaries[0]
    request = Request(100, "c", "get", (), RequestKind.READ, QOS, 0.0)
    for i in range(3):
        primary.enqueue_ready(
            PendingRequest(request=request, arrived_at=testbed.sim.now)
        )
    assert primary.queue_depth == 3  # 1 in service + 2 waiting
    testbed.sim.run(until=1.0)
    assert primary.queue_depth == 0


def test_busy_time_accumulates_service_time():
    testbed = _testbed()
    client = testbed.service.create_client("c", read_only_methods={"get"})

    def run():
        for _ in range(5):
            yield client.call("get", (), QOS)
            yield Timeout(0.1)

    Process(testbed.sim, run())
    testbed.sim.run(until=10.0)
    served = [
        r for r in testbed.service.primaries + testbed.service.secondaries
        if r.reads_served
    ]
    assert served
    for replica in served:
        assert replica.busy_time == pytest.approx(0.020 * replica.reads_served)


def test_queuing_delay_measured_under_contention():
    """Two back-to-back reads at one replica: the second one's measured
    t_q reflects waiting behind the first."""
    from repro.core.selection import SelectionResult, SelectionStrategy

    class OnlyP1(SelectionStrategy):
        def select(self, candidates, qos, stale_factor):
            return SelectionResult(("svc-p1",), 1.0, True)

    testbed = _testbed(read_service_time=Constant(0.050))
    client = testbed.service.create_client(
        "c", read_only_methods={"get"}, strategy=OnlyP1()
    )
    client.invoke("get", qos=QOS)
    client.invoke("get", qos=QOS)
    testbed.sim.run(until=5.0)
    stats = client.repository.stats_for("svc-p1")
    tq_samples = stats.tq_window.samples()
    assert len(tq_samples) == 2
    assert tq_samples[0] < 0.005  # first read served immediately
    assert tq_samples[1] == pytest.approx(0.050, abs=0.01)  # queued behind it


def test_client_names_excludes_replicas():
    testbed = _testbed()
    testbed.service.create_client("alice")
    testbed.service.create_client("bob")
    primary = testbed.service.primaries[0]
    assert sorted(primary.client_names()) == ["alice", "bob"]
    assert primary.replica_names() == {
        "svc-seq", "svc-p1", "svc-p2", "svc-s1"
    }


def test_crashed_replica_drops_in_service_work():
    """A crash mid-service loses the request (no reply, no commit)."""
    testbed = _testbed(read_service_time=Constant(0.100))
    primary = testbed.service.primaries[0]
    request = Request(200, "c", "get", (), RequestKind.READ, QOS, 0.0)
    primary.enqueue_ready(PendingRequest(request=request, arrived_at=0.0))
    testbed.sim.schedule_at(0.05, testbed.network.crash, primary.name)
    testbed.sim.run(until=2.0)
    assert primary.reads_served == 0
    assert primary.busy_time == 0.0


def test_perf_broadcast_disabled():
    testbed = _testbed(publish_performance=False)
    client = testbed.service.create_client("c", read_only_methods={"get"})

    def run():
        for _ in range(3):
            yield client.call("get", (), QOS)
            yield Timeout(0.1)

    Process(testbed.sim, run())
    testbed.sim.run(until=5.0)
    assert client.reads_resolved == 3
    # No broadcasts: windows stay empty; predictions stay at bootstrap.
    for name in client.repository.known_replicas():
        assert not client.repository.stats_for(name).has_history
