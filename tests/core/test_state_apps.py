"""Unit tests for replicated objects and the example applications."""

import pytest

from repro.apps.document import SharedDocument
from repro.apps.kvstore import KVStore
from repro.apps.stock import StockTicker
from repro.core.state import CounterObject, ReplicatedObject


# ---------------------------------------------------------------------------
# ReplicatedObject base
# ---------------------------------------------------------------------------
def test_invoke_dispatches_to_methods():
    counter = CounterObject()
    assert counter.invoke("increment", ()) == 1
    assert counter.invoke("get", ()) == 1


def test_invoke_unknown_method_raises():
    with pytest.raises(AttributeError):
        CounterObject().invoke("nope", ())


def test_invoke_non_callable_attribute_raises():
    with pytest.raises(AttributeError):
        CounterObject().invoke("value", ())


def test_snapshot_restore_round_trip():
    a, b = CounterObject(), CounterObject()
    a.increment()
    a.increment()
    b.restore(a.snapshot())
    assert b.value == 2
    assert b.history == [1, 2]


def test_snapshot_is_deep_copy():
    a = CounterObject()
    a.increment()
    snap = a.snapshot()
    a.increment()
    b = CounterObject()
    b.restore(snap)
    assert b.value == 1  # later mutation invisible


def test_restore_replaces_existing_state():
    a = CounterObject()
    a.add(10)
    b = CounterObject()
    a.restore(b.snapshot())
    assert a.value == 0 and a.history == []


# ---------------------------------------------------------------------------
# CounterObject
# ---------------------------------------------------------------------------
def test_counter_version_equals_history_length():
    counter = CounterObject()
    counter.increment()
    counter.add(5)
    assert counter.version_count() == 2
    assert counter.get() == 6


# ---------------------------------------------------------------------------
# KVStore
# ---------------------------------------------------------------------------
def test_kvstore_crud():
    store = KVStore()
    store.put("a", 1)
    store.put("b", 2)
    assert store.get("a") == 1
    assert store.get("missing", "default") == "default"
    assert store.keys() == ["a", "b"]
    assert store.size() == 2
    assert store.delete("a") is True
    assert store.delete("a") is False
    assert store.clear() == 1
    assert store.size() == 0


def test_kvstore_mutation_counter():
    store = KVStore()
    store.put("a", 1)
    store.delete("a")
    store.clear()
    assert store.mutations() == 3


def test_kvstore_read_only_declaration_covers_reads_only():
    store = KVStore()
    for method in KVStore.READ_ONLY_METHODS:
        before = store.mutations()
        store.invoke(method, ("k",) if method == "get" else ())
        assert store.mutations() == before  # read-only methods don't mutate


def test_kvstore_snapshot_round_trip():
    a = KVStore()
    a.put("x", [1, 2])
    b = KVStore()
    b.restore(a.snapshot())
    assert b.dump() == {"x": [1, 2]}
    a.invoke("put", ("y", 3))
    assert "y" not in b.dump()


# ---------------------------------------------------------------------------
# SharedDocument
# ---------------------------------------------------------------------------
def test_document_edit_cycle():
    doc = SharedDocument("spec")
    idx = doc.append_paragraph("first")
    assert idx == 0
    doc.append_paragraph("second")
    old = doc.replace_paragraph(0, "revised")
    assert old == "first"
    assert doc.read_paragraph(0) == "revised"
    assert doc.paragraph_count() == 2
    assert doc.edit_count() == 3
    removed = doc.delete_paragraph(1)
    assert removed == "second"
    assert doc.edit_count() == 4


def test_document_read_returns_version_and_copy():
    doc = SharedDocument()
    doc.append_paragraph("p")
    version, paragraphs = doc.read_document()
    assert version == 1
    paragraphs.append("tampered")
    assert doc.paragraph_count() == 1  # returned list is a copy


# ---------------------------------------------------------------------------
# StockTicker
# ---------------------------------------------------------------------------
def test_ticker_updates_and_quotes():
    ticker = StockTicker()
    ticker.tick("A", 10.0)
    ticker.tick("A", 11.0)
    ticker.tick("B", 5.0)
    assert ticker.quote("A") == 11.0
    assert ticker.quote("missing") is None
    assert ticker.tick_count() == 3
    assert ticker.quotes() == {"A": 11.0, "B": 5.0}


def test_ticker_movers_sorted_by_relative_move():
    ticker = StockTicker()
    ticker.tick("A", 100.0)
    ticker.tick("A", 101.0)  # +1 %
    ticker.tick("B", 10.0)
    ticker.tick("B", 12.0)  # +20 %
    movers = ticker.movers()
    assert movers[0][0] == "B"
    assert movers[0][1] == pytest.approx(0.2)


def test_ticker_rejects_bad_price():
    with pytest.raises(ValueError):
        StockTicker().tick("A", 0.0)


def test_all_apps_declare_read_only_sets():
    for app_cls in (KVStore, SharedDocument, StockTicker):
        assert app_cls.READ_ONLY_METHODS
        instance = app_cls()
        for method in app_cls.READ_ONLY_METHODS:
            assert callable(getattr(instance, method))
