"""Tests for the versioned prediction cache (§5.2 hot path).

The cache must be *bit-for-bit* equivalent to fresh recomputation: a
cached predictor and an uncached one observing the same repository must
return exactly equal CDF values across arbitrary interleavings of
measurements and queries.  Invalidation is purely version-keyed — a new
measurement bumps a window version (or replaces ``latest_tg``) and the
next evaluation rebuilds.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.prediction import ResponseTimePredictor
from repro.core.repository import ClientInfoRepository
from repro.core.requests import PerfBroadcast


def _fill(repo, replica="r", n=5, tb=True):
    for i in range(n):
        repo.record_broadcast(
            PerfBroadcast(
                replica=replica,
                ts=0.010 + 0.001 * i,
                tq=0.002,
                tb=(0.100 + 0.010 * i) if tb else None,
            )
        )
    repo.record_reply(replica, tg=0.001, now=1.0)


def _paired_predictors(**kwargs):
    repo = ClientInfoRepository(window_size=8)
    cached = ResponseTimePredictor(repo, 2.0, use_cache=True, **kwargs)
    fresh = ResponseTimePredictor(repo, 2.0, use_cache=False, **kwargs)
    return repo, cached, fresh


# ---------------------------------------------------------------------------
# Hit / miss / invalidation accounting
# ---------------------------------------------------------------------------
def test_steady_state_reads_hit_the_cache():
    repo = ClientInfoRepository(8)
    _fill(repo)
    predictor = ResponseTimePredictor(repo, 2.0)
    predictor.response_cdfs("r", 0.150)
    assert predictor.cache_misses == 2  # base pmf + deferred pmf
    assert predictor.cache_hits == 0
    predictor.response_cdfs("r", 0.200)  # different deadline, same pmfs
    assert predictor.cache_hits == 2
    assert predictor.cache_misses == 2
    assert predictor.cache_invalidations == 0


def test_new_measurement_invalidates():
    repo = ClientInfoRepository(8)
    _fill(repo)
    predictor = ResponseTimePredictor(repo, 2.0)
    predictor.response_cdfs("r", 0.150)
    repo.record_broadcast(PerfBroadcast(replica="r", ts=0.02, tq=0.001, tb=0.2))
    predictor.response_cdfs("r", 0.150)
    # Base entry went stale (ts/tq versions moved); the deferred pmf was
    # dropped with it, so it recomputes as a plain miss.
    assert predictor.cache_invalidations == 1
    assert predictor.cache_misses == 4


def test_gateway_delay_refresh_invalidates():
    repo = ClientInfoRepository(8)
    _fill(repo)
    predictor = ResponseTimePredictor(repo, 2.0)
    before = predictor.immediate_cdf("r", 0.020)
    repo.record_reply("r", tg=0.050, now=2.0)  # same windows, new G
    after = predictor.immediate_cdf("r", 0.020)
    assert predictor.cache_invalidations == 1
    assert after < before  # larger gateway delay shifts the pmf right


def test_unchanged_gateway_delay_does_not_invalidate():
    repo = ClientInfoRepository(8)
    _fill(repo)
    predictor = ResponseTimePredictor(repo, 2.0)
    predictor.immediate_cdf("r", 0.150)
    repo.record_reply("r", tg=0.001, now=2.0)  # identical latest_tg
    predictor.immediate_cdf("r", 0.150)
    assert predictor.cache_hits == 1
    assert predictor.cache_invalidations == 0


def test_bootstrap_path_bypasses_cache():
    repo = ClientInfoRepository(8)
    predictor = ResponseTimePredictor(repo, 2.0)
    assert predictor.response_cdfs("unknown", 0.1) == (1.0, 1.0)
    assert predictor.cache_stats == {"hits": 0, "misses": 0, "invalidations": 0}


def test_disabled_cache_keeps_counters_at_zero():
    repo = ClientInfoRepository(8)
    _fill(repo)
    predictor = ResponseTimePredictor(repo, 2.0, use_cache=False)
    predictor.response_cdfs("r", 0.150)
    predictor.response_cdfs("r", 0.150)
    assert predictor.cache_stats == {"hits": 0, "misses": 0, "invalidations": 0}


def test_clear_cache_forces_recompute():
    repo = ClientInfoRepository(8)
    _fill(repo)
    predictor = ResponseTimePredictor(repo, 2.0)
    first = predictor.response_cdfs("r", 0.150)
    predictor.clear_cache()
    assert predictor.response_cdfs("r", 0.150) == first
    assert predictor.cache_misses == 4  # both pmfs rebuilt after the clear


def test_lazy_interval_change_invalidates_deferred_pmf():
    """The uniform fallback is keyed on T_L: retuning it must not reuse a
    pmf built for the old interval."""
    repo = ClientInfoRepository(8)
    _fill(repo, tb=False)  # no t_b history -> Uniform(0, T_L) fallback
    predictor = ResponseTimePredictor(repo, 2.0)
    _, before = predictor.response_cdfs("r", 0.5)
    predictor.lazy_update_interval = 0.4
    _, after = predictor.response_cdfs("r", 0.5)
    assert after > before  # shorter interval -> much tighter lazy wait


def test_per_replica_isolation():
    repo = ClientInfoRepository(8)
    _fill(repo, "a")
    _fill(repo, "b")
    predictor = ResponseTimePredictor(repo, 2.0)
    predictor.response_cdfs("a", 0.15)
    predictor.response_cdfs("b", 0.15)
    repo.record_broadcast(PerfBroadcast(replica="a", ts=0.02, tq=0.001, tb=0.1))
    predictor.response_cdfs("a", 0.15)
    predictor.response_cdfs("b", 0.15)  # b untouched: still a hit
    assert predictor.cache_invalidations == 1
    assert predictor.cache_hits == 2


# ---------------------------------------------------------------------------
# Exact equivalence with fresh recomputation
# ---------------------------------------------------------------------------
def test_cached_results_equal_uncached_exactly():
    repo, cached, fresh = _paired_predictors()
    _fill(repo)
    for deadline in (0.05, 0.113, 0.150, 0.8):
        assert cached.response_cdfs("r", deadline) == fresh.response_cdfs(
            "r", deadline
        )
        assert cached.immediate_cdf("r", deadline) == fresh.immediate_cdf(
            "r", deadline
        )


def test_quantum_mismatch_falls_back_to_samples():
    """A predictor on a different grid than the repository's windows must
    still agree with uncached recomputation (via the raw-sample path)."""
    repo = ClientInfoRepository(window_size=8, quantum=1e-3)
    _fill(repo)
    cached = ResponseTimePredictor(repo, 2.0, quantum=5e-4, use_cache=True)
    fresh = ResponseTimePredictor(repo, 2.0, quantum=5e-4, use_cache=False)
    assert cached.response_cdfs("r", 0.15) == fresh.response_cdfs("r", 0.15)


_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("broadcast"),
            st.floats(min_value=0.0, max_value=0.3),  # ts
            st.floats(min_value=0.0, max_value=0.05),  # tq
            st.one_of(st.none(), st.floats(min_value=0.0, max_value=1.5)),  # tb
        ),
        st.tuples(st.just("reply"), st.floats(min_value=0.0, max_value=0.01)),
        st.tuples(st.just("query"), st.floats(min_value=0.0, max_value=2.0)),
    ),
    min_size=1,
    max_size=40,
)


@given(ops=_ops)
@settings(max_examples=60, deadline=None)
def test_cache_equivalence_property(ops):
    """Across arbitrary record/evict/query interleavings, the cached
    predictor's CDFs are *exactly* equal to fresh recomputation."""
    repo, cached, fresh = _paired_predictors()
    now = 1.0
    for op in ops:
        if op[0] == "broadcast":
            _, ts, tq, tb = op
            repo.record_broadcast(PerfBroadcast(replica="r", ts=ts, tq=tq, tb=tb))
        elif op[0] == "reply":
            now += 1.0
            repo.record_reply("r", tg=op[1], now=now)
        else:
            deadline = op[1]
            assert cached.response_cdfs("r", deadline) == fresh.response_cdfs(
                "r", deadline
            )
            assert cached.immediate_cdf("r", deadline) == fresh.immediate_cdf(
                "r", deadline
            )


# ---------------------------------------------------------------------------
# Wiring
# ---------------------------------------------------------------------------
def test_repository_propagates_quantum_to_windows():
    repo = ClientInfoRepository(window_size=4, quantum=2e-3)
    stats = repo.stats_for("x")
    assert stats.ts_window.quantum == 2e-3
    assert stats.tq_window.quantum == 2e-3
    assert stats.tb_window.quantum == 2e-3
    with pytest.raises(ValueError):
        ClientInfoRepository(window_size=4, quantum=0.0)
