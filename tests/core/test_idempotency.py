"""Idempotency under duplication and reordering (gray-fault churn).

The ``dup_storm`` chaos fault re-delivers and reorders group messages at
the fabric layer, so every handler entry point a storm can hit must be a
no-op on the second copy and order-insensitive where the protocol allows
it.  Hypothesis drives the multiplicities and permutations; the oracle is
replica state captured before the replay:

* a duplicated/reordered ``GsnAssign`` never re-commits an update or
  moves the commit frontier;
* a duplicated or stale (lower-CSN) ``LazyUpdate`` never regresses a
  secondary's state;
* a ``StateTransferSnapshot`` for a transfer the replica did not ask for
  (wrong ``xfer_id``, or not recovering at all) is ignored outright.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.qos import QoSSpec
from repro.core.requests import GsnAssign, LazyUpdate, StateTransferSnapshot
from repro.core.service import ServiceConfig, build_testbed
from repro.net.latency import FixedLatency
from repro.sim.process import Process, Timeout
from repro.sim.rng import Constant

IDEMPOTENCY_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

QOS = QoSSpec(staleness_threshold=100, deadline=1.0, min_probability=0.5)


def run_small_service(updates=6, lui=0.4):
    """A short converged run; returns the testbed and captured payloads."""
    config = ServiceConfig(
        name="svc",
        num_primaries=2,
        num_secondaries=2,
        lazy_update_interval=lui,
        read_service_time=Constant(0.010),
    )
    testbed = build_testbed(config, seed=7, latency=FixedLatency(0.001))
    service = testbed.service
    client = service.create_client("c", read_only_methods={"get"})

    captured = {"assign": [], "lazy": []}
    primary = service.primaries[0]
    secondary = service.secondaries[0]
    for handler, kinds in (
        (primary, {GsnAssign: "assign"}),
        (secondary, {LazyUpdate: "lazy"}),
    ):
        original = handler.on_group_message

        def spy(group, sender, payload, original=original, kinds=kinds):
            key = kinds.get(type(payload))
            if key is not None:
                captured[key].append((group, sender, payload))
            original(group, sender, payload)

        handler.on_group_message = spy

    def run():
        for _ in range(updates):
            yield client.call("increment")
            yield Timeout(0.05)
        yield client.call("get", (), QOS)

    Process(testbed.sim, run())
    testbed.sim.run(until=60.0)
    testbed.sim.run(until=testbed.sim.now + 3 * lui)  # quiescent lazy rounds
    return testbed, primary, secondary, captured


def replica_fingerprint(handler):
    return (
        handler.my_csn,
        handler.my_gsn,
        handler.app.snapshot(),
    )


# ---------------------------------------------------------------------------
# GsnAssign
# ---------------------------------------------------------------------------
@IDEMPOTENCY_SETTINGS
@given(data=st.data())
def test_duplicated_reordered_gsn_assign_is_idempotent(data):
    testbed, primary, secondary, captured = run_small_service()
    assert captured["assign"], "run produced no GSN assignments"
    before = replica_fingerprint(primary)

    copies = data.draw(
        st.lists(
            st.sampled_from(captured["assign"]),
            min_size=1,
            max_size=3 * len(captured["assign"]),
        ),
        label="assign replay",
    )
    for group, sender, payload in copies:
        primary.on_group_message(group, sender, payload)
    testbed.sim.run(until=testbed.sim.now + 2.0)

    assert replica_fingerprint(primary) == before


# ---------------------------------------------------------------------------
# LazyUpdate
# ---------------------------------------------------------------------------
@IDEMPOTENCY_SETTINGS
@given(data=st.data())
def test_duplicated_stale_lazy_update_never_regresses(data):
    testbed, primary, secondary, captured = run_small_service()
    assert captured["lazy"], "run produced no lazy updates"
    before = replica_fingerprint(secondary)

    copies = data.draw(
        st.lists(
            st.sampled_from(captured["lazy"]),
            min_size=1,
            max_size=3 * len(captured["lazy"]),
        ),
        label="lazy replay",
    )
    for group, sender, payload in copies:
        secondary.on_group_message(group, sender, payload)
    testbed.sim.run(until=testbed.sim.now + 2.0)

    # Replaying any mix of old snapshots (all CSNs <= current) is a no-op.
    assert replica_fingerprint(secondary) == before


# ---------------------------------------------------------------------------
# StateTransferSnapshot
# ---------------------------------------------------------------------------
@IDEMPOTENCY_SETTINGS
@given(
    xfer_id=st.integers(min_value=0, max_value=10_000),
    csn=st.integers(min_value=0, max_value=10_000),
    max_gsn=st.integers(min_value=0, max_value=10_000),
)
def test_unsolicited_state_transfer_snapshot_is_ignored(xfer_id, csn, max_gsn):
    testbed, primary, secondary, _ = run_small_service(updates=3)
    before = replica_fingerprint(primary)

    snap = StateTransferSnapshot(
        member="svc-p2",
        xfer_id=xfer_id,
        csn=csn,
        max_gsn=max_gsn,
        snapshot={"counter": 999_999},
        assignments=((1, 1), (2, 2)),
        skips=(csn + 1,),
    )
    # The primary never requested a transfer, so whatever the ids say,
    # this must not touch its state.
    primary._on_state_transfer_snapshot(snap)
    testbed.sim.run(until=testbed.sim.now + 1.0)

    assert replica_fingerprint(primary) == before
