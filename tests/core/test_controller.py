"""Closed-loop SLA guardian: state machine, guardrails, actuation.

Unit tests drive :class:`ConsistencyController` with scripted burn
signals (no service at all), so every transition is deterministic;
integration tests check the T_L precedence arbiter in the sequential
handler and the epoch tick surviving a lazy-publisher crash mid-epoch
(DESIGN.md §16).
"""

from __future__ import annotations

import pytest

from repro.core.controller import (
    CONSERVATIVE,
    MEASURE,
    RELAX,
    ROLLBACK,
    ClassBounds,
    ConsistencyController,
    ControllerConfig,
    QosAdjustment,
    class_adjustment_at,
    t_l_at,
)
from repro.core.qos import QoSSpec
from repro.sim.kernel import Simulator


# ---------------------------------------------------------------------------
# Scripted-signal harness
# ---------------------------------------------------------------------------
def sig(alerting=0.0, budget=1.0, fast=0.0, slow=0.0, name="slo"):
    return {
        name: {
            "time": 0.0,
            "compliance": 1.0,
            "objective": 0.99,
            "budget_remaining": budget,
            "fast_burn": fast,
            "slow_burn": slow,
            "alerting": alerting,
        }
    }


HEALTHY = sig()
ALERTING = sig(alerting=1.0, fast=20.0, slow=8.0, budget=0.5)


class ScriptedEngine:
    """Replays one scripted signal dict per epoch; repeats the last."""

    def __init__(self, script):
        self.script = list(script)
        self.calls = 0

    def signals(self, timeline):
        index = min(self.calls, len(self.script) - 1)
        self.calls += 1
        return {k: dict(v) for k, v in self.script[index].items()}


class NullRecorder:
    def timeline(self):
        return None


class FakeHandler:
    """Records set_controller_interval calls; always up."""

    def __init__(self):
        self.up = True
        self.intervals = []
        self.controller = None

    def set_controller_interval(self, interval):
        self.intervals.append(interval)


class FakeClient:
    def __init__(self):
        self.qos_actuation = None
        self.forced_levels = []

    def force_degradation(self, level, trigger="controller"):
        self.forced_levels.append(level)


def make_controller(script, config=None, **kwargs):
    sim = Simulator()
    controller = ConsistencyController(
        sim,
        ScriptedEngine(script),
        NullRecorder(),
        config or ControllerConfig(),
        **kwargs,
    )
    return sim, controller


def run_epochs(sim, controller, epochs):
    controller.start()
    sim.run(until=sim.now + epochs * controller.config.epoch + 1e-9)


# Small, fast shape: warmup 1, relax after 1 healthy epoch, confirm in 2,
# one-epoch cooldown/hold so trajectories stay short.
FAST = ControllerConfig(
    epoch=1.0,
    warmup_epochs=1,
    healthy_epochs=1,
    confirm_epochs=2,
    cooldown_epochs=2,
    hold_epochs=1,
    max_relax_steps=3,
)


# ---------------------------------------------------------------------------
# State machine
# ---------------------------------------------------------------------------
def test_warmup_holds_conservative_then_measures_then_relaxes():
    sim, c = make_controller([HEALTHY], config=FAST)
    run_epochs(sim, c, 4)
    states = [d.state for d in c.decisions]
    # Epoch 1 is warmup (CONSERVATIVE -> MEASURE transition happens at
    # epoch >= warmup_epochs); a relax follows once the healthy streak
    # builds.
    assert states[0] in (CONSERVATIVE, MEASURE)
    assert RELAX in states
    first_relax = states.index(RELAX)
    assert all(s != RELAX for s in states[:first_relax])
    assert c.relax_index >= 1


def test_relax_steps_respect_cooldown_and_max():
    sim, c = make_controller([HEALTHY], config=FAST)
    run_epochs(sim, c, 12)
    relax_epochs = [
        d.epoch
        for d in c.decisions
        if any(a.startswith("relax:") for a in d.actions)
    ]
    assert relax_epochs, "controller never relaxed under healthy signals"
    gaps = [b - a for a, b in zip(relax_epochs, relax_epochs[1:])]
    assert all(g >= FAST.cooldown_epochs for g in gaps)
    assert c.relax_index <= FAST.max_relax_steps
    # Healthy forever: the walk tops out at max_relax_steps exactly.
    assert c.relax_index == FAST.max_relax_steps


def test_rollback_reverts_to_last_good_and_holds():
    # Healthy long enough to confirm index 1 and reach index 2, then a
    # sustained alert.
    script = [HEALTHY] * 6 + [ALERTING] * 3 + [HEALTHY] * 6
    sim, c = make_controller(script, config=FAST)
    run_epochs(sim, c, len(script))
    rollback_decisions = [d for d in c.decisions if d.rollback]
    assert rollback_decisions, "alert never caused a rollback"
    first = rollback_decisions[0]
    # Safety moves are immediate: the rollback lands on the first
    # alerting epoch, in the same decision that observed the regression.
    assert first.regression
    assert first.state == ROLLBACK
    # The revert target is the last confirmed index (or one below the
    # current index, whichever is lower).
    assert first.relax_index <= first.last_good_index
    # No relax within hold_epochs of a rollback.
    rollback_epochs = {d.epoch for d in rollback_decisions}
    for d in c.decisions:
        if any(a.startswith("relax:") for a in d.actions):
            assert all(
                d.epoch - e >= FAST.hold_epochs for e in rollback_epochs
                if e < d.epoch
            )


def test_rollback_preserves_confirmed_index_for_recovery():
    # Confirm index 1, alert long enough to roll all the way to 0, then
    # recover: the controller must climb back to the confirmed index
    # without fresh budget (the disturbance does not erase confirmation).
    script = (
        [HEALTHY] * 6
        + [dict(ALERTING)] * 4
        + [sig(budget=-2.0)] * 8  # healthy windows, lifetime budget spent
    )
    sim, c = make_controller(script, config=FAST)
    run_epochs(sim, c, len(script))
    assert c.last_good_index >= 1
    assert c.rollbacks >= 1
    # Re-relaxed back up to (exactly) the confirmed index: exploring
    # beyond it is blocked by the exhausted lifetime budget.
    assert c.relax_index == c.last_good_index


def test_budget_gate_blocks_exploration_beyond_last_good():
    # Healthy recent windows but lifetime budget below min_budget from
    # the start: nothing is confirmed, so no relax ever fires.
    script = [sig(budget=0.1)]
    sim, c = make_controller(script, config=FAST)
    run_epochs(sim, c, 8)
    assert c.relax_index == 0
    assert c.relaxes == 0


def test_budget_slope_regression_clears_when_burn_stops():
    # Budget goes negative while falling (active burn), then stabilises.
    script = (
        [HEALTHY] * 4
        + [sig(budget=-1.0), sig(budget=-2.0), sig(budget=-3.0)]
        + [sig(budget=-3.0)] * 4
    )
    sim, c = make_controller(script, config=FAST)
    run_epochs(sim, c, len(script))
    falling = [d for d in c.decisions if d.regression]
    assert falling, "falling budget never flagged regression"
    # Once the budget stabilises the regression flag clears.
    assert not c.decisions[-1].regression
    assert c.decisions[-1].state in (MEASURE, RELAX)


def test_regression_at_index_zero_engages_ladder_not_rollback():
    client = FakeClient()
    sim, c = make_controller([ALERTING], config=FAST)
    c.register_ladder(client)
    run_epochs(sim, c, 3)
    assert c.rollbacks == 0
    assert c.relax_index == 0
    assert c.decisions[-1].ladder_level == FAST.regression_ladder_level
    assert client.forced_levels[-1] == FAST.regression_ladder_level


def test_ladder_releases_after_regression_clears():
    client = FakeClient()
    script = [ALERTING] * 2 + [HEALTHY] * 4
    sim, c = make_controller(script, config=FAST)
    c.register_ladder(client)
    run_epochs(sim, c, len(script))
    assert client.forced_levels[-1] == 0
    assert c.decisions[-1].ladder_level == 0


# ---------------------------------------------------------------------------
# Knob ladder math and hard bounds
# ---------------------------------------------------------------------------
def test_t_l_ladder_doubles_and_clamps():
    cfg = ControllerConfig(t_l_step=2.0, t_l_min=0.05, t_l_max=1.0)
    assert t_l_at(cfg, 0.3, 0) == pytest.approx(0.3)
    assert t_l_at(cfg, 0.3, 1) == pytest.approx(0.6)
    assert t_l_at(cfg, 0.3, 2) == pytest.approx(1.0)  # clamped at max
    assert t_l_at(cfg, 0.01, 0) == pytest.approx(0.05)  # clamped at min


def test_class_adjustment_uses_bounds_overrides():
    cfg = ControllerConfig(staleness_step=4, probability_step=0.1)
    bounds = ClassBounds(
        staleness_ceiling=10, probability_floor=0.5,
        staleness_step=1, probability_step=0.01,
    )
    adj = class_adjustment_at(cfg, bounds, 3)
    assert adj.widen_staleness == 3
    assert adj.relax_probability == pytest.approx(0.03)
    assert adj.staleness_ceiling == 10
    assert adj.probability_floor == 0.5


def test_qos_adjustment_clamps_to_ceiling_and_floor():
    base = QoSSpec(staleness_threshold=4, deadline=0.4, min_probability=0.9)
    absurd = QosAdjustment(
        widen_staleness=1000,
        relax_probability=5.0,
        staleness_ceiling=16,
        probability_floor=0.6,
    )
    applied = absurd.apply(base)
    assert applied.staleness_threshold == 16
    assert applied.min_probability == pytest.approx(0.6)
    assert applied.deadline == base.deadline
    # Identity adjustment returns the spec untouched.
    assert QosAdjustment().apply(base) is base


def test_qos_adjustment_floor_never_raises_declared_probability():
    # A floor above the declared P_c must not tighten the QoS.
    base = QoSSpec(staleness_threshold=4, deadline=0.4, min_probability=0.5)
    adj = QosAdjustment(relax_probability=0.2, probability_floor=0.8)
    assert adj.apply(base).min_probability == pytest.approx(0.5)


def test_adjustment_rejects_tightening_deltas():
    with pytest.raises(ValueError):
        QosAdjustment(widen_staleness=-1)
    with pytest.raises(ValueError):
        QosAdjustment(relax_probability=-0.1)


def test_register_class_rejects_bounds_tighter_than_base():
    sim, c = make_controller([HEALTHY])
    qos = QoSSpec(staleness_threshold=8, deadline=0.4, min_probability=0.7)
    with pytest.raises(ValueError):
        c.register_class(
            "x", [], ClassBounds(staleness_ceiling=4, probability_floor=0.1),
            qos,
        )
    with pytest.raises(ValueError):
        c.register_class(
            "x", [], ClassBounds(staleness_ceiling=99, probability_floor=0.9),
            qos,
        )


def test_config_validation():
    with pytest.raises(ValueError):
        ControllerConfig(epoch=0.0)
    with pytest.raises(ValueError):
        ControllerConfig(t_l_step=0.5)
    with pytest.raises(ValueError):
        ControllerConfig(t_l_min=2.0, t_l_max=1.0)
    with pytest.raises(ValueError):
        ControllerConfig(cooldown_epochs=-1)


# ---------------------------------------------------------------------------
# Actuation plumbing
# ---------------------------------------------------------------------------
def test_actuation_reaches_handlers_and_clients():
    handler = FakeHandler()
    client = FakeClient()
    sim, c = make_controller([HEALTHY], config=FAST)
    c._t_l_targets = [handler]
    c._base_t_l = 0.3
    c.register_class(
        "cart",
        [client],
        ClassBounds(staleness_ceiling=16, probability_floor=0.6),
        QoSSpec(staleness_threshold=4, deadline=0.4, min_probability=0.85),
    )
    run_epochs(sim, c, 4)
    assert c.relax_index >= 1
    assert handler.intervals[-1] == pytest.approx(
        t_l_at(FAST, 0.3, c.relax_index)
    )
    assert client.qos_actuation is not None
    applied = client.qos_actuation.apply(
        QoSSpec(staleness_threshold=4, deadline=0.4, min_probability=0.85)
    )
    assert applied.staleness_threshold <= 16
    assert applied.min_probability >= 0.6


def test_dry_run_decides_but_never_actuates():
    handler = FakeHandler()
    client = FakeClient()
    cfg = ControllerConfig(
        epoch=FAST.epoch,
        warmup_epochs=FAST.warmup_epochs,
        healthy_epochs=FAST.healthy_epochs,
        confirm_epochs=FAST.confirm_epochs,
        cooldown_epochs=FAST.cooldown_epochs,
        hold_epochs=FAST.hold_epochs,
        max_relax_steps=FAST.max_relax_steps,
        dry_run=True,
    )
    sim, c = make_controller([HEALTHY], config=cfg)
    c._t_l_targets = [handler]
    c._base_t_l = 0.3
    c.register_class(
        "cart",
        [client],
        ClassBounds(staleness_ceiling=16, probability_floor=0.6),
        QoSSpec(staleness_threshold=4, deadline=0.4, min_probability=0.85),
    )
    c.register_ladder(client)
    run_epochs(sim, c, 6)
    # Decisions recorded, knobs computed ...
    assert c.relax_index >= 1
    assert c.decisions[-1].knobs["cart"]
    # ... but nothing touched the actuators.
    assert handler.intervals == []
    assert client.qos_actuation is None
    assert client.forced_levels == []


def test_decision_bounds_hold_under_adversarial_signals():
    # Random-ish alternation of health and alerts; every decision stays
    # inside the declared hard bounds.
    script = [HEALTHY, ALERTING, HEALTHY, HEALTHY, ALERTING] * 6
    sim, c = make_controller(script, config=FAST)
    c._base_t_l = 0.3
    run_epochs(sim, c, len(script))
    for d in c.decisions:
        assert 0 <= d.relax_index <= FAST.max_relax_steps
        assert 0 <= d.last_good_index <= d.relax_index or d.rollback or (
            d.last_good_index >= d.relax_index
        )
        if d.t_l is not None:
            assert FAST.t_l_min <= d.t_l <= FAST.t_l_max


def test_decision_to_dict_round_trips_fields():
    sim, c = make_controller([HEALTHY], config=FAST)
    run_epochs(sim, c, 2)
    record = c.decisions[-1].to_dict()
    for key in (
        "epoch", "time", "previous_state", "state", "relax_index",
        "last_good_index", "regression", "healthy", "rollback", "t_l",
        "knobs", "ladder_level", "actions", "signals",
    ):
        assert key in record


def test_stop_cancels_the_epoch_tick():
    sim, c = make_controller([HEALTHY], config=FAST)
    c.start()
    sim.run(until=2.5)
    seen = len(c.decisions)
    c.stop()
    sim.run(until=10.0)
    assert len(c.decisions) == seen


# ---------------------------------------------------------------------------
# T_L precedence: closed loop over open loop, bounded by it (DESIGN.md §16)
# ---------------------------------------------------------------------------
def _precedence_testbed(adaptive=False):
    from repro.core.service import ServiceConfig, build_testbed
    from repro.core.tuning import StalenessTarget
    from repro.net.latency import FixedLatency
    from repro.sim.rng import Constant

    config = ServiceConfig(
        name="svc",
        num_primaries=2,
        num_secondaries=2,
        lazy_update_interval=0.5,
        read_service_time=Constant(0.01),
        adaptive_lazy_target=(
            StalenessTarget(threshold=5, probability=0.9) if adaptive else None
        ),
    )
    return build_testbed(config, seed=7, latency=FixedLatency(0.001))


def test_controller_interval_overrides_base():
    testbed = _precedence_testbed(adaptive=False)
    handler = testbed.service.primaries[0]
    assert handler._effective_lazy_interval() == pytest.approx(0.5)
    handler.set_controller_interval(1.2)
    assert handler.lazy_update_interval == pytest.approx(1.2)
    handler.set_controller_interval(None)
    assert handler.lazy_update_interval == pytest.approx(0.5)


def test_controller_interval_clamped_by_open_loop_bound():
    testbed = _precedence_testbed(adaptive=True)
    handler = testbed.service.primaries[0]
    assert handler.lazy_controller is not None
    bound = handler.lazy_controller.recommended_interval()
    # Closed loop below the bound: taken verbatim.
    handler.set_controller_interval(bound / 2)
    assert handler._effective_lazy_interval() == pytest.approx(bound / 2)
    # Closed loop above the bound: the open-loop consistency bound wins.
    handler.set_controller_interval(bound * 4)
    assert handler._effective_lazy_interval() == pytest.approx(bound)


def test_controller_interval_rejects_nonpositive():
    testbed = _precedence_testbed()
    handler = testbed.service.primaries[0]
    with pytest.raises(ValueError):
        handler.set_controller_interval(0.0)
    with pytest.raises(ValueError):
        handler.set_controller_interval(-1.0)


# ---------------------------------------------------------------------------
# Failover: the epoch tick and actuation survive a publisher crash
# ---------------------------------------------------------------------------
def test_epoch_tick_survives_publisher_crash_mid_epoch():
    from repro.workloads.scenarios import build_operation_mix_scenario

    scenario = build_operation_mix_scenario(
        seed=11,
        duration=10.0,
        controller_config=ControllerConfig(
            epoch=0.5,
            warmup_epochs=1,
            healthy_epochs=1,
            confirm_epochs=2,
            cooldown_epochs=2,
            hold_epochs=1,
            max_relax_steps=1,
        ),
        num_primaries=3,
        num_secondaries=2,
    )
    sim = scenario.sim
    service = scenario.service
    controller = scenario.controller
    assert controller is not None

    # Let the controller relax, then crash the designated lazy publisher
    # mid-epoch (x.25 lands between two x.0/x.5 epoch ticks).
    sim.run(until=4.25)
    assert controller.relax_index >= 1
    publisher = next(
        p for p in service.primaries if p.is_lazy_publisher
    )
    epochs_before = controller.epoch
    scenario.testbed.network.crash(publisher.name)
    sim.run(until=8.25)

    # The central epoch tick never missed a beat.
    assert controller.epoch > epochs_before + 4
    # A new publisher took over and runs at the controller's interval,
    # not the configured base.
    new_publisher = next(
        p
        for p in service.primaries
        if p.up and p.is_lazy_publisher
    )
    assert new_publisher.name != publisher.name
    assert controller.current_interval() is not None
    assert new_publisher.lazy_update_interval == pytest.approx(
        min(controller.current_interval(), new_publisher.lazy_update_interval)
        if new_publisher.lazy_controller is not None
        else controller.current_interval()
    )

    # The crashed publisher recovers and re-adopts the live interval
    # through the re-arm path instead of its stale pre-crash value.
    scenario.testbed.network.recover(publisher.name)
    sim.run(until=12.0)
    assert publisher.up
    assert publisher.lazy_update_interval == pytest.approx(
        controller.current_interval()
    )
