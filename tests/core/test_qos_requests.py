"""Unit tests for the QoS model and the request model."""

import pytest

from repro.core.qos import OrderingGuarantee, QoSSpec
from repro.core.requests import (
    ReadOnlyRegistry,
    Reply,
    Request,
    RequestKind,
    next_request_id,
)


# ---------------------------------------------------------------------------
# QoSSpec
# ---------------------------------------------------------------------------
def test_section2_example_spec():
    """'not more than 5 versions old within 2.0 s with probability 0.7'."""
    spec = QoSSpec(staleness_threshold=5, deadline=2.0, min_probability=0.7)
    assert spec.staleness_threshold == 5
    assert spec.deadline == 2.0
    assert spec.min_probability == 0.7


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(staleness_threshold=-1, deadline=1.0, min_probability=0.5),
        dict(staleness_threshold=0, deadline=0.0, min_probability=0.5),
        dict(staleness_threshold=0, deadline=-1.0, min_probability=0.5),
        dict(staleness_threshold=0, deadline=float("inf"), min_probability=0.5),
        dict(staleness_threshold=0, deadline=1.0, min_probability=1.5),
        dict(staleness_threshold=0, deadline=1.0, min_probability=-0.1),
    ],
)
def test_invalid_specs_rejected(kwargs):
    with pytest.raises(ValueError):
        QoSSpec(**kwargs)


def test_zero_staleness_and_extreme_probabilities_allowed():
    QoSSpec(0, 0.1, 0.0)
    QoSSpec(0, 0.1, 1.0)


def test_relax_deadline():
    spec = QoSSpec(2, 0.1, 0.9).relax_deadline(2.0)
    assert spec.deadline == pytest.approx(0.2)
    assert spec.staleness_threshold == 2
    with pytest.raises(ValueError):
        spec.relax_deadline(0.0)


def test_describe_mentions_all_attributes():
    text = QoSSpec(3, 0.25, 0.8).describe()
    assert "3" in text and "250" in text and "0.80" in text


def test_spec_is_frozen_and_hashable():
    spec = QoSSpec(1, 0.1, 0.5)
    assert spec in {QoSSpec(1, 0.1, 0.5)}


def test_ordering_guarantees_enumerated():
    assert {g.value for g in OrderingGuarantee} == {"sequential", "fifo", "causal"}


# ---------------------------------------------------------------------------
# ReadOnlyRegistry (§2's request model)
# ---------------------------------------------------------------------------
def test_undeclared_methods_are_updates():
    registry = ReadOnlyRegistry()
    assert registry.kind_of("anything") is RequestKind.UPDATE


def test_declared_methods_are_reads():
    registry = ReadOnlyRegistry({"get"})
    assert registry.kind_of("get") is RequestKind.READ
    assert registry.kind_of("put") is RequestKind.UPDATE


def test_declare_after_construction():
    registry = ReadOnlyRegistry()
    registry.declare("peek")
    assert registry.kind_of("peek") is RequestKind.READ
    assert registry.read_only_methods() == {"peek"}


def test_declare_empty_name_rejected():
    with pytest.raises(ValueError):
        ReadOnlyRegistry().declare("")


# ---------------------------------------------------------------------------
# Request / Reply
# ---------------------------------------------------------------------------
def test_request_ids_unique():
    assert next_request_id() != next_request_id()


def test_read_without_qos_rejected():
    with pytest.raises(ValueError):
        Request(1, "c", "get", (), RequestKind.READ, None, 0.0)


def test_update_has_no_staleness_threshold():
    request = Request(1, "c", "put", ("k",), RequestKind.UPDATE, None, 0.0)
    with pytest.raises(ValueError):
        request.staleness_threshold


def test_read_staleness_threshold_from_qos():
    qos = QoSSpec(7, 1.0, 0.5)
    request = Request(1, "c", "get", (), RequestKind.READ, qos, 0.0)
    assert request.staleness_threshold == 7


def test_reply_fields():
    reply = Reply(1, "r", RequestKind.READ, "v", t1=0.12, gsn=9, deferred=True)
    assert reply.deferred and reply.gsn == 9 and reply.t1 == 0.12


# ---------------------------------------------------------------------------
# slots=True hygiene on the hot wire payloads
# ---------------------------------------------------------------------------
def test_wire_payloads_have_no_instance_dict():
    from repro.net.message import Message

    qos = QoSSpec(staleness_threshold=2, deadline=0.16, min_probability=0.9)
    request = Request(1, "c", "get", (), RequestKind.READ, qos, sent_at=0.0)
    reply = Reply(1, "r", RequestKind.READ, "v", t1=0.1, gsn=3)
    message = Message(sender="c", recipient="r", payload=request, sent_at=0.0)
    for payload in (request, reply, message):
        assert not hasattr(payload, "__dict__")
        with pytest.raises((AttributeError, TypeError)):
            payload.sneaky = 1


def test_wire_payloads_pickle_round_trip():
    """slots dataclasses must stay picklable — the parallel sweep runner
    ships results between processes."""
    import pickle

    qos = QoSSpec(staleness_threshold=2, deadline=0.16, min_probability=0.9)
    request = Request(7, "c", "get", ("k",), RequestKind.READ, qos, sent_at=1.5)
    reply = Reply(7, "r", RequestKind.READ, "v", t1=0.1, gsn=3, deferred=True)
    for payload in (request, reply):
        clone = pickle.loads(pickle.dumps(payload))
        assert clone == payload
