"""Tests for the pluggable staleness models (§5.1.3's non-Poisson note)."""

import pytest

from repro.core.repository import ClientInfoRepository
from repro.core.requests import PerfBroadcast, StalenessInfo
from repro.core.staleness import (
    DeterministicStalenessModel,
    OptimisticStalenessModel,
    PessimisticStalenessModel,
    PoissonStalenessModel,
    RateMixtureStalenessModel,
)
from repro.stats.poisson import poisson_cdf


def _repo(pairs, t_l=1.0, received_at=10.0):
    repo = ClientInfoRepository(window_size=20)
    for n_u, t_u in pairs:
        repo.record_staleness(
            PerfBroadcast(
                "pub", ts=0.1, tq=0.0, tb=None,
                staleness=StalenessInfo(n_u, t_u, 0, t_l),
            ),
            now=received_at,
        )
    return repo


def test_poisson_matches_equation4():
    repo = _repo([(10, 5.0)], t_l=0.5)  # rate 2/s, t_l = 0.5 at now=10
    model = PoissonStalenessModel()
    assert model.staleness_factor(3, repo, now=10.0, lazy_interval=4.0) == (
        pytest.approx(poisson_cdf(3, 2.0 * 0.5))
    )


def test_poisson_no_updates_gives_one():
    repo = ClientInfoRepository(10)
    assert PoissonStalenessModel().staleness_factor(0, repo, 1.0, 2.0) == 1.0


def test_deterministic_step_function():
    repo = _repo([(10, 5.0)], t_l=1.0)  # rate 2/s, t_l = 1 -> 2 updates
    model = DeterministicStalenessModel()
    assert model.staleness_factor(2, repo, 10.0, 4.0) == 1.0
    assert model.staleness_factor(1, repo, 10.0, 4.0) == 0.0


def test_deterministic_no_updates_gives_one():
    repo = ClientInfoRepository(10)
    assert DeterministicStalenessModel().staleness_factor(0, repo, 1.0, 2.0) == 1.0


def test_rate_mixture_equals_poisson_for_constant_rate():
    repo = _repo([(2, 1.0)] * 5, t_l=1.0)
    mixture = RateMixtureStalenessModel().staleness_factor(2, repo, 10.0, 4.0)
    poisson = PoissonStalenessModel().staleness_factor(2, repo, 10.0, 4.0)
    assert mixture == pytest.approx(poisson)


def test_rate_mixture_less_confident_under_burstiness():
    """Same mean rate, bursty observations, threshold above the mean: the
    single-rate Poisson model says "almost surely fresh" (a=4 > mean 2)
    while the bursts (rate 8) regularly blow past the threshold — the
    mixture model must be less confident."""
    steady = _repo([(2, 1.0)] * 4, t_l=1.0)  # constant 2/s
    bursty = _repo([(8, 1.0), (0, 1.0), (0, 1.0), (0, 1.0)], t_l=1.0)  # mean 2/s
    threshold = 4
    poisson_b = PoissonStalenessModel().staleness_factor(threshold, bursty, 10.0, 4.0)
    mixture_b = RateMixtureStalenessModel().staleness_factor(
        threshold, bursty, 10.0, 4.0
    )
    poisson_s = PoissonStalenessModel().staleness_factor(threshold, steady, 10.0, 4.0)
    assert poisson_b == pytest.approx(poisson_s)  # Poisson is blind to bursts
    assert mixture_b < poisson_b  # the mixture is not


def test_rate_mixture_empty_window_gives_one():
    repo = ClientInfoRepository(10)
    assert RateMixtureStalenessModel().staleness_factor(0, repo, 1.0, 2.0) == 1.0


def test_constant_models():
    repo = _repo([(10, 1.0)], t_l=1.0)
    assert OptimisticStalenessModel().staleness_factor(0, repo, 10.0, 2.0) == 1.0
    assert PessimisticStalenessModel().staleness_factor(99, repo, 10.0, 2.0) == 0.0


def test_model_names_distinct():
    names = {
        PoissonStalenessModel.name,
        DeterministicStalenessModel.name,
        RateMixtureStalenessModel.name,
        OptimisticStalenessModel.name,
        PessimisticStalenessModel.name,
    }
    assert len(names) == 5


def test_predictor_uses_configured_model():
    from repro.core.prediction import ResponseTimePredictor

    repo = _repo([(10, 1.0)], t_l=1.0)
    optimistic = ResponseTimePredictor(
        repo, 2.0, staleness_model=OptimisticStalenessModel()
    )
    pessimistic = ResponseTimePredictor(
        repo, 2.0, staleness_model=PessimisticStalenessModel()
    )
    assert optimistic.staleness_factor(0, now=10.0) == 1.0
    assert pessimistic.staleness_factor(0, now=10.0) == 0.0


def test_client_accepts_staleness_model():
    from repro.core.service import ServiceConfig, build_testbed
    from repro.net.latency import FixedLatency
    from repro.sim.rng import Constant

    testbed = build_testbed(
        ServiceConfig(num_primaries=1, num_secondaries=1,
                      read_service_time=Constant(0.01)),
        latency=FixedLatency(0.001),
    )
    client = testbed.service.create_client(
        "c",
        read_only_methods={"get"},
        staleness_model=PessimisticStalenessModel(),
    )
    assert client.predictor.staleness_model.name == "pessimistic"
