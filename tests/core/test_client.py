"""Unit/behaviour tests for the client-side gateway handler (§5.3, §5.4)."""

import pytest

from repro.core.qos import QoSSpec
from repro.core.service import ServiceConfig, build_testbed
from repro.net.latency import FixedLatency
from repro.sim.process import Process, Timeout
from repro.sim.rng import Constant


def make_testbed(service_time=None, **kwargs):
    defaults = dict(
        name="svc",
        num_primaries=2,
        num_secondaries=2,
        lazy_update_interval=1.0,
        read_service_time=service_time or Constant(0.010),
    )
    defaults.update(kwargs)
    return build_testbed(
        ServiceConfig(**defaults), seed=4, latency=FixedLatency(0.001)
    )


QOS = QoSSpec(staleness_threshold=10, deadline=0.5, min_probability=0.5)


# ---------------------------------------------------------------------------
# Request classification (§2)
# ---------------------------------------------------------------------------
def test_undeclared_method_treated_as_update():
    testbed = make_testbed()
    client = testbed.service.create_client("c", read_only_methods={"get"})
    outcomes = []
    client.invoke("increment", callback=outcomes.append)  # no QoS needed
    testbed.sim.run(until=2.0)
    assert client.updates_issued == 1
    assert len(outcomes) == 1


def test_read_requires_qos():
    testbed = make_testbed()
    client = testbed.service.create_client("c", read_only_methods={"get"})
    with pytest.raises(ValueError):
        client.invoke("get")


def test_default_qos_used_when_not_passed():
    testbed = make_testbed()
    client = testbed.service.create_client(
        "c", read_only_methods={"get"}, default_qos=QOS
    )
    client.invoke("get")
    testbed.sim.run(until=2.0)
    assert client.reads_resolved == 1


def test_declare_read_only_at_runtime():
    testbed = make_testbed()
    client = testbed.service.create_client("c")
    client.declare_read_only("get")
    client.invoke("get", qos=QOS)
    testbed.sim.run(until=2.0)
    assert client.reads_issued == 1


# ---------------------------------------------------------------------------
# First-reply delivery
# ---------------------------------------------------------------------------
def test_only_first_reply_delivered():
    testbed = make_testbed()
    client = testbed.service.create_client("c", read_only_methods={"get"})
    outcomes = []

    def run():
        yield client.call("increment")
        yield Timeout(0.1)
        client.invoke("get", qos=QOS, callback=outcomes.append)
        yield Timeout(2.0)

    Process(testbed.sim, run())
    testbed.sim.run(until=5.0)
    assert len(outcomes) == 1  # several replicas replied; one outcome


def test_late_replies_still_update_monitoring():
    testbed = make_testbed()
    client = testbed.service.create_client("c", read_only_methods={"get"})

    def run():
        yield client.call("increment")
        yield Timeout(0.1)
        yield client.call("get", (), QOS)
        yield Timeout(2.0)

    Process(testbed.sim, run())
    testbed.sim.run(until=5.0)
    selected_with_data = [
        name
        for name in client.repository.known_replicas()
        if client.repository.stats_for(name).last_reply_at is not None
    ]
    # More than one replica's reply reached the repository.
    assert len(selected_with_data) >= 2


# ---------------------------------------------------------------------------
# Timing failure detection (§5.4)
# ---------------------------------------------------------------------------
def test_timing_failure_when_deadline_missed():
    testbed = make_testbed(service_time=Constant(0.300))
    client = testbed.service.create_client("c", read_only_methods={"get"})
    tight = QoSSpec(staleness_threshold=10, deadline=0.050, min_probability=0.5)
    outcomes = []
    client.invoke("get", qos=tight, callback=outcomes.append)
    testbed.sim.run(until=5.0)
    assert len(outcomes) == 1
    assert outcomes[0].timing_failure
    assert outcomes[0].response_time > 0.050
    assert client.timing_failures == 1


def test_timely_response_not_a_failure():
    testbed = make_testbed(service_time=Constant(0.010))
    client = testbed.service.create_client("c", read_only_methods={"get"})
    outcomes = []
    client.invoke("get", qos=QOS, callback=outcomes.append)
    testbed.sim.run(until=5.0)
    assert not outcomes[0].timing_failure
    assert client.timing_failures == 0
    assert client.timely_fraction == 1.0


def test_failure_counted_once_even_with_late_reply():
    testbed = make_testbed(service_time=Constant(0.300))
    client = testbed.service.create_client("c", read_only_methods={"get"})
    tight = QoSSpec(10, 0.050, 0.5)
    client.invoke("get", qos=tight)
    testbed.sim.run(until=5.0)
    assert client.timing_failures == 1
    assert client.reads_resolved == 1


def test_unanswered_read_garbage_collected_as_failure():
    testbed = make_testbed(gc_timeout=2.0)
    service = testbed.service
    # Crash every replica so no reply can ever arrive.
    for replica in service.all_replicas():
        testbed.network.crash(replica.name)
    client = service.create_client("c", read_only_methods={"get"})
    outcomes = []
    client.invoke("get", qos=QOS, callback=outcomes.append)
    testbed.sim.run(until=30.0)
    assert len(outcomes) == 1
    assert outcomes[0].timing_failure
    assert outcomes[0].value is None
    assert outcomes[0].response_time is None
    assert client.reads_resolved == 1


def test_qos_violation_callback_fires():
    testbed = make_testbed(service_time=Constant(0.300))
    violations = []
    client = testbed.service.create_client(
        "c",
        read_only_methods={"get"},
        on_qos_violation=violations.append,
    )
    tight = QoSSpec(10, 0.050, 0.9)

    def run():
        for _ in range(3):
            yield client.call("get", (), tight)
            yield Timeout(0.1)

    Process(testbed.sim, run())
    testbed.sim.run(until=10.0)
    assert violations, "observed timely frequency below P_c must notify"
    assert all(0.0 <= v <= 1.0 for v in violations)


# ---------------------------------------------------------------------------
# Selection bookkeeping
# ---------------------------------------------------------------------------
def test_selected_counts_and_average():
    testbed = make_testbed()
    client = testbed.service.create_client("c", read_only_methods={"get"})

    def run():
        for _ in range(4):
            yield client.call("get", (), QOS)
            yield Timeout(0.1)

    Process(testbed.sim, run())
    testbed.sim.run(until=10.0)
    assert len(client.selected_counts) == 4
    assert client.average_selected() == pytest.approx(
        sum(client.selected_counts) / 4
    )


def test_selection_overhead_recorded_per_read():
    testbed = make_testbed()
    client = testbed.service.create_client("c", read_only_methods={"get"})
    client.invoke("get", qos=QOS)
    testbed.sim.run(until=2.0)
    assert len(client.selection_overheads) == 1
    assert client.selection_overheads[0] > 0.0


def test_sequencer_added_to_read_targets():
    """The read must reach the sequencer even when not selected (it stamps
    the GSN)."""
    testbed = make_testbed()
    client = testbed.service.create_client("c", read_only_methods={"get"})
    client.invoke("get", qos=QOS)
    testbed.sim.run(until=2.0)
    assert client.reads_resolved == 1  # stamp arrived, read completed


def test_candidates_exclude_sequencer():
    testbed = make_testbed()
    client = testbed.service.create_client("c", read_only_methods={"get"})
    names = {c.name for c in client._candidates(QOS)}
    assert testbed.service.sequencer_name not in names
    assert len(names) == 4  # 2 primaries + 2 secondaries


def test_charge_selection_overhead_delays_transmission():
    testbed = make_testbed(charge_selection_overhead=True)
    client = testbed.service.create_client("c", read_only_methods={"get"})
    client.invoke("get", qos=QOS)
    pending = next(iter(client._pending.values()))
    assert pending.tm > pending.t0


def test_call_returns_signal(sim):
    testbed = make_testbed()
    client = testbed.service.create_client("c", read_only_methods={"get"})
    results = []

    def run():
        outcome = yield client.call("get", (), QOS)
        results.append(outcome)

    Process(testbed.sim, run())
    testbed.sim.run(until=2.0)
    assert len(results) == 1


def test_duplicate_client_name_rejected():
    testbed = make_testbed()
    testbed.service.create_client("c")
    with pytest.raises(ValueError):
        testbed.service.create_client("c")
