"""Unit tests for service assembly (Figure 1) and the client gateway
facade (Figure 2)."""

import pytest

from repro.apps.kvstore import KVStore
from repro.core.gateway import Gateway
from repro.core.qos import OrderingGuarantee, QoSSpec
from repro.core.replica import ServiceGroups
from repro.core.service import (
    ReplicatedService,
    ServiceConfig,
    build_testbed,
    default_service_time,
)
from repro.groups.membership import MembershipService
from repro.net.latency import FixedLatency
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.sim.process import Process, Timeout
from repro.sim.rng import Constant, RngRegistry


# ---------------------------------------------------------------------------
# ServiceGroups
# ---------------------------------------------------------------------------
def test_group_names_derived_from_service():
    groups = ServiceGroups("svc")
    assert groups.primary == "svc.primary"
    assert groups.secondary == "svc.secondary"
    assert groups.qos == "svc.qos"


# ---------------------------------------------------------------------------
# ServiceConfig
# ---------------------------------------------------------------------------
def test_config_validation():
    with pytest.raises(ValueError):
        ServiceConfig(num_primaries=0)
    with pytest.raises(ValueError):
        ServiceConfig(num_secondaries=-1)
    with pytest.raises(ValueError):
        ServiceConfig(lazy_update_interval=0.0)


def test_default_service_time_matches_paper():
    dist = default_service_time()
    assert dist.mu == pytest.approx(0.100)
    assert dist.sigma == pytest.approx(0.050)


def test_has_sequencer_by_ordering():
    assert ServiceConfig(ordering=OrderingGuarantee.SEQUENTIAL).has_sequencer
    assert not ServiceConfig(ordering=OrderingGuarantee.FIFO).has_sequencer


# ---------------------------------------------------------------------------
# Assembly (Figure 1)
# ---------------------------------------------------------------------------
def _testbed(**kwargs):
    defaults = dict(
        name="svc",
        num_primaries=2,
        num_secondaries=3,
        read_service_time=Constant(0.01),
    )
    defaults.update(kwargs)
    return build_testbed(
        ServiceConfig(**defaults), seed=6, latency=FixedLatency(0.001)
    )


def test_replica_counts_and_names():
    testbed = _testbed()
    service = testbed.service
    assert service.sequencer_name == "svc-seq"
    assert [p.name for p in service.primaries] == ["svc-p1", "svc-p2"]
    assert [s.name for s in service.secondaries] == ["svc-s1", "svc-s2", "svc-s3"]
    assert service.serving_replica_count() == 5
    assert len(service.all_replicas()) == 6


def test_initial_views_installed_synchronously():
    testbed = _testbed()
    service = testbed.service
    for replica in service.all_replicas():
        assert replica.primary_view.members == ("svc-seq", "svc-p1", "svc-p2")
        assert replica.secondary_view.members == ("svc-s1", "svc-s2", "svc-s3")
        assert set(replica.qos_view.members) == {
            r.name for r in service.all_replicas()
        }


def test_replica_by_name():
    testbed = _testbed()
    assert testbed.service.replica_by_name("svc-p1").name == "svc-p1"
    with pytest.raises(KeyError):
        testbed.service.replica_by_name("ghost")


def test_client_joins_qos_group_and_views_pushed():
    testbed = _testbed()
    client = testbed.service.create_client("c")
    assert "c" in testbed.membership.view_of("svc.qos")
    assert client.view_of("svc.primary").members == ("svc-seq", "svc-p1", "svc-p2")
    # Replicas see the client in the QoS group (for perf broadcasts).
    assert "c" in testbed.service.primaries[0].qos_view
    assert testbed.service.primaries[0].client_names() == ["c"]


def test_host_speed_factors_cycled():
    testbed = _testbed(host_speed_factors=[1.0, 3.0])
    hosts = [testbed.network.host_of(r.name) for r in testbed.service.all_replicas()]
    factors = [h.speed_factor for h in hosts]
    assert factors == [1.0, 3.0, 1.0, 3.0, 1.0, 3.0]


def test_heterogeneous_hosts_slow_service_times():
    """A 5x slower host yields ~5x the service time (the paper's 300 MHz
    vs 1 GHz spread)."""
    testbed = _testbed(host_speed_factors=[1.0])
    slow = _testbed(host_speed_factors=[5.0])
    client_fast = testbed.service.create_client("c", read_only_methods={"get"})
    client_slow = slow.service.create_client("c", read_only_methods={"get"})
    qos = QoSSpec(10, 5.0, 0.5)
    results = {}

    for label, tb, client in (("fast", testbed, client_fast), ("slow", slow, client_slow)):
        out = []

        def run(client=client, out=out):
            o = yield client.call("get", (), qos)
            out.append(o)

        Process(tb.sim, run())
        tb.sim.run(until=10.0)
        results[label] = out[0].response_time
    assert results["slow"] > 3 * results["fast"]


# ---------------------------------------------------------------------------
# Gateway (Figure 2)
# ---------------------------------------------------------------------------
def _two_services():
    sim = Simulator()
    rng = RngRegistry(9)
    network = Network(sim, rng, FixedLatency(0.001))
    membership = MembershipService()
    network.attach(membership)
    a = ReplicatedService(
        sim, network, membership, rng,
        ServiceConfig(name="a", num_primaries=2, num_secondaries=1,
                      read_service_time=Constant(0.01)),
        app_factory=KVStore,
    )
    b = ReplicatedService(
        sim, network, membership, rng,
        ServiceConfig(name="b", ordering=OrderingGuarantee.FIFO,
                      num_primaries=2, num_secondaries=1,
                      read_service_time=Constant(0.01)),
        app_factory=KVStore,
    )
    return sim, a, b


def test_gateway_connects_to_multiple_services():
    sim, a, b = _two_services()
    gateway = Gateway("client")
    handler_a = gateway.connect(a, read_only_methods=set(KVStore.READ_ONLY_METHODS))
    handler_b = gateway.connect(b, read_only_methods=set(KVStore.READ_ONLY_METHODS))
    assert gateway.services() == ["a", "b"]
    assert handler_a is gateway.handler("a")
    assert handler_b is gateway.handler("b")
    assert handler_a.has_sequencer and not handler_b.has_sequencer


def test_gateway_invoke_routes_by_service():
    sim, a, b = _two_services()
    gateway = Gateway("client")
    gateway.connect(a, read_only_methods=set(KVStore.READ_ONLY_METHODS))
    gateway.connect(b, read_only_methods=set(KVStore.READ_ONLY_METHODS))
    gateway.invoke("a", "put", ("k", "va"))
    gateway.invoke("b", "put", ("k", "vb"))
    sim.run(until=5.0)
    assert a.primaries[0].app.get("k") == "va"
    assert b.primaries[0].app.get("k") == "vb"


def test_gateway_duplicate_connect_rejected():
    sim, a, _ = _two_services()
    gateway = Gateway("client")
    gateway.connect(a)
    with pytest.raises(ValueError):
        gateway.connect(a)


def test_gateway_unknown_service_rejected():
    gateway = Gateway("client")
    with pytest.raises(KeyError):
        gateway.handler("nope")
    with pytest.raises(ValueError):
        Gateway("")


def test_two_gateways_share_services():
    sim, a, _ = _two_services()
    g1, g2 = Gateway("u1"), Gateway("u2")
    h1 = g1.connect(a, read_only_methods=set(KVStore.READ_ONLY_METHODS))
    h2 = g2.connect(a, read_only_methods=set(KVStore.READ_ONLY_METHODS))
    assert h1.name == "u1@a" and h2.name == "u2@a"
    assert set(a.clients) == {"u1@a", "u2@a"}
