"""Deadline-budget-aware client retry, hedging, and failover re-dispatch
(DESIGN.md §9).

The accounting invariant threaded through every scenario: each read is
judged exactly once against its deadline, so retries never inflate or
deflate ``observed_failure_probability`` — recovery activity is reported
through the separate :meth:`ClientHandler.recovery_stats` counters.
"""

import pytest

from repro.core.client import RetryPolicy
from repro.core.qos import QoSSpec
from repro.core.service import ServiceConfig, build_testbed
from repro.groups.membership import MembershipConfig
from repro.net.latency import FixedLatency
from repro.sim.process import Process, Timeout
from repro.sim.rng import Constant
from repro.workloads.generators import PeriodicReader


def make_testbed(num_primaries=2, num_secondaries=2, seed=21):
    config = ServiceConfig(
        name="svc",
        num_primaries=num_primaries,
        num_secondaries=num_secondaries,
        lazy_update_interval=0.4,
        read_service_time=Constant(0.010),
        heartbeat_interval=0.1,
        suspect_timeout=0.35,
        gc_timeout=5.0,  # stranded reads resolve within the test horizon
    )
    return build_testbed(
        config,
        seed=seed,
        latency=FixedLatency(0.001),
        membership_config=MembershipConfig(
            heartbeat_interval=0.1, suspect_timeout=0.35, sweep_interval=0.1
        ),
    )


QOS = QoSSpec(staleness_threshold=10, deadline=1.0, min_probability=0.5)


def warm_up(testbed, client, reads=10, until=2.0):
    """Seed sliding windows so selection has real measurements."""

    def run():
        yield client.call("increment")
        for _ in range(reads):
            yield client.call("get", (), QOS)
            yield Timeout(0.1)

    Process(testbed.sim, run())
    testbed.sim.run(until=until)


# ---------------------------------------------------------------------------
# Policy validation
# ---------------------------------------------------------------------------
def test_retry_policy_defaults_valid():
    policy = RetryPolicy()
    assert policy.max_retries == 1
    assert not policy.hedge


@pytest.mark.parametrize(
    "kwargs",
    [
        {"max_retries": -1},
        {"min_remaining_budget": -0.01},
        {"checkpoint_fraction": 0.0},
        {"checkpoint_fraction": 1.0},
        {"hedge_min_probability": 1.5},
        {"hedge_min_probability": -0.1},
    ],
)
def test_retry_policy_rejects_bad_fields(kwargs):
    with pytest.raises(ValueError):
        RetryPolicy(**kwargs)


def test_recovery_stats_shape():
    testbed = make_testbed()
    client = testbed.service.create_client(
        "c", read_only_methods={"get"}, retry_policy=RetryPolicy()
    )
    stats = client.recovery_stats()
    assert set(stats) == {
        "retries_sent",
        "hedges_sent",
        "failover_redispatches",
        "retry_resolved",
        "hedge_resolved",
        "reads_salvaged",
        "overload_replies",
        "reads_shed",
        "degradation_steps_down",
        "degradation_steps_up",
        "detector_ejections",
        "detector_hedges",
        "detector_probes",
    }
    assert all(v == 0 for v in stats.values())


# ---------------------------------------------------------------------------
# Retry behaviour
# ---------------------------------------------------------------------------
def crashed_replica_scenario(retry_policy, seed=21):
    """Reads flow while one replica silently crashes and stays down.

    Returns ``(client, outcomes)`` after the workload drains.  The crash
    lands mid-campaign so some already-dispatched reads are stranded on
    the dead replica — exactly what retries exist to salvage.
    """
    testbed = make_testbed(seed=seed)
    service = testbed.service
    client = service.create_client(
        "c", read_only_methods={"get"}, retry_policy=retry_policy
    )
    warm_up(testbed, client)
    reader = PeriodicReader(testbed.sim, client, QOS, period=0.05, count=60)

    # Crash exactly the replicas the warmed selection favours: reads
    # dispatched in the window before the membership eviction are
    # stranded on dead replicas.
    def crash_favourites():
        for name in sorted(set(client._select_replicas(QOS)[0])):
            testbed.network.crash(name)

    testbed.sim.schedule_at(2.5, crash_favourites)
    testbed.sim.run(until=12.0)
    assert len(reader.outcomes) == 60
    return client, reader.outcomes


def test_retry_lowers_timing_failure_frequency():
    """The acceptance comparison: identical workload and crash, with and
    without retries; retries must measurably reduce timing failures and
    be reported separately from the timing statistics."""
    baseline, base_outcomes = crashed_replica_scenario(retry_policy=None)
    retrying, retry_outcomes = crashed_replica_scenario(
        retry_policy=RetryPolicy(max_retries=2)
    )

    base_failures = sum(1 for o in base_outcomes if o.timing_failure)
    retry_failures = sum(1 for o in retry_outcomes if o.timing_failure)
    assert base_failures > 0  # the crash hurts without retries
    assert retry_failures < base_failures

    # Recovery effort is visible in its own counters, not smuggled into
    # the timing statistics: both clients judged every read exactly once.
    assert retrying.retries_sent > 0
    assert baseline.recovery_stats() == {k: 0 for k in baseline.recovery_stats()}
    assert baseline.reads_judged == retrying.reads_judged
    assert retrying.observed_failure_probability < (
        baseline.observed_failure_probability
    )


def test_retry_resolution_is_attributed():
    client, outcomes = crashed_replica_scenario(RetryPolicy(max_retries=2))
    stats = client.recovery_stats()
    # At least one stranded read was completed by its retry target.
    assert stats["retry_resolved"] > 0
    assert stats["retry_resolved"] <= stats["retries_sent"]


def test_budget_guard_suppresses_hopeless_retries():
    """A retry that cannot finish inside the remaining deadline budget is
    wasted load; with the guard above the whole deadline, none fire."""
    policy = RetryPolicy(max_retries=2, min_remaining_budget=2.0)
    client, outcomes = crashed_replica_scenario(policy)
    assert client.retries_sent == 0
    assert sum(1 for o in outcomes if o.timing_failure) > 0


def test_max_retries_bounds_redispatches():
    client, _ = crashed_replica_scenario(RetryPolicy(max_retries=1))
    judged = client.reads_judged
    assert client.retries_sent <= judged  # at most one per read


# ---------------------------------------------------------------------------
# View-change failover
# ---------------------------------------------------------------------------
def test_eviction_of_all_live_targets_triggers_redispatch():
    testbed = make_testbed()
    service = testbed.service
    client = service.create_client(
        "c",
        read_only_methods={"get"},
        retry_policy=RetryPolicy(max_retries=2, checkpoint_fraction=0.9),
    )
    warm_up(testbed, client)

    outcomes = []
    long_qos = QoSSpec(staleness_threshold=10, deadline=3.0, min_probability=0.5)

    def run():
        request_id = client.invoke("get", (), long_qos, callback=outcomes.append)
        pending = client._pending[request_id]
        # Kill every replica the read was dispatched to: the deadline is
        # long, so the membership eviction (~0.35 s) arrives first and
        # must re-dispatch immediately rather than wait for the checkpoint.
        for name in sorted(pending.live):
            testbed.network.crash(name)
        yield Timeout(5.0)

    Process(testbed.sim, run())
    testbed.sim.run(until=8.0)

    assert client.failover_redispatches >= 1
    assert len(outcomes) == 1
    assert outcomes[0].value is not None
    assert not outcomes[0].timing_failure


# ---------------------------------------------------------------------------
# Hedging
# ---------------------------------------------------------------------------
def hedging_client(testbed, min_probability):
    """Algorithm 1 always over-provisions to survive one crash, so single
    selections only arise with single-replica strategies — exactly the
    configurations hedging exists to protect."""
    from repro.baselines.strategies import RoundRobinSelection

    return testbed.service.create_client(
        "c",
        read_only_methods={"get"},
        strategy=RoundRobinSelection(),
        retry_policy=RetryPolicy(
            hedge=True, hedge_min_probability=min_probability
        ),
    )


def test_hedge_duplicates_demanding_single_selections():
    testbed = make_testbed(num_primaries=3, num_secondaries=3)
    client = hedging_client(testbed, min_probability=0.9)
    warm_up(testbed, client, reads=20, until=4.0)

    demanding = QoSSpec(staleness_threshold=10, deadline=1.0, min_probability=0.95)
    reader = PeriodicReader(testbed.sim, client, demanding, period=0.1, count=20)
    testbed.sim.run(until=8.0)

    assert len(reader.outcomes) == 20
    # Every single-replica selection above the probability bar is hedged
    # to the model's runner-up replica.
    assert client.hedges_sent == 20
    stats = client.recovery_stats()
    assert stats["hedges_sent"] == 20
    assert stats["hedge_resolved"] <= 20
    # Hedges are free of accounting side effects: one judgement per read,
    # no retries implied.
    assert client.reads_judged >= 20
    assert client.retries_sent == 0


def test_no_hedge_below_probability_bar():
    testbed = make_testbed(num_primaries=3, num_secondaries=3)
    client = hedging_client(testbed, min_probability=0.9)
    warm_up(testbed, client, reads=20, until=4.0)
    relaxed = QoSSpec(staleness_threshold=10, deadline=1.0, min_probability=0.5)
    PeriodicReader(testbed.sim, client, relaxed, period=0.1, count=20)
    testbed.sim.run(until=8.0)
    assert client.hedges_sent == 0


# ---------------------------------------------------------------------------
# Retry x shedding (DESIGN.md §11)
# ---------------------------------------------------------------------------
def shedding_testbed(retry_policy, seed=21):
    """A trace-enabled testbed whose replicas shed aggressively."""
    from repro.core.overload import OverloadConfig
    from repro.sim.tracing import Trace

    config = ServiceConfig(
        name="svc",
        num_primaries=2,
        num_secondaries=2,
        lazy_update_interval=0.4,
        read_service_time=Constant(0.010),
        heartbeat_interval=0.1,
        suspect_timeout=0.35,
        gc_timeout=5.0,
        overload=OverloadConfig(queue_capacity=2, shed_predicted=False),
    )
    testbed = build_testbed(
        config,
        seed=seed,
        latency=FixedLatency(0.001),
        trace=Trace(enabled=True),
        membership_config=MembershipConfig(
            heartbeat_interval=0.1, suspect_timeout=0.35, sweep_interval=0.1
        ),
    )
    client = testbed.service.create_client(
        "c", read_only_methods={"get"}, retry_policy=retry_policy
    )
    warm_up(testbed, client)
    return testbed, client


def flood(testbed, client, reads=80):
    outcomes = []
    for _ in range(reads):
        client.invoke("get", (), QOS, callback=outcomes.append)
    testbed.sim.run(until=12.0)
    return outcomes


def test_overload_reply_does_not_burn_retry_budget_immediately():
    """A bounced read either re-dispatches to a replica that is NOT
    backing us off, or sleeps until the earliest retry_after expiry — it
    never instantly spends its whole retry budget hammering shedders."""
    testbed, client = shedding_testbed(RetryPolicy(max_retries=1))
    outcomes = flood(testbed, client)

    assert client.overload_replies > 0
    assert len(outcomes) == 80  # every flooded read was judged
    # The retry budget bounds re-dispatches: at most one per read, even
    # though far more OverloadReplies than reads arrived.
    assert client.retries_sent <= 80
    assert client.overload_replies > client.retries_sent


def test_never_retries_a_shedding_replica_before_retry_after():
    """Every retry dispatched after an OverloadReply from replica R lands
    either on a different replica or after R's retry_after elapsed."""
    testbed, client = shedding_testbed(RetryPolicy(max_retries=2))
    flood(testbed, client)

    backoff_until: dict[str, float] = {}
    violations = []
    for record in sorted(testbed.trace.records, key=lambda r: r.time):
        if record.category == "client.overload-reply":
            replica = record.detail["replica"]
            until = record.time + record.detail["retry_after"]
            backoff_until[replica] = max(backoff_until.get(replica, 0.0), until)
        elif record.category == "client.retry":
            target = record.detail["target"]
            if record.time < backoff_until.get(target, 0.0) - 1e-12:
                violations.append(
                    (record.time, target, backoff_until[target])
                )
    assert client.retries_sent > 0  # the scenario actually exercised retries
    assert not violations


def test_backoff_retry_waits_out_the_shed_window():
    """With every candidate backing off, the retry fires at the earliest
    retry_after expiry — not immediately, and not never."""
    from repro.baselines.strategies import RoundRobinSelection

    testbed, _ = shedding_testbed(RetryPolicy(max_retries=2))
    client = testbed.service.create_client(
        "rr",
        read_only_methods={"get"},
        strategy=RoundRobinSelection(),
        retry_policy=RetryPolicy(max_retries=2),
    )
    warm_up(testbed, client)
    outcomes = []
    for _ in range(40):
        client.invoke("get", (), QOS, callback=outcomes.append)
    testbed.sim.run(until=12.0)

    assert client.overload_replies > 0
    assert len(outcomes) == 40
    # Single-replica selections that get bounced recover via the armed
    # back-off retry; some reads resolve only because of it.
    assert client.retries_sent > 0
    assert sum(1 for o in outcomes if o.value is not None) > 0
