"""Unit and property tests for Algorithm 1 (state-based replica selection)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.qos import QoSSpec
from repro.core.selection import (
    ReplicaView,
    SelectionResult,
    StateBasedSelection,
    _PkAccumulator,
    sort_candidates,
)


def _replica(name, cdf, ert=0.0, primary=False, delayed=None):
    return ReplicaView(
        name=name,
        is_primary=primary,
        immediate_cdf=cdf,
        delayed_cdf=cdf if delayed is None else delayed,
        ert=ert,
    )


def _qos(prob, deadline=0.1, staleness=2):
    return QoSSpec(staleness, deadline, prob)


# ---------------------------------------------------------------------------
# P_K(d) accumulator (Equations 1–3)
# ---------------------------------------------------------------------------
def test_accumulator_primaries_only_eq2():
    acc = _PkAccumulator(stale_factor=1.0)
    acc.include(_replica("p1", 0.8, primary=True))
    acc.include(_replica("p2", 0.5, primary=True))
    # P_K = 1 - (1-0.8)(1-0.5) = 0.9
    assert acc.probability() == pytest.approx(0.9)


def test_accumulator_secondaries_mix_by_staleness_eq3():
    acc = _PkAccumulator(stale_factor=0.25)
    acc.include(_replica("s1", 0.8, delayed=0.1))
    # secCDF = (1-0.8)*0.25 + (1-0.1)*0.75 = 0.05 + 0.675 = 0.725
    assert acc.probability() == pytest.approx(1.0 - 0.725)


def test_accumulator_mixed_groups_eq1():
    acc = _PkAccumulator(stale_factor=1.0)
    acc.include(_replica("p1", 0.5, primary=True))
    acc.include(_replica("s1", 0.5, delayed=0.0))
    assert acc.probability() == pytest.approx(1.0 - 0.25)


def test_accumulator_empty_probability_zero():
    assert _PkAccumulator(1.0).probability() == pytest.approx(0.0)


def test_accumulator_rejects_bad_stale_factor():
    with pytest.raises(ValueError):
        _PkAccumulator(1.5)


# ---------------------------------------------------------------------------
# Sort order (line 2)
# ---------------------------------------------------------------------------
def test_sort_by_decreasing_ert():
    ordered = sort_candidates(
        [_replica("a", 0.5, ert=1.0), _replica("b", 0.5, ert=5.0)]
    )
    assert [r.name for r in ordered] == ["b", "a"]


def test_ert_ties_broken_by_cdf():
    ordered = sort_candidates(
        [_replica("low", 0.2, ert=1.0), _replica("high", 0.9, ert=1.0)]
    )
    assert [r.name for r in ordered] == ["high", "low"]


def test_infinite_ert_sorts_first():
    ordered = sort_candidates(
        [_replica("known", 0.99, ert=100.0), _replica("fresh", 0.5, ert=math.inf)]
    )
    assert ordered[0].name == "fresh"


def test_full_tie_broken_by_name_for_determinism():
    ordered = sort_candidates(
        [_replica("b", 0.5, ert=1.0), _replica("a", 0.5, ert=1.0)]
    )
    assert [r.name for r in ordered] == ["a", "b"]


# ---------------------------------------------------------------------------
# Algorithm 1 behaviour
# ---------------------------------------------------------------------------
def test_selects_minimum_needed_replicas():
    """Three perfect replicas, P_c=0.9: two suffice (one excluded as the
    simulated crash victim, the second gives P_K = 1)."""
    strategy = StateBasedSelection()
    candidates = [_replica(f"r{i}", 1.0, ert=10.0 - i) for i in range(3)]
    result = strategy.select(candidates, _qos(0.9), stale_factor=1.0)
    assert len(result) == 2
    assert result.satisfied


def test_failure_tolerance_excludes_best_member():
    """With cdfs 1.0 and 0.5 the test must use the 0.5 one (the 1.0 member
    is the excluded crash victim), so P_K = 0.5 < 0.9 and a third replica
    is required."""
    strategy = StateBasedSelection()
    candidates = [
        _replica("best", 1.0, ert=3.0),
        _replica("mid", 0.5, ert=2.0),
        _replica("weak", 0.5, ert=1.0),
    ]
    result = strategy.select(candidates, _qos(0.7), stale_factor=1.0)
    # After including mid (0.5): P_K = 0.5 < 0.7 -> include weak too:
    # P_K = 1 - 0.25 = 0.75 >= 0.7.
    assert len(result) == 3
    assert result.satisfied
    assert result.predicted_probability == pytest.approx(0.75)


def test_max_cdf_replica_tracking_swaps():
    """When a later candidate has a higher cdf, the previous maximum is
    folded into the products and the new one becomes the excluded member."""
    strategy = StateBasedSelection()
    candidates = [
        _replica("first", 0.6, ert=3.0),
        _replica("better", 0.9, ert=2.0),  # becomes maxCDF; 0.6 included
    ]
    result = strategy.select(candidates, _qos(0.6), stale_factor=1.0)
    assert result.predicted_probability == pytest.approx(0.6)
    assert result.satisfied
    assert len(result) == 2


def test_unsatisfiable_returns_all_replicas():
    strategy = StateBasedSelection()
    candidates = [_replica(f"r{i}", 0.1, ert=float(i)) for i in range(4)]
    result = strategy.select(candidates, _qos(0.999), stale_factor=1.0)
    assert len(result) == 4
    assert not result.satisfied


def test_single_candidate_returned_even_if_unsatisfied():
    strategy = StateBasedSelection()
    result = strategy.select([_replica("only", 1.0)], _qos(0.9), 1.0)
    assert result.replicas == ("only",)
    assert not result.satisfied  # the only member is the excluded victim


def test_empty_candidates():
    strategy = StateBasedSelection()
    result = strategy.select([], _qos(0.9), 1.0)
    assert result.replicas == ()
    assert not result.satisfied
    assert strategy.select([], _qos(0.0), 1.0).satisfied


def test_zero_probability_satisfied_by_two():
    strategy = StateBasedSelection()
    candidates = [_replica(f"r{i}", 0.0, ert=float(i)) for i in range(5)]
    result = strategy.select(candidates, _qos(0.0), stale_factor=1.0)
    assert len(result) == 2  # seed + first include already passes >= 0


def test_hot_spot_rotation_prefers_least_recent():
    """The replica with the largest ert is visited (and selected) first."""
    strategy = StateBasedSelection()
    stale = _replica("stale-but-idle", 0.9, ert=100.0)
    fresh = _replica("recently-used", 0.9, ert=0.1)
    result = strategy.select([fresh, stale], _qos(0.5), 1.0)
    assert result.replicas[0] == "stale-but-idle"


def test_stale_factor_drives_secondary_weighting():
    """With a low staleness factor, secondaries' delayed cdf dominates and
    more replicas are needed."""
    strategy = StateBasedSelection()

    def candidates():
        return [
            _replica(f"s{i}", 0.95, ert=10.0 - i, delayed=0.0) for i in range(6)
        ]

    fresh = strategy.select(candidates(), _qos(0.9), stale_factor=1.0)
    stale = strategy.select(candidates(), _qos(0.9), stale_factor=0.1)
    assert len(stale) > len(fresh)


def test_selection_result_len():
    assert len(SelectionResult(("a", "b"), 0.5, True)) == 2


def test_replica_view_validation():
    with pytest.raises(ValueError):
        _replica("x", 1.5)
    with pytest.raises(ValueError):
        ReplicaView("x", False, 0.5, -0.1, 0.0)


# ---------------------------------------------------------------------------
# Property tests
# ---------------------------------------------------------------------------
candidate_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1.0),  # immediate cdf
        st.floats(min_value=0.0, max_value=1.0),  # delayed cdf
        st.floats(min_value=0.0, max_value=100.0),  # ert
        st.booleans(),  # primary?
    ),
    min_size=1,
    max_size=12,
)


@given(
    raw=candidate_strategy,
    prob=st.floats(min_value=0.0, max_value=1.0),
    stale=st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=150)
def test_selection_invariants_property(raw, prob, stale):
    candidates = [
        ReplicaView(f"r{i}", primary, immed, min(immed, delayed), ert)
        for i, (immed, delayed, ert, primary) in enumerate(raw)
    ]
    result = StateBasedSelection().select(
        candidates, QoSSpec(1, 0.1, prob), stale
    )
    names = set(result.replicas)
    # Selected replicas are real candidates, without duplicates.
    assert names <= {c.name for c in candidates}
    assert len(names) == len(result.replicas)
    # At least one replica is always selected.
    assert len(result.replicas) >= 1
    # The reported probability is a probability.
    assert -1e-9 <= result.predicted_probability <= 1.0 + 1e-9
    # If satisfied, the prediction meets the target.
    if result.satisfied:
        assert result.predicted_probability >= prob - 1e-9


@given(raw=candidate_strategy, stale=st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=80)
def test_stricter_probability_never_selects_fewer_property(raw, stale):
    candidates = [
        ReplicaView(f"r{i}", primary, immed, min(immed, delayed), ert)
        for i, (immed, delayed, ert, primary) in enumerate(raw)
    ]
    loose = StateBasedSelection().select(candidates, QoSSpec(1, 0.1, 0.3), stale)
    strict = StateBasedSelection().select(candidates, QoSSpec(1, 0.1, 0.95), stale)
    assert len(strict) >= len(loose)
