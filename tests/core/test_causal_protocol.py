"""Protocol tests for the causal consistency handler."""

import pytest

from repro.apps.kvstore import KVStore
from repro.core.handlers.causal import CausalStamp
from repro.core.qos import OrderingGuarantee, QoSSpec
from repro.core.service import ServiceConfig, build_testbed
from repro.net.latency import FixedLatency, LanLatency
from repro.sim.clock import VectorClock
from repro.sim.process import Process, Timeout
from repro.sim.rng import Constant


def make_testbed(num_primaries=3, num_secondaries=2, lui=0.5, seed=19,
                 latency=None, app_factory=KVStore):
    config = ServiceConfig(
        name="causal",
        ordering=OrderingGuarantee.CAUSAL,
        num_primaries=num_primaries,
        num_secondaries=num_secondaries,
        lazy_update_interval=lui,
        read_service_time=Constant(0.010),
    )
    return build_testbed(
        config, seed=seed,
        latency=latency or FixedLatency(0.001),
        app_factory=app_factory,
    )


QOS = QoSSpec(staleness_threshold=100, deadline=2.0, min_probability=0.5)
READ_ONLY = set(KVStore.READ_ONLY_METHODS)


# ---------------------------------------------------------------------------
# VectorClock
# ---------------------------------------------------------------------------
def test_vector_clock_basics():
    vc = VectorClock()
    vc.increment("a").increment("a").increment("b")
    assert vc.get("a") == 2 and vc.get("b") == 1 and vc.get("c") == 0
    assert vc.total() == 3


def test_vector_clock_merge_and_dominates():
    a = VectorClock({"x": 2, "y": 1})
    b = VectorClock({"x": 1, "z": 3})
    a.merge(b)
    assert a.as_dict() == {"x": 2, "y": 1, "z": 3}
    assert a.dominates(b)
    assert not b.dominates(a)


def test_vector_clock_copy_independent():
    a = VectorClock({"x": 1})
    b = a.copy()
    a.increment("x")
    assert b.get("x") == 1


def test_vector_clock_equality_ignores_zeros():
    assert VectorClock({"x": 1, "y": 0}) == VectorClock({"x": 1})


def test_vector_clock_negative_rejected():
    with pytest.raises(ValueError):
        VectorClock({"x": -1})


def test_causal_stamp_validation():
    with pytest.raises(ValueError):
        CausalStamp("w", 0, {})


# ---------------------------------------------------------------------------
# Causal delivery
# ---------------------------------------------------------------------------
def test_service_builds_causal_handlers():
    testbed = make_testbed()
    from repro.core.handlers.causal import CausalClientHandler, CausalReplicaHandler

    assert testbed.service.sequencer is None  # no sequencer in causal mode
    assert all(isinstance(p, CausalReplicaHandler) for p in testbed.service.primaries)
    client = testbed.service.create_client("c", read_only_methods=READ_ONLY)
    assert isinstance(client, CausalClientHandler)


def test_single_writer_fifo_order():
    testbed = make_testbed()
    client = testbed.service.create_client("w", read_only_methods=READ_ONLY)

    def run():
        for i in range(10):
            client.invoke("put", ("k", i))
            yield Timeout(0.005)

    Process(testbed.sim, run())
    testbed.sim.run(until=10.0)
    for primary in testbed.service.primaries:
        assert primary.app.get("k") == 9
        assert primary.vc.get("w") == 10


def test_read_then_write_creates_cross_client_dependency():
    """B reads A's write, then writes: every primary must apply B's write
    after A's (the causal memory guarantee)."""
    testbed = make_testbed(latency=LanLatency(mean_s=0.002, jitter_s=0.002))
    service = testbed.service
    a = service.create_client("A", read_only_methods=READ_ONLY)
    b = service.create_client("B", read_only_methods=READ_ONLY)
    order_log = {p.name: [] for p in service.primaries}

    # Spy on commit order through the app state transition.
    def run():
        yield a.call("put", ("x", "from-A"))
        outcome = yield b.call("get", ("x",), QOS)
        # B observed A's write (or not); either way B's next write carries
        # B's current causal context.
        yield b.call("put", ("y", f"B-saw-{outcome.value}"))
        yield Timeout(2.0)

    Process(testbed.sim, run())
    testbed.sim.run(until=20.0)
    for primary in service.primaries:
        # If y is committed, x must be too (y causally follows the read
        # of x when the read returned from-A).
        y = primary.app.get("y")
        if y == "B-saw-from-A":
            assert primary.app.get("x") == "from-A"


def test_dependent_update_waits_for_dependency():
    """An update whose dependency has not arrived is buffered (tested by
    delivering the dependency late through a slow link)."""
    testbed = make_testbed(num_primaries=1, num_secondaries=0)
    service = testbed.service
    primary = service.primaries[0]
    a = service.create_client("A", read_only_methods=READ_ONLY)
    b = service.create_client("B", read_only_methods=READ_ONLY)

    def run():
        yield a.call("put", ("x", 1))
        outcome = yield b.call("get", ("x",), QOS)
        assert outcome.value == 1
        yield b.call("put", ("y", 2))

    Process(testbed.sim, run())
    testbed.sim.run(until=10.0)
    assert primary.app.get("y") == 2
    assert primary.vc.get("A") == 1 and primary.vc.get("B") == 1


def test_concurrent_updates_may_differ_in_order_but_converge():
    """Independent writers commit in possibly different orders, but the
    final state (last-writer-wins per key here: different keys) matches."""
    testbed = make_testbed(latency=LanLatency(mean_s=0.002, jitter_s=0.002))
    service = testbed.service
    clients = [
        service.create_client(f"w{i}", read_only_methods=READ_ONLY)
        for i in range(3)
    ]

    def spam(client, key, gap):
        for i in range(10):
            client.invoke("put", (key, i))
            yield Timeout(gap)

    for i, client in enumerate(clients):
        Process(testbed.sim, spam(client, f"k{i}", 0.011 + 0.003 * i))
    testbed.sim.run(until=20.0)
    for primary in service.primaries:
        assert primary.app.dump() == {"k0": 9, "k1": 9, "k2": 9}
        assert primary.vc.total() == 30


def test_read_your_writes_via_deferred_read():
    """A client that just wrote must never read a state missing its write,
    even from a stale secondary — the read defers until the lazy update."""
    testbed = make_testbed(num_primaries=1, num_secondaries=1, lui=0.5)
    service = testbed.service
    secondary = service.secondaries[0]
    client = service.create_client("w", read_only_methods=READ_ONLY)

    from repro.core.selection import SelectionResult, SelectionStrategy

    class SecondariesOnly(SelectionStrategy):
        def select(self, candidates, qos, stale_factor):
            names = tuple(c.name for c in candidates if not c.is_primary)
            return SelectionResult(names, 1.0, True)

    reader = service.create_client(
        "r", read_only_methods=READ_ONLY, strategy=SecondariesOnly()
    )
    outcomes = []

    def run():
        yield client.call("put", ("k", "v1"))
        # Propagate the writer's causal context to the reader out of band
        # (as if the same user session spans both handlers).
        reader.vc.merge(client.vc)
        outcome = yield reader.call("get", ("k",), QOS)
        outcomes.append(outcome)

    Process(testbed.sim, run())
    testbed.sim.run(until=20.0)
    assert outcomes[0].value == "v1"  # never a stale miss
    assert outcomes[0].deferred or secondary.vc.get("w") >= 1


def test_lazy_update_adopted_only_when_dominating():
    testbed = make_testbed(num_primaries=1, num_secondaries=1, lui=0.5)
    secondary = testbed.service.secondaries[0]
    from repro.core.requests import LazyUpdate

    secondary.vc = VectorClock({"w": 5})
    stale = LazyUpdate("p", 1, 3, ({"_data": {}, "_mutations": 3}, {"w": 3}))
    secondary._on_lazy_update(stale)
    assert secondary.vc.get("w") == 5  # not regressed


def test_replies_carry_vector_clock_context():
    testbed = make_testbed(num_primaries=1, num_secondaries=0)
    client = testbed.service.create_client("w", read_only_methods=READ_ONLY)
    outcomes = []

    def run():
        yield client.call("put", ("k", 1))
        outcome = yield client.call("get", ("k",), QOS)
        outcomes.append(outcome)

    Process(testbed.sim, run())
    testbed.sim.run(until=5.0)
    assert outcomes[0].gsn == 1  # vector total as version number
    assert client.vc.get("w") == 1


def test_non_causal_client_update_rejected_by_replica():
    """A plain ClientHandler's updates (no CausalStamp) are a wiring bug
    the replica surfaces loudly."""
    testbed = make_testbed(num_primaries=1, num_secondaries=0)
    primary = testbed.service.primaries[0]
    from repro.core.replica import PendingRequest
    from repro.core.requests import Request, RequestKind

    request = Request(1, "c", "put", ("k", 1), RequestKind.UPDATE, None, 0.0)
    with pytest.raises(TypeError):
        primary._on_request(request)
