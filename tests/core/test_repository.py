"""Unit tests for the client-side information repository."""

import math

import pytest

from repro.core.repository import ClientInfoRepository
from repro.core.requests import PerfBroadcast, StalenessInfo


def _broadcast(replica="r1", ts=0.1, tq=0.01, tb=None, staleness=None):
    return PerfBroadcast(replica=replica, ts=ts, tq=tq, tb=tb, staleness=staleness)


def test_broadcast_fills_windows():
    repo = ClientInfoRepository(window_size=3)
    repo.record_broadcast(_broadcast(ts=0.1, tq=0.01))
    repo.record_broadcast(_broadcast(ts=0.2, tq=0.02, tb=0.5))
    stats = repo.stats_for("r1")
    assert stats.ts_window.samples() == [0.1, 0.2]
    assert stats.tq_window.samples() == [0.01, 0.02]
    assert stats.tb_window.samples() == [0.5]  # only deferred reads record tb
    assert stats.broadcasts_received == 2
    assert stats.has_history


def test_windows_keep_most_recent_l():
    repo = ClientInfoRepository(window_size=2)
    for ts in (0.1, 0.2, 0.3):
        repo.record_broadcast(_broadcast(ts=ts))
    assert repo.stats_for("r1").ts_window.samples() == [0.2, 0.3]


def test_stats_separate_per_replica():
    repo = ClientInfoRepository(4)
    repo.record_broadcast(_broadcast(replica="a", ts=0.1))
    repo.record_broadcast(_broadcast(replica="b", ts=0.9))
    assert repo.stats_for("a").ts_window.samples() == [0.1]
    assert repo.stats_for("b").ts_window.samples() == [0.9]
    assert repo.known_replicas() == ["a", "b"]


def test_ert_infinite_before_any_reply():
    repo = ClientInfoRepository(4)
    assert math.isinf(repo.ert("never-heard", now=100.0))


def test_ert_measures_time_since_read_reply():
    repo = ClientInfoRepository(4)
    repo.record_reply("r1", tg=0.001, now=10.0, read=True)
    assert repo.ert("r1", now=12.5) == pytest.approx(2.5)


def test_update_replies_do_not_touch_ert():
    """Update acks must not depress a replica's ert (hot-spot rotation is
    about read service; see repository docstring)."""
    repo = ClientInfoRepository(4)
    repo.record_reply("r1", tg=0.001, now=10.0, read=False)
    assert math.isinf(repo.ert("r1", now=11.0))
    assert repo.stats_for("r1").latest_tg == 0.001  # but tg is refreshed


def test_gateway_delay_clamped_non_negative():
    repo = ClientInfoRepository(4)
    repo.record_reply("r1", tg=-0.005, now=1.0)
    assert repo.stats_for("r1").latest_tg == 0.0


def test_staleness_fields_recorded():
    repo = ClientInfoRepository(4)
    info = StalenessInfo(n_u=6, t_u=3.0, n_l=2, t_l=0.4)
    repo.record_staleness(_broadcast(staleness=info), now=50.0)
    assert repo.update_arrival_rate() == pytest.approx(2.0)
    assert repo.latest_lazy.n_l == 2
    assert repo.latest_lazy.received_at == 50.0


def test_staleness_ignored_without_info():
    repo = ClientInfoRepository(4)
    repo.record_staleness(_broadcast(staleness=None), now=1.0)
    assert repo.latest_lazy is None
    assert repo.update_arrival_rate() == 0.0


def test_update_rate_over_sliding_window():
    repo = ClientInfoRepository(window_size=2)
    for n_u, t_u in [(100, 1.0), (4, 2.0), (2, 1.0)]:
        repo.record_staleness(
            _broadcast(staleness=StalenessInfo(n_u, t_u, 0, 0.0)), now=1.0
        )
    # Window keeps the last two pairs: (4+2)/(2+1) = 2.
    assert repo.update_arrival_rate() == pytest.approx(2.0)


def test_zero_duration_pairs_skipped():
    repo = ClientInfoRepository(4)
    repo.record_staleness(
        _broadcast(staleness=StalenessInfo(5, 0.0, 1, 0.1)), now=1.0
    )
    assert repo.update_arrival_rate() == 0.0  # no time mass recorded


def test_time_since_lazy_update_modulo():
    """t_l = (t_L + t_z) mod T_L (§5.4.1)."""
    repo = ClientInfoRepository(4)
    repo.record_staleness(
        _broadcast(staleness=StalenessInfo(1, 1.0, 0, 0.5)), now=10.0
    )
    # t_z = 0.3 -> 0.8; under T_L=2.0 no wrap.
    assert repo.time_since_lazy_update(10.3, 2.0) == pytest.approx(0.8)
    # t_z = 3.7 -> 4.2; mod 2.0 -> 0.2 (two lazy updates passed meanwhile).
    assert repo.time_since_lazy_update(13.7, 2.0) == pytest.approx(0.2)


def test_time_since_lazy_update_defaults_to_zero():
    repo = ClientInfoRepository(4)
    assert repo.time_since_lazy_update(5.0, 2.0) == 0.0
    with pytest.raises(ValueError):
        repo.time_since_lazy_update(5.0, 0.0)


def test_window_size_validated():
    with pytest.raises(ValueError):
        ClientInfoRepository(0)
