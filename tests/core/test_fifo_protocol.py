"""Protocol tests for the FIFO consistency handler (Figure 2, service B)."""

import pytest

from repro.core.qos import OrderingGuarantee, QoSSpec
from repro.core.service import ServiceConfig, build_testbed
from repro.net.latency import FixedLatency
from repro.sim.process import Process, Timeout
from repro.sim.rng import Constant


def make_fifo_testbed(num_primaries=3, num_secondaries=2, lui=0.5, seed=2):
    config = ServiceConfig(
        name="fifo",
        ordering=OrderingGuarantee.FIFO,
        num_primaries=num_primaries,
        num_secondaries=num_secondaries,
        lazy_update_interval=lui,
        read_service_time=Constant(0.010),
    )
    return build_testbed(config, seed=seed, latency=FixedLatency(0.001))


QOS = QoSSpec(staleness_threshold=10, deadline=1.0, min_probability=0.5)


def test_fifo_service_has_no_sequencer():
    testbed = make_fifo_testbed()
    assert testbed.service.sequencer is None
    assert testbed.service.sequencer_name is None


def test_fifo_primary_group_leader_is_first_primary():
    testbed = make_fifo_testbed()
    primary = testbed.service.primaries[0]
    assert primary.primary_view.leader == primary.name
    assert primary.is_lazy_publisher


def test_per_client_order_preserved_on_all_primaries():
    testbed = make_fifo_testbed()
    service = testbed.service
    from repro.apps.kvstore import KVStore

    # Rebuild with KVStore state for order-sensitive assertions.
    config = ServiceConfig(
        name="fifo",
        ordering=OrderingGuarantee.FIFO,
        num_primaries=3,
        num_secondaries=0,
        lazy_update_interval=0.5,
        read_service_time=Constant(0.010),
    )
    testbed = build_testbed(
        config, seed=3, latency=FixedLatency(0.001), app_factory=KVStore
    )
    service = testbed.service
    client = service.create_client(
        "c", read_only_methods=set(KVStore.READ_ONLY_METHODS)
    )

    def run():
        for i in range(10):
            client.invoke("put", ("key", i))
            yield Timeout(0.005)

    Process(testbed.sim, run())
    testbed.sim.run(until=10.0)
    for primary in service.primaries:
        assert primary.app.get("key") == 9  # last write from this client wins
        assert primary.commit_count == 10


def test_two_clients_fifo_independently():
    testbed = make_fifo_testbed(num_secondaries=0)
    service = testbed.service
    c1 = service.create_client("c1", read_only_methods={"get"})
    c2 = service.create_client("c2", read_only_methods={"get"})

    def spam(client, n, gap):
        for _ in range(n):
            client.invoke("increment")
            yield Timeout(gap)

    Process(testbed.sim, spam(c1, 10, 0.007))
    Process(testbed.sim, spam(c2, 10, 0.011))
    testbed.sim.run(until=10.0)
    for primary in service.primaries:
        assert primary.commit_count == 20
        assert primary.app.value == 20


def test_fifo_reads_served_without_sequencer_stamp():
    testbed = make_fifo_testbed()
    client = testbed.service.create_client("c", read_only_methods={"get"})
    outcomes = []

    def run():
        yield client.call("increment")
        yield Timeout(0.1)
        outcome = yield client.call("get", (), QOS)
        outcomes.append(outcome)

    Process(testbed.sim, run())
    testbed.sim.run(until=5.0)
    assert len(outcomes) == 1
    assert outcomes[0].value == 1
    assert not outcomes[0].timing_failure


def test_fifo_lazy_propagation_to_secondaries():
    testbed = make_fifo_testbed(lui=0.25)
    client = testbed.service.create_client("c", read_only_methods={"get"})

    def run():
        for _ in range(5):
            yield client.call("increment")
            yield Timeout(0.05)

    Process(testbed.sim, run())
    testbed.sim.run(until=5.0)
    for secondary in testbed.service.secondaries:
        assert secondary.commit_count == 5
        assert secondary.app.value == 5
        assert secondary.lazy_updates_applied > 0


def test_fifo_client_candidates_include_all_primaries():
    """Without a sequencer, no primary is excluded from selection."""
    testbed = make_fifo_testbed()
    client = testbed.service.create_client("c", read_only_methods={"get"})
    candidates = client._candidates(QOS)
    names = {c.name for c in candidates}
    assert names == {
        p.name for p in testbed.service.primaries
    } | {s.name for s in testbed.service.secondaries}


def test_unregistered_ordering_rejected():
    """The handler registry rejects guarantees nothing is registered for."""
    from repro.core.handlers import replica_handler_for

    class FakeOrdering:
        pass

    with pytest.raises(NotImplementedError):
        replica_handler_for(FakeOrdering())  # type: ignore[arg-type]
