"""Tests for runtime scale-out and secondary recovery (channel epochs)."""

import pytest

from repro.core.qos import QoSSpec
from repro.core.service import ServiceConfig, build_testbed
from repro.groups.membership import MembershipConfig
from repro.net.latency import FixedLatency
from repro.sim.process import Process, Timeout
from repro.sim.rng import Constant


def make_testbed(num_secondaries=2, lui=0.5):
    config = ServiceConfig(
        name="svc",
        num_primaries=2,
        num_secondaries=num_secondaries,
        lazy_update_interval=lui,
        read_service_time=Constant(0.010),
        heartbeat_interval=0.1,
        suspect_timeout=0.35,
    )
    return build_testbed(
        config,
        seed=13,
        latency=FixedLatency(0.001),
        membership_config=MembershipConfig(
            heartbeat_interval=0.1, suspect_timeout=0.35, sweep_interval=0.1
        ),
    )


QOS = QoSSpec(staleness_threshold=10, deadline=1.0, min_probability=0.5)


def updates(testbed, client, count, gap=0.1):
    def run():
        for _ in range(count):
            yield client.call("increment")
            yield Timeout(gap)

    return Process(testbed.sim, run())


# ---------------------------------------------------------------------------
# Scale-out
# ---------------------------------------------------------------------------
def test_add_secondary_joins_groups():
    testbed = make_testbed()
    service = testbed.service
    new = service.add_secondary()
    assert new.name == "svc-s3"
    assert new.name in testbed.membership.view_of("svc.secondary")
    assert new.name in testbed.membership.view_of("svc.qos")
    assert len(service.secondaries) == 3


def test_added_secondary_syncs_via_lazy_update():
    testbed = make_testbed(lui=0.5)
    service = testbed.service
    client = service.create_client("c", read_only_methods={"get"})
    updates(testbed, client, 5)
    testbed.sim.run(until=3.0)

    new = service.add_secondary()
    assert new.app.value == 0  # joins empty
    testbed.sim.run(until=6.0)
    assert new.app.value == 5  # caught up by lazy propagation
    assert new.my_csn == 5


def test_added_secondary_becomes_selectable():
    testbed = make_testbed()
    service = testbed.service
    client = service.create_client("c", read_only_methods={"get"})
    testbed.sim.run(until=1.0)
    new = service.add_secondary()
    testbed.sim.run(until=2.0)
    names = {c.name for c in client._candidates(QOS)}
    assert new.name in names


def test_added_secondary_serves_reads():
    testbed = make_testbed(num_secondaries=1)
    service = testbed.service
    client = service.create_client("c", read_only_methods={"get"})
    new = service.add_secondary()

    reads = []

    def run():
        for _ in range(10):
            yield client.call("increment")
            yield Timeout(0.1)
            outcome = yield client.call("get", (), QOS)
            reads.append(outcome)
            yield Timeout(0.1)

    Process(testbed.sim, run())
    testbed.sim.run(until=30.0)
    assert new.reads_served > 0
    assert all(o.value is not None for o in reads)


# ---------------------------------------------------------------------------
# Recovery
# ---------------------------------------------------------------------------
def test_recover_secondary_rejoins_and_resyncs():
    testbed = make_testbed(lui=0.5)
    service = testbed.service
    client = service.create_client("c", read_only_methods={"get"})
    victim = service.secondaries[0]

    updates(testbed, client, 20, gap=0.2)
    testbed.sim.schedule_at(1.0, testbed.network.crash, victim.name)
    testbed.sim.run(until=3.0)
    assert victim.name not in testbed.membership.view_of("svc.secondary")
    value_at_crash = victim.app.value

    service.recover_secondary(victim.name)
    testbed.sim.run(until=10.0)
    assert victim.name in testbed.membership.view_of("svc.secondary")
    assert victim.app.value == 20
    assert victim.app.value > value_at_crash
    assert victim.my_csn == 20


def test_recovered_secondary_serves_deferred_and_fresh_reads():
    testbed = make_testbed(lui=0.5)
    service = testbed.service
    client = service.create_client("c", read_only_methods={"get"})
    victim = service.secondaries[0]
    reads_before = victim.reads_served

    def run():
        for i in range(30):
            yield client.call("increment")
            yield Timeout(0.1)
            yield client.call("get", (), QOS)
            yield Timeout(0.1)

    Process(testbed.sim, run())
    testbed.sim.schedule_at(1.0, testbed.network.crash, victim.name)
    testbed.sim.schedule_at(3.0, service.recover_secondary, victim.name)
    testbed.sim.run(until=30.0)
    # It served reads again after recovery (channel epochs healed).
    assert victim.reads_served > reads_before
    assert victim.app.value == 30


def test_recover_primary_rejected():
    testbed = make_testbed()
    service = testbed.service
    testbed.network.crash("svc-p1")
    with pytest.raises(ValueError):
        service.recover_secondary("svc-p1")


# ---------------------------------------------------------------------------
# Channel epochs (the mechanism underneath recovery)
# ---------------------------------------------------------------------------
def test_channel_epoch_reset_restarts_sequencing(sim):
    from repro.groups.multicast import FifoReceiver, FifoSender, GroupDataMsg

    sent = []
    sender = FifoSender(sim, "a", lambda r, m, s: sent.append(m))
    sender.send("g", "b", "one")
    sender.send("g", "b", "two")
    sender.reset_channel("g", "b")
    sender.send("g", "b", "three")
    assert sent[-1].seq == 1
    assert sent[-1].epoch == 1

    delivered = []
    receiver = FifoReceiver(
        lambda g, s, p: delivered.append(p), lambda o, a: None
    )
    receiver.on_data(sent[0])  # epoch 0, seq 1
    receiver.on_data(sent[2])  # epoch 1, seq 1 -> resets
    assert delivered == ["one", "three"]
    # Old-epoch stragglers are dropped.
    receiver.on_data(sent[1])
    assert delivered == ["one", "three"]
    assert receiver.stale_epoch_drops == 1


def test_abandoned_messages_open_fresh_epoch(sim):
    from repro.groups.multicast import FifoSender

    sent = []
    sender = FifoSender(
        sim, "a", lambda r, m, s: sent.append(m),
        rto=0.01, max_retries=1, backoff=1.0,
    )
    sender.send("g", "b", "lost")
    sim.run(until=1.0)
    assert sender.abandoned == 1
    sender.send("g", "b", "after")
    assert sent[-1].epoch == 1
    assert sent[-1].seq == 1


def test_recover_secondary_under_concurrent_lazy_updates():
    """Recovery while the lazy publisher is mid-stream: snapshots keep
    flowing during the rejoin and the fresh channel epoch must not let the
    secondary double-apply or miss one."""
    testbed = make_testbed(lui=0.2)
    service = testbed.service
    client = service.create_client("c", read_only_methods={"get"})
    victim = service.secondaries[0]

    # A dense update stream so every lazy interval carries new state.
    updates(testbed, client, 80, gap=0.05)
    testbed.sim.schedule_at(1.0, testbed.network.crash, victim.name)
    # Recover in the middle of the stream, not after it drains.
    testbed.sim.schedule_at(2.0, service.recover_secondary, victim.name)
    testbed.sim.run(until=12.0)

    reference = service.secondaries[1]
    assert victim.app.value == reference.app.value == 80
    assert victim.my_csn == reference.my_csn == 80
    assert victim.app.history == reference.app.history


def test_recover_secondary_across_sequencer_failover():
    """The sequencer dies while the secondary is still catching up; the
    promoted leader's lazy publisher must finish the resync."""
    testbed = make_testbed(lui=0.5)
    service = testbed.service
    client = service.create_client("c", read_only_methods={"get"})
    victim = service.secondaries[0]

    updates(testbed, client, 30, gap=0.1)
    testbed.sim.schedule_at(1.0, testbed.network.crash, victim.name)
    testbed.sim.schedule_at(2.5, service.recover_secondary, victim.name)
    # Mid-recovery: the victim has rejoined but cannot have resynced yet
    # (the next lazy round is still pending) when the sequencer dies.
    testbed.sim.schedule_at(2.6, testbed.network.crash, "svc-seq")
    testbed.sim.run(until=20.0)

    assert service.primaries[0].is_sequencer
    assert victim.name in testbed.membership.view_of("svc.secondary")
    # Serving primaries shrink to p2 after p1's promotion; the victim
    # still converges on the full committed history.
    reference = service.primaries[1]
    assert victim.app.value == reference.app.value == 30
    assert victim.my_csn == reference.my_csn
