"""Protocol tests for the sequential consistency handler (§4.1).

These run small deterministic testbeds (fixed 1 ms links, constant service
times) and assert the protocol invariants directly on the replica
handlers: GSN assignment, commit order, staleness measurement, deferred
reads, and lazy propagation.
"""

import pytest

from repro.core.qos import QoSSpec
from repro.core.service import ServiceConfig, build_testbed
from repro.net.latency import FixedLatency
from repro.sim.process import Process, Timeout
from repro.sim.rng import Constant


def make_testbed(
    num_primaries=2,
    num_secondaries=2,
    lui=1.0,
    service_time=None,
    seed=1,
):
    config = ServiceConfig(
        name="svc",
        num_primaries=num_primaries,
        num_secondaries=num_secondaries,
        lazy_update_interval=lui,
        read_service_time=service_time or Constant(0.010),
    )
    return build_testbed(config, seed=seed, latency=FixedLatency(0.001))


QOS = QoSSpec(staleness_threshold=100, deadline=1.0, min_probability=0.5)


def drive(testbed, client, steps, qos=QOS, gap=0.1):
    """Issue ``steps`` alternating increment/get pairs; return read outcomes."""
    reads = []

    def run():
        for _ in range(steps):
            yield client.call("increment")
            yield Timeout(gap)
            outcome = yield client.call("get", (), qos)
            reads.append(outcome)
            yield Timeout(gap)

    Process(testbed.sim, run())
    testbed.sim.run(until=400.0)
    return reads


# ---------------------------------------------------------------------------
# Roles
# ---------------------------------------------------------------------------
def test_sequencer_is_primary_group_leader():
    testbed = make_testbed()
    service = testbed.service
    assert service.sequencer.is_sequencer
    assert service.sequencer.sequencer_name == "svc-seq"
    for primary in service.primaries:
        assert not primary.is_sequencer
        assert primary.is_primary


def test_lazy_publisher_is_first_serving_primary():
    testbed = make_testbed()
    service = testbed.service
    assert service.primaries[0].is_lazy_publisher
    assert not service.sequencer.is_lazy_publisher
    assert not service.primaries[1].is_lazy_publisher


def test_secondary_roles():
    testbed = make_testbed()
    for secondary in testbed.service.secondaries:
        assert secondary.is_secondary and not secondary.is_primary


# ---------------------------------------------------------------------------
# Update path (§4.1.1)
# ---------------------------------------------------------------------------
def test_updates_get_consecutive_gsns():
    testbed = make_testbed()
    client = testbed.service.create_client("c", read_only_methods={"get"})
    drive(testbed, client, steps=5)
    assert testbed.service.sequencer.my_gsn == 5
    for primary in testbed.service.primaries:
        assert primary.my_csn == 5
        assert primary.app.value == 5


def test_sequencer_does_not_execute_updates():
    testbed = make_testbed()
    client = testbed.service.create_client("c", read_only_methods={"get"})
    drive(testbed, client, steps=3)
    assert testbed.service.sequencer.app.value == 0
    assert testbed.service.sequencer.updates_committed == 0


def test_all_primaries_commit_same_order_under_concurrency():
    """Two clients race updates; every primary must apply the identical
    sequence (sequential consistency's core guarantee)."""
    testbed = make_testbed(num_primaries=3)
    service = testbed.service
    c1 = service.create_client("c1", read_only_methods={"get"})
    c2 = service.create_client("c2", read_only_methods={"get"})

    def spam(client, count, gap):
        for _ in range(count):
            client.invoke("increment")
            yield Timeout(gap)

    Process(testbed.sim, spam(c1, 20, 0.013))
    Process(testbed.sim, spam(c2, 20, 0.017))
    testbed.sim.run(until=60.0)

    histories = [tuple(p.app.history) for p in service.primaries]
    assert histories[0] == histories[1] == histories[2]
    assert len(histories[0]) == 40
    assert all(p.my_csn == 40 for p in service.primaries)


def test_update_reply_carries_commit_gsn():
    testbed = make_testbed()
    client = testbed.service.create_client("c", read_only_methods={"get"})
    outcomes = []

    def run():
        for _ in range(3):
            outcome = yield client.call("increment")
            outcomes.append(outcome)
            yield Timeout(0.05)

    Process(testbed.sim, run())
    testbed.sim.run(until=10.0)
    assert [o.gsn for o in outcomes] == [1, 2, 3]
    assert [o.value for o in outcomes] == [1, 2, 3]


# ---------------------------------------------------------------------------
# Read path (§4.1.2)
# ---------------------------------------------------------------------------
def test_reads_do_not_advance_gsn():
    testbed = make_testbed()
    client = testbed.service.create_client("c", read_only_methods={"get"})

    def run():
        yield client.call("increment")
        yield Timeout(0.1)
        for _ in range(5):
            yield client.call("get", (), QOS)
            yield Timeout(0.05)

    Process(testbed.sim, run())
    testbed.sim.run(until=10.0)
    assert testbed.service.sequencer.my_gsn == 1


def test_read_value_reflects_sequenced_prefix():
    testbed = make_testbed()
    client = testbed.service.create_client("c", read_only_methods={"get"})
    reads = drive(testbed, client, steps=6)
    # With a large staleness threshold, each read may lag, but its value
    # must equal its reported GSN (CounterObject value == version).
    for outcome in reads:
        assert outcome.value == outcome.gsn


def test_staleness_bound_respected_in_responses():
    """A response must never be more stale than the client's threshold:
    read GSN stamp minus the responder's commit GSN <= a."""
    testbed = make_testbed(num_secondaries=4, lui=2.0)
    qos = QoSSpec(staleness_threshold=1, deadline=5.0, min_probability=0.5)
    client = testbed.service.create_client("c", read_only_methods={"get"})
    reads = drive(testbed, client, steps=10, qos=qos, gap=0.3)
    assert len(reads) == 10
    for outcome in reads:
        # value == versions applied at responder; with threshold 1 the
        # response may miss at most 1 of the updates issued before it.
        # Each read happens right after its own update, so the stamp is
        # the number of updates issued so far.
        assert outcome.value is not None


def test_zero_staleness_read_from_secondary_defers():
    """With a=0 and updates in flight, a stale secondary must defer to the
    next lazy update rather than answer stale."""
    testbed = make_testbed(num_primaries=1, num_secondaries=1, lui=0.5)
    service = testbed.service
    qos = QoSSpec(staleness_threshold=0, deadline=10.0, min_probability=0.99)
    client = service.create_client("c", read_only_methods={"get"})
    reads = drive(testbed, client, steps=8, qos=qos, gap=0.05)
    secondary = service.secondaries[0]
    # The secondary served some reads; any it served as deferred responded
    # only after a lazy update, i.e. with the then-current state.
    for outcome in reads:
        assert outcome.value == outcome.gsn
    assert all(o.value is not None for o in reads)


def test_deferred_read_waits_for_lazy_update():
    """Force reads onto the secondary only: stale reads must be answered
    right after the next lazy update, flagged as deferred."""
    from repro.core.selection import SelectionResult, SelectionStrategy

    class SecondariesOnly(SelectionStrategy):
        def select(self, candidates, qos, stale_factor):
            names = tuple(c.name for c in candidates if not c.is_primary)
            return SelectionResult(names, 1.0, True)

    testbed = make_testbed(num_primaries=1, num_secondaries=1, lui=1.0)
    service = testbed.service
    secondary = service.secondaries[0]
    qos = QoSSpec(staleness_threshold=0, deadline=10.0, min_probability=0.99)
    client = service.create_client(
        "c", read_only_methods={"get"}, strategy=SecondariesOnly()
    )
    reads = drive(testbed, client, steps=6, qos=qos, gap=0.1)
    assert secondary.deferred_reads_served > 0
    deferred = [o for o in reads if o.deferred]
    assert deferred, "deferred service should surface in outcomes"
    for outcome in deferred:
        # Response time includes waiting for the next lazy update, which
        # is far longer than the 10 ms service time.
        assert outcome.response_time > 0.05
        assert outcome.first_replica == secondary.name


# ---------------------------------------------------------------------------
# Lazy propagation (§3)
# ---------------------------------------------------------------------------
def test_lazy_updates_propagate_state_to_secondaries():
    testbed = make_testbed(lui=0.5)
    client = testbed.service.create_client("c", read_only_methods={"get"})
    drive(testbed, client, steps=5, gap=0.2)
    testbed.sim.run(until=testbed.sim.now + 2.0)
    for secondary in testbed.service.secondaries:
        assert secondary.app.value == 5
        assert secondary.my_csn == 5
        assert secondary.lazy_updates_applied > 0


def test_only_publisher_sends_lazy_updates():
    testbed = make_testbed(lui=0.5)
    testbed.sim.run(until=5.0)
    service = testbed.service
    assert service.primaries[0].lazy_updates_sent >= 8
    assert service.primaries[1].lazy_updates_sent == 0
    assert service.sequencer.lazy_updates_sent == 0


def test_lazy_interval_controls_propagation_rate():
    fast = make_testbed(lui=0.25)
    slow = make_testbed(lui=2.0)
    fast.sim.run(until=10.0)
    slow.sim.run(until=10.0)
    assert (
        fast.service.primaries[0].lazy_updates_sent
        > 3 * slow.service.primaries[0].lazy_updates_sent
    )


def test_stale_lazy_update_not_applied_backwards():
    """A secondary never regresses its CSN on an older snapshot."""
    testbed = make_testbed(lui=0.5)
    secondary = testbed.service.secondaries[0]
    from repro.core.requests import LazyUpdate

    client = testbed.service.create_client("c", read_only_methods={"get"})
    drive(testbed, client, steps=3, gap=0.2)
    testbed.sim.run(until=testbed.sim.now + 1.0)
    csn_before = secondary.my_csn
    stale = LazyUpdate(publisher="x", epoch=999, csn=1, snapshot={"value": 1, "history": [1]})
    secondary._on_lazy_update(stale)
    assert secondary.my_csn == csn_before
    assert secondary.app.value == csn_before


# ---------------------------------------------------------------------------
# Reply metadata
# ---------------------------------------------------------------------------
def test_replies_piggyback_t1():
    testbed = make_testbed(service_time=Constant(0.020))
    client = testbed.service.create_client("c", read_only_methods={"get"})
    reads = drive(testbed, client, steps=3)
    stats = client.repository.stats_for(reads[-1].first_replica)
    # Windows were fed by broadcasts: service time constant at 20 ms.
    assert stats.ts_window.latest == pytest.approx(0.020)
    # Gateway delay approx 2 ms round trip on 1 ms links.
    assert stats.latest_tg == pytest.approx(0.002, abs=0.002)
