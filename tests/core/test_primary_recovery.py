"""Primary crash -> evict -> rejoin round trips via state transfer.

DESIGN.md §9: a rejoining primary asks the current sequencer for a state
transfer; a donor serving primary ships committed state, CSN/GSN, and the
uncommitted log suffix; the requester replays it and re-enters the primary
group at full strength.
"""

import pytest

from repro.core.qos import QoSSpec
from repro.core.service import ServiceConfig, build_testbed
from repro.groups.membership import MembershipConfig
from repro.net.latency import FixedLatency
from repro.sim.process import Process, Timeout
from repro.sim.rng import Constant
from repro.sim.tracing import Trace


def make_testbed(num_primaries=3, num_secondaries=2, seed=7, trace=None):
    config = ServiceConfig(
        name="svc",
        num_primaries=num_primaries,
        num_secondaries=num_secondaries,
        lazy_update_interval=0.5,
        read_service_time=Constant(0.010),
        heartbeat_interval=0.1,
        suspect_timeout=0.35,
    )
    return build_testbed(
        config,
        seed=seed,
        latency=FixedLatency(0.001),
        trace=trace,
        membership_config=MembershipConfig(
            heartbeat_interval=0.1, suspect_timeout=0.35, sweep_interval=0.1
        ),
    )


QOS = QoSSpec(staleness_threshold=10, deadline=1.0, min_probability=0.5)


def updates(testbed, client, count, gap=0.1):
    outcomes = []

    def run():
        for _ in range(count):
            outcome = yield client.call("increment")
            outcomes.append(outcome)
            yield Timeout(gap)

    Process(testbed.sim, run())
    return outcomes


def serving_primaries(service, membership):
    view = membership.view_of(service.groups.primary)
    return [
        h for h in service.primaries if h.name in view and h.name != view.leader
    ]


# ---------------------------------------------------------------------------
# The acceptance round trip: crash -> evict -> rejoin -> full strength
# ---------------------------------------------------------------------------
def test_primary_rejoin_restores_full_strength():
    trace = Trace()
    testbed = make_testbed(trace=trace)
    service = testbed.service
    client = service.create_client("c1")
    victim = service.primaries[1]

    updates(testbed, client, 8)
    testbed.sim.run(until=1.0)
    testbed.network.crash(victim.name)
    testbed.sim.run(until=2.0)  # evicted; updates continue without it
    assert victim.name not in testbed.membership.view_of(service.groups.primary)

    committed_before = updates(testbed, client, 8)
    testbed.sim.run(until=3.0)
    service.recover_primary(victim.name)
    testbed.sim.run(until=5.0)

    view = testbed.membership.view_of(service.groups.primary)
    assert victim.name in view
    # Rejoined at the tail: never usurps the sequencer or publisher.
    assert view.members[-1] == victim.name

    donor = next(
        h for h in serving_primaries(service, testbed.membership) if h is not victim
    )
    assert not victim._recovering
    assert victim.my_csn == donor.my_csn
    assert victim.my_gsn >= donor.my_csn
    assert victim.app.history == donor.app.history
    assert victim.app.value == donor.app.value
    assert victim.state_transfers_completed >= 1
    assert donor.my_csn >= 16  # nothing was lost while the victim was out
    assert len(committed_before) == 8
    done = [r for r in trace.filter("replica.state-transfer-done", victim.name)]
    assert done and done[-1].detail["donor"] is not None


def test_rejoined_primary_commits_new_updates():
    testbed = make_testbed()
    service = testbed.service
    client = service.create_client("c1")
    victim = service.primaries[2]

    updates(testbed, client, 5)
    testbed.sim.run(until=1.0)
    testbed.network.crash(victim.name)
    testbed.sim.run(until=2.5)
    service.recover_primary(victim.name)
    testbed.sim.run(until=3.5)

    before = victim.my_csn
    updates(testbed, client, 5)
    testbed.sim.run(until=5.5)
    assert victim.my_csn >= before + 5  # participates at full strength


def test_primary_rejoin_under_continuous_load():
    testbed = make_testbed(seed=11)
    service = testbed.service
    client = service.create_client("c1")
    victim = service.primaries[1]

    updates(testbed, client, 40, gap=0.1)
    testbed.sim.run(until=1.0)
    testbed.network.crash(victim.name)
    testbed.sim.run(until=2.2)
    service.recover_primary(victim.name)
    testbed.sim.run(until=8.0)

    donor = next(
        h for h in serving_primaries(service, testbed.membership) if h is not victim
    )
    assert victim.my_csn == donor.my_csn >= 40
    assert victim.app.history == donor.app.history


def test_rejoin_survives_sequencer_failover_mid_transfer():
    testbed = make_testbed(seed=3)
    service = testbed.service
    client = service.create_client("c1")
    victim = service.primaries[1]
    old_sequencer = service.sequencer

    updates(testbed, client, 6)
    testbed.sim.run(until=1.0)
    testbed.network.crash(victim.name)
    testbed.sim.run(until=2.5)
    # Recover the primary and kill the sequencer in the same instant: the
    # first StateTransferRequest targets a dead leader, and the retry loop
    # must re-resolve the new one after failover.
    service.recover_primary(victim.name)
    testbed.network.crash(old_sequencer.name)
    testbed.sim.run(until=6.0)

    view = testbed.membership.view_of(service.groups.primary)
    assert old_sequencer.name not in view
    assert view.leader == service.primaries[0].name  # promoted by rank
    assert victim.name in view
    assert not victim._recovering
    assert victim.state_transfers_completed >= 1
    donor = service.primaries[2]
    assert victim.my_csn == donor.my_csn
    assert victim.app.history == donor.app.history


def test_lone_rejoiner_keeps_retained_state():
    trace = Trace()
    testbed = make_testbed(num_primaries=1, num_secondaries=0, trace=trace)
    service = testbed.service
    client = service.create_client("c1")
    victim = service.primaries[0]

    updates(testbed, client, 5)
    testbed.sim.run(until=1.0)
    committed = victim.my_csn
    assert committed >= 5
    # Take the whole primary group down, then bring only the ex-serving
    # primary back: it rejoins an empty view as leader, so nobody holds
    # newer committed state and it must keep what it retained.
    testbed.network.crash(service.sequencer.name)
    testbed.network.crash(victim.name)
    testbed.sim.run(until=2.5)
    service.recover_primary(victim.name)
    testbed.sim.run(until=4.0)

    assert not victim._recovering
    assert victim.my_csn == committed
    done = [r for r in trace.filter("replica.state-transfer-done", victim.name)]
    assert done and done[-1].detail["donor"] is None


# ---------------------------------------------------------------------------
# Dispatch and validation
# ---------------------------------------------------------------------------
def test_recover_replica_dispatches_on_role():
    testbed = make_testbed()
    service = testbed.service
    primary = service.primaries[0]
    secondary = service.secondaries[0]
    testbed.sim.run(until=0.5)
    testbed.network.crash(primary.name)
    testbed.network.crash(secondary.name)
    testbed.sim.run(until=1.5)

    assert service.recover_replica(secondary.name) is secondary
    assert service.recover_replica(primary.name) is primary
    assert primary._recovering  # the transfer protocol was started
    testbed.sim.run(until=3.0)
    assert not primary._recovering


def test_recover_primary_rejects_secondary():
    testbed = make_testbed()
    service = testbed.service
    with pytest.raises(ValueError):
        service.recover_primary(service.secondaries[0].name)


def test_flush_pending_invalidates_inflight_completions():
    """A completion scheduled before a crash must not commit stale work
    after recovery (the incarnation guard in ReplicaHandlerBase)."""
    testbed = make_testbed()
    service = testbed.service
    client = service.create_client("c1")
    victim = service.primaries[1]

    updates(testbed, client, 3, gap=0.02)
    # Run just long enough for a request to be in service on the victim.
    deadline = testbed.sim.now + 2.0
    while not victim._busy and testbed.sim.now < deadline:
        testbed.sim.run(until=testbed.sim.now + 0.005)
    assert victim._busy
    incarnation = victim._incarnation
    served_before = victim.updates_committed + victim.reads_served

    testbed.network.crash(victim.name)
    victim.flush_pending()
    assert victim._incarnation == incarnation + 1
    assert not victim._busy
    testbed.sim.run(until=testbed.sim.now + 0.5)
    # The stale completion fired but was discarded by the guard.
    assert victim.updates_committed + victim.reads_served == served_before
