"""Tests for adaptive lazy-update-interval control."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.qos import QoSSpec
from repro.core.service import ServiceConfig, build_testbed
from repro.core.tuning import (
    AdaptiveLazyController,
    StalenessTarget,
    max_poisson_mean,
)
from repro.net.latency import FixedLatency
from repro.sim.rng import Constant
from repro.stats.poisson import poisson_cdf
from repro.workloads.generators import OpenLoopUpdater


# ---------------------------------------------------------------------------
# max_poisson_mean
# ---------------------------------------------------------------------------
def test_max_mean_satisfies_target():
    for threshold in (0, 1, 2, 5, 10):
        for probability in (0.5, 0.9, 0.99):
            mean = max_poisson_mean(threshold, probability)
            assert poisson_cdf(threshold, mean) >= probability - 1e-6
            # Slightly larger mean violates the target (maximality).
            assert poisson_cdf(threshold, mean * 1.01 + 1e-3) < probability + 1e-9


def test_max_mean_grows_with_threshold():
    means = [max_poisson_mean(a, 0.9) for a in range(6)]
    assert all(b > a for a, b in zip(means, means[1:]))


def test_max_mean_shrinks_with_probability():
    loose = max_poisson_mean(3, 0.5)
    strict = max_poisson_mean(3, 0.99)
    assert strict < loose


def test_max_mean_validation():
    with pytest.raises(ValueError):
        max_poisson_mean(3, 1.0)
    assert max_poisson_mean(-1, 0.9) == 0.0


@given(
    threshold=st.integers(min_value=0, max_value=20),
    probability=st.floats(min_value=0.05, max_value=0.99),
)
@settings(max_examples=60)
def test_max_mean_property(threshold, probability):
    mean = max_poisson_mean(threshold, probability)
    assert mean >= 0.0
    assert poisson_cdf(threshold, mean) >= probability - 1e-5


# ---------------------------------------------------------------------------
# AdaptiveLazyController
# ---------------------------------------------------------------------------
def test_controller_budget_fixed_by_target():
    controller = AdaptiveLazyController(StalenessTarget(2, 0.9))
    assert controller.mean_budget == pytest.approx(max_poisson_mean(2, 0.9))


def test_controller_recommends_budget_over_rate():
    controller = AdaptiveLazyController(
        StalenessTarget(2, 0.9), min_interval=0.01, max_interval=100.0
    )
    controller.observe(updates=20, interval=10.0)  # 2 updates/s
    expected = controller.mean_budget / 2.0
    assert controller.recommended_interval() == pytest.approx(expected)


def test_controller_clamps_to_bounds():
    controller = AdaptiveLazyController(
        StalenessTarget(1, 0.9), min_interval=0.5, max_interval=4.0
    )
    controller.observe(updates=1000, interval=1.0)  # huge rate -> min
    assert controller.recommended_interval() == 0.5
    quiet = AdaptiveLazyController(
        StalenessTarget(1, 0.9), min_interval=0.5, max_interval=4.0
    )
    assert quiet.recommended_interval() == 4.0  # no updates -> max


def test_controller_ewma_tracks_rate_changes():
    controller = AdaptiveLazyController(StalenessTarget(2, 0.9), ewma_alpha=0.5)
    controller.observe(10, 10.0)  # 1/s
    assert controller.estimated_rate == pytest.approx(1.0)
    controller.observe(40, 10.0)  # 4/s burst
    assert 1.0 < controller.estimated_rate < 4.0
    for _ in range(10):
        controller.observe(40, 10.0)
    assert controller.estimated_rate == pytest.approx(4.0, rel=0.05)


def test_controller_validation():
    with pytest.raises(ValueError):
        StalenessTarget(-1, 0.9)
    with pytest.raises(ValueError):
        StalenessTarget(2, 1.0)
    with pytest.raises(ValueError):
        AdaptiveLazyController(StalenessTarget(2, 0.9), min_interval=0.0)
    with pytest.raises(ValueError):
        AdaptiveLazyController(StalenessTarget(2, 0.9), ewma_alpha=0.0)
    controller = AdaptiveLazyController(StalenessTarget(2, 0.9))
    with pytest.raises(ValueError):
        controller.observe(-1, 1.0)
    controller.observe(1, 0.0)  # zero interval ignored, no crash


# ---------------------------------------------------------------------------
# End-to-end: the publisher re-tunes T_L to hold the staleness target
# ---------------------------------------------------------------------------
def _run_adaptive(update_rate, target, duration=120.0):
    config = ServiceConfig(
        name="svc",
        num_primaries=2,
        num_secondaries=2,
        lazy_update_interval=2.0,  # starting point; the controller takes over
        adaptive_lazy_target=target,
        read_service_time=Constant(0.010),
    )
    testbed = build_testbed(config, seed=29, latency=FixedLatency(0.001))
    feed = testbed.service.create_client("feed", read_only_methods={"get"})
    OpenLoopUpdater(testbed.sim, feed, testbed.rng, rate=update_rate,
                    duration=duration)
    testbed.sim.run(until=duration)
    return testbed


def test_adaptive_interval_tightens_under_fast_updates():
    target = StalenessTarget(threshold=2, probability=0.9)
    testbed = _run_adaptive(update_rate=5.0, target=target)
    publisher = testbed.service.primaries[0]
    # Budget for (a=2, p=0.9) is ~1.1 expected updates; at 5/s the interval
    # must come down to ~0.22 s, far below the initial 2 s.
    assert publisher.lazy_update_interval < 0.5
    assert publisher.lazy_updates_sent > 100  # propagating much more often


def test_adaptive_interval_relaxes_when_quiet():
    target = StalenessTarget(threshold=2, probability=0.9)
    testbed = _run_adaptive(update_rate=0.05, target=target, duration=120.0)
    publisher = testbed.service.primaries[0]
    assert publisher.lazy_update_interval > 2.0  # relaxed beyond the start


def test_adaptive_interval_holds_staleness_target():
    """The point of the controller: just-before-propagation staleness
    stays within the target with roughly the target probability."""
    target = StalenessTarget(threshold=2, probability=0.9)
    config = ServiceConfig(
        name="svc",
        num_primaries=2,
        num_secondaries=2,
        lazy_update_interval=2.0,
        adaptive_lazy_target=target,
        read_service_time=Constant(0.010),
    )
    testbed = build_testbed(config, seed=31, latency=FixedLatency(0.001))
    feed = testbed.service.create_client("feed", read_only_methods={"get"})
    OpenLoopUpdater(testbed.sim, feed, testbed.rng, rate=3.0, duration=180.0)

    publisher = testbed.service.primaries[0]
    secondary = testbed.service.secondaries[0]
    hits = []

    def sample():
        if testbed.sim.now > 20.0:  # past the adaptation transient
            staleness = max(0, publisher.my_csn - secondary.my_csn)
            hits.append(staleness <= target.threshold)
        testbed.sim.schedule(0.1, sample)

    testbed.sim.schedule(0.1, sample)
    testbed.sim.run(until=180.0)
    fraction = sum(hits) / len(hits)
    assert fraction >= target.probability - 0.08


def test_clients_follow_announced_interval():
    """With adaptive T_L, staleness broadcasts carry the live interval and
    the client repository uses it for the t_l modulo."""
    target = StalenessTarget(threshold=2, probability=0.9)
    config = ServiceConfig(
        name="svc",
        num_primaries=2,
        num_secondaries=2,
        lazy_update_interval=2.0,
        adaptive_lazy_target=target,
        read_service_time=Constant(0.010),
    )
    testbed = build_testbed(config, seed=37, latency=FixedLatency(0.001))
    feed = testbed.service.create_client("feed", read_only_methods={"get"})
    OpenLoopUpdater(testbed.sim, feed, testbed.rng, rate=5.0, duration=120.0)
    observer = testbed.service.create_client("obs", read_only_methods={"get"})
    qos = QoSSpec(100, 2.0, 0.1)
    from repro.sim.process import Process, Timeout

    def reads():
        yield Timeout(40.0)  # let the controller converge first
        for _ in range(30):
            yield observer.call("get", (), qos)
            yield Timeout(0.3)

    Process(testbed.sim, reads())
    testbed.sim.run(until=60.0)  # still inside the update storm
    lazy = observer.repository.latest_lazy
    assert lazy is not None and lazy.interval is not None
    assert lazy.interval < 0.5  # the tightened interval reached clients