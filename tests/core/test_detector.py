"""Unit tests for the φ-accrual failure detector (repro.core.detector)."""

import pytest

from repro.core.detector import PHI_CAP, DetectorConfig, PhiAccrualDetector


CFG = DetectorConfig(
    window_size=8,
    phi_suspect=8.0,
    phi_hedge=4.0,
    min_samples=4,
    min_std=0.005,
    probe_interval=0.5,
    quarantine_base=0.2,
    quarantine_max=3.0,
    quarantine_memory=10.0,
)


def feed(det, peer, start, count, dt):
    """Regular arrivals every ``dt`` starting at ``start``; returns the
    time of the last arrival."""
    t = start
    for _ in range(count):
        det.record(peer, t)
        t += dt
    return t - dt


# ---------------------------------------------------------------------------
# Config validation
# ---------------------------------------------------------------------------
@pytest.mark.parametrize(
    "kwargs",
    [
        {"window_size": 1},
        {"phi_suspect": 0.0},
        {"phi_hedge": -1.0},
        {"phi_suspect": 2.0, "phi_hedge": 3.0},
        {"min_samples": 1},
        {"min_std": 0.0},
        {"probe_interval": 0.0},
        {"min_eject_keep": 0},
        {"watchdog_multiplier": 0.0},
        {"quarantine_base": -0.1},
        {"quarantine_memory": 0.0},
    ],
)
def test_config_rejects_invalid(kwargs):
    with pytest.raises(ValueError):
        DetectorConfig(**kwargs)


# ---------------------------------------------------------------------------
# φ computation
# ---------------------------------------------------------------------------
def test_unknown_peer_has_zero_phi():
    det = PhiAccrualDetector(CFG)
    assert det.phi("ghost", 1.0) == 0.0


def test_cold_peer_is_never_suspected():
    det = PhiAccrualDetector(CFG)
    # min_samples=4 intervals require 5 arrivals; feed only 3.
    feed(det, "p", 0.0, 3, 0.1)
    assert det.phi("p", 50.0) == 0.0
    assert det.suspicion_check("p", 50.0) == 0.0
    assert not det.is_suspected("p")


def test_phi_grows_with_elapsed_gap():
    det = PhiAccrualDetector(CFG)
    last = feed(det, "p", 0.0, 8, 0.1)
    small = det.phi("p", last + 0.1)
    medium = det.phi("p", last + 0.2)
    large = det.phi("p", last + 1.0)
    assert small < medium < large
    assert large == PHI_CAP  # a 10-sigma gap underflows the tail


def test_phi_is_low_at_the_mean_interval():
    det = PhiAccrualDetector(CFG)
    last = feed(det, "p", 0.0, 8, 0.1)
    # At exactly the mean inter-arrival, P(later) = 0.5, so φ ≈ 0.3.
    assert det.phi("p", last + 0.1) == pytest.approx(0.301, abs=0.01)


def test_same_instant_duplicate_arrivals_are_ignored():
    det = PhiAccrualDetector(CFG)
    feed(det, "p", 0.0, 6, 0.1)
    before = det.phi("p", 0.6)
    det.record("p", 0.5)  # duplicate of the last arrival
    assert det.phi("p", 0.6) == before


# ---------------------------------------------------------------------------
# Suspicion latch and clear
# ---------------------------------------------------------------------------
def test_suspicion_latches_and_clears_on_arrival():
    det = PhiAccrualDetector(CFG)
    last = feed(det, "p", 0.0, 8, 0.1)
    value = det.suspicion_check("p", last + 2.0)
    assert value >= CFG.phi_suspect
    assert det.is_suspected("p")
    assert det.suspected() == ["p"]
    # The latch holds even if queried again.
    det.suspicion_check("p", last + 2.1)
    assert det.is_suspected("p")
    # One arrival clears it.
    det.record("p", last + 3.0)
    assert not det.is_suspected("p")
    assert det.suspected() == []


def test_transitions_record_suspect_and_clear_edges():
    det = PhiAccrualDetector(CFG)
    last = feed(det, "p", 0.0, 8, 0.1)
    det.suspicion_check("p", last + 2.0)
    det.record("p", last + 3.0)
    kinds = [(t.peer, t.suspected) for t in det.transitions]
    assert kinds == [("p", True), ("p", False)]
    assert det.transitions[0].phi >= CFG.phi_suspect
    assert det.transitions[0].time == pytest.approx(last + 2.0)
    assert det.transitions[1].time == pytest.approx(last + 3.0)


# ---------------------------------------------------------------------------
# Flap-damping quarantine
# ---------------------------------------------------------------------------
def episode(det, peer, last):
    """One suspect -> clear flap episode.

    Latches at a 2 s gap, clears with one arrival, then feeds a fresh
    rhythm so the clearing outlier rotates out of the window (maxlen 8)
    and the next episode latches on the same 2 s gap.  Returns
    ``(clear_time, last_arrival_time)``.
    """
    suspect_t = last + 2.0
    assert det.suspicion_check(peer, suspect_t) >= det.config.phi_suspect
    clear_t = suspect_t + 0.5
    det.record(peer, clear_t)
    return clear_t, feed(det, peer, clear_t + 0.1, 8, 0.1)


def test_first_suspicion_clears_without_quarantine():
    det = PhiAccrualDetector(CFG)
    last = feed(det, "p", 0.0, 8, 0.1)
    clear_t, _ = episode(det, "p", last)
    assert not det.is_suspected("p", clear_t + 0.01)


def test_repeat_suspicion_quarantines_with_backoff():
    det = PhiAccrualDetector(CFG)
    last = feed(det, "p", 0.0, 8, 0.1)
    _, last = episode(det, "p", last)  # first episode: no quarantine
    # Second episode within quarantine_memory: base hold (0.2 s).
    clear_t, last = episode(det, "p", last)
    assert det.is_suspected("p", clear_t + 0.1)
    assert not det.is_suspected("p", clear_t + 0.3)
    # Third episode: hold doubles (0.4 s).
    clear_t, last = episode(det, "p", last)
    assert det.is_suspected("p", clear_t + 0.3)
    assert not det.is_suspected("p", clear_t + 0.5)


def test_quarantine_hold_is_capped():
    cfg = DetectorConfig(
        window_size=8,
        min_samples=4,
        quarantine_base=0.2,
        quarantine_max=0.3,
        quarantine_memory=60.0,
    )
    det = PhiAccrualDetector(cfg)
    last = feed(det, "p", 0.0, 8, 0.1)
    clear_t = 0.0
    for _ in range(5):  # five suspect/clear episodes
        clear_t, last = episode(det, "p", last)
    # Hold would be 0.2 * 2^3 = 1.6 s without the cap.
    assert det.is_suspected("p", clear_t + 0.25)
    assert not det.is_suspected("p", clear_t + 0.35)


def test_is_suspected_without_now_ignores_quarantine():
    det = PhiAccrualDetector(CFG)
    last = feed(det, "p", 0.0, 8, 0.1)
    _, last = episode(det, "p", last)
    clear_t, _ = episode(det, "p", last)
    # Quarantined (repeat suspicion) but not latched:
    assert det.is_suspected("p", clear_t + 0.1)
    assert not det.is_suspected("p")


def test_under_suspicion_merges_latched_and_quarantined():
    det = PhiAccrualDetector(CFG)
    last_a = feed(det, "a", 0.0, 8, 0.1)
    last_b = feed(det, "b", 0.0, 8, 0.1)
    # "a": two episodes -> quarantined after the second clear.
    _, last_a = episode(det, "a", last_a)
    clear_a, _ = episode(det, "a", last_a)
    # "b": latched right now.
    det.suspicion_check("b", clear_a)
    assert det.under_suspicion(clear_a + 0.1) == {"a", "b"}
    assert det.under_suspicion(clear_a + 1.0) == {"b"}


# ---------------------------------------------------------------------------
# Probing
# ---------------------------------------------------------------------------
def test_should_probe_only_when_suspected():
    det = PhiAccrualDetector(CFG)
    feed(det, "p", 0.0, 8, 0.1)
    assert not det.should_probe("p", 10.0)


def test_should_probe_is_rate_limited():
    det = PhiAccrualDetector(CFG)
    last = feed(det, "p", 0.0, 8, 0.1)
    det.suspicion_check("p", last + 2.0)
    # The latch itself counts as the first probe slot.
    assert not det.should_probe("p", last + 2.1)
    assert det.should_probe("p", last + 2.0 + CFG.probe_interval)
    assert not det.should_probe("p", last + 2.1 + CFG.probe_interval)


# ---------------------------------------------------------------------------
# forget
# ---------------------------------------------------------------------------
def test_forget_drops_all_state():
    det = PhiAccrualDetector(CFG)
    last = feed(det, "p", 0.0, 8, 0.1)
    _, last = episode(det, "p", last)
    clear_t, _ = episode(det, "p", last)
    assert det.is_suspected("p", clear_t + 0.1)  # quarantined
    det.forget("p")
    assert det.phi("p", clear_t + 10.0) == 0.0
    assert not det.is_suspected("p", clear_t + 0.1)
    assert det.under_suspicion(clear_t + 0.1) == set()


# ---------------------------------------------------------------------------
# Adaptive timeout
# ---------------------------------------------------------------------------
def test_adaptive_timeout_falls_back_when_cold():
    det = PhiAccrualDetector(CFG)
    feed(det, "p", 0.0, 3, 0.1)
    assert det.adaptive_timeout("p", 0.7) == 0.7


def test_adaptive_timeout_tracks_the_history():
    det = PhiAccrualDetector(CFG)
    feed(det, "p", 0.0, 9, 0.1)
    # mean=0.1, σ floored at 0.1×mean=0.01, k=6 -> 0.16.
    assert det.adaptive_timeout("p", 0.1) == pytest.approx(0.16)


def test_adaptive_timeout_is_clamped():
    det = PhiAccrualDetector(CFG)
    feed(det, "p", 0.0, 9, 0.1)
    assert det.adaptive_timeout("p", 10.0) == pytest.approx(5.0)  # floor /2
    assert det.adaptive_timeout("p", 0.001) == pytest.approx(0.01)  # 10x cap


# ---------------------------------------------------------------------------
# stats
# ---------------------------------------------------------------------------
def test_stats_shape():
    from repro.obs.metrics import MetricsRegistry

    det = PhiAccrualDetector(CFG, owner="client-1", metrics=MetricsRegistry())
    last = feed(det, "p", 0.0, 8, 0.1)
    det.suspicion_check("p", last + 2.0)
    stats = det.stats()
    assert stats["peers"] == 1
    assert stats["suspected"] == ["p"]
    assert stats["suspects_total"] == 1
    assert stats["clears_total"] == 0
    assert stats["transitions"] == 1
