"""Unit tests for the probabilistic models (§5.1–§5.2)."""

import pytest

from repro.core.prediction import ResponseTimePredictor
from repro.core.repository import ClientInfoRepository
from repro.core.requests import PerfBroadcast, StalenessInfo
from repro.stats.poisson import poisson_cdf


def _repo_with(replica="r", ts_samples=(), tq_samples=(), tb_samples=(), tg=None):
    repo = ClientInfoRepository(window_size=20)
    n = max(len(ts_samples), len(tq_samples))
    ts_list = list(ts_samples) or [0.0] * n
    tq_list = list(tq_samples) or [0.0] * n
    for i in range(n):
        repo.record_broadcast(
            PerfBroadcast(
                replica=replica,
                ts=ts_list[i % len(ts_list)],
                tq=tq_list[i % len(tq_list)],
                tb=None,
            )
        )
    for tb in tb_samples:
        repo.record_broadcast(
            PerfBroadcast(replica=replica, ts=ts_list[0], tq=tq_list[0], tb=tb)
        )
    if tg is not None:
        repo.record_reply(replica, tg=tg, now=1.0)
    return repo


# ---------------------------------------------------------------------------
# Immediate reads: R = S + W + G (Eq. 5)
# ---------------------------------------------------------------------------
def test_immediate_cdf_is_convolution_of_components():
    # S uniform on {10,20} ms, W uniform on {5,15} ms, G = 1 ms.
    repo = _repo_with(ts_samples=[0.010, 0.020], tq_samples=[0.005, 0.015], tg=0.001)
    predictor = ResponseTimePredictor(repo, lazy_update_interval=2.0)
    # Sums: 16, 26, 26, 36 ms each with prob 1/4.
    assert predictor.immediate_cdf("r", 0.016) == pytest.approx(0.25)
    assert predictor.immediate_cdf("r", 0.026) == pytest.approx(0.75)
    assert predictor.immediate_cdf("r", 0.036) == pytest.approx(1.0)
    assert predictor.immediate_cdf("r", 0.010) == 0.0


def test_gateway_delay_uses_latest_value_only():
    repo = _repo_with(ts_samples=[0.010], tq_samples=[0.0], tg=0.001)
    repo.record_reply("r", tg=0.050, now=2.0)  # newer, much larger
    predictor = ResponseTimePredictor(repo, 2.0)
    assert predictor.immediate_cdf("r", 0.020) == 0.0  # 10 + 50 ms > 20 ms
    assert predictor.immediate_cdf("r", 0.060) == 1.0


def test_default_gateway_delay_applied_without_replies():
    repo = _repo_with(ts_samples=[0.010], tq_samples=[0.0])
    predictor = ResponseTimePredictor(repo, 2.0, default_gateway_delay=0.005)
    assert predictor.immediate_cdf("r", 0.014) == 0.0
    assert predictor.immediate_cdf("r", 0.015) == 1.0


def test_bootstrap_cdf_without_history():
    repo = ClientInfoRepository(10)
    predictor = ResponseTimePredictor(repo, 2.0)
    assert predictor.immediate_cdf("unknown", 0.1) == 1.0
    assert predictor.response_cdfs("unknown", 0.1) == (1.0, 1.0)


def test_custom_bootstrap_cdf():
    repo = ClientInfoRepository(10)
    predictor = ResponseTimePredictor(repo, 2.0, bootstrap_cdf=0.0)
    assert predictor.immediate_cdf("unknown", 0.1) == 0.0
    with pytest.raises(ValueError):
        ResponseTimePredictor(repo, 2.0, bootstrap_cdf=1.5)


# ---------------------------------------------------------------------------
# Deferred reads: R = S + W + G + U (Eq. 6)
# ---------------------------------------------------------------------------
def test_delayed_cdf_convolves_lazy_wait():
    repo = _repo_with(
        ts_samples=[0.010], tq_samples=[0.0], tb_samples=[0.100, 0.200], tg=0.0
    )
    predictor = ResponseTimePredictor(repo, 2.0)
    immediate, delayed = predictor.response_cdfs("r", 0.150)
    assert immediate == pytest.approx(1.0)
    # ts occurs both with and without tb in this constructed window; the S
    # pmf is a point mass at 10 ms, U is {100, 200} ms equally likely.
    assert delayed == pytest.approx(0.5)
    _, delayed_all = predictor.response_cdfs("r", 0.250)
    assert delayed_all == pytest.approx(1.0)


def test_delayed_cdf_never_exceeds_immediate():
    repo = _repo_with(
        ts_samples=[0.010, 0.050], tq_samples=[0.005], tb_samples=[0.3], tg=0.001
    )
    predictor = ResponseTimePredictor(repo, 2.0)
    for d in (0.02, 0.06, 0.2, 0.5):
        immediate, delayed = predictor.response_cdfs("r", d)
        assert delayed <= immediate + 1e-9


def test_lazy_wait_fallback_uniform_over_interval():
    """Before any t_b sample exists, U ~ Uniform(0, T_L)."""
    repo = _repo_with(ts_samples=[0.0], tq_samples=[0.0], tg=0.0)
    predictor = ResponseTimePredictor(repo, lazy_update_interval=1.0)
    _, delayed = predictor.response_cdfs("r", 0.5)
    assert delayed == pytest.approx(0.5, abs=0.01)
    _, delayed_full = predictor.response_cdfs("r", 1.0)
    assert delayed_full == pytest.approx(1.0, abs=0.01)


# ---------------------------------------------------------------------------
# Staleness factor (Eq. 4)
# ---------------------------------------------------------------------------
def test_staleness_factor_matches_poisson_cdf():
    repo = ClientInfoRepository(10)
    repo.record_staleness(
        PerfBroadcast(
            replica="p",
            ts=0.1,
            tq=0.0,
            tb=None,
            staleness=StalenessInfo(n_u=10, t_u=5.0, n_l=0, t_l=0.5),
        ),
        now=100.0,
    )
    predictor = ResponseTimePredictor(repo, lazy_update_interval=2.0)
    # lambda_u = 2/s; at now=100.2, t_l = 0.5 + 0.2 = 0.7 -> mean 1.4.
    expected = poisson_cdf(3, 2.0 * 0.7)
    assert predictor.staleness_factor(3, now=100.2) == pytest.approx(expected)


def test_staleness_factor_one_without_updates():
    repo = ClientInfoRepository(10)
    predictor = ResponseTimePredictor(repo, 2.0)
    assert predictor.staleness_factor(0, now=5.0) == 1.0


def test_staleness_factor_decreases_with_time_since_lazy():
    repo = ClientInfoRepository(10)
    repo.record_staleness(
        PerfBroadcast(
            replica="p", ts=0.1, tq=0.0, tb=None,
            staleness=StalenessInfo(n_u=10, t_u=5.0, n_l=0, t_l=0.0),
        ),
        now=100.0,
    )
    predictor = ResponseTimePredictor(repo, lazy_update_interval=10.0)
    early = predictor.staleness_factor(2, now=100.5)
    late = predictor.staleness_factor(2, now=105.0)
    assert late < early


def test_staleness_factor_increases_with_threshold():
    repo = ClientInfoRepository(10)
    repo.record_staleness(
        PerfBroadcast(
            replica="p", ts=0.1, tq=0.0, tb=None,
            staleness=StalenessInfo(n_u=20, t_u=5.0, n_l=0, t_l=1.0),
        ),
        now=100.0,
    )
    predictor = ResponseTimePredictor(repo, lazy_update_interval=4.0)
    factors = [predictor.staleness_factor(a, now=101.0) for a in range(6)]
    assert all(b >= a for a, b in zip(factors, factors[1:]))


# ---------------------------------------------------------------------------
# Misc
# ---------------------------------------------------------------------------
def test_evaluation_counter_tracks_distribution_computations():
    repo = _repo_with(ts_samples=[0.01], tq_samples=[0.0])
    predictor = ResponseTimePredictor(repo, 2.0)
    predictor.immediate_cdf("r", 0.1)
    predictor.response_cdfs("r", 0.1)
    assert predictor.evaluations == 2


def test_constructor_validation():
    repo = ClientInfoRepository(10)
    with pytest.raises(ValueError):
        ResponseTimePredictor(repo, lazy_update_interval=0.0)
    with pytest.raises(ValueError):
        ResponseTimePredictor(repo, 2.0, quantum=0.0)
