"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_info_command(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "DSN 2002" in out
    assert "repro.core" in out
    assert "EXPERIMENTS.md" in out


def test_figure3_command_runs(capsys, tmp_path):
    save_path = str(tmp_path / "fig3.json")
    assert main(["figure3", "--save", save_path]) == 0
    out = capsys.readouterr().out
    assert "Figure 3" in out
    assert "total_us" in out
    from repro.experiments.report import load_results

    document = load_results(save_path)
    assert document["meta"]["experiment"] == "figure3"
    assert len(document["results"]) == 18  # 9 replica counts x 2 windows


def test_parser_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["nonsense"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_all_commands_registered():
    parser = build_parser()
    sub = next(
        a for a in parser._actions
        if isinstance(a, type(parser._subparsers._group_actions[0]))
    )
    assert set(sub.choices) == {
        "figure3", "figure4", "ablations", "validation", "chaos", "overload",
        "adaptive", "gray", "metrics", "speedup", "scale", "dash",
        "bench-diff", "info",
    }


def test_module_entrypoint_help():
    import subprocess
    import sys

    result = subprocess.run(
        [sys.executable, "-m", "repro", "--help"],
        capture_output=True, text=True, timeout=60,
    )
    assert result.returncode == 0
    assert "figure4" in result.stdout
