"""Unit tests for the GroupEndpoint base class."""

import pytest

from repro.groups.group import GroupEndpoint
from repro.groups.membership import MembershipService, View


class Echo(GroupEndpoint):
    def __init__(self, name):
        super().__init__(name)
        self.got = []
        self.view_log = []

    def on_group_message(self, group, sender, payload):
        self.got.append((group, sender, payload))

    def on_view_change(self, view, previous):
        self.view_log.append((view, previous))


@pytest.fixture
def wired(network):
    service = MembershipService()
    network.attach(service)
    nodes = {}
    for name in ("a", "b", "c"):
        node = Echo(name)
        network.attach(node)
        nodes[name] = node
    return service, nodes


def test_unattached_endpoint_rejects_messaging():
    orphan = Echo("orphan")
    with pytest.raises(RuntimeError):
        orphan.gmcast("g", "x")
    with pytest.raises(RuntimeError):
        orphan.gsend("g", "a", "x")
    with pytest.raises(RuntimeError):
        orphan.fifo_sender
    with pytest.raises(RuntimeError):
        orphan.fifo_receiver


def test_gmcast_returns_recipient_count(sim, wired):
    service, nodes = wired
    for name, node in nodes.items():
        service.register("g", name)
        node.assume_membership("g")
    for node in nodes.values():
        node.adopt_view(service.view_of("g"))
    assert nodes["a"].gmcast("g", "x") == 2


def test_gmcast_empty_view_sends_nothing(sim, wired):
    _, nodes = wired
    assert nodes["a"].gmcast("nonexistent-group", "x") == 0


def test_view_change_hook_receives_previous(sim, wired):
    service, nodes = wired
    a = nodes["a"]
    a.adopt_view(View("g", 1, ("a",)))
    a.adopt_view(View("g", 2, ("a", "b")))
    assert len(a.view_log) == 2
    assert a.view_log[1][1].view_id == 1  # previous view passed through


def test_assume_membership_arms_heartbeats(sim, wired):
    service, nodes = wired
    service.register("g", "a")
    nodes["a"].assume_membership("g")
    sim.run(until=5.0)  # many suspect windows
    assert "a" in service.view_of("g")  # heartbeats kept it alive


def test_member_without_assume_is_evicted(sim, wired):
    service, nodes = wired
    service.register("g", "a")  # registered but never assumes membership
    sim.run(until=5.0)
    assert "a" not in service.view_of("g")  # no heartbeats -> evicted


def test_is_member_and_up(sim, network, wired):
    service, nodes = wired
    a = nodes["a"]
    a.adopt_view(View("g", 1, ("a",)))
    assert a.is_member("g")
    assert not a.is_member("other")
    assert a.up
    network.crash("a")
    assert not a.up


def test_rejoining_member_gets_fresh_channels(sim, wired):
    """A member that reappears in a view gets a new channel epoch from
    every peer (the rejoin-unblocking mechanism)."""
    service, nodes = wired
    a, b = nodes["a"], nodes["b"]
    a.adopt_view(View("g", 1, ("a", "b")))
    a.gsend("g", "b", "old")
    # b leaves, then rejoins.
    a.adopt_view(View("g", 2, ("a",)))
    a.adopt_view(View("g", 3, ("a", "b")))
    a.gsend("g", "b", "new")
    sim.run(until=1.0)
    payloads = [p for _, _, p in b.got]
    assert "new" in payloads  # fresh epoch restarted the pair's FIFO