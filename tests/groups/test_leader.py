"""Unit tests for rank-based leader election."""

from repro.groups.leader import is_leader, leader_of, successor_leader
from repro.groups.membership import View


def test_leader_is_first_member():
    assert leader_of(View("g", 1, ("x", "y"))) == "x"


def test_empty_view_no_leader():
    assert leader_of(View("g", 0, ())) is None


def test_is_leader():
    view = View("g", 1, ("x", "y"))
    assert is_leader(view, "x")
    assert not is_leader(view, "y")
    assert not is_leader(view, "z")


def test_successor_skips_failed_leader():
    view = View("g", 1, ("x", "y", "z"))
    assert successor_leader(view, "x") == "y"


def test_successor_of_non_leader_is_current_leader():
    view = View("g", 1, ("x", "y", "z"))
    assert successor_leader(view, "y") == "x"


def test_successor_in_single_member_view():
    assert successor_leader(View("g", 1, ("x",)), "x") is None


def test_leader_stable_across_view_growth():
    """Rank order (join order) keeps the leader stable as members join."""
    v1 = View("g", 1, ("x",))
    v2 = View("g", 2, ("x", "y"))
    assert leader_of(v1) == leader_of(v2) == "x"
