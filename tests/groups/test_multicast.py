"""Unit tests for reliable FIFO group messaging, including under loss."""

import pytest

from repro.groups.group import GroupEndpoint
from repro.groups.membership import MembershipService
from repro.groups.multicast import FifoReceiver, FifoSender, GroupAckMsg, GroupDataMsg
from repro.net.latency import FixedLatency
from repro.net.network import Network


# ---------------------------------------------------------------------------
# FifoReceiver in isolation
# ---------------------------------------------------------------------------
class _Collector:
    def __init__(self):
        self.delivered = []
        self.acked = []

    def deliver(self, group, sender, payload):
        self.delivered.append((group, sender, payload))

    def ack(self, origin, ack):
        self.acked.append((origin, ack))


def _data(seq, payload=None, group="g", origin="s"):
    return GroupDataMsg(group, origin, seq, payload if payload is not None else seq)


def test_receiver_delivers_in_order():
    col = _Collector()
    receiver = FifoReceiver(col.deliver, col.ack)
    for seq in (1, 2, 3):
        receiver.on_data(_data(seq))
    assert [p for _, _, p in col.delivered] == [1, 2, 3]


def test_receiver_buffers_out_of_order():
    col = _Collector()
    receiver = FifoReceiver(col.deliver, col.ack)
    receiver.on_data(_data(2))
    assert col.delivered == []
    assert receiver.pending_for("g", "s") == 1
    receiver.on_data(_data(1))
    assert [p for _, _, p in col.delivered] == [1, 2]
    assert receiver.reordered == 1


def test_receiver_suppresses_duplicates_but_reacks():
    col = _Collector()
    receiver = FifoReceiver(col.deliver, col.ack)
    receiver.on_data(_data(1))
    receiver.on_data(_data(1))
    assert len(col.delivered) == 1
    assert len(col.acked) == 2  # duplicate still acked (ack may have been lost)
    assert receiver.duplicates == 1


def test_receiver_separates_senders():
    col = _Collector()
    receiver = FifoReceiver(col.deliver, col.ack)
    receiver.on_data(_data(1, "x", origin="s1"))
    receiver.on_data(_data(1, "y", origin="s2"))
    assert len(col.delivered) == 2


def test_receiver_duplicate_in_buffer():
    col = _Collector()
    receiver = FifoReceiver(col.deliver, col.ack)
    receiver.on_data(_data(3))
    receiver.on_data(_data(3))
    assert receiver.duplicates == 1


# ---------------------------------------------------------------------------
# FifoSender in isolation
# ---------------------------------------------------------------------------
def test_sender_sequences_per_recipient(sim):
    sent = []
    sender = FifoSender(sim, "me", lambda r, m, s: sent.append((r, m)))
    sender.send("g", "a", "x")
    sender.send("g", "a", "y")
    sender.send("g", "b", "z")
    seqs = [(r, m.seq) for r, m in sent]
    assert seqs == [("a", 1), ("a", 2), ("b", 1)]


def test_sender_retransmits_until_acked(sim):
    sent = []
    sender = FifoSender(
        sim, "me", lambda r, m, s: sent.append(m), rto=0.1, max_retries=3
    )
    sender.send("g", "a", "x")
    sim.run(until=0.15)
    assert len(sent) == 2  # original + one retransmission
    sender.on_ack(GroupAckMsg("g", "me", 1), "a")
    sim.run(until=10.0)
    assert len(sent) == 2  # ack stopped the retransmissions
    assert sender.unacked == 0


def test_sender_abandons_after_max_retries(sim):
    sent = []
    sender = FifoSender(
        sim, "me", lambda r, m, s: sent.append(m), rto=0.05, max_retries=2, backoff=1.0
    )
    sender.send("g", "a", "x")
    sim.run(until=10.0)
    assert len(sent) == 3  # original + 2 retries
    assert sender.abandoned == 1
    assert sender.unacked == 0


def test_sender_forget_recipient_cancels_retransmits(sim):
    sent = []
    sender = FifoSender(sim, "me", lambda r, m, s: sent.append(m), rto=0.05)
    sender.send("g", "a", "x")
    sender.forget_recipient("g", "a")
    sim.run(until=5.0)
    assert len(sent) == 1
    assert sender.unacked == 0


def test_send_to_all_skips_self(sim):
    sent = []
    sender = FifoSender(sim, "me", lambda r, m, s: sent.append(r))
    sender.send_to_all("g", ["me", "a", "b"], "x")
    assert sent == ["a", "b"]


def test_sender_validation(sim):
    with pytest.raises(ValueError):
        FifoSender(sim, "me", lambda r, m, s: None, rto=0.0)
    with pytest.raises(ValueError):
        FifoSender(sim, "me", lambda r, m, s: None, max_retries=-1)


# ---------------------------------------------------------------------------
# End-to-end over a lossy network
# ---------------------------------------------------------------------------
class Echo(GroupEndpoint):
    def __init__(self, name):
        super().__init__(name, rto=0.02)
        self.got = []

    def on_group_message(self, group, sender, payload):
        self.got.append(payload)


def _build(sim, rng, drop):
    network = Network(sim, rng, FixedLatency(0.001), drop_probability=drop)
    service = MembershipService()
    network.attach(service)
    nodes = [Echo(n) for n in ("a", "b", "c")]
    for node in nodes:
        network.attach(node)
        service.register("g", node.name)
        node.assume_membership("g")
    for node in nodes:
        node.adopt_view(service.view_of("g"))
    return network, nodes


def test_gmcast_reaches_all_members(sim, rng):
    _, (a, b, c) = _build(sim, rng, drop=0.0)
    count = a.gmcast("g", "hello")
    sim.run(until=1.0)
    assert count == 2
    assert b.got == ["hello"] and c.got == ["hello"]
    assert a.got == []  # no self-delivery


def test_gmcast_fifo_order_preserved(sim, rng):
    _, (a, b, _) = _build(sim, rng, drop=0.0)
    for i in range(20):
        a.gmcast("g", i)
    sim.run(until=2.0)
    assert b.got == list(range(20))


def test_reliable_delivery_under_heavy_loss(sim, rng):
    """30 % drop: retransmission must still deliver everything, in order."""
    _, (a, b, c) = _build(sim, rng, drop=0.3)
    for i in range(30):
        a.gmcast("g", i)
    sim.run(until=30.0)
    assert b.got == list(range(30))
    assert c.got == list(range(30))
    assert a.fifo_sender.retransmissions > 0


def test_gsend_unicast(sim, rng):
    _, (a, b, c) = _build(sim, rng, drop=0.0)
    a.gsend("g", "b", "solo")
    sim.run(until=1.0)
    assert b.got == ["solo"] and c.got == []


def test_two_senders_interleaved_fifo(sim, rng):
    _, (a, b, c) = _build(sim, rng, drop=0.2)
    for i in range(10):
        a.gmcast("g", f"a{i}")
        c.gmcast("g", f"c{i}")
    sim.run(until=30.0)
    from_a = [p for p in b.got if p.startswith("a")]
    from_c = [p for p in b.got if p.startswith("c")]
    assert from_a == [f"a{i}" for i in range(10)]
    assert from_c == [f"c{i}" for i in range(10)]
