"""Unit tests for views and the membership service."""

import pytest

from repro.groups.group import GroupEndpoint
from repro.groups.membership import (
    MembershipConfig,
    MembershipService,
    View,
)


# ---------------------------------------------------------------------------
# View
# ---------------------------------------------------------------------------
def test_view_leader_is_rank_zero():
    view = View("g", 1, ("a", "b", "c"))
    assert view.leader == "a"
    assert view.rank_of("b") == 1


def test_empty_view_has_no_leader():
    assert View("g", 0, ()).leader is None


def test_view_membership_and_len():
    view = View("g", 1, ("a", "b"))
    assert "a" in view and "z" not in view
    assert len(view) == 2


def test_view_rejects_duplicates_and_negative_id():
    with pytest.raises(ValueError):
        View("g", 1, ("a", "a"))
    with pytest.raises(ValueError):
        View("g", -1, ("a",))


# ---------------------------------------------------------------------------
# MembershipConfig
# ---------------------------------------------------------------------------
def test_config_validation():
    with pytest.raises(ValueError):
        MembershipConfig(heartbeat_interval=0.0)
    with pytest.raises(ValueError):
        MembershipConfig(heartbeat_interval=1.0, suspect_timeout=0.5)
    with pytest.raises(ValueError):
        MembershipConfig(sweep_interval=0.0)


# ---------------------------------------------------------------------------
# MembershipService
# ---------------------------------------------------------------------------
class Member(GroupEndpoint):
    def __init__(self, name):
        super().__init__(name)
        self.view_changes = []

    def on_view_change(self, view, previous):
        self.view_changes.append((view, previous))


@pytest.fixture
def stack(sim, network):
    service = MembershipService()
    network.attach(service)
    members = {}
    for name in ("a", "b", "c"):
        member = Member(name)
        network.attach(member)
        members[name] = member
    return service, members


def test_register_preserves_rank_order(stack):
    service, _ = stack
    service.register("g", "a")
    service.register("g", "b")
    service.register("g", "c")
    view = service.view_of("g")
    assert view.members == ("a", "b", "c")
    assert view.view_id == 3


def test_register_is_idempotent(stack):
    service, _ = stack
    service.register("g", "a")
    v1 = service.register("g", "a")
    assert v1.members == ("a",)
    assert v1.view_id == 1


def test_view_of_unknown_group_is_empty(stack):
    service, _ = stack
    assert len(service.view_of("nope")) == 0


def test_join_message_installs_view_at_members(sim, stack):
    service, members = stack
    members["a"].join("g")
    members["b"].join("g")
    sim.run(until=1.0)
    assert service.view_of("g").members in (("a", "b"), ("b", "a"))
    assert members["a"].view_of("g") == service.view_of("g")
    assert members["b"].view_of("g") == service.view_of("g")


def test_leave_removes_member(sim, stack):
    service, members = stack
    members["a"].join("g")
    members["b"].join("g")
    sim.run(until=1.0)
    members["a"].leave("g")
    sim.run(until=2.0)
    assert service.view_of("g").members == ("b",)


def test_watcher_receives_views_without_membership(sim, stack):
    service, members = stack
    service.watch("g", "c")
    members["a"].join("g")
    sim.run(until=1.0)
    assert members["c"].view_of("g").members == ("a",)
    assert "c" not in service.view_of("g")


def test_silent_member_is_evicted(sim, network, stack):
    service, members = stack
    for name in ("a", "b"):
        members[name].join("g")
    sim.run(until=1.0)
    network.crash("a")
    sim.run(until=4.0)
    assert service.view_of("g").members == ("b",)
    # Survivors learn the new view.
    assert members["b"].view_of("g").members == ("b",)


def test_eviction_promotes_next_rank_to_leader(sim, network, stack):
    service, members = stack
    service.register("g", "a")
    service.register("g", "b")
    service.register("g", "c")
    for member in members.values():
        member.assume_membership("g")
        member.adopt_view(service.view_of("g"))
    sim.run(until=1.0)
    network.crash("a")
    sim.run(until=4.0)
    assert service.view_of("g").leader == "b"
    assert members["b"].view_of("g").leader == "b"


def test_observer_callback_sees_installs(stack, recorder):
    service, _ = stack
    service.observe(recorder)
    service.register("g", "a")
    assert len(recorder) == 1
    assert recorder.last.members == ("a",)


def test_member_in_multiple_groups(sim, stack):
    service, members = stack
    members["a"].join("g1")
    members["a"].join("g2")
    sim.run(until=1.0)
    assert "a" in service.view_of("g1")
    assert "a" in service.view_of("g2")
    assert set(service.groups()) == {"g1", "g2"}


def test_heartbeats_keep_member_alive(sim, stack):
    service, members = stack
    members["a"].join("g")
    sim.run(until=10.0)  # many suspect windows; heartbeats keep it in
    assert "a" in service.view_of("g")


def test_stale_view_not_adopted(stack):
    _, members = stack
    member = members["a"]
    member.adopt_view(View("g", 5, ("a", "b")))
    member.adopt_view(View("g", 3, ("a",)))  # stale: ignored
    assert member.view_of("g").view_id == 5


# ---------------------------------------------------------------------------
# Membership-service outage amnesty
# ---------------------------------------------------------------------------
@pytest.fixture
def traced_stack(sim, network, trace):
    service = MembershipService(trace=trace)
    network.attach(service)
    members = {}
    for name in ("a", "b", "c"):
        member = Member(name)
        network.attach(member)
        members[name] = member
    return service, members


def test_service_outage_does_not_mass_evict(sim, network, trace, traced_stack):
    """While the membership service itself is down it hears no heartbeats;
    its first sweep back up must grant amnesty, not evict everyone."""
    service, members = traced_stack
    for name in ("a", "b"):
        members[name].join("g")
    sim.run(until=1.0)
    network.crash(service.name)
    # Stay down well past the suspect timeout: every member's last
    # heartbeat is now stale from the service's point of view.
    sim.run(until=4.0)
    network.recover(service.name)
    sim.run(until=4.3)  # one sweep: amnesty, no evictions

    assert set(service.view_of("g").members) == {"a", "b"}
    amnesty = [r for r in trace.filter("membership.amnesty", service.name)]
    assert len(amnesty) == 1
    assert set(amnesty[0].detail["members"]) == {"a", "b"}


def test_amnesty_does_not_resurrect_dead_members(sim, network, traced_stack):
    """Amnesty only resets the clock; a member that stays silent after the
    outage is still evicted one suspect window later."""
    service, members = traced_stack
    for name in ("a", "b"):
        members[name].join("g")
    sim.run(until=1.0)
    network.crash(service.name)
    network.crash("b")  # dies during the outage
    sim.run(until=4.0)
    network.recover(service.name)
    sim.run(until=4.3)
    assert set(service.view_of("g").members) == {"a", "b"}  # amnesty for all
    sim.run(until=6.0)  # b never heartbeats again
    assert set(service.view_of("g").members) == {"a"}


def test_no_amnesty_without_outage(sim, network, trace, traced_stack):
    service, members = traced_stack
    members["a"].join("g")
    sim.run(until=5.0)
    assert not list(trace.filter("membership.amnesty"))
