"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.net.latency import FixedLatency
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.tracing import Trace


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def rng() -> RngRegistry:
    return RngRegistry(12345)


@pytest.fixture
def trace() -> Trace:
    return Trace(enabled=True)


@pytest.fixture
def network(sim: Simulator, rng: RngRegistry, trace: Trace) -> Network:
    """A deterministic network: every link exactly 1 ms one-way."""
    return Network(sim, rng, FixedLatency(0.001), trace=trace)


class Recorder:
    """Collects callback invocations for assertions."""

    def __init__(self) -> None:
        self.calls: list = []

    def __call__(self, *args) -> None:
        self.calls.append(args[0] if len(args) == 1 else args)

    def __len__(self) -> int:
        return len(self.calls)

    @property
    def last(self):
        return self.calls[-1]


@pytest.fixture
def recorder() -> Recorder:
    return Recorder()
