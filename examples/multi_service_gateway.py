"""Figure 2 in action: one client, two services, two handlers.

The paper's gateway architecture lets a single client talk to a
document-editing service with *sequential* ordering (a TOTAL handler) and
a banking service with *FIFO* ordering through the appropriate timed
consistency handler for each.  This example builds both services on one
simulated LAN, connects a client gateway to both, and interleaves
operations.

Run: ``python examples/multi_service_gateway.py``
"""

from repro.apps.kvstore import KVStore
from repro.core.gateway import Gateway
from repro.core.qos import OrderingGuarantee, QoSSpec
from repro.core.service import ReplicatedService, ServiceConfig
from repro.groups.membership import MembershipConfig, MembershipService
from repro.net.latency import LanLatency
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.sim.process import Process, Timeout
from repro.sim.rng import RngRegistry


def main() -> None:
    sim = Simulator()
    rng = RngRegistry(21)
    network = Network(sim, rng, LanLatency())
    membership = MembershipService(config=MembershipConfig())
    network.attach(membership)

    # Service A: documents, sequential ordering (sequencer + GSN).
    docs = ReplicatedService(
        sim, network, membership, rng,
        ServiceConfig(
            name="documents",
            ordering=OrderingGuarantee.SEQUENTIAL,
            num_primaries=3,
            num_secondaries=4,
            lazy_update_interval=1.5,
        ),
        app_factory=KVStore,
    )
    # Service B: accounts, FIFO ordering (per-client order, no sequencer).
    bank = ReplicatedService(
        sim, network, membership, rng,
        ServiceConfig(
            name="accounts",
            ordering=OrderingGuarantee.FIFO,
            num_primaries=3,
            num_secondaries=2,
            lazy_update_interval=1.0,
        ),
        app_factory=KVStore,
    )

    gateway = Gateway("teller")
    docs_handler = gateway.connect(
        docs, read_only_methods=set(KVStore.READ_ONLY_METHODS)
    )
    bank_handler = gateway.connect(
        bank, read_only_methods=set(KVStore.READ_ONLY_METHODS)
    )

    doc_qos = QoSSpec(staleness_threshold=3, deadline=0.400, min_probability=0.8)
    bank_qos = QoSSpec(staleness_threshold=0, deadline=0.300, min_probability=0.9)

    def session():
        # Deposits must apply in the order this client issued them (FIFO).
        for i, amount in enumerate([100, 250, -80, 40]):
            yield bank_handler.call("put", (f"txn-{i}", amount))
            yield Timeout(0.2)
        # Document edits are globally sequenced.
        for i, text in enumerate(["draft", "review", "final"]):
            yield docs_handler.call("put", (f"section-{i}", text))
            yield Timeout(0.2)

        balance = yield bank_handler.call("dump", (), bank_qos)
        print(
            f"[{sim.now:5.2f}s] account txns via FIFO handler: "
            f"{balance.value} (from {balance.first_replica})"
        )
        doc = yield docs_handler.call("dump", (), doc_qos)
        print(
            f"[{sim.now:5.2f}s] document via sequential handler: "
            f"{doc.value} (version GSN {doc.gsn}, from {doc.first_replica})"
        )

    Process(sim, session())
    sim.run(until=30.0)

    print()
    print(f"gateway services: {gateway.services()}")
    print(
        f"documents: sequencer={docs.sequencer_name}, "
        f"primary view={list(docs.primaries[0].primary_view.members)}"
    )
    print(
        f"accounts (FIFO): no sequencer, "
        f"primary view={list(bank.primaries[0].primary_view.members)}"
    )
    seq_commits = {p.name: p.my_csn for p in docs.primaries}
    fifo_commits = {p.name: p.commit_count for p in bank.primaries}
    print(f"sequential commits per primary: {seq_commits}")
    print(f"fifo commits per primary:       {fifo_commits}")


if __name__ == "__main__":
    main()
