"""The §2 document-sharing scenario.

"Multiple readers and writers concurrently access a document that is
updated in sequential mode.  Using the above model, a client of such an
application can specify that he wishes to obtain a copy of the document
that is not more than 5 versions old within 2.0 seconds with a probability
of at least 0.7."

Two writers append/replace paragraphs; three readers poll with different
QoS points — a proofreader who needs the freshest copy fast, the §2 casual
reader (≤5 versions, 2 s, 0.7), and an archiver who tolerates anything.
The run prints how the middleware picks different replica sets for each.

Run: ``python examples/document_sharing.py``
"""

from repro.apps.document import SharedDocument
from repro.core.qos import QoSSpec
from repro.core.service import ServiceConfig, build_testbed
from repro.sim.process import Process, Timeout

PARAGRAPHS = [
    "Replication enables concurrent service of many clients.",
    "Strong consistency costs latency; weak consistency costs certainty.",
    "Clients should be able to choose their point on that spectrum.",
    "A QoS model expresses staleness and deadline requirements.",
    "Lazy propagation bounds the divergence of the secondary group.",
    "Probabilistic models predict which replicas can meet a deadline.",
]


def main() -> None:
    config = ServiceConfig(
        name="docs",
        num_primaries=3,
        num_secondaries=5,
        lazy_update_interval=1.5,
    )
    testbed = build_testbed(config, seed=7, app_factory=SharedDocument)
    service = testbed.service
    sim = testbed.sim

    read_only = set(SharedDocument.READ_ONLY_METHODS)
    writer1 = service.create_client("writer-1", read_only_methods=read_only)
    writer2 = service.create_client("writer-2", read_only_methods=read_only)

    readers = {
        # name: (QoS, read period)
        "proofreader": (QoSSpec(0, 0.150, 0.9), 0.9),
        "casual-reader": (QoSSpec(5, 2.0, 0.7), 1.3),  # the §2 example
        "archiver": (QoSSpec(50, 5.0, 0.5), 2.1),
    }
    handlers = {
        name: service.create_client(name, read_only_methods=read_only)
        for name in readers
    }

    def writing(writer, offset):
        yield Timeout(offset)
        for i, text in enumerate(PARAGRAPHS):
            outcome = yield writer.call("append_paragraph", (f"{text} [{writer.name}]",))
            print(
                f"[{sim.now:6.2f}s] {writer.name} appended paragraph "
                f"{outcome.value} (GSN {outcome.gsn})"
            )
            yield Timeout(1.7)
        yield writer.call(
            "replace_paragraph", (0, f"(revised) {PARAGRAPHS[0]}")
        )
        print(f"[{sim.now:6.2f}s] {writer.name} revised paragraph 0")

    def reading(name, qos, period):
        handler = handlers[name]
        for _ in range(10):
            yield Timeout(period)
            outcome = yield handler.call("read_document", (), qos)
            if outcome.value is None:
                print(f"[{sim.now:6.2f}s] {name}: no response (all selected crashed?)")
                continue
            edits, paragraphs = outcome.value
            marker = "LATE" if outcome.timing_failure else "ok"
            print(
                f"[{sim.now:6.2f}s] {name}: version {edits} "
                f"({len(paragraphs)} paragraphs) from {outcome.first_replica} "
                f"in {outcome.response_time * 1000:.0f} ms "
                f"[{outcome.replicas_selected} selected, {marker}]"
            )

    Process(sim, writing(writer1, 0.0))
    Process(sim, writing(writer2, 0.8))
    for name, (qos, period) in readers.items():
        Process(sim, reading(name, qos, period))
    sim.run(until=40.0)

    print()
    for name, handler in handlers.items():
        print(
            f"{name:14s} avg replicas selected: {handler.average_selected():.2f}, "
            f"timing failures: {handler.timing_failures}/{handler.reads_resolved}"
        )
    publisher = service.primaries[0]
    print(
        f"\ndocument version on lazy publisher ({publisher.name}): "
        f"{publisher.app.edits} edits, CSN {publisher.my_csn}"
    )


if __name__ == "__main__":
    main()
