"""Gray-failure walk-through: a one-way partition, detector on vs. off.

A *gray* failure is a replica that is alive by every crash detector's
standard but useless to a particular client.  The sharpest case is an
asymmetric cut: the direction client -> replica silently drops requests
while replica -> client still delivers, so the replica's timestamp
broadcasts keep arriving fresh and Algorithm 1 keeps predicting it will
meet the deadline.  The paper's framework assumes replicas are either
crashed or fine; this demo shows what the φ-accrual detection layer
(DESIGN.md §14) adds when that assumption breaks.

The same workload runs twice against the same fault: the directed link
``app -> svc-s1`` is cut from t=5 s to t=12 s (``symmetric=False``),
then healed.  The baseline client keeps selecting the unreachable
replica on the strength of its broadcasts and burns a retry checkpoint
on every such read; the detector client notices the missing reply
arrivals within a few expected inter-arrival times (φ crosses
``phi_suspect``), ejects the replica from Algorithm-1 candidacy, probes
it on a rate limit while suspected, and re-admits it once a probe
lands after the heal.

Run: ``python examples/gray_failure_demo.py``
"""

from repro.core.client import RetryPolicy
from repro.core.detector import DetectorConfig
from repro.core.qos import QoSSpec
from repro.core.service import ServiceConfig, build_testbed
from repro.experiments.overload import percentile
from repro.sim.process import Process, Timeout
from repro.sim.rng import Normal

QOS = QoSSpec(staleness_threshold=10, deadline=0.25, min_probability=0.9)

DETECTOR = DetectorConfig(
    window_size=48,
    phi_suspect=8.0,
    phi_hedge=4.0,
    min_samples=6,
    probe_interval=0.3,
)


def run_once(detector):
    config = ServiceConfig(
        name="svc",
        num_primaries=2,
        num_secondaries=2,
        lazy_update_interval=0.3,
        read_service_time=Normal(0.020, 0.005, floor=0.002),
        detector=detector,
    )
    testbed = build_testbed(config, seed=11)
    sim, service, network = testbed.sim, testbed.service, testbed.network
    client = service.create_client(
        "app",
        read_only_methods={"get"},
        retry_policy=RetryPolicy(max_retries=1, hedge=True),
    )

    victim = service.secondaries[0].name
    sim.schedule_at(5.0, network.partition, ["app"], [victim], "gray-cut", False)
    sim.schedule_at(12.0, network.heal_partition, "gray-cut")

    latencies = []

    def workload():
        while sim.now < 18.0:
            yield client.call("increment")
            outcome = yield client.call("get", (), QOS)
            latencies.append(outcome.response_time)
            yield Timeout(0.05)

    Process(sim, workload())
    sim.run(until=20.0)
    return victim, client, latencies


def main() -> None:
    p99 = {}
    for label, cfg in (("baseline", None), ("detector", DETECTOR)):
        victim, client, latencies = run_once(cfg)
        p99[label] = percentile(latencies, 0.99)
        print(f"--- {label}: app->{victim} cut one-way 5 s..12 s ---")
        if client.detector is not None:
            for t in client.detector.transitions:
                edge = "suspect" if t.suspected else "re-admit"
                print(f"  [{t.time:6.2f}s] {edge:8s} {t.peer}  (phi={t.phi:.1f})")
            recovery = client.recovery_stats()
            print(
                f"  ejections={recovery['detector_ejections']} "
                f"probes={recovery['detector_probes']} "
                f"still_suspected={client.detector.suspected()}"
            )
        print(
            f"  reads={len(latencies)} "
            f"p50={percentile(latencies, 0.50) * 1e3:.1f}ms "
            f"p99={percentile(latencies, 0.99) * 1e3:.1f}ms"
        )

    print(
        f"\nread p99 with the unreachable replica ejected: "
        f"{p99['detector'] * 1e3:.1f}ms vs {p99['baseline'] * 1e3:.1f}ms "
        f"of retry-rescued timeouts without detection"
    )
    print("full campaign (seeded storms, invariants, scoring): repro gray")


if __name__ == "__main__":
    main()
