"""Closed-loop tuning of the lazy update interval.

§3: "The degree of divergence between the states of primary and secondary
replicas can be bounded by choosing an appropriate frequency for the lazy
update propagation."  This example lets the controller choose it: the
service targets P(staleness ≤ 2 versions) ≥ 0.9 at the most stale instant,
and the update load switches between a trickle and a storm.  Watch T_L
stretch when traffic is quiet (saving propagation messages) and snap tight
when the storm hits (holding the consistency target).

Run: ``python examples/adaptive_lazy_interval.py``
"""

from repro.core.service import ServiceConfig, build_testbed
from repro.core.tuning import StalenessTarget
from repro.workloads.generators import OpenLoopUpdater

PHASES = [
    ("trickle", 0.2, 40.0),
    ("storm", 5.0, 40.0),
    ("trickle again", 0.3, 40.0),
]


def main() -> None:
    target = StalenessTarget(threshold=2, probability=0.9)
    config = ServiceConfig(
        name="svc",
        num_primaries=2,
        num_secondaries=3,
        lazy_update_interval=2.0,  # just the starting point
        adaptive_lazy_target=target,
    )
    testbed = build_testbed(config, seed=17)
    sim = testbed.sim
    service = testbed.service
    feed = service.create_client("feed", read_only_methods={"get"})

    start = 0.0
    for label, rate, length in PHASES:
        sim.schedule_at(
            start,
            lambda r=rate, d=length: OpenLoopUpdater(
                sim, feed, testbed.rng, rate=r, duration=d
            ),
        )
        sim.schedule_at(start, print,
                        f"[{start:5.0f}s] >>> phase: {label} ({rate:g} updates/s)")
        start += length

    publisher = service.primaries[0]
    secondary = service.secondaries[0]
    hits = [0, 0]

    def report() -> None:
        staleness = max(0, publisher.my_csn - secondary.my_csn)
        hits[0] += 1 if staleness <= target.threshold else 0
        hits[1] += 1
        print(
            f"[{sim.now:5.0f}s] T_L={publisher.lazy_update_interval:6.2f}s  "
            f"rate~{publisher.lazy_controller.estimated_rate:5.2f}/s  "
            f"staleness={staleness:2d}  "
            f"lazy msgs so far={publisher.lazy_updates_sent}"
        )
        sim.schedule(5.0, report)

    sim.schedule(5.0, report)
    sim.run(until=start + 5.0)

    print()
    print(f"staleness target (<= {target.threshold} w.p. {target.probability}) "
          f"held in {hits[0]}/{hits[1]} samples "
          f"({hits[0] / hits[1]:.2%})")
    print(f"total lazy propagations: {publisher.lazy_updates_sent}")


if __name__ == "__main__":
    main()
