"""SLOs over a live timeline: burn alerts that lead the degradation ladder.

Runs the same seeded overload storm twice — once for real, once with the
storm bursts suppressed — records a 100 ms-tick timeline of every metric,
and evaluates a timeliness SLO on the bronze ("bulk") traffic class:

* in the **storm**, the fast-burn window pages seconds before the
  degradation ladder reaches CRITICAL (telemetry leads the mechanism);
* in the **calm** run, the same SLO stays green and no alert fires;
* a deferring §6 cell (tight deadline, loose probability) then shows the
  staleness **attribution** table: observed waits split into
  lazy-publisher lag vs. commit-queue wait vs. network delay.

Run: ``python examples/slo_dashboard_demo.py``
"""

from repro.core.overload import CRITICAL, DegradationConfig
from repro.experiments.dashboard import render_attribution, render_slo_table
from repro.experiments.harness import run_figure4_cell
from repro.experiments.overload import run_overload_cell
from repro.obs.slo import SloEngine, SloSpec
from repro.obs.timeseries import Timeline

SEED = 202
DURATION = 8.0
# A cautious ladder (1 s step cooldown): automatic degradation is the
# *second* line of defense, so the page has something to lead.
LADDER = DegradationConfig(step_cooldown=1.0)

SLO = SloSpec(
    name="timeliness:bulk",
    objective=0.99,  # 1% error budget on deadline hits
    client="bulk",
    fast_window=1.0,  # paging window (seconds)
    slow_window=6.0,  # ticketing window
)


def first_critical_time(timeline: Timeline) -> float | None:
    series = 'client_degradation_level{client="bulk"}'
    if series not in timeline.series:
        return None
    times = timeline.times()
    for tick, level in enumerate(timeline.values(series)):
        if level is not None and level >= CRITICAL:
            return times[tick]
    return None


def main() -> None:
    engine = SloEngine([SLO])
    for label, calm in (("storm", False), ("calm", True)):
        cell = run_overload_cell(
            SEED, "shed", duration=DURATION, calm=calm,
            degradation_config=LADDER,
        )
        timeline = Timeline.from_dict(cell.timeline)
        reports = engine.evaluate(timeline)
        report = reports[SLO.name]

        print(f"=== {label} (seed {SEED}, {DURATION:g}s of load) ===")
        print(render_slo_table(reports))
        page = report.first_alert("page")
        critical = first_critical_time(timeline)
        if page is not None:
            lead = (
                f"{critical - page.time:.1f}s before CRITICAL"
                if critical is not None
                else "CRITICAL never reached"
            )
            print(
                f"fast-burn page at t={page.time:.1f}s "
                f"(burn {page.burn:.0f}x budget) — {lead}"
            )
        else:
            print("no burn alert fired")
        print()

    # Overloaded reads are shed, not deferred, so the storm's staleness
    # waits are all zero — attribution needs a cell that actually defers:
    # a tight deadline with a loose probability target and a slow lazy
    # publisher makes Algorithm 1 wait on secondaries.
    print("=== staleness attribution (deferring §6 cell) ===")
    cell = run_figure4_cell(
        deadline=0.080,
        min_probability=0.5,
        lazy_update_interval=4.0,
        total_requests=200,
        seed=3,
        timeseries=5.0,
    )
    print(render_attribution(Timeline.from_dict(cell.timeline)))


if __name__ == "__main__":
    main()
