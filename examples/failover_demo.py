"""Failover walk-through: crash the sequencer and the lazy publisher.

§4.1 notes the protocol "ensures that the consistency guarantees are
preserved even when replica failures occur" by handling the failures of
the sequencer and the lazy publisher (details omitted in the paper; see
DESIGN.md for our completion).  This example crashes both, in sequence,
while a client keeps issuing updates and reads, and prints the role
transitions as the membership layer detects the crashes.

Run: ``python examples/failover_demo.py``
"""

from repro.core.qos import QoSSpec
from repro.core.service import ServiceConfig, build_testbed
from repro.sim.process import Process, Timeout


def main() -> None:
    config = ServiceConfig(
        name="svc",
        num_primaries=3,
        num_secondaries=4,
        lazy_update_interval=1.0,
    )
    testbed = build_testbed(config, seed=3)
    service = testbed.service
    sim = testbed.sim
    client = service.create_client("client", read_only_methods={"get"})
    qos = QoSSpec(staleness_threshold=1, deadline=0.250, min_probability=0.8)

    def roles() -> str:
        reference = next(
            p for p in service.primaries if testbed.network.is_up(p.name)
        )
        return (
            f"sequencer={reference.sequencer_name} "
            f"publisher={reference.lazy_publisher_name} "
            f"primary_view={list(reference.primary_view.members)}"
        )

    def workload():
        failures = 0
        for i in range(60):
            u = yield client.call("increment")
            yield Timeout(0.25)
            r = yield client.call("get", (), qos)
            if r.timing_failure:
                failures += 1
            if i % 10 == 0:
                value = r.value if r.value is not None else "?"
                print(
                    f"[{sim.now:6.2f}s] step {i}: counter={value} "
                    f"(GSN {r.gsn}); {roles()}"
                )
            yield Timeout(0.25)
        print(f"\ntiming failures across the whole run: {failures}/60")

    # Crash the original sequencer at t=8 s and the (by then possibly
    # re-designated) lazy publisher at t=16 s.
    sequencer = service.sequencer_name
    publisher = service.primaries[0].name
    sim.schedule_at(8.0, testbed.network.crash, sequencer)
    sim.schedule_at(8.0, print, f"[ 8.00s] *** crashing sequencer {sequencer} ***")
    sim.schedule_at(16.0, testbed.network.crash, publisher)
    sim.schedule_at(16.0, print, f"[16.00s] *** crashing publisher {publisher} ***")

    Process(sim, workload())
    sim.run(until=120.0)

    print("\nfinal state:")
    for handler in service.primaries + service.secondaries:
        alive = "up  " if testbed.network.is_up(handler.name) else "DOWN"
        print(
            f"  {alive} {handler.name}: CSN={handler.my_csn} "
            f"value={getattr(handler.app, 'value', '?')}"
        )


if __name__ == "__main__":
    main()
