"""Admission control and priority/cost tiers (the Conclusions' extensions).

The paper closes by sketching two extensions: admitting clients only when
the replica pool can actually honour their QoS, and letting clients state
a *priority* or a *budget* instead of a raw probability.  Both are
implemented in this reproduction; this example exercises them together:

1. a service warms up with one monitoring client, so the admission
   controller has live response-time distributions to judge against;
2. a sequence of prospective clients — priority tiers mapped through
   :class:`PriorityMapper`, budgets mapped through :class:`CostMapper` —
   ask to join with various deadlines and request rates;
3. the controller admits the feasible ones and rejects the rest with an
   explanation (infeasible QoS vs. capacity exhaustion).

Run: ``python examples/admission_and_priority.py``
"""

from repro.core.admission import (
    AdmissionConfig,
    AdmissionController,
    ClientProfile,
    evaluate_against_client,
)
from repro.core.priority import CostMapper, PriorityMapper
from repro.core.qos import QoSSpec
from repro.core.service import ServiceConfig, build_testbed
from repro.sim.process import Process, Timeout


def main() -> None:
    config = ServiceConfig(
        name="svc",
        num_primaries=2,
        num_secondaries=4,
        lazy_update_interval=2.0,
    )
    testbed = build_testbed(config, seed=5)
    service = testbed.service
    sim = testbed.sim

    # Phase 1 — warm up the monitoring state.
    monitor = service.create_client("monitor", read_only_methods={"get"})
    warm_qos = QoSSpec(staleness_threshold=10, deadline=0.5, min_probability=0.5)

    def warmup():
        for _ in range(30):
            yield monitor.call("increment")
            yield Timeout(0.2)
            yield monitor.call("get", (), warm_qos)
            yield Timeout(0.2)

    Process(sim, warmup())
    sim.run(until=30.0)
    print(f"[warmup done at t={sim.now:.1f}s] "
          f"{monitor.reads_resolved} reads observed\n")

    # Phase 2 — prospective clients arrive with priorities and budgets.
    priorities = PriorityMapper()
    costs = CostMapper(base_probability=0.5, failure_discount=0.6,
                       max_probability=0.98)
    controller = AdmissionController(
        AdmissionConfig(max_utilization=0.6, mean_read_service_time=0.1)
    )

    applicants = [
        # (name, qos, read rate/s) — tiers via the priority mapper:
        ("dashboard-gold", priorities.qos_for("gold", 2, 0.250), 1.0),
        ("batch-bronze", priorities.qos_for("bronze", 20, 1.0), 0.5),
        # an impossible ask: platinum guarantee at a 30 ms deadline
        ("trader-platinum", priorities.qos_for("platinum", 0, 0.030), 1.0),
        # budget-based tiers via the cost mapper:
        ("budget-3-units", costs.qos_for(3.0, 4, 0.300), 1.0),
        ("budget-0-units", costs.qos_for(0.0, 4, 0.300), 1.0),
        # capacity exhaustion: a very hungry client
        ("firehose", priorities.qos_for("silver", 10, 0.400), 25.0),
    ]

    primary_names = [p.name for p in service.primaries]
    secondary_names = [s.name for s in service.secondaries]

    for name, qos, rate in applicants:
        profile = ClientProfile(name, qos, read_rate=rate)
        decision = evaluate_against_client(
            controller, profile, monitor.predictor,
            primary_names, secondary_names, now=sim.now,
        )
        verdict = "ADMIT " if decision.admitted else "REJECT"
        print(f"{verdict} {name:18s} "
              f"[{qos.describe()}] rate={rate:g}/s")
        print(f"        achievable P_K={decision.achievable_probability:.3f}, "
              f"projected utilization={decision.projected_utilization:.2f}")
        print(f"        {decision.reason}")
        if decision.admitted:
            controller.admit(profile, decision)
            service.create_client(name, read_only_methods={"get"},
                                  default_qos=qos)
        else:
            controller.reject(profile, decision)
        print()

    print(f"admitted: {sorted(controller.admitted)}")
    print(f"rejected: {[name for name, _ in controller.rejections]}")


if __name__ == "__main__":
    main()
