"""Operating a deployment: the post-run analysis toolkit.

Runs a mixed workload against the paper's testbed and then prints the
reports an operator would want: per-replica load and utilization, wire
traffic by message type, client-observable consistency/timeliness, and
the selection-size histogram (the client-side view of Figure 4a).

Run: ``python examples/operations_report.py``
"""

from repro.core.qos import QoSSpec
from repro.core.service import ServiceConfig, build_testbed
from repro.experiments.analysis import (
    client_consistency_report,
    message_profile,
    replica_load_report,
    selection_profile,
)
from repro.experiments.report import format_table
from repro.sim.process import Process, Timeout
from repro.sim.tracing import Trace


def main() -> None:
    trace = Trace(enabled=True)
    config = ServiceConfig(
        name="svc",
        num_primaries=3,
        num_secondaries=5,
        lazy_update_interval=2.0,
    )
    testbed = build_testbed(config, seed=23, trace=trace)
    service = testbed.service
    sim = testbed.sim

    qos = QoSSpec(staleness_threshold=3, deadline=0.250, min_probability=0.9)
    clients = []
    outcomes = []
    for i in range(3):
        client = service.create_client(f"c{i}", read_only_methods={"get"})
        clients.append(client)

        def run(client=client):
            for _ in range(40):
                yield client.call("increment")
                yield Timeout(0.15)
                outcome = yield client.call("get", (), qos)
                outcomes.append(outcome)
                yield Timeout(0.15)

        Process(sim, run())
    sim.run(until=120.0)

    # ------------------------------------------------------------------
    load = replica_load_report(service, elapsed=sim.now)
    print(format_table(
        ["replica", "role", "reads", "commits", "deferred", "utilization"],
        load.rows(),
        title="Replica load",
    ))
    print(f"read-load imbalance (max/mean): {load.read_imbalance():.3f}")
    print()

    profile = message_profile(trace)
    print(format_table(
        ["payload type", "delivered"],
        profile.rows(),
        title="Wire traffic",
    ))
    print(f"total delivered: {profile.total_delivered()}, "
          f"dropped: {profile.total_dropped()}")
    print()

    consistency = client_consistency_report(
        outcomes, staleness_thresholds=[qos.staleness_threshold]
    )
    print("Client-observable consistency and timeliness")
    print(f"  reads:                    {consistency.reads}")
    print(f"  timing failures:          {consistency.timing_failure_fraction:.3f}")
    print(f"  deferred reads:           {consistency.deferred_fraction:.3f}")
    print(f"  response time p50/p95/p99:"
          f" {consistency.response_time_p50_ms:.0f} /"
          f" {consistency.response_time_p95_ms:.0f} /"
          f" {consistency.response_time_p99_ms:.0f} ms")
    print(f"  observed staleness max:   {consistency.observed_staleness_max} versions")
    print(f"  staleness-bound breaches: {consistency.staleness_bound_violations}")
    print()

    print(format_table(
        ["replicas selected", "reads"],
        selection_profile(clients[0]).rows(),
        title=f"Selection histogram ({clients[0].name})",
    ))


if __name__ == "__main__":
    main()
