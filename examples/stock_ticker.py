"""Stock ticker: bounded-staleness quotes under a fast update feed.

§1 motivates the framework with "real-time database applications, such as
online stock-trading": a trader wants a quote within a tight deadline and
can tolerate it being a few ticks old — but not unboundedly stale.

A Poisson feed of trade ticks (the open-loop updater) drives the primary
group; two traders read quotes with different staleness budgets, and a
risk checker insists on the freshest price.  The example also crashes a
secondary replica mid-run to show the selection adapting around it.

Run: ``python examples/stock_ticker.py``
"""

from repro.apps.stock import StockTicker
from repro.core.qos import QoSSpec
from repro.core.service import ServiceConfig, build_testbed
from repro.sim.process import Process, Timeout
from repro.workloads.generators import OpenLoopUpdater

SYMBOLS = ["AQUA", "CORBA", "LAN", "QOS"]


def main() -> None:
    config = ServiceConfig(
        name="ticker",
        num_primaries=3,
        num_secondaries=6,
        lazy_update_interval=1.0,
    )
    testbed = build_testbed(config, seed=11, app_factory=StockTicker)
    service = testbed.service
    sim = testbed.sim
    read_only = set(StockTicker.READ_ONLY_METHODS)

    # The exchange feed: Poisson ticks at ~4/s for 30 s.
    feed = service.create_client("exchange-feed", read_only_methods=read_only)
    prices = {s: 100.0 for s in SYMBOLS}

    def tick_args(i: int) -> tuple:
        symbol = SYMBOLS[i % len(SYMBOLS)]
        drift = testbed.rng.stream("prices").gauss(0.0, 0.5)
        prices[symbol] = max(1.0, prices[symbol] + drift)
        return (symbol, round(prices[symbol], 2))

    updater = OpenLoopUpdater(
        sim, feed, testbed.rng, rate=4.0, duration=30.0,
        method="tick", args=tick_args,
    )

    day_trader = service.create_client("day-trader", read_only_methods=read_only)
    swing_trader = service.create_client("swing-trader", read_only_methods=read_only)
    risk_desk = service.create_client("risk-desk", read_only_methods=read_only)

    profiles = [
        # (client, qos, period) — staleness measured in ticks
        (day_trader, QoSSpec(3, 0.120, 0.9), 0.5),
        (swing_trader, QoSSpec(20, 0.500, 0.7), 1.1),
        (risk_desk, QoSSpec(0, 0.300, 0.9), 1.7),
    ]

    def trading(handler, qos, period):
        for i in range(20):
            yield Timeout(period)
            symbol = SYMBOLS[i % len(SYMBOLS)]
            outcome = yield handler.call("quote", (symbol,), qos)
            if outcome.response_time is None:
                continue
            marker = "LATE" if outcome.timing_failure else "ok"
            defer = " deferred" if outcome.deferred else ""
            print(
                f"[{sim.now:6.2f}s] {handler.name:12s} {symbol}: "
                f"{outcome.value} @tick {outcome.gsn} "
                f"in {outcome.response_time * 1000:.0f} ms "
                f"[{marker}{defer}]"
            )

    for handler, qos, period in profiles:
        Process(sim, trading(handler, qos, period))

    # Crash one secondary at t=12 s; the ert rotation and the bootstrap
    # CDFs steer subsequent reads to the survivors.
    victim = service.secondaries[0].name
    sim.schedule_at(12.0, testbed.network.crash, victim)
    sim.schedule_at(12.0, print, f"[12.00s] *** crashing {victim} ***")

    sim.run(until=45.0)

    print()
    print(f"feed issued {updater.issued} ticks")
    for handler, qos, _ in profiles:
        print(
            f"{handler.name:12s} staleness<= {qos.staleness_threshold:2d} ticks: "
            f"{handler.timing_failures}/{handler.reads_resolved} timing failures, "
            f"avg {handler.average_selected():.2f} replicas/read, "
            f"{handler.deferred_replies} deferred"
        )


if __name__ == "__main__":
    main()
