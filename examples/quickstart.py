"""Quickstart: build a replicated service, tune QoS, read with bounds.

Builds the two-level replica organization of the paper (a sequencer, a
primary group, and a larger lazily-updated secondary group), attaches one
client, and issues a handful of updates and QoS-tagged reads.  Everything
runs inside the deterministic simulator — no processes, no sockets.

Run: ``python examples/quickstart.py``
"""

from repro.core.qos import QoSSpec
from repro.core.service import ServiceConfig, build_testbed
from repro.sim.process import Process, Timeout


def main() -> None:
    # 4 serving primaries + 6 secondaries + the sequencer, lazy updates
    # every 2 seconds — the paper's §6 testbed.
    config = ServiceConfig(
        name="svc",
        num_primaries=4,
        num_secondaries=6,
        lazy_update_interval=2.0,
    )
    testbed = build_testbed(config, seed=42)
    service = testbed.service

    # The client declares its read-only methods by name (§2's request
    # model); everything else is treated as an update.
    client = service.create_client("alice", read_only_methods={"get"})

    # "no more than 2 versions stale, within 150 ms, with probability 0.9"
    qos = QoSSpec(staleness_threshold=2, deadline=0.150, min_probability=0.9)

    def workload():
        for i in range(20):
            outcome = yield client.call("increment")
            print(
                f"[{testbed.sim.now:7.3f}s] update #{i}: value={outcome.value} "
                f"committed at GSN {outcome.gsn} by {outcome.first_replica}"
            )
            yield Timeout(0.4)
            outcome = yield client.call("get", (), qos)
            marker = "TIMING FAILURE" if outcome.timing_failure else "ok"
            print(
                f"[{testbed.sim.now:7.3f}s] read  #{i}: value={outcome.value} "
                f"from {outcome.first_replica} "
                f"in {outcome.response_time * 1000:.0f} ms "
                f"({outcome.replicas_selected} replicas selected, {marker})"
            )
            yield Timeout(0.4)

    Process(testbed.sim, workload())
    testbed.sim.run(until=60.0)

    print()
    print(f"reads resolved:        {client.reads_resolved}")
    print(f"timing failures:       {client.timing_failures}")
    print(f"avg replicas selected: {client.average_selected():.2f}")
    print(f"observed timely freq:  {client.timely_fraction:.3f}")


if __name__ == "__main__":
    main()
