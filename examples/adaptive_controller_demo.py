"""The closed-loop SLA guardian: relax into calm, roll back at a surge.

DESIGN.md §16: a `ConsistencyController` reads the SLO engine's signals
every control epoch and walks one bounded knob ladder — lazy interval
T_L, per-class staleness thresholds, per-class timeliness demands —
relaxing consistency while the error budget is idle and rolling back
the moment a write surge starts burning it.  This demo runs the
login/cart/browse mix through calm → surge → calm and prints the
controller's decision trail.  Watch for four beats: an early probe to
index 1 is rolled back while telemetry is still settling (the budget
gate then defers re-exploration); the controller re-relaxes and
*confirms* index 1 once the calm phase proves it; the write surge
triggers a rollback within ~a second of onset (the staleness-guard SLO
is the leading indicator — deadline misses alone would arrive too
late); and after the surge drains it re-relaxes to the confirmed index
without having to re-earn exploration budget.

Run: ``python examples/adaptive_controller_demo.py``
"""

from repro.experiments.adaptive import ADAPTIVE_CONFIG
from repro.workloads.scenarios import build_operation_mix_scenario

WARMUP = 2.0
DURATION = 18.0
SURGE = (WARMUP + 10.0, WARMUP + 14.0, 20.0)  # (start, end, rate factor)


def main() -> None:
    scenario = build_operation_mix_scenario(
        seed=7,
        duration=WARMUP + DURATION,
        controller_config=ADAPTIVE_CONFIG,
        num_secondaries=6,
    )
    sim = scenario.sim
    rate = scenario.rate_controller

    start, end, factor = SURGE
    sim.schedule(start, lambda: rate.begin_storm(factor))
    sim.schedule(start, print,
                 f"[{start:5.1f}s] >>> write surge begins ({factor:g}x)")
    sim.schedule(end, rate.end_storm)
    sim.schedule(end, print, f"[{end:5.1f}s] >>> write surge ends")

    sim.run(until=WARMUP + DURATION + 2.0)
    scenario.recorder.flush()

    controller = scenario.controller
    assert controller is not None
    print()
    print("controller decision trail (changes only):")
    previous = None
    for d in controller.decisions:
        shape = (d.state, d.relax_index, bool(d.actions))
        if shape == previous and not d.actions:
            continue
        previous = shape
        acts = f"  {'; '.join(d.actions)}" if d.actions else ""
        print(
            f"[{d.time:5.1f}s] {d.state:<12} index={d.relax_index} "
            f"T_L={d.t_l:.2f}s{acts}"
        )

    print()
    print(
        f"{controller.relaxes} relaxes, {controller.rollbacks} rollbacks; "
        f"final T_L={controller.current_interval():.2f}s"
    )
    signals = scenario.engine.signals(scenario.recorder.timeline())
    for name, s in sorted(signals.items()):
        print(
            f"  {name:<22} compliance={s['compliance']:.4f} "
            f"objective={s['objective']:.2f} "
            f"budget_remaining={s['budget_remaining']:+.2f}"
        )


if __name__ == "__main__":
    main()
