"""A replicated key-value object store.

Update methods: ``put``, ``delete``, ``clear``.  Read-only methods:
``get``, ``keys``, ``size``, ``dump``.  A client should declare the
read-only set with :data:`KVStore.READ_ONLY_METHODS` (§2's request model
— methods not declared read-only are treated as updates).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.state import ReplicatedObject


class KVStore(ReplicatedObject):
    """Dictionary state with a mutation counter for version assertions."""

    READ_ONLY_METHODS = frozenset({"get", "keys", "size", "dump", "mutations"})

    def __init__(self) -> None:
        self._data: dict[str, Any] = {}
        self._mutations = 0

    # -- updates ---------------------------------------------------------
    def put(self, key: str, value: Any) -> Any:
        self._data[key] = value
        self._mutations += 1
        return value

    def delete(self, key: str) -> bool:
        existed = key in self._data
        self._data.pop(key, None)
        self._mutations += 1
        return existed

    def clear(self) -> int:
        count = len(self._data)
        self._data.clear()
        self._mutations += 1
        return count

    # -- read-only -------------------------------------------------------
    def get(self, key: str, default: Any = None) -> Any:
        return self._data.get(key, default)

    def keys(self) -> list[str]:
        return sorted(self._data)

    def size(self) -> int:
        return len(self._data)

    def dump(self) -> dict[str, Any]:
        return dict(self._data)

    def mutations(self) -> int:
        """Number of committed mutations — equals the replica's version."""
        return self._mutations
