"""A stock-ticker board.

§1 motivates bounded staleness with "real-time database applications, such
as online stock-trading and traffic-monitoring applications": a trader
would rather see a quote a few ticks old *now* than the freshest quote too
late, but an unboundedly stale quote is useless.  Tick updates are
sequenced; quote reads carry a staleness threshold in ticks.
"""

from __future__ import annotations

from typing import Optional

from repro.core.state import ReplicatedObject


class StockTicker(ReplicatedObject):
    """Last-price table plus a global tick counter."""

    READ_ONLY_METHODS = frozenset(
        {"quote", "quotes", "tick_count", "movers"}
    )

    def __init__(self) -> None:
        self.prices: dict[str, float] = {}
        self.previous: dict[str, float] = {}
        self.ticks = 0

    # -- updates ---------------------------------------------------------
    def tick(self, symbol: str, price: float) -> float:
        """Record a trade tick; returns the new price."""
        if price <= 0:
            raise ValueError(f"non-positive price {price!r}")
        if symbol in self.prices:
            self.previous[symbol] = self.prices[symbol]
        self.prices[symbol] = float(price)
        self.ticks += 1
        return self.prices[symbol]

    # -- read-only -------------------------------------------------------
    def quote(self, symbol: str) -> Optional[float]:
        return self.prices.get(symbol)

    def quotes(self) -> dict[str, float]:
        return dict(self.prices)

    def tick_count(self) -> int:
        return self.ticks

    def movers(self) -> list[tuple[str, float]]:
        """Symbols by absolute relative move since their previous tick."""
        moves = []
        for symbol, price in self.prices.items():
            prior = self.previous.get(symbol)
            if prior:
                moves.append((symbol, (price - prior) / prior))
        moves.sort(key=lambda sm: -abs(sm[1]))
        return moves
