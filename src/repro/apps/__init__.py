"""Example replicated applications.

Concrete :class:`~repro.core.state.ReplicatedObject` implementations used
by the examples and tests:

* :mod:`repro.apps.kvstore` — a replicated key-value object store;
* :mod:`repro.apps.document` — the document-sharing application §2 uses to
  illustrate the QoS model ("a copy of the document that is not more than
  5 versions old within 2.0 seconds with a probability of at least 0.7");
* :mod:`repro.apps.stock` — a stock-ticker board, one of the real-time
  database applications (§1) that motivate bounded-staleness reads.
"""

from repro.apps.kvstore import KVStore
from repro.apps.document import SharedDocument
from repro.apps.stock import StockTicker

__all__ = ["KVStore", "SharedDocument", "StockTicker"]
