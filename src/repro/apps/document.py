"""The document-sharing application of §2.

"Consider a document-sharing application in which multiple readers and
writers concurrently access a document that is updated in sequential
mode."  Writers append/replace paragraphs (updates, sequenced by GSN);
readers fetch the document (read-only), specifying how many versions of
staleness they tolerate.
"""

from __future__ import annotations

from repro.core.state import ReplicatedObject


class SharedDocument(ReplicatedObject):
    """An edit-versioned paragraph list."""

    READ_ONLY_METHODS = frozenset(
        {"read_document", "read_paragraph", "paragraph_count", "edit_count"}
    )

    def __init__(self, title: str = "untitled") -> None:
        self.title = title
        self.paragraphs: list[str] = []
        self.edits = 0

    # -- updates ---------------------------------------------------------
    def append_paragraph(self, text: str) -> int:
        """Append a paragraph; returns its index."""
        self.paragraphs.append(text)
        self.edits += 1
        return len(self.paragraphs) - 1

    def replace_paragraph(self, index: int, text: str) -> str:
        """Replace a paragraph; returns the previous text."""
        previous = self.paragraphs[index]
        self.paragraphs[index] = text
        self.edits += 1
        return previous

    def delete_paragraph(self, index: int) -> str:
        removed = self.paragraphs.pop(index)
        self.edits += 1
        return removed

    # -- read-only -------------------------------------------------------
    def read_document(self) -> tuple[int, list[str]]:
        """The whole document with its edit version."""
        return (self.edits, list(self.paragraphs))

    def read_paragraph(self, index: int) -> str:
        return self.paragraphs[index]

    def paragraph_count(self) -> int:
        return len(self.paragraphs)

    def edit_count(self) -> int:
        return self.edits
