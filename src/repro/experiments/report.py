"""Plain-text table/series formatting and JSON persistence for results."""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path
from typing import Any, Iterable, Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = ""
) -> str:
    """Render an aligned text table (the benches print these)."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


RECOVERY_COUNTERS: tuple[tuple[str, str], ...] = (
    ("retries_sent", "reads re-dispatched after a quiet checkpoint"),
    ("hedges_sent", "reads duplicated to the runner-up at issue time"),
    ("failover_redispatches", "re-dispatches triggered by replica eviction"),
    ("retry_resolved", "first delivered reply came from a retry"),
    ("hedge_resolved", "first delivered reply came from the hedge"),
    ("reads_salvaged", "late value delivered after a timing failure"),
    ("state_transfers_started", "primary rejoins that requested a snapshot"),
    ("state_transfers_completed", "snapshots installed by rejoining primaries"),
    ("state_transfers_served", "snapshots shipped by donor primaries"),
    ("overload_replies", "reads bounced by a shedding replica"),
    ("reads_shed", "reads the degradation ladder refused to dispatch"),
    ("degradation_steps_down", "ladder transitions toward weaker consistency"),
    ("degradation_steps_up", "hysteretic recoveries toward nominal"),
)


def format_recovery_stats(stats: dict, title: str = "fault recovery") -> str:
    """Render the retry/hedge/failover/state-transfer counter table.

    ``stats`` maps counter name to value — typically the union of
    :meth:`repro.core.client.ClientHandler.recovery_stats` and the
    state-transfer counters of the replica handlers.  Known counters are
    printed in a stable order with descriptions; unknown keys follow.
    """
    known = {name for name, _ in RECOVERY_COUNTERS}
    rows = [
        [name, stats.get(name, 0), description]
        for name, description in RECOVERY_COUNTERS
        if name in stats
    ]
    rows.extend(
        [name, value, ""] for name, value in sorted(stats.items()) if name not in known
    )
    return format_table(["counter", "count", "meaning"], rows, title=title)


def render_report(
    metrics: dict | None = None,
    recovery: dict | None = None,
    calibration: Any = None,
    title: str = "telemetry report",
) -> str:
    """One combined plain-text report: metrics, recovery, calibration.

    ``metrics`` is a :meth:`repro.obs.MetricsRegistry.snapshot` dict;
    counters and gauges go in one table, histograms get a count/mean/
    quantile summary table.  ``recovery`` feeds
    :func:`format_recovery_stats`.  ``calibration`` is either a
    :class:`repro.obs.CalibrationTracker` or its ``to_dict()`` payload;
    each strategy gets a reliability table (per-bucket predicted vs.
    observed with Wilson CIs) plus its Brier score.
    """
    from repro.obs.calibration import CalibrationTracker
    from repro.obs.export import summarize_histogram

    blocks = [title, "=" * len(title)] if title else []
    if metrics:
        scalar_rows = []
        histogram_rows = []
        for series in sorted(metrics):
            entry = metrics[series]
            if entry["type"] == "histogram":
                summary = summarize_histogram(entry)
                histogram_rows.append(
                    [
                        series,
                        summary["count"],
                        summary["mean"],
                        summary["p50"],
                        summary["p95"],
                        summary["p99"],
                    ]
                )
            else:
                scalar_rows.append([series, entry["type"], entry["value"]])
        if scalar_rows:
            blocks.append(
                format_table(
                    ["series", "type", "value"], scalar_rows, title="metrics"
                )
            )
        if histogram_rows:
            blocks.append(
                format_table(
                    ["series", "count", "mean", "p50", "p95", "p99"],
                    histogram_rows,
                    title="histograms",
                )
            )
    if recovery:
        blocks.append(format_recovery_stats(recovery))
    if calibration is not None:
        tracker = (
            calibration
            if isinstance(calibration, CalibrationTracker)
            else CalibrationTracker.from_dict(calibration)
        )
        for strategy in tracker.strategies():
            rows = [
                [
                    f"[{bucket.low:.2f}, {bucket.high:.2f})",
                    bucket.count,
                    bucket.mean_predicted,
                    bucket.observed,
                    f"[{bucket.ci_low:.3f}, {bucket.ci_high:.3f}]",
                    "yes" if bucket.consistent else "NO",
                ]
                for bucket in tracker.reliability(strategy)
            ]
            heading = (
                f"calibration — {strategy} "
                f"(n={tracker.observations(strategy)}, "
                f"Brier={tracker.brier_score(strategy):.4f})"
            )
            blocks.append(
                format_table(
                    ["predicted bucket", "n", "mean P_c(d)", "observed",
                     "95% CI", "within CI"],
                    rows,
                    title=heading,
                )
            )
    return "\n\n".join(blocks)


def format_series(name: str, xs: Sequence[float], ys: Sequence[float]) -> str:
    """One figure series as ``name: (x, y) ...`` for eyeballing shapes."""
    pairs = " ".join(f"({x:g}, {y:.4g})" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"


def _jsonable(value: Any) -> Any:
    """Recursively convert dataclasses/tuples/dict keys for JSON."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": type(value).__name__,
            **{
                field.name: _jsonable(getattr(value, field.name))
                for field in dataclasses.fields(value)
            },
        }
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    return value


def run_metadata(
    experiment: str,
    seed: Any = None,
    config: Any = None,
    **extra: Any,
) -> dict:
    """The unified ``meta`` record every experiment JSONL artifact leads with.

    Stamps what a later reader needs to reproduce or compare the run: the
    root seed, a short hash of the run configuration (plus the config
    itself), the repro version, and the cores the run could actually use.
    ``extra`` keys ride along verbatim (and may override the stamps).
    """
    from repro import __version__
    from repro.experiments.runner import available_cpus

    meta: dict = {
        "event": "meta",
        "experiment": experiment,
        "repro_version": __version__,
        "usable_cores": available_cpus(),
    }
    if seed is not None:
        meta["root_seed"] = seed
    if config is not None:
        jsonable = _jsonable(config)
        canonical = json.dumps(jsonable, sort_keys=True, default=str)
        meta["config"] = jsonable
        meta["config_hash"] = hashlib.sha256(
            canonical.encode("utf-8")
        ).hexdigest()[:16]
    meta.update(extra)
    return meta


def write_experiment_artifact(
    path: str | Path,
    experiment: str,
    records: Iterable[dict],
    seed: Any = None,
    config: Any = None,
    **extra: Any,
) -> Path:
    """Write a JSONL artifact led by the unified :func:`run_metadata` line.

    The one writer behind ``--metrics-out`` across figure4, chaos,
    overload, gray, and scale, so every artifact opens with the same
    traceability stamps instead of each campaign rolling its own meta
    record.
    """
    from repro.obs.export import write_jsonl

    head = run_metadata(experiment, seed=seed, config=config, **extra)
    return write_jsonl(path, [head, *records])


def save_results(path: str | Path, payload: Any, meta: dict | None = None) -> Path:
    """Persist experiment results (dataclasses welcome) as JSON.

    The file carries the payload under ``results`` and optional run
    metadata (seed, parameters, versions) under ``meta`` so regenerated
    figures are traceable.
    """
    path = Path(path)
    document = {"meta": meta or {}, "results": _jsonable(payload)}
    path.write_text(json.dumps(document, indent=2, sort_keys=True))
    return path


def load_results(path: str | Path) -> dict:
    """Load a document written by :func:`save_results`."""
    return json.loads(Path(path).read_text())
