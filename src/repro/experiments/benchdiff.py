"""``repro bench-diff``: gate bench results against committed baselines.

The bench suite writes one flat ``{metric: value}`` JSON per module
(``benchmarks/BENCH_<name>.json``, see ``benchmarks/conftest.py``); the
blessed copies live in ``benchmarks/baselines/``.  This command compares
the two sets and fails when any metric regressed by more than the allowed
fraction, which turns the CI perf-trajectory upload into an actual gate.

Which direction is a regression is inferred from the metric name: times,
latencies, and per-op costs (``*_s``, ``*_us``, ``*_seconds``,
``*_per_event_s``, ...) regress **upward**; rates and speedups
(``*_per_s``, ``*_rate``, ``*_speedup``, ``*_hit_rate``, ...) regress
**downward**; anything unrecognized is reported but never gates.

``--update`` refreshes the baselines from the current results (run it
locally after an intentional perf change and commit the diff).

Run: ``repro bench-diff`` after ``pytest benchmarks -m benchmark``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, Optional

from repro.experiments.report import format_table

#: Metric-name suffixes whose value regresses when it goes UP (costs).
LOWER_IS_BETTER = (
    "_s", "_us", "_ms", "_ns", "_seconds", "_bytes", "_overhead",
    "_per_event",
)
#: Metric-name suffixes whose value regresses when it goes DOWN (throughput).
HIGHER_IS_BETTER = (
    "_per_s", "_per_sec", "_per_second", "_rate", "_speedup", "_ratio",
    "_ops",
)


def metric_direction(name: str) -> Optional[str]:
    """``"lower"`` / ``"higher"`` = which value is better, None = unknown.

    Throughput suffixes are checked first: ``events_per_s`` ends with both
    ``_per_s`` and ``_s``, and it is a rate.
    """
    for suffix in HIGHER_IS_BETTER:
        if name.endswith(suffix):
            return "higher"
    for suffix in LOWER_IS_BETTER:
        if name.endswith(suffix):
            return "lower"
    return None


def load_bench_files(directory: Path) -> Dict[str, Dict[str, float]]:
    """``{module: {metric: value}}`` from every BENCH_*.json in a directory."""
    out: Dict[str, Dict[str, float]] = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        name = path.stem.removeprefix("BENCH_")
        out[name] = {
            str(k): float(v) for k, v in json.loads(path.read_text()).items()
        }
    return out


def diff_benches(
    current: Dict[str, Dict[str, float]],
    baseline: Dict[str, Dict[str, float]],
    max_regression: float,
) -> tuple[list[list], list[str]]:
    """(table rows, regression messages) comparing current to baseline.

    A metric gates only when it exists on both sides and has a known
    direction; new or retired metrics are informational.
    """
    rows: list[list] = []
    regressions: list[str] = []
    modules = sorted(set(current) | set(baseline))
    for module in modules:
        cur = current.get(module, {})
        base = baseline.get(module, {})
        for metric in sorted(set(cur) | set(base)):
            have = cur.get(metric)
            want = base.get(metric)
            if have is None:
                rows.append([module, metric, f"{want:.6g}", "-", "-", "retired"])
                continue
            if want is None:
                rows.append([module, metric, "-", f"{have:.6g}", "-", "new"])
                continue
            if want == 0:
                change = 0.0 if have == 0 else float("inf")
            else:
                change = have / want - 1.0
            direction = metric_direction(metric)
            verdict = "ok"
            if direction == "lower" and change > max_regression:
                verdict = "REGRESSION"
            elif direction == "higher" and -change > max_regression:
                verdict = "REGRESSION"
            elif direction is None:
                verdict = "untracked"
            rows.append(
                [
                    module,
                    metric,
                    f"{want:.6g}",
                    f"{have:.6g}",
                    f"{change:+.1%}",
                    verdict,
                ]
            )
            if verdict == "REGRESSION":
                regressions.append(
                    f"{module}.{metric}: {want:.6g} -> {have:.6g} "
                    f"({change:+.1%}, allowed {max_regression:.0%} "
                    f"{'up' if direction == 'lower' else 'down'})"
                )
    return rows, regressions


def update_baselines(
    current: Dict[str, Dict[str, float]], directory: Path
) -> list[Path]:
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for module, metrics in sorted(current.items()):
        path = directory / f"BENCH_{module}.json"
        path.write_text(json.dumps(metrics, indent=2, sort_keys=True) + "\n")
        written.append(path)
    return written


def main(argv: Optional[list[str]] = None) -> int:
    repo_root = Path(__file__).resolve().parents[3]
    parser = argparse.ArgumentParser(
        prog="repro bench-diff", description=__doc__.split("\n\n")[0]
    )
    parser.add_argument(
        "--current",
        type=Path,
        default=repo_root / "benchmarks",
        help="directory holding the fresh BENCH_*.json files",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=repo_root / "benchmarks" / "baselines",
        help="directory holding the committed baselines",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.2,
        metavar="FRACTION",
        help="allowed fractional regression before failing (default 0.2)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="refresh the baselines from the current results and exit",
    )
    args = parser.parse_args(argv)

    current = load_bench_files(args.current)
    if not current:
        print(
            f"no BENCH_*.json files in {args.current} — "
            f"run the bench suite first",
            file=sys.stderr,
        )
        return 1

    if args.update:
        for path in update_baselines(current, args.baseline):
            print(f"baseline updated: {path}")
        return 0

    baseline = load_bench_files(args.baseline)
    if not baseline:
        print(
            f"no baselines in {args.baseline} — seed them with --update",
            file=sys.stderr,
        )
        return 1

    rows, regressions = diff_benches(
        current, baseline, args.max_regression
    )
    print(
        format_table(
            ["module", "metric", "baseline", "current", "change", "verdict"],
            rows,
            title=(
                f"bench trajectory vs. baselines "
                f"(gate: {args.max_regression:.0%})"
            ),
        )
    )
    if regressions:
        print()
        for line in regressions:
            print(f"REGRESSION {line}", file=sys.stderr)
        return 1
    print("\nno regressions past the gate")
    return 0


if __name__ == "__main__":
    sys.exit(main())
