"""Model-validation experiments (extending §6.1's "Validation of
Probabilistic Model").

Two studies the paper's evaluation implies but does not plot:

* :func:`run_staleness_validation` — compares the *predicted* staleness
  factor ``P(A_s(t) <= a)`` (Eq. 4, or any pluggable model) against the
  *empirical* freshness of the secondary group, measured from inside the
  simulator (ground truth the real system could not observe cheaply:
  sequencer GSN minus secondary CSN at sampling instants).  Under Poisson
  update arrivals the Poisson model should calibrate well; under bursty
  arrivals it over-estimates freshness above the mean rate while the
  rate-mixture model stays closer (see §5.1.3's non-Poisson note and
  ``repro.core.staleness``).

* :func:`run_hotspot_validation` — quantifies the hot-spot avoidance
  claim of §5.3 (Algorithm 1 "alleviates the occurrence of such
  'hot-spots', to achieve a more balanced utilization") by running the
  same workload with and without the decreasing-``ert`` visiting order
  and comparing the imbalance of reads served across replicas.

Run: ``python -m repro.experiments.validation [--quick] [--jobs N]``
(``--jobs`` runs the independent studies across worker processes).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.qos import QoSSpec
from repro.core.selection import StateBasedSelection
from repro.core.service import ServiceConfig, build_testbed
from repro.core.staleness import (
    PoissonStalenessModel,
    RateMixtureStalenessModel,
    StalenessModel,
)
from repro.experiments.report import format_table
from repro.experiments.runner import CellSpec, add_jobs_argument, run_cells
from repro.sim.rng import Normal
from repro.workloads.generators import BurstyUpdater, OpenLoopUpdater, PeriodicReader


# ---------------------------------------------------------------------------
# Staleness-model calibration
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class StalenessValidationRow:
    """Calibration of one threshold: empirical vs. model-predicted."""

    threshold: int
    empirical: float  # ground-truth P(A_s <= a) over the sampling instants
    predicted: float  # mean model prediction over the same instants
    samples: int

    @property
    def error(self) -> float:
        return self.predicted - self.empirical


def run_staleness_validation(
    update_rate: float = 2.0,
    lazy_update_interval: float = 2.0,
    duration: float = 240.0,
    thresholds: Sequence[int] = (0, 1, 2, 3, 4, 6, 8),
    bursty: bool = False,
    staleness_model: Optional[StalenessModel] = None,
    seed: int = 0,
) -> list[StalenessValidationRow]:
    """Measure model calibration against simulator ground truth.

    A feed client issues updates (Poisson at ``update_rate``, or bursty
    with the same mean rate); an observer client issues periodic reads
    (which keeps the performance/staleness broadcasts flowing) and its
    predictor is sampled alongside the true staleness of the secondary
    group.
    """
    config = ServiceConfig(
        name="svc",
        num_primaries=2,
        num_secondaries=4,
        lazy_update_interval=lazy_update_interval,
        read_service_time=Normal(0.020, 0.005, floor=0.002),
    )
    testbed = build_testbed(config, seed=seed)
    service = testbed.service
    feed = service.create_client("feed", read_only_methods={"get"})
    observer = service.create_client(
        "observer",
        read_only_methods={"get"},
        staleness_model=staleness_model,
    )

    if bursty:
        # Bursts at 5x the mean rate, 20% duty cycle.
        BurstyUpdater(
            testbed.sim, feed, testbed.rng,
            burst_rate=update_rate * 5.0,
            burst_length=lazy_update_interval / 2.0,
            idle_length=2.0 * lazy_update_interval,
            duration=duration,
        )
    else:
        OpenLoopUpdater(
            testbed.sim, feed, testbed.rng, rate=update_rate, duration=duration
        )
    qos = QoSSpec(staleness_threshold=100, deadline=2.0, min_probability=0.1)
    PeriodicReader(
        testbed.sim, observer, qos, period=0.5, count=int(duration / 0.5) - 2
    )

    sequencer = service.sequencer
    secondary = service.secondaries[0]
    samples: list[tuple[int, dict[int, float]]] = []
    warmup = 4 * lazy_update_interval

    def sample() -> None:
        if testbed.sim.now >= warmup:
            actual = max(0, sequencer.my_gsn - secondary.my_csn)
            predicted = {
                a: observer.predictor.staleness_factor(a, testbed.sim.now)
                for a in thresholds
            }
            samples.append((actual, predicted))
        testbed.sim.schedule(0.25, sample)

    testbed.sim.schedule(0.25, sample)
    testbed.sim.run(until=duration)

    rows = []
    for a in thresholds:
        hits = sum(1 for actual, _ in samples if actual <= a)
        mean_predicted = sum(p[a] for _, p in samples) / len(samples)
        rows.append(
            StalenessValidationRow(
                threshold=a,
                empirical=hits / len(samples),
                predicted=mean_predicted,
                samples=len(samples),
            )
        )
    return rows


# ---------------------------------------------------------------------------
# Hot-spot avoidance
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class HotspotValidationResult:
    """Read-load balance with and without the ert visiting order."""

    with_ert_reads: dict[str, int]
    without_ert_reads: dict[str, int]

    @staticmethod
    def _imbalance(reads: dict[str, int]) -> float:
        """max/mean reads served; 1.0 is perfectly balanced."""
        counts = [c for c in reads.values()]
        if not counts or sum(counts) == 0:
            return 1.0
        mean = sum(counts) / len(counts)
        return max(counts) / mean if mean > 0 else float("inf")

    @property
    def with_ert_imbalance(self) -> float:
        return self._imbalance(self.with_ert_reads)

    @property
    def without_ert_imbalance(self) -> float:
        return self._imbalance(self.without_ert_reads)


def _hotspot_cell(
    avoid: bool, reads: int, deadline: float, seed: int
) -> dict[str, int]:
    """One hot-spot workload (module-level so cells can pickle)."""
    config = ServiceConfig(
        name="svc",
        num_primaries=2,
        num_secondaries=6,
        lazy_update_interval=2.0,
        read_service_time=Normal(0.050, 0.010, floor=0.002),
    )
    testbed = build_testbed(config, seed=seed)
    service = testbed.service
    client = service.create_client(
        "c",
        read_only_methods={"get"},
        strategy=StateBasedSelection(hot_spot_avoidance=avoid),
    )
    qos = QoSSpec(staleness_threshold=50, deadline=deadline,
                  min_probability=0.9)
    PeriodicReader(testbed.sim, client, qos, period=0.2, count=reads)
    testbed.sim.run(until=reads * 0.2 + 30.0)
    return {
        r.name: r.reads_served
        for r in service.primaries + service.secondaries
    }


def run_hotspot_validation(
    reads: int = 300,
    deadline: float = 0.200,
    seed: int = 0,
    jobs: Optional[int] = 1,
) -> HotspotValidationResult:
    """Same workload twice: Algorithm 1 vs. the cdf-greedy variant."""
    common = dict(reads=reads, deadline=deadline, seed=seed)
    specs = [
        CellSpec(key=avoid, fn=_hotspot_cell, kwargs=dict(avoid=avoid))
        for avoid in (True, False)
    ]
    with_ert, without_ert = run_cells(
        specs, jobs=jobs, label="hotspot", common=common
    )
    return HotspotValidationResult(
        with_ert_reads=with_ert, without_ert_reads=without_ert
    )


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def render_staleness(title: str, rows: list[StalenessValidationRow]) -> str:
    return format_table(
        ["a", "empirical P(A<=a)", "predicted", "error", "samples"],
        [(r.threshold, r.empirical, r.predicted, r.error, r.samples) for r in rows],
        title=title,
    )


def _staleness_cell(
    duration: float, bursty: bool, model: Optional[str]
) -> list[StalenessValidationRow]:
    """One calibration study; the model is named so the spec pickles."""
    staleness_model = RateMixtureStalenessModel() if model == "rate-mixture" else None
    return run_staleness_validation(
        duration=duration, bursty=bursty, staleness_model=staleness_model
    )


def main(argv: Optional[list[str]] = None) -> None:
    argv = sys.argv[1:] if argv is None else argv
    quick = "--quick" in argv
    jobs = add_jobs_argument(argv)
    duration = 120.0 if quick else 240.0

    studies = [
        ("Staleness model calibration — Poisson arrivals, Poisson model (Eq. 4)",
         dict(bursty=False, model=None)),
        ("Staleness model calibration — bursty arrivals, Poisson model",
         dict(bursty=True, model=None)),
        ("Staleness model calibration — bursty arrivals, rate-mixture model",
         dict(bursty=True, model="rate-mixture")),
    ]
    specs = [
        CellSpec(key=title, fn=_staleness_cell, kwargs=kwargs)
        for title, kwargs in studies
    ]
    runs = run_cells(
        specs, jobs=jobs, label="staleness", common=dict(duration=duration)
    )
    for spec, rows in zip(specs, runs):
        print(render_staleness(spec.key, rows))
        print()
    hotspot = run_hotspot_validation(reads=150 if quick else 300, jobs=jobs)
    print(format_table(
        ["strategy", "max/mean reads", "per-replica reads"],
        [
            ("Algorithm 1 (ert order)", hotspot.with_ert_imbalance,
             dict(sorted(hotspot.with_ert_reads.items()))),
            ("cdf-greedy (no ert)", hotspot.without_ert_imbalance,
             dict(sorted(hotspot.without_ert_reads.items()))),
        ],
        title="Hot-spot avoidance (§5.3): read-load balance",
    ))


if __name__ == "__main__":
    main()
