"""Shared experiment runners.

Two kinds of measurement, matching the paper's §6:

* :func:`measure_selection_overhead` — *wall-clock* cost of one
  prediction + selection pass over ``n`` replicas with sliding windows of
  size ``l`` (the quantity in Figure 3).  The repository is pre-filled
  with realistic samples; the timed region is exactly what the client
  gateway executes per read: compute every candidate's response-time
  distribution values, the staleness factor, and run Algorithm 1.
* :func:`run_figure4_cell` — one full simulated run of the §6 testbed for
  a given (deadline, P_c, LUI) cell, returning client 2's averages with
  95 % binomial confidence intervals.
"""

from __future__ import annotations

import dataclasses
import math
import time
from dataclasses import dataclass
from typing import Optional

from repro.core.prediction import ResponseTimePredictor
from repro.core.qos import QoSSpec
from repro.core.repository import ClientInfoRepository
from repro.core.requests import PerfBroadcast, StalenessInfo
from repro.core.selection import ReplicaView, SelectionStrategy, StateBasedSelection
from repro.obs.calibration import CalibrationTracker
from repro.obs.metrics import MetricsRegistry, decode_snapshot, encode_snapshot
from repro.obs.timeseries import (
    Timeline,
    TimeseriesRecorder,
    decode_timeline,
    encode_timeline,
)
from repro.sim.rng import RngRegistry
from repro.stats.confidence import binomial_confidence_interval
from repro.workloads.scenarios import build_paper_scenario


# ---------------------------------------------------------------------------
# Figure 3: selection overhead
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SelectionOverheadResult:
    """Per-read selection cost, microseconds (Figure 3)."""

    num_replicas: int
    window_size: int
    total_us: float
    distribution_us: float  # distribution computation share (paper: ~90 %)
    selection_us: float  # Algorithm 1 share (paper: ~10 %)
    repetitions: int
    # Pmf-cache effectiveness over the run (all zero when uncached).
    cache_hits: int = 0
    cache_misses: int = 0
    cache_invalidations: int = 0

    @property
    def distribution_share(self) -> float:
        if self.total_us == 0:
            return 0.0
        return self.distribution_us / self.total_us

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        if lookups == 0:
            return 0.0
        return self.cache_hits / lookups


def _synthetic_repository(
    num_replicas: int,
    window_size: int,
    seed: int,
    num_primaries: int,
    lazy_update_interval: float,
) -> tuple[ClientInfoRepository, list[str], list[str]]:
    """A repository pre-filled as it would be mid-run on the §6 testbed."""
    rng = RngRegistry(seed).stream("figure3")
    repo = ClientInfoRepository(window_size)
    primaries = [f"p{i}" for i in range(1, min(num_primaries, num_replicas) + 1)]
    secondaries = [f"s{i}" for i in range(1, num_replicas - len(primaries) + 1)]
    for name in primaries + secondaries:
        for _ in range(window_size):
            ts = max(0.002, rng.gauss(0.100, 0.050))
            tq = max(0.0, rng.gauss(0.010, 0.010))
            tb = rng.uniform(0.0, lazy_update_interval)
            repo.record_broadcast(
                PerfBroadcast(replica=name, ts=ts, tq=tq, tb=tb)
            )
        repo.record_reply(name, tg=rng.uniform(0.0005, 0.002), now=rng.uniform(0, 10))
    repo.record_staleness(
        PerfBroadcast(
            replica="p1",
            ts=0.1,
            tq=0.01,
            tb=None,
            staleness=StalenessInfo(n_u=5, t_u=10.0, n_l=2, t_l=0.7),
        ),
        now=10.0,
    )
    return repo, primaries, secondaries


def measure_selection_overhead(
    num_replicas: int,
    window_size: int,
    repetitions: int = 200,
    seed: int = 0,
    deadline: float = 0.150,
    staleness_threshold: int = 2,
    min_probability: float = 0.9,
    lazy_update_interval: float = 2.0,
    strategy: Optional[SelectionStrategy] = None,
    use_cache: bool = False,
    fresh_measurements: bool = False,
) -> SelectionOverheadResult:
    """Time one client-side prediction + selection pass (Figure 3).

    By default the pmf cache is OFF so the measurement reproduces the
    paper's Figure 3 semantics: the full per-read distribution
    recomputation.  ``use_cache=True`` measures the production fast path
    instead (steady-state reads hit the versioned cache).  With
    ``fresh_measurements=True`` every repetition first folds a new
    performance broadcast into each replica's windows — the worst case
    for the cache, where every read invalidates and recomputes.
    """
    if num_replicas < 1:
        raise ValueError("need at least one replica")
    repo, primaries, secondaries = _synthetic_repository(
        num_replicas, window_size, seed, num_primaries=4,
        lazy_update_interval=lazy_update_interval,
    )
    predictor = ResponseTimePredictor(repo, lazy_update_interval, use_cache=use_cache)
    qos = QoSSpec(staleness_threshold, deadline, min_probability)
    strategy = strategy or StateBasedSelection()
    now = 11.0
    fresh_rng = RngRegistry(seed + 1).stream("figure3-fresh")

    dist_time = 0.0
    select_time = 0.0
    for rep in range(repetitions):
        if fresh_measurements:
            # A broadcast lands between reads: windows advance, versions
            # bump, and any cached pmfs for these replicas go stale.
            for name in primaries + secondaries:
                repo.record_broadcast(
                    PerfBroadcast(
                        replica=name,
                        ts=max(0.002, fresh_rng.gauss(0.100, 0.050)),
                        tq=max(0.0, fresh_rng.gauss(0.010, 0.010)),
                        tb=fresh_rng.uniform(0.0, lazy_update_interval),
                    )
                )
        t0 = time.perf_counter()
        candidates = []
        for name in primaries:
            cdf = predictor.immediate_cdf(name, qos.deadline)
            candidates.append(
                ReplicaView(name, True, cdf, cdf, repo.ert(name, now + rep))
            )
        for name in secondaries:
            immediate, delayed = predictor.response_cdfs(name, qos.deadline)
            candidates.append(
                ReplicaView(
                    name, False, immediate, delayed, repo.ert(name, now + rep)
                )
            )
        stale_factor = predictor.staleness_factor(qos.staleness_threshold, now + rep)
        t1 = time.perf_counter()
        strategy.select(candidates, qos, stale_factor)
        t2 = time.perf_counter()
        dist_time += t1 - t0
        select_time += t2 - t1

    total = dist_time + select_time
    return SelectionOverheadResult(
        num_replicas=num_replicas,
        window_size=window_size,
        total_us=1e6 * total / repetitions,
        distribution_us=1e6 * dist_time / repetitions,
        selection_us=1e6 * select_time / repetitions,
        repetitions=repetitions,
        cache_hits=predictor.cache_hits,
        cache_misses=predictor.cache_misses,
        cache_invalidations=predictor.cache_invalidations,
    )


# ---------------------------------------------------------------------------
# Figure 4: adaptivity of the probabilistic model
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Figure4Cell:
    """One (deadline, P_c, LUI) cell of Figure 4, from one full run."""

    deadline: float
    min_probability: float
    lazy_update_interval: float
    avg_replicas_selected: float
    timing_failure_probability: float
    ci_low: float
    ci_high: float
    reads: int
    timing_failures: int
    deferred_fraction: float
    mean_response_time: float
    # Telemetry payloads, populated only with ``collect_metrics=True``:
    # a MetricsRegistry snapshot and a CalibrationTracker.to_dict().  Kept
    # as plain dicts so cells stay picklable for the parallel runner.
    metrics: Optional[dict] = None
    calibration: Optional[dict] = None
    # Timeline payload, populated only with ``timeseries=<interval>``: a
    # Timeline.to_dict() (plain dict, picklable; see obs/timeseries.py).
    timeline: Optional[dict] = None

    def meets_qos(self) -> bool:
        """Did the observed failure probability stay within 1 − P_c?"""
        return self.timing_failure_probability <= 1.0 - self.min_probability + 1e-9


def pack_figure4_cell(cell: Figure4Cell) -> Figure4Cell:
    """Worker-side ``encode`` hook for the parallel runner.

    The only bulky field of a cell is its metrics snapshot (hundreds of
    nested dict/list objects when ``collect_metrics=True``); packing it
    into the flat :func:`repro.obs.metrics.encode_snapshot` payload lets
    the cell cross the process boundary as a handful of bytes objects
    instead.  Cells without telemetry pass through untouched.
    """
    replacements: dict = {}
    if cell.metrics is not None:
        replacements["metrics"] = encode_snapshot(cell.metrics)
    if cell.timeline is not None:
        replacements["timeline"] = encode_timeline(
            Timeline.from_dict(cell.timeline)
        )
    if not replacements:
        return cell
    return dataclasses.replace(cell, **replacements)


def unpack_figure4_cell(cell: Figure4Cell) -> Figure4Cell:
    """Parent-side ``decode`` hook — exact inverse of :func:`pack_figure4_cell`."""
    replacements: dict = {}
    if isinstance(cell.metrics, bytes):
        replacements["metrics"] = decode_snapshot(cell.metrics)
    if isinstance(cell.timeline, bytes):
        replacements["timeline"] = decode_timeline(cell.timeline).to_dict()
    if not replacements:
        return cell
    return dataclasses.replace(cell, **replacements)


def run_figure4_cell(
    deadline: float,
    min_probability: float,
    lazy_update_interval: float,
    total_requests: int = 1000,
    seed: int = 0,
    staleness_threshold: int = 2,
    strategy2: Optional[SelectionStrategy] = None,
    warmup_requests: int = 0,
    request_delay: float = 1.0,
    collect_metrics: bool = False,
    timeseries: Optional[float] = None,
) -> Figure4Cell:
    """Run the §6 testbed once and summarize client 2's reads.

    With ``collect_metrics=True`` the testbed shares one
    :class:`MetricsRegistry` and one :class:`CalibrationTracker`, and the
    returned cell carries their serialized payloads (mergeable across
    cells with :meth:`MetricsRegistry.merge` / :meth:`CalibrationTracker
    .merge`).

    ``timeseries`` attaches a :class:`TimeseriesRecorder` at that tick
    interval (simulated seconds) and returns the cell with a
    ``timeline`` payload; ``None`` (the default) schedules nothing at
    all, so undashboarded runs stay bit-identical.
    """
    registry = MetricsRegistry() if collect_metrics or timeseries else None
    tracker = CalibrationTracker() if collect_metrics else None
    scenario = build_paper_scenario(
        deadline=deadline,
        min_probability=min_probability,
        lazy_update_interval=lazy_update_interval,
        staleness_threshold=staleness_threshold,
        total_requests=total_requests,
        request_delay=request_delay,
        seed=seed,
        strategy2=strategy2,
        warmup_requests=warmup_requests,
        metrics=registry,
        calibration=tracker,
    )
    recorder = None
    if timeseries is not None:
        recorder = TimeseriesRecorder(
            scenario.sim, registry, interval=timeseries
        ).start()
    scenario.run()
    if recorder is not None:
        recorder.flush()
    client2 = scenario.client2
    reads = len(client2.read_outcomes)
    failures = client2.timing_failure_count()
    if reads > 0:
        ci_low, ci_high = binomial_confidence_interval(failures, reads, 0.95)
    else:
        ci_low = ci_high = 0.0
    return Figure4Cell(
        deadline=deadline,
        min_probability=min_probability,
        lazy_update_interval=lazy_update_interval,
        avg_replicas_selected=client2.average_replicas_selected(),
        timing_failure_probability=client2.timing_failure_probability(),
        ci_low=ci_low,
        ci_high=ci_high,
        reads=reads,
        timing_failures=failures,
        deferred_fraction=client2.deferred_fraction(),
        mean_response_time=client2.mean_response_time(),
        metrics=(
            registry.snapshot()
            if registry is not None and collect_metrics
            else None
        ),
        calibration=tracker.to_dict() if tracker is not None else None,
        timeline=(
            recorder.timeline().to_dict() if recorder is not None else None
        ),
    )
