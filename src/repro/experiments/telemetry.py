"""``repro metrics``: one instrumented §6 cell with a full telemetry report.

Runs a single seeded Figure 4 cell with the unified telemetry layer on —
shared :class:`~repro.obs.MetricsRegistry`, request-span tracing, and the
prediction-calibration tracker — and prints the combined report: counter
and histogram tables, recovery counters, and the per-strategy reliability
diagram (predicted ``P_c(d)`` vs. observed deadline-hit frequency with
Wilson CIs and the Brier score).

``--watch SECONDS`` prints counter deltas at sim-time intervals while the
cell runs (the same mechanism a chaos soak uses for periodic dumps);
``--metrics-out`` writes the JSONL artifact; ``--prometheus`` writes the
text exposition format; ``--check`` exits non-zero unless the model-based
strategy is well calibrated (every populated bucket's observed frequency
inside its CI).

Run: ``python -m repro.experiments.telemetry`` or ``repro metrics``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.experiments.report import render_report
from repro.obs.calibration import CalibrationTracker
from repro.obs.export import metrics_event, prometheus_text, write_jsonl
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import TimeseriesRecorder
from repro.workloads.scenarios import build_paper_scenario


def run_instrumented_cell(
    deadline: float = 0.200,
    min_probability: float = 0.9,
    lazy_update_interval: float = 2.0,
    total_requests: int = 400,
    seed: int = 0,
    staleness_threshold: int = 2,
    watch: Optional[float] = None,
    watch_sink=print,
    timeseries: Optional[float] = None,
) -> tuple[MetricsRegistry, CalibrationTracker, object]:
    """Run one §6 cell with telemetry on; returns (metrics, calibration,
    scenario).  ``watch`` prints counter deltas every that-many *simulated*
    seconds through ``watch_sink``.  ``timeseries`` additionally attaches
    a :class:`TimeseriesRecorder` at that tick interval; the flushed
    recorder rides back as ``scenario.recorder``."""
    metrics = MetricsRegistry()
    calibration = CalibrationTracker()
    scenario = build_paper_scenario(
        deadline=deadline,
        min_probability=min_probability,
        lazy_update_interval=lazy_update_interval,
        staleness_threshold=staleness_threshold,
        total_requests=total_requests,
        seed=seed,
        metrics=metrics,
        calibration=calibration,
    )
    recorder = None
    if timeseries is not None and timeseries > 0:
        recorder = TimeseriesRecorder(
            scenario.sim, metrics, interval=timeseries
        ).start()
    if watch is not None and watch > 0:
        sim = scenario.sim
        last = {"snapshot": metrics.snapshot()}

        def dump() -> None:
            snapshot = metrics.snapshot()
            delta = MetricsRegistry.diff(snapshot, last["snapshot"])
            last["snapshot"] = snapshot
            changed = {
                series: entry["value"]
                for series, entry in delta.items()
                if entry["type"] == "counter" and entry["value"]
            }
            line = ", ".join(
                f"{series}: +{value}" for series, value in sorted(changed.items())
            )
            watch_sink(f"[t={sim.now:8.1f}s] {line or '(idle)'}")
            sim.schedule(watch, dump)

        sim.schedule(watch, dump)
    scenario.run()
    if recorder is not None:
        recorder.flush()
    scenario.recorder = recorder
    return metrics, calibration, scenario


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro metrics", description=__doc__.split("\n\n")[0]
    )
    parser.add_argument("--deadline-ms", type=int, default=200)
    parser.add_argument("--pc", type=float, default=0.9, help="P_c target")
    parser.add_argument("--lui", type=float, default=2.0, help="lazy interval, s")
    parser.add_argument("--requests", type=int, default=400)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--staleness", type=int, default=2, metavar="A")
    parser.add_argument(
        "--quick", action="store_true", help="150 requests (CI smoke)"
    )
    parser.add_argument(
        "--watch",
        type=float,
        default=None,
        metavar="SECONDS",
        help="print counter deltas at this simulated-time interval",
    )
    parser.add_argument(
        "--metrics-out", metavar="PATH", help="write the JSONL telemetry artifact"
    )
    parser.add_argument(
        "--timeline-out",
        metavar="PATH",
        help="record a 1 s-tick time series and write it as JSONL "
        "(repro dash input)",
    )
    parser.add_argument(
        "--prometheus", metavar="PATH", help="write the text exposition format"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 unless the model-based strategy is well calibrated",
    )
    args = parser.parse_args(argv)

    requests = 150 if args.quick else args.requests
    # --watch gets the recorder at the watch cadence for free; otherwise
    # a 1 s tick when a timeline artifact was asked for.
    timeseries = None
    if args.watch is not None and args.watch > 0:
        timeseries = args.watch
    elif args.timeline_out:
        timeseries = 1.0
    metrics, calibration, scenario = run_instrumented_cell(
        deadline=args.deadline_ms / 1000.0,
        min_probability=args.pc,
        lazy_update_interval=args.lui,
        total_requests=requests,
        seed=args.seed,
        staleness_threshold=args.staleness,
        watch=args.watch,
        timeseries=timeseries,
    )
    recorder = scenario.recorder

    recovery = dict(scenario.client2.handler.recovery_stats())
    snapshot = metrics.snapshot()
    print(
        render_report(
            metrics=snapshot,
            recovery=recovery,
            calibration=calibration,
            title=(
                f"repro metrics — d={args.deadline_ms}ms P_c={args.pc} "
                f"LUI={args.lui:g}s requests={requests} seed={args.seed}"
            ),
        )
    )

    if recorder is not None and args.watch is not None:
        from repro.experiments.dashboard import render_timeline

        print()
        print(render_timeline(recorder.timeline()))

    if args.timeline_out:
        from repro.experiments.report import write_experiment_artifact

        write_experiment_artifact(
            args.timeline_out,
            "metrics",
            [
                {
                    "event": "timeline",
                    "kind": "cell",
                    "timeline": recorder.timeline().to_dict(),
                }
            ],
            seed=args.seed,
            deadline_ms=args.deadline_ms,
            pc=args.pc,
            lui=args.lui,
            requests=requests,
        )
        print(f"\ntimeline written to {args.timeline_out}")

    if args.metrics_out:
        write_jsonl(
            args.metrics_out,
            [
                {
                    "event": "meta",
                    "experiment": "metrics",
                    "deadline_ms": args.deadline_ms,
                    "pc": args.pc,
                    "lui": args.lui,
                    "requests": requests,
                    "seed": args.seed,
                },
                metrics_event(
                    snapshot,
                    kind="merged",
                    calibration=calibration.to_dict(),
                ),
            ],
        )
        print(f"\ntelemetry written to {args.metrics_out}")
    if args.prometheus:
        from pathlib import Path

        text = prometheus_text(snapshot)
        if recorder is not None:
            from repro.obs.export import prometheus_timeseries_text

            text += prometheus_timeseries_text(recorder.timeline())
        Path(args.prometheus).write_text(text)
        print(f"prometheus text written to {args.prometheus}")

    if args.check:
        strategy = scenario.client2.handler.strategy.name
        if not calibration.well_calibrated(strategy):
            print(
                f"calibration check FAILED for strategy {strategy!r}",
                file=sys.stderr,
            )
            return 1
        print(f"\ncalibration check passed for strategy {strategy!r}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
