"""``repro dash``: terminal + HTML dashboards over timeline artifacts.

Reads the JSONL artifacts the experiment campaigns write with
``--metrics-out``/``--timeline-out`` (any record with ``"event":
"timeline"`` carries a :meth:`Timeline.to_dict` payload), evaluates the
SLOs, and renders:

* per-series unicode **sparklines** — counter rates, gauge values, and
  histogram p95s over simulated time;
* the **SLO compliance table** — objective vs. observed, error-budget
  consumption, current fast/slow burn rates, and any burn alerts;
* the **staleness attribution** split (lazy-publisher vs. queue vs.
  network, DESIGN.md §15);
* the **closed-loop controller panel** — relax-index / lazy-interval /
  guardrail-state sparklines and the rollback ledger, from any
  ``"event": "controller"`` decision logs in the artifact (the
  ``repro adaptive`` campaign writes them);
* with ``--html PATH``, a self-contained HTML report (inline SVG, no
  external assets) of the same content;
* with ``--watch SECONDS``, a live terminal view that re-reads the
  artifact at that wall-clock cadence — point it at the file a running
  campaign is rewriting.

Run: ``repro dash out/overload.jsonl`` or
``python -m repro.experiments.dashboard --help``.
"""

from __future__ import annotations

import argparse
import html as html_escape
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.report import format_table
from repro.obs.slo import (
    SloEngine,
    SloReport,
    SloSpec,
    attribution_summary,
    parse_series,
)
from repro.obs.timeseries import Timeline

SPARK_CHARS = "▁▂▃▄▅▆▇█"


# ---------------------------------------------------------------------------
# Sparklines
# ---------------------------------------------------------------------------
def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Render values as a fixed-width unicode sparkline.

    Longer series are bucketed (mean per bucket) down to ``width``; the
    y-axis is normalized to the series max (an all-zero series renders as
    a flat baseline).
    """
    values = [0.0 if v is None else float(v) for v in values]
    if not values:
        return ""
    if len(values) > width:
        bucketed = []
        for b in range(width):
            lo = b * len(values) // width
            hi = max(lo + 1, (b + 1) * len(values) // width)
            chunk = values[lo:hi]
            bucketed.append(sum(chunk) / len(chunk))
        values = bucketed
    top = max(values)
    if top <= 0:
        return SPARK_CHARS[0] * len(values)
    steps = len(SPARK_CHARS) - 1
    return "".join(
        SPARK_CHARS[min(steps, int(round(v / top * steps)))] for v in values
    )


def _series_rows(
    timeline: Timeline, top: int
) -> List[Tuple[str, str, float, List[float]]]:
    """(label, unit, headline value, per-tick values) per series, most
    active first."""
    rows: List[Tuple[str, str, float, List[float]]] = []
    for series in sorted(timeline.series):
        entry = timeline.series[series]
        if entry["type"] == "counter":
            rates = timeline.rate(series)
            total = float(sum(entry["deltas"]))
            if total:
                rows.append((series, "/s", total, rates))
        elif entry["type"] == "gauge":
            values = [0.0 if v is None else v for v in entry["values"]]
            if any(values):
                rows.append((series, "", max(values), values))
        else:
            p95 = timeline.quantiles(series, 0.95)
            total = float(sum(entry["totals"]))
            if total:
                rows.append((f"{series} p95", "s", total, p95))
    rows.sort(key=lambda r: -r[2])
    return rows[:top]


def render_timeline(
    timeline: Timeline, width: int = 60, top: int = 16
) -> str:
    """Sparkline block for the most active series of a timeline."""
    if timeline.length == 0:
        return "(empty timeline)"
    times = timeline.times()
    header = (
        f"timeline: {timeline.length} ticks x {timeline.interval:g}s "
        f"[t={times[0] - timeline.interval:g}s .. {times[-1]:g}s]"
    )
    rows = _series_rows(timeline, top)
    if not rows:
        return header + "\n(no active series)"
    label_width = max(len(label) for label, _, _, _ in rows)
    lines = [header]
    for label, unit, headline, values in rows:
        last = values[-1] if values else 0.0
        lines.append(
            f"{label.ljust(label_width)}  {sparkline(values, width)}  "
            f"last={last:.4g}{unit}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# SLOs
# ---------------------------------------------------------------------------
def default_slos(
    timeline: Timeline,
    objective: float = 0.9,
    staleness_bound: Optional[float] = None,
) -> List[SloSpec]:
    """Sensible specs for an arbitrary artifact: one timeliness SLO per
    client observed in the timeline, plus one staleness SLO over all
    replicas when a bound is given."""
    clients = set()
    have_staleness = False
    for series in timeline.series:
        name, labels = parse_series(series)
        if name == "client_reads_judged" and "client" in labels:
            clients.add(labels["client"])
        elif name == "replica_staleness_wait_seconds":
            have_staleness = True
    specs = [
        SloSpec(
            name=f"timeliness:{client}", objective=objective, client=client
        )
        for client in sorted(clients)
    ]
    if have_staleness and staleness_bound is not None:
        specs.append(
            SloSpec(
                name=f"staleness<={staleness_bound:g}s",
                objective=objective,
                kind="staleness",
                staleness_bound=staleness_bound,
            )
        )
    return specs


def render_slo_table(reports: Dict[str, SloReport]) -> str:
    """Compliance / budget / burn table, one row per SLO."""
    if not reports:
        return "(no SLOs evaluated)"
    rows = []
    for name in sorted(reports):
        r = reports[name]
        compliance = r.compliance[-1] if r.compliance else 1.0
        consumed = r.budget_consumed[-1] if r.budget_consumed else 0.0
        fast = r.fast_burn[-1] if r.fast_burn else 0.0
        slow = r.slow_burn[-1] if r.slow_burn else 0.0
        pages = sum(1 for a in r.alerts if a.severity == "page")
        tickets = sum(1 for a in r.alerts if a.severity == "ticket")
        first = r.first_alert("page")
        rows.append(
            [
                name,
                f"{r.spec.objective:.3f}",
                f"{compliance:.4f}",
                f"{consumed:.1%}",
                f"{fast:.1f}",
                f"{slow:.1f}",
                f"{pages}/{tickets}",
                "-" if first is None else f"{first.time:.2f}s",
                "yes" if r.met() else "NO",
            ]
        )
    return format_table(
        ["slo", "target", "observed", "budget used", "fast burn",
         "slow burn", "page/ticket", "first page", "met"],
        rows,
        title="SLO compliance",
    )


def render_attribution(timeline: Timeline) -> str:
    """Staleness attribution split (empty string when nothing observed)."""
    summary = attribution_summary(timeline)
    if not summary["reads"]:
        return ""
    rows = [
        [name, f"{summary['components'][name]:.4f}",
         f"{summary['fractions'][name]:.1%}"]
        for name in summary["components"]
    ]
    table = format_table(
        ["component", "seconds", "share"],
        rows,
        title=(
            f"staleness attribution — {summary['observed_seconds']:.4f}s "
            f"over {summary['reads']} reads"
        ),
    )
    return table


def render_dashboard(
    timeline: Timeline,
    reports: Optional[Dict[str, SloReport]] = None,
    title: str = "repro dash",
    width: int = 60,
    top: int = 16,
) -> str:
    """The full terminal dashboard as one string."""
    blocks = [title, "=" * len(title)]
    blocks.append(render_timeline(timeline, width=width, top=top))
    if reports is not None:
        blocks.append(render_slo_table(reports))
        for name in sorted(reports):
            r = reports[name]
            if r.fast_burn:
                blocks.append(
                    f"burn  {name}: {sparkline(r.fast_burn, width)}  "
                    f"fast={r.fast_burn[-1]:.1f} slow={r.slow_burn[-1]:.1f}"
                )
    attribution = render_attribution(timeline)
    if attribution:
        blocks.append(attribution)
    return "\n\n".join(blocks)


# ---------------------------------------------------------------------------
# Artifact loading
# ---------------------------------------------------------------------------
def load_timeline_records(path: str | Path) -> Tuple[dict, List[dict]]:
    """(meta record, timeline records) from a JSONL artifact."""
    meta: dict = {}
    records: List[dict] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("event") == "meta" and not meta:
                meta = record
            elif record.get("event") == "timeline":
                records.append(record)
    return meta, records


def load_controller_records(path: str | Path) -> List[dict]:
    """Controller decision logs (``"event": "controller"`` records, as the
    adaptive campaign writes them) from a JSONL artifact."""
    records: List[dict] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("event") == "controller":
                records.append(record)
    return records


#: State names at their escalation level, for the controller state strip.
_CONTROLLER_STATE_LEVELS = {
    "conservative": 0.0,
    "measure": 1.0,
    "relax": 2.0,
    "rollback": 3.0,
}


def render_controller(records: List[dict], width: int = 60) -> str:
    """The closed-loop controller panel: per decision log, sparklines of
    the relax index, the actuated lazy interval, and the guardrail state
    (conservative→measure→relax→rollback), plus the rollback ledger."""
    blocks: List[str] = []
    for record in records:
        decisions = record.get("decisions") or []
        if not decisions:
            continue
        index = [float(d.get("relax_index", 0)) for d in decisions]
        t_l = [float(d.get("t_l") or 0.0) for d in decisions]
        state = [
            _CONTROLLER_STATE_LEVELS.get(str(d.get("state")), 0.0)
            for d in decisions
        ]
        rollbacks = [
            d for d in decisions
            if any(str(a).startswith("rollback:") for a in d.get("actions", ()))
        ]
        relaxes = sum(
            1
            for d in decisions
            for a in d.get("actions", ())
            if str(a).startswith("relax:")
        )
        header = (
            f"controller — mode={record.get('mode', '?')} "
            f"seed={record.get('seed', '?')}: {len(decisions)} epochs, "
            f"{relaxes} relaxes, {len(rollbacks)} rollbacks"
        )
        lines = [
            header,
            f"  index {sparkline(index, width)}  last={index[-1]:g}",
            f"  T_L   {sparkline(t_l, width)}  last={t_l[-1]:.3g}s",
            f"  state {sparkline(state, width)}  "
            "(0=conservative 1=measure 2=relax 3=rollback)",
        ]
        for d in rollbacks[:6]:
            acts = [a for a in d.get("actions", ()) if "rollback" in str(a)]
            lines.append(
                f"  t={d.get('time', 0):.2f} {'; '.join(map(str, acts))}"
            )
        if len(rollbacks) > 6:
            lines.append(f"  ... {len(rollbacks) - 6} more rollbacks")
        blocks.append("\n".join(lines))
    if not blocks:
        return ""
    title = "closed-loop controller"
    return "\n\n".join([f"{title}\n{'-' * len(title)}"] + blocks)


def select_timeline(
    records: List[dict], select: Optional[Dict[str, str]] = None
) -> Optional[Timeline]:
    """Pick one timeline: apply ``select`` filters (record-field equality,
    compared as strings), then prefer the merged record, else the first."""
    if select:
        records = [
            r
            for r in records
            if all(str(r.get(k)) == v for k, v in select.items())
        ]
    if not records:
        return None
    merged = [r for r in records if r.get("kind") == "merged"]
    chosen = merged[0] if merged else records[0]
    return Timeline.from_dict(chosen["timeline"])


# ---------------------------------------------------------------------------
# HTML export
# ---------------------------------------------------------------------------
def _svg_polyline(
    values: Sequence[float], width: int = 560, height: int = 48
) -> str:
    values = [0.0 if v is None else float(v) for v in values]
    if not values:
        return ""
    top = max(values) or 1.0
    n = len(values)
    points = " ".join(
        f"{(i * width / max(1, n - 1)):.1f},"
        f"{(height - 2 - v / top * (height - 6)):.1f}"
        for i, v in enumerate(values)
    )
    return (
        f'<svg width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}">'
        f'<polyline fill="none" stroke="#2b6cb0" stroke-width="1.5" '
        f'points="{points}"/></svg>'
    )


def export_html(
    path: str | Path,
    timeline: Timeline,
    reports: Optional[Dict[str, SloReport]] = None,
    title: str = "repro dash",
    top: int = 16,
    controllers: Optional[List[dict]] = None,
) -> Path:
    """Write a self-contained HTML report (inline SVG, no assets)."""
    esc = html_escape.escape
    parts = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        f"<title>{esc(title)}</title>",
        "<style>body{font:14px/1.5 system-ui,sans-serif;margin:2em;"
        "max-width:880px}table{border-collapse:collapse}"
        "td,th{border:1px solid #ccc;padding:4px 8px;text-align:right}"
        "th{background:#f5f5f5}td:first-child,th:first-child"
        "{text-align:left}code{background:#f5f5f5;padding:1px 4px}"
        ".alert{color:#c53030;font-weight:bold}</style></head><body>",
        f"<h1>{esc(title)}</h1>",
    ]
    times = timeline.times()
    if times:
        parts.append(
            f"<p>{timeline.length} ticks &times; {timeline.interval:g}s "
            f"of simulated time (through t={times[-1]:g}s)</p>"
        )
    parts.append("<h2>Series</h2>")
    for label, unit, _, values in _series_rows(timeline, top):
        last = values[-1] if values else 0.0
        parts.append(
            f"<p><code>{esc(label)}</code> last={last:.4g}{esc(unit)}<br>"
            f"{_svg_polyline(values)}</p>"
        )
    if reports:
        parts.append("<h2>SLOs</h2><table><tr><th>slo</th><th>target</th>"
                     "<th>observed</th><th>budget used</th><th>fast burn</th>"
                     "<th>slow burn</th><th>alerts</th><th>met</th></tr>")
        for name in sorted(reports):
            r = reports[name]
            compliance = r.compliance[-1] if r.compliance else 1.0
            consumed = r.budget_consumed[-1] if r.budget_consumed else 0.0
            fast = r.fast_burn[-1] if r.fast_burn else 0.0
            slow = r.slow_burn[-1] if r.slow_burn else 0.0
            met = "yes" if r.met() else "<span class='alert'>NO</span>"
            parts.append(
                f"<tr><td>{esc(name)}</td><td>{r.spec.objective:.3f}</td>"
                f"<td>{compliance:.4f}</td><td>{consumed:.1%}</td>"
                f"<td>{fast:.1f}</td><td>{slow:.1f}</td>"
                f"<td>{len(r.alerts)}</td><td>{met}</td></tr>"
            )
        parts.append("</table>")
        for name in sorted(reports):
            r = reports[name]
            if r.fast_burn and max(r.fast_burn) > 0:
                parts.append(
                    f"<p>burn <code>{esc(name)}</code><br>"
                    f"{_svg_polyline(r.fast_burn)}</p>"
                )
    summary = attribution_summary(timeline)
    if summary["reads"]:
        parts.append(
            "<h2>Staleness attribution</h2><table>"
            "<tr><th>component</th><th>seconds</th><th>share</th></tr>"
        )
        for name, seconds in summary["components"].items():
            parts.append(
                f"<tr><td>{esc(name)}</td><td>{seconds:.4f}</td>"
                f"<td>{summary['fractions'][name]:.1%}</td></tr>"
            )
        parts.append("</table>")
    if controllers:
        parts.append("<h2>Closed-loop controller</h2>")
        for record in controllers:
            decisions = record.get("decisions") or []
            if not decisions:
                continue
            index = [float(d.get("relax_index", 0)) for d in decisions]
            t_l = [float(d.get("t_l") or 0.0) for d in decisions]
            rollbacks = sum(
                1
                for d in decisions
                for a in d.get("actions", ())
                if str(a).startswith("rollback:")
            )
            parts.append(
                f"<p>mode=<code>{esc(str(record.get('mode', '?')))}</code> "
                f"seed=<code>{esc(str(record.get('seed', '?')))}</code> — "
                f"{len(decisions)} epochs, {rollbacks} rollbacks<br>"
                f"relax index {_svg_polyline(index)}<br>"
                f"T_L {_svg_polyline(t_l)}</p>"
            )
    parts.append("</body></html>")
    path = Path(path)
    path.write_text("\n".join(parts), encoding="utf-8")
    return path


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro dash", description=__doc__.split("\n\n")[0]
    )
    parser.add_argument(
        "input", help="JSONL artifact with timeline records "
        "(--metrics-out/--timeline-out output)"
    )
    parser.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="pick the timeline record matching this field "
        "(e.g. mode=shed); repeatable",
    )
    parser.add_argument(
        "--objective", type=float, default=0.9,
        help="objective for the auto-derived SLOs (default 0.9)",
    )
    parser.add_argument(
        "--staleness-bound", type=float, default=None, metavar="SECONDS",
        help="also evaluate a staleness SLO at this bound",
    )
    parser.add_argument("--width", type=int, default=60)
    parser.add_argument(
        "--top", type=int, default=16, help="series rows to show"
    )
    parser.add_argument(
        "--watch", type=float, default=None, metavar="SECONDS",
        help="re-read the artifact at this wall-clock cadence",
    )
    parser.add_argument(
        "--iterations", type=int, default=None,
        help="stop --watch after this many renders (default: run forever)",
    )
    parser.add_argument(
        "--html", metavar="PATH", help="write a self-contained HTML report"
    )
    args = parser.parse_args(argv)

    select: Dict[str, str] = {}
    for item in args.select:
        if "=" not in item:
            parser.error(f"--select needs KEY=VALUE, got {item!r}")
        key, _, value = item.partition("=")
        select[key] = value

    def render_once() -> Optional[str]:
        meta, records = load_timeline_records(args.input)
        timeline = select_timeline(records, select or None)
        if timeline is None:
            return None
        controllers = load_controller_records(args.input)
        specs = default_slos(
            timeline,
            objective=args.objective,
            staleness_bound=args.staleness_bound,
        )
        reports = SloEngine(specs).evaluate(timeline) if specs else None
        experiment = meta.get("experiment", "?")
        title = f"repro dash — {experiment} ({args.input})"
        text = render_dashboard(
            timeline, reports, title=title, width=args.width, top=args.top
        )
        panel = render_controller(controllers, width=args.width)
        if panel:
            text = f"{text}\n\n{panel}"
        if args.html:
            export_html(
                args.html, timeline, reports, title=title, top=args.top,
                controllers=controllers,
            )
        return text

    if args.watch is None:
        text = render_once()
        if text is None:
            print(
                f"no timeline records in {args.input} "
                f"(matching {select})" if select
                else f"no timeline records in {args.input}",
                file=sys.stderr,
            )
            return 1
        print(text)
        if args.html:
            print(f"\nhtml report written to {args.html}")
        return 0

    renders = 0
    try:
        while args.iterations is None or renders < args.iterations:
            text = render_once()
            # ANSI clear + home so the view repaints in place.
            sys.stdout.write("\x1b[2J\x1b[H")
            if text is None:
                print(f"waiting for timeline records in {args.input} ...")
            else:
                print(text)
            sys.stdout.flush()
            renders += 1
            if args.iterations is not None and renders >= args.iterations:
                break
            time.sleep(args.watch)
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
