"""Figure 4: adaptivity of the probabilistic model (both panels).

The §6 validation experiment: 10 replicas (4 primary + 6 secondary) plus
the sequencer; two clients issuing 1000 alternating write/read requests
with a 1000 ms request delay.  Client 1 is fixed at ``<a=4, d=200 ms,
P_c=0.1>``; client 2 sweeps its deadline with ``a=2`` for each combination
of ``P_c ∈ {0.9, 0.5}`` and ``LUI ∈ {2 s, 4 s}``.

Panel (a): average number of replicas selected for client 2 — should fall
as the deadline loosens, be higher for the stricter P_c, and higher for
the longer LUI.  Panel (b): observed timing-failure probability with 95 %
binomial confidence intervals — should stay within ``1 − P_c`` and fall
with the deadline; the longer LUI gives more deferred reads and therefore
more timing failures.

Run: ``python -m repro.experiments.figure4`` (add ``--quick`` for a
shorter sweep, ``--jobs N`` to fan the independent cells out over N
worker processes; results are identical for any jobs value).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.selection import SelectionStrategy
from repro.experiments.harness import (
    Figure4Cell,
    pack_figure4_cell,
    run_figure4_cell,
    unpack_figure4_cell,
)
from repro.experiments.report import format_series, format_table
from repro.experiments.runner import CellSpec, add_jobs_argument, run_cells

DEADLINES_MS = (80, 100, 120, 140, 160, 180, 200, 220)
PROBABILITIES = (0.9, 0.5)
LAZY_INTERVALS = (2.0, 4.0)

#: Recorder tick for telemetry-bearing sweeps: cells simulate hundreds to
#: a thousand seconds at a 1 s request delay, so a 5 s tick keeps ~40-200
#: points per cell.
TIMELINE_INTERVAL = 5.0


@dataclass
class Figure4Result:
    """All cells of the sweep, keyed by (P_c, LUI, deadline ms)."""

    cells: dict[tuple[float, float, int], Figure4Cell] = field(default_factory=dict)

    def series(self, probability: float, lui: float) -> list[Figure4Cell]:
        return [
            self.cells[(probability, lui, d)]
            for d in sorted({key[2] for key in self.cells})
            if (probability, lui, d) in self.cells
        ]

    def configurations(self) -> list[tuple[float, float]]:
        return sorted({(p, l) for (p, l, _) in self.cells}, reverse=True)

    # -- shape checks used by tests and EXPERIMENTS.md -------------------
    def selection_decreases_with_deadline(
        self, probability: float, lui: float, slack: float = 1.0
    ) -> bool:
        """Panel (a): tightest deadline needs at least as many replicas as
        the loosest (monotone trend with per-point noise allowance)."""
        series = self.series(probability, lui)
        if len(series) < 2:
            return True
        first, last = series[0], series[-1]
        monotone_ends = first.avg_replicas_selected >= last.avg_replicas_selected
        no_big_bumps = all(
            later.avg_replicas_selected
            <= earlier.avg_replicas_selected + slack
            for earlier, later in zip(series, series[1:])
        )
        return monotone_ends and no_big_bumps

    def qos_met_everywhere(self, probability: float, lui: float) -> bool:
        """Panel (b): observed failure probability within 1 − P_c."""
        return all(cell.meets_qos() for cell in self.series(probability, lui))


def run_figure4(
    deadlines_ms: Sequence[int] = DEADLINES_MS,
    probabilities: Sequence[float] = PROBABILITIES,
    lazy_intervals: Sequence[float] = LAZY_INTERVALS,
    total_requests: int = 1000,
    seed: int = 0,
    staleness_threshold: int = 2,
    strategy2: Optional[SelectionStrategy] = None,
    jobs: Optional[int] = 1,
    progress: bool = False,
    collect_metrics: bool = False,
    chunk_size: Optional[int] = None,
    timeseries: Optional[float] = None,
) -> Figure4Result:
    """Run the full sweep, optionally fanned out over ``jobs`` processes.

    Every cell is an independent simulation seeded from ``seed`` alone,
    so the grid parallelizes freely; ``jobs=1`` preserves the historical
    serial loop bit for bit, and the chunked parallel path is pinned to
    it by property tests.  The sweep-wide kwargs travel once per worker
    (``common=``), each spec carries only its grid coordinates, and
    telemetry-bearing cells return through the compact snapshot codec.
    """
    common = dict(
        total_requests=total_requests,
        seed=seed,
        staleness_threshold=staleness_threshold,
        strategy2=strategy2,
        collect_metrics=collect_metrics,
        timeseries=timeseries,
    )
    specs = [
        CellSpec(
            key=(probability, lui, deadline_ms),
            fn=run_figure4_cell,
            kwargs=dict(
                deadline=deadline_ms / 1000.0,
                min_probability=probability,
                lazy_update_interval=lui,
            ),
        )
        for probability in probabilities
        for lui in lazy_intervals
        for deadline_ms in deadlines_ms
    ]
    cells = run_cells(
        specs,
        jobs=jobs,
        progress=progress,
        label="figure4",
        chunk_size=chunk_size,
        common=common,
        encode=pack_figure4_cell,
        decode=unpack_figure4_cell,
    )
    result = Figure4Result()
    for spec, cell in zip(specs, cells):
        result.cells[spec.key] = cell
    return result


def merged_telemetry(result: Figure4Result) -> tuple[dict, Optional[dict]]:
    """Fold every cell's telemetry into one (metrics, calibration) pair.

    Both merges are commutative, so the totals are identical whatever
    order (or worker process) produced the cells.
    """
    from repro.obs.calibration import CalibrationTracker
    from repro.obs.metrics import MetricsRegistry

    snapshots = [c.metrics for c in result.cells.values() if c.metrics is not None]
    payloads = [c.calibration for c in result.cells.values()]
    metrics = MetricsRegistry.merge(*snapshots) if snapshots else {}
    if any(p is not None for p in payloads):
        calibration = CalibrationTracker.merge(payloads).to_dict()
    else:
        calibration = None
    return metrics, calibration


def merged_timeline(result: Figure4Result):
    """Fold every cell's timeline into one sweep-wide Timeline (or None).

    Cells share the same simulated clock origin, so their tick grids
    align and the merge is the exact cross-worker/cross-cell total —
    identical for any jobs value.
    """
    from repro.obs.timeseries import Timeline

    timelines = [
        Timeline.from_dict(c.timeline)
        for c in result.cells.values()
        if c.timeline is not None
    ]
    if not timelines:
        return None
    return Timeline.merge(*timelines)


def write_metrics_artifact(
    path: str, result: Figure4Result, meta: Optional[dict] = None
) -> None:
    """JSONL telemetry artifact: one meta line, one line per cell, one
    merged-totals line, and — when the sweep recorded time series — one
    merged-timeline line (the ``repro metrics``/``repro dash``/CI
    consumers parse this)."""
    from repro.experiments.report import write_experiment_artifact
    from repro.obs.export import metrics_event

    meta = dict(meta or {})
    seed = meta.pop("seed", None)
    records = []
    for key in sorted(result.cells):
        cell = result.cells[key]
        if cell.metrics is None:
            continue
        records.append(
            metrics_event(
                cell.metrics,
                kind="cell",
                min_probability=key[0],
                lazy_update_interval=key[1],
                deadline_ms=key[2],
                calibration=cell.calibration,
            )
        )
    merged, calibration = merged_telemetry(result)
    records.append(
        metrics_event(merged, kind="merged", calibration=calibration)
    )
    timeline = merged_timeline(result)
    if timeline is not None:
        records.append(
            {"event": "timeline", "kind": "merged", "timeline": timeline.to_dict()}
        )
    write_experiment_artifact(path, "figure4", records, seed=seed, **meta)


def render(result: Figure4Result) -> str:
    blocks = []
    rows_a = []
    rows_b = []
    for probability, lui in result.configurations():
        for cell in result.series(probability, lui):
            label = (f"{probability:.1f}", f"{lui:g}", int(cell.deadline * 1000))
            rows_a.append(label + (cell.avg_replicas_selected,))
            rows_b.append(
                label
                + (
                    cell.timing_failure_probability,
                    f"[{cell.ci_low:.3f}, {cell.ci_high:.3f}]",
                    cell.timing_failures,
                    cell.reads,
                    "yes" if cell.meets_qos() else "NO",
                )
            )
    blocks.append(
        format_table(
            ["P_c", "LUI_s", "deadline_ms", "avg_replicas_selected"],
            rows_a,
            title="Figure 4(a) — average number of replicas selected (client 2)",
        )
    )
    blocks.append(
        format_table(
            ["P_c", "LUI_s", "deadline_ms", "P(timing failure)", "95% CI",
             "failures", "reads", "QoS met"],
            rows_b,
            title="Figure 4(b) — observed probability of timing failure (client 2)",
        )
    )
    for probability, lui in result.configurations():
        series = result.series(probability, lui)
        xs = [cell.deadline * 1000 for cell in series]
        blocks.append(
            format_series(
                f"selected(P_c={probability}, LUI={lui:g}s)",
                xs,
                [cell.avg_replicas_selected for cell in series],
            )
        )
        blocks.append(
            format_series(
                f"failure(P_c={probability}, LUI={lui:g}s)",
                xs,
                [cell.timing_failure_probability for cell in series],
            )
        )
    return "\n\n".join(blocks)


def main(argv: Optional[list[str]] = None) -> None:
    argv = sys.argv[1:] if argv is None else argv
    quick = "--quick" in argv
    jobs = add_jobs_argument(argv)
    metrics_out = None
    if "--metrics-out" in argv:
        metrics_out = argv[argv.index("--metrics-out") + 1]
    result = run_figure4(
        deadlines_ms=(100, 160, 220) if quick else DEADLINES_MS,
        total_requests=200 if quick else 1000,
        jobs=jobs,
        progress=jobs != 1,
        collect_metrics=metrics_out is not None,
        timeseries=TIMELINE_INTERVAL if metrics_out is not None else None,
    )
    print(render(result))
    if metrics_out is not None:
        write_metrics_artifact(
            metrics_out, result, meta={"quick": quick, "seed": 0}
        )
        print(f"\ntelemetry written to {metrics_out}")
    if "--save" in argv:
        from repro.experiments.report import save_results

        path = argv[argv.index("--save") + 1]
        save_results(
            path,
            [result.cells[key] for key in sorted(result.cells)],
            meta={"experiment": "figure4", "quick": quick},
        )
        print(f"\nsaved to {path}")


if __name__ == "__main__":
    main()
