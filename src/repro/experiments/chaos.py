"""Seeded chaos campaigns with consistency and timeliness invariants.

Runs the full middleware stack under randomized-but-reproducible fault
schedules (:mod:`repro.net.chaos`) and then audits the run against the
guarantees the protocol claims (§3, §4.1, DESIGN.md §9):

* **order** — live serving primaries and secondaries never diverge: every
  pair of application histories is prefix-consistent, and after the drain
  window the serving primaries have converged to the same CSN;
* **staleness** — a non-deferred read never reflects state staler than its
  QoS threshold, judged conservatively against the sequencer's stamp
  (``sequencer.stamp`` trace records) and the serving replica's CSN;
* **durability** — an update acknowledged to a client is never lost: its
  GSN is unique and at or below the final CSN of every live serving
  primary, even across sequencer failovers and primary rejoins;
* **liveness** — once all faults heal, the system drains: probe reads
  issued after the grace window all resolve with a value.

A campaign is a pure function of its seed; a failing seed replays exactly.
``python -m repro.experiments.chaos --seeds 10`` (or ``repro chaos``) runs
a soak and exits non-zero on any violation, dumping the offending trace
when ``--trace-dir`` is given.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.core.client import RetryPolicy
from repro.core.qos import QoSSpec
from repro.core.requests import ReadOutcome, UpdateOutcome
from repro.core.service import ServiceConfig, build_testbed
from repro.experiments.report import format_table, render_report, save_results
from repro.groups.membership import MembershipConfig
from repro.net.chaos import ChaosConfig, ChaosEngine, ChaosTargets
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import Timeline, TimeseriesRecorder
from repro.sim.process import Process, Timeout
from repro.sim.rng import Normal, seed_for
from repro.sim.tracing import Trace
from repro.workloads.generators import (
    ArrivalRateController,
    OpenLoopUpdater,
    PeriodicReader,
)

READ_QOS = QoSSpec(staleness_threshold=10, deadline=1.0, min_probability=0.5)
DRAIN_GRACE = 6.0  # post-campaign window for retransmits + state transfers
TIMELINE_INTERVAL = 0.25  # recorder tick: resolves fault windows of ~1 s


@dataclass
class CampaignResult:
    """Outcome of one seeded campaign."""

    seed: int
    duration: float
    violations: list[str]
    faults_injected: int
    faults_skipped: int
    reads_issued: int
    reads_resolved: int
    timing_failures: int
    updates_acked: int
    recovery: dict[str, int] = field(default_factory=dict)
    events: list[str] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)  # MetricsRegistry snapshot
    timeline: Optional[dict] = None  # Timeline.to_dict() (repro dash input)

    @property
    def clean(self) -> bool:
        return not self.violations


def run_campaign(
    seed: int,
    duration: float = 20.0,
    membership_outage: bool = False,
    retry: bool = True,
    chaos_config: Optional[ChaosConfig] = None,
    trace: Optional[Trace] = None,
    chaos_overrides: Optional[dict] = None,
) -> CampaignResult:
    """Run one seeded fault campaign and audit its trace.

    The testbed runs three serving primaries (one protected so the order
    invariant always has ground truth), three secondaries, a steady update
    feed, and a periodic reader whose gateway uses the retry policy when
    ``retry`` is set.  The chaos engine injects faults for ``duration``
    seconds after a short warm-up, then the run drains and the invariant
    checkers audit the end state and the trace.
    """
    trace = trace if trace is not None else Trace(enabled=True)
    metrics = MetricsRegistry()
    config = ServiceConfig(
        name="svc",
        num_primaries=3,
        num_secondaries=3,
        lazy_update_interval=0.5,
        read_service_time=Normal(0.020, 0.005, floor=0.002),
        heartbeat_interval=0.1,
        suspect_timeout=0.35,
        gsn_wait_timeout=0.15,
    )
    testbed = build_testbed(
        config,
        seed=seed,
        trace=trace,
        metrics=metrics,
        membership_config=MembershipConfig(
            heartbeat_interval=0.1, suspect_timeout=0.35, sweep_interval=0.1
        ),
    )
    sim, service, network = testbed.sim, testbed.service, testbed.network

    policy = RetryPolicy(max_retries=2, hedge=True) if retry else None
    feed = service.create_client("feed", read_only_methods={"get"})
    reader = service.create_client(
        "reader", read_only_methods={"get"}, retry_policy=policy
    )

    overrides = dict(chaos_overrides or {})
    overrides.setdefault(
        "membership_outage_weight", 1.0 if membership_outage else 0.0
    )
    # A load storm needs the rate controller shared between the chaos
    # engine and the generators; leave it out entirely when the fault is
    # off so existing campaigns are untouched.
    storming = overrides.get("load_storm_weight", 0.0) > 0 or (
        chaos_config is not None and chaos_config.load_storm_weight > 0
    )
    rate_controller = ArrivalRateController() if storming else None

    warmup = 2.0
    workload_span = warmup + duration + DRAIN_GRACE / 2
    updater = OpenLoopUpdater(
        sim, feed, testbed.rng, rate=4.0, duration=workload_span,
        rate_controller=rate_controller,
    )
    reader_gen = PeriodicReader(
        sim, reader, READ_QOS, period=0.1, duration=workload_span,
        rate_controller=rate_controller,
    ) if storming else PeriodicReader(
        sim, reader, READ_QOS, period=0.1, count=int(workload_span / 0.1)
    )

    replica_names = {h.name for h in service.all_replicas()}

    def repair(name: str) -> None:
        if name in replica_names:
            service.recover_replica(name)
        else:
            network.recover(name)

    engine = ChaosEngine(
        network,
        ChaosTargets(
            primaries=tuple(p.name for p in service.primaries),
            secondaries=tuple(s.name for s in service.secondaries),
            sequencer=service.sequencer_name,
            membership=testbed.membership.name if membership_outage else None,
            protected=(service.primaries[0].name,),
        ),
        chaos_config or ChaosConfig(duration=duration, **overrides),
        rng=testbed.rng.stream("chaos.engine"),
        repair=repair,
        trace=trace,
        metrics=metrics,
        rate_controller=rate_controller,
    )

    def repair_sweep() -> None:
        """Re-admit live replicas that membership evicted (partitions)."""
        for handler in service.all_replicas():
            if not network.is_up(handler.name):
                continue
            home = (
                service.groups.secondary
                if handler in service.secondaries
                else service.groups.primary
            )
            if handler.name not in testbed.membership.view_of(home):
                service.recover_replica(handler.name)
        sim.schedule(0.4, repair_sweep)

    recorder = TimeseriesRecorder(
        sim, metrics, interval=TIMELINE_INTERVAL
    ).start()
    sim.run(until=warmup)
    engine.start()
    sim.schedule(0.4, repair_sweep)
    sim.run(until=warmup + duration + DRAIN_GRACE)

    # Liveness probes: after heal + grace every read must resolve.
    probes: list[ReadOutcome] = []
    prober = PeriodicReader(sim, reader, READ_QOS, period=0.2, count=5)
    probes = prober.outcomes
    sim.run(until=sim.now + 5.0)
    recorder.flush()

    violations = _check_invariants(
        testbed, reader_gen.outcomes, updater.outcomes, probes, trace
    )

    recovery = dict(reader.recovery_stats())
    for handler in service.all_replicas():
        for key in (
            "state_transfers_started",
            "state_transfers_completed",
            "state_transfers_served",
        ):
            recovery[key] = recovery.get(key, 0) + getattr(handler, key, 0)

    return CampaignResult(
        seed=seed,
        duration=duration,
        violations=violations,
        faults_injected=engine.faults_injected,
        faults_skipped=engine.faults_skipped,
        reads_issued=reader.reads_issued,
        reads_resolved=reader.reads_resolved,
        timing_failures=reader.timing_failures,
        updates_acked=len(updater.outcomes),
        recovery=recovery,
        events=[
            f"t={e.time:.3f} {e.kind} {e.target}" for e in engine.events
        ],
        metrics=metrics.snapshot(),
        timeline=recorder.timeline().to_dict(),
    )


# ---------------------------------------------------------------------------
# Invariant checkers
# ---------------------------------------------------------------------------
def _prefix_consistent(a: list, b: list) -> bool:
    n = min(len(a), len(b))
    return a[:n] == b[:n]


def _check_invariants(
    testbed,
    read_outcomes: list[ReadOutcome],
    update_outcomes: list[UpdateOutcome],
    probes: list[ReadOutcome],
    trace: Trace,
) -> list[str]:
    violations: list[str] = []
    service = testbed.service
    network = testbed.network
    membership = testbed.membership

    primary_view = membership.view_of(service.groups.primary)
    # The current sequencer (post-failover this is a promoted ex-serving
    # primary) stops committing by design — its frozen history is still
    # prefix-checked below, but it is exempt from convergence/durability.
    live_primaries = [
        h
        for h in service.primaries
        if network.is_up(h.name)
        and h.name in primary_view
        and h.name != primary_view.leader
        and not getattr(h, "_recovering", False)
    ]
    live_secondaries = [
        h
        for h in service.secondaries
        if network.is_up(h.name)
        and h.name in membership.view_of(service.groups.secondary)
    ]

    promoted = [
        h
        for h in service.primaries
        if network.is_up(h.name) and h.name == primary_view.leader
    ]

    # Order: live replicas never diverge, and the serving primaries have
    # converged by the end of the drain window.
    reference = max(live_primaries, key=lambda h: h.my_csn, default=None)
    if reference is not None:
        for handler in live_primaries + live_secondaries + promoted:
            if not _prefix_consistent(handler.app.history, reference.app.history):
                violations.append(
                    f"order: {handler.name} history diverges from "
                    f"{reference.name}"
                )
        for handler in live_primaries:
            if handler.my_csn != reference.my_csn:
                violations.append(
                    f"order: {handler.name} csn={handler.my_csn} never "
                    f"converged to {reference.name} csn={reference.my_csn}"
                )

    # Staleness: judged against the sequencer's (re-)stamp, which is the
    # latest GSN the read could have been ordered after — conservative.
    stamps: dict[int, int] = {}
    for record in trace.filter("sequencer.stamp"):
        stamps[record.detail["request_id"]] = record.detail["gsn"]
    for outcome in read_outcomes:
        if outcome.value is None or outcome.deferred or outcome.gsn < 0:
            continue
        stamp = stamps.get(outcome.request_id)
        if stamp is None:
            continue
        staleness = stamp - outcome.gsn
        if staleness > READ_QOS.staleness_threshold:
            violations.append(
                f"staleness: read {outcome.request_id} served "
                f"{staleness} versions stale (threshold "
                f"{READ_QOS.staleness_threshold})"
            )

    # Durability: acknowledged updates are never lost, never doubly
    # sequenced, and survive on every live serving primary.
    seen_gsn: dict[int, int] = {}
    max_acked = 0
    for outcome in update_outcomes:
        if outcome.gsn <= 0:
            violations.append(
                f"durability: update {outcome.request_id} acked without a GSN"
            )
            continue
        prior = seen_gsn.get(outcome.gsn)
        if prior is not None and prior != outcome.request_id:
            violations.append(
                f"durability: GSN {outcome.gsn} acked for both request "
                f"{prior} and {outcome.request_id}"
            )
        seen_gsn[outcome.gsn] = outcome.request_id
        max_acked = max(max_acked, outcome.gsn)
    for handler in live_primaries:
        if handler.my_csn < max_acked:
            violations.append(
                f"durability: {handler.name} csn={handler.my_csn} lost "
                f"acked updates up to GSN {max_acked}"
            )

    # Liveness: the healed system serves every probe read with a value.
    for outcome in probes:
        if outcome.value is None:
            violations.append(
                f"liveness: probe read {outcome.request_id} never resolved "
                f"after faults healed"
            )

    return violations


# ---------------------------------------------------------------------------
# Soak harness + CLI
# ---------------------------------------------------------------------------
def run_chaos_suite(
    seeds: list[int],
    duration: float = 20.0,
    membership_outage: bool = False,
    retry: bool = True,
    trace_dir: Optional[Path] = None,
    chaos_overrides: Optional[dict] = None,
) -> list[CampaignResult]:
    results = []
    for seed in seeds:
        trace = Trace(enabled=True)
        result = run_campaign(
            seed,
            duration=duration,
            membership_outage=membership_outage,
            retry=retry,
            trace=trace,
            chaos_overrides=chaos_overrides,
        )
        results.append(result)
        if result.violations and trace_dir is not None:
            trace_dir.mkdir(parents=True, exist_ok=True)
            path = trace_dir / f"chaos-seed{seed}.trace"
            with path.open("w") as fh:
                for line in result.violations:
                    fh.write(f"VIOLATION {line}\n")
                for line in result.events:
                    fh.write(f"EVENT {line}\n")
                for record in trace.records:
                    fh.write(
                        f"{record.time:.6f} {record.category} "
                        f"{record.actor} {record.detail}\n"
                    )
            # Machine-readable twin of the dump, one JSON object per record.
            (trace_dir / f"chaos-seed{seed}.jsonl").write_text(trace.to_jsonl())
    return results


def summarize(results: list[CampaignResult]) -> str:
    rows = []
    for r in results:
        rows.append(
            [
                r.seed,
                r.faults_injected,
                r.reads_resolved,
                r.timing_failures,
                r.updates_acked,
                r.recovery.get("retries_sent", 0),
                r.recovery.get("state_transfers_completed", 0),
                "CLEAN" if r.clean else f"{len(r.violations)} VIOLATIONS",
            ]
        )
    table = format_table(
        ["seed", "faults", "reads", "late", "acks", "retries", "xfers", "verdict"],
        rows,
        title="chaos soak",
    )
    totals: dict[str, int] = {}
    for r in results:
        for key, value in r.recovery.items():
            totals[key] = totals.get(key, 0) + value
    merged = MetricsRegistry.merge(*(r.metrics for r in results if r.metrics))
    return (
        table
        + "\n\n"
        + render_report(metrics=merged, recovery=totals, title="campaign telemetry")
    )


def write_metrics_artifact(
    path: str, results: list[CampaignResult], seeds: list[int]
) -> None:
    """JSONL artifact: per-campaign metrics, merged totals, merged timeline."""
    from repro.experiments.report import write_experiment_artifact
    from repro.obs.export import metrics_event

    records: list[dict] = []
    for r in results:
        if r.metrics:
            records.append(
                metrics_event(
                    r.metrics,
                    kind="cell",
                    seed=r.seed,
                    faults_injected=r.faults_injected,
                    violations=r.violations,
                )
            )
    merged = MetricsRegistry.merge(*(r.metrics for r in results if r.metrics))
    records.append(metrics_event(merged, kind="merged"))
    timelines = [
        Timeline.from_dict(r.timeline)
        for r in results
        if r.timeline is not None
    ]
    if timelines:
        records.append(
            {
                "event": "timeline",
                "kind": "merged",
                "timeline": Timeline.merge(*timelines).to_dict(),
            }
        )
    write_experiment_artifact(path, "chaos", records, seeds=seeds)


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, default=10, help="number of campaigns")
    parser.add_argument("--seed", type=int, default=0, help="base seed")
    parser.add_argument("--duration", type=float, default=20.0)
    parser.add_argument("--quick", action="store_true", help="3 seeds x 8s")
    parser.add_argument(
        "--membership-outage",
        action="store_true",
        help="include membership-service outages in the fault mix",
    )
    parser.add_argument(
        "--no-retry", action="store_true", help="disable the client retry policy"
    )
    parser.add_argument(
        "--membership-outage-weight",
        type=float,
        default=None,
        help="weight of membership-service outages in the mix "
        "(implies --membership-outage when positive)",
    )
    parser.add_argument(
        "--overload-window",
        type=float,
        nargs=2,
        default=None,
        metavar=("LOW", "HIGH"),
        help="host-overload window bounds in seconds",
    )
    parser.add_argument(
        "--load-storm-weight",
        type=float,
        default=None,
        help="weight of traffic-burst (load-storm) faults in the mix",
    )
    parser.add_argument("--save", type=str, default=None)
    parser.add_argument(
        "--metrics-out", type=str, default=None, help="write telemetry as JSONL"
    )
    parser.add_argument(
        "--trace-dir",
        type=str,
        default=None,
        help="dump the full trace of any violating campaign here",
    )
    args = parser.parse_args(argv)

    count = 3 if args.quick else args.seeds
    duration = 8.0 if args.quick else args.duration
    seeds = [seed_for(args.seed, "chaos", i) for i in range(count)]
    overrides: dict = {}
    if args.membership_outage_weight is not None:
        overrides["membership_outage_weight"] = args.membership_outage_weight
    if args.overload_window is not None:
        overrides["overload_window"] = tuple(args.overload_window)
    if args.load_storm_weight is not None:
        overrides["load_storm_weight"] = args.load_storm_weight
    membership_outage = args.membership_outage or (
        (args.membership_outage_weight or 0.0) > 0
    )
    results = run_chaos_suite(
        seeds,
        duration=duration,
        membership_outage=membership_outage,
        retry=not args.no_retry,
        trace_dir=Path(args.trace_dir) if args.trace_dir else None,
        chaos_overrides=overrides or None,
    )
    print(summarize(results))

    if args.save:
        save_results(
            args.save,
            [r.__dict__ for r in results],
            meta={"experiment": "chaos", "seeds": seeds, "duration": duration},
        )
    if args.metrics_out:
        write_metrics_artifact(args.metrics_out, results, seeds)
        print(f"telemetry written to {args.metrics_out}")

    dirty = [r for r in results if not r.clean]
    if dirty:
        for r in dirty:
            for violation in r.violations:
                print(f"seed {r.seed}: {violation}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
