"""Million-user cells: the fluid client tier against the discrete simulator.

Two measurements live here:

* **Validation** (:func:`run_scale_validation`) — at small populations the
  aggregated tier and the discrete per-request simulator are run on the
  *same* cell demand (constant total read/update rates, split per user),
  and their timing-failure probabilities, deferred fractions, and
  response-time CDFs are compared point-wise with Wilson-interval overlap
  (:func:`repro.stats.confidence.proportions_agree`).  Only the pool's
  *modeled* arrivals enter the comparison — its probe subsample is itself
  discretely simulated and would dilute the test.

  The constant-demand design is deliberate: Poisson superposition is
  exact in ``N``, so the fluid approximation's error is a function of the
  cell's *utilization*, not of the population count.  Validating at fixed
  light demand checks the outcome model itself; the fluid tier's validity
  envelope (capacity provisioned per capita) is documented in DESIGN.md
  §13.

* **Scaling surface** (:func:`run_scale_surface`) — Figure-4-style cells
  at 10k/100k/1M/5M users with *per-user* rates, measuring wall-clock per
  cell and arrival throughput, plus a speedup estimate against the
  discrete simulator extrapolated from a small calibration run.

Run: ``python -m repro.experiments.scale [--validate] [--smoke]`` or via
``repro scale``.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.core.qos import QoSSpec
from repro.core.service import ServiceConfig, build_testbed
from repro.experiments.harness import Figure4Cell
from repro.experiments.report import format_table
from repro.experiments.runner import CellSpec, add_jobs_argument, run_cells
from repro.sim.rng import Normal
from repro.stats.confidence import binomial_confidence_interval, proportions_agree
from repro.workloads.aggregate import AggregatedClientPool, PopulationSpec
from repro.workloads.generators import OpenLoopUpdater, PoissonReader

SCALE_USERS = (10_000, 100_000, 1_000_000, 5_000_000)
DEADLINES_MS = (100, 160, 220)

# Per-user rates for the scaling surface: a population of N users presents
# N times this demand (the cell is assumed provisioned for it; the fluid
# tier models the outcome distributions its probes measure).
READ_RATE_PER_USER = 0.05
UPDATE_RATE_PER_USER = 0.01

# Constant *cell* demand for the validation comparison (split per user),
# kept light so both tiers run in the regime where the fluid assumption
# holds and the discrete reference is cheap enough to simulate exactly.
VALIDATION_READ_RATE = 2.0
VALIDATION_UPDATE_RATE = 0.5


def scale_config(lazy_update_interval: float = 2.0) -> ServiceConfig:
    """The cell used by scale experiments: §6 testbed with 50 ms reads.

    Lighter service times than the paper's 100 ms keep the *probe*
    traffic (and the discrete validation reference) well inside the
    light-utilization regime the fluid tier assumes.
    """
    return ServiceConfig(
        lazy_update_interval=lazy_update_interval,
        read_service_time=Normal(0.050, 0.020, floor=0.005),
    )


# ---------------------------------------------------------------------------
# One cell
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ScaleCellResult:
    """One (users, QoS) cell run by either tier, with performance data."""

    users: int
    mode: str  # "aggregate" | "discrete"
    cell: Figure4Cell
    wall_seconds: float
    sim_seconds: float
    arrivals: int  # reads put through the tier (incl. probes / all discrete)
    batches: int  # aggregate tier only; 0 for discrete
    probe_reads: int  # aggregate tier only; 0 for discrete
    # Validation inputs: modeled-only counts (aggregate) or full counts
    # (discrete) plus response-CDF numerator counts on ``cdf_points``.
    sample_reads: int = 0
    sample_failures: int = 0
    sample_deferred: int = 0
    cdf_points: tuple[float, ...] = ()
    cdf_counts: tuple[int, ...] = ()
    # Timeline.to_dict() of an optional per-cell recorder (``repro dash``
    # input); plain dict so cells stay picklable for the runner.
    timeline: Optional[dict] = None

    @property
    def arrivals_per_wall_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.arrivals / self.wall_seconds


def run_scale_cell(
    users: int,
    deadline: float = 0.160,
    min_probability: float = 0.9,
    lazy_update_interval: float = 2.0,
    staleness_threshold: int = 2,
    duration: float = 60.0,
    warmup: float = 10.0,
    seed: int = 0,
    mode: str = "aggregate",
    read_rate_per_user: float = READ_RATE_PER_USER,
    update_rate_per_user: float = UPDATE_RATE_PER_USER,
    total_read_rate: Optional[float] = None,
    total_update_rate: Optional[float] = None,
    batch_window: float = 0.25,
    probe_reads: int = 1,
    probe_updates: int = 1,
    drain: float = 5.0,
    timeseries: Optional[float] = None,
) -> ScaleCellResult:
    """Run one cell with either tier and summarize it as a Figure4Cell.

    ``total_read_rate``/``total_update_rate`` override the per-user rates
    with a constant cell demand (the validation configuration).  The
    discrete mode exploits Poisson superposition: one
    :class:`PoissonReader` at the population's total rate *is* the exact
    per-request simulation of ``users`` independent clients.
    """
    if mode not in ("aggregate", "discrete"):
        raise ValueError(f"unknown mode {mode!r}")
    read_rate = (
        total_read_rate if total_read_rate is not None
        else users * read_rate_per_user
    )
    update_rate = (
        total_update_rate if total_update_rate is not None
        else users * update_rate_per_user
    )
    qos = QoSSpec(staleness_threshold, deadline, min_probability)
    registry = None
    if timeseries is not None:
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
    testbed = build_testbed(
        scale_config(lazy_update_interval), seed=seed, metrics=registry
    )
    client = testbed.service.create_client(
        "scale-gw", read_only_methods={"get"}, default_qos=qos
    )
    recorder = None
    if registry is not None:
        from repro.obs.timeseries import TimeseriesRecorder

        recorder = TimeseriesRecorder(
            testbed.sim, registry, interval=timeseries
        ).start()
    # Response-CDF comparison grid: around the deadline, where the
    # timing-failure decision lives.
    cdf_points = (0.5 * deadline, deadline, 1.5 * deadline)

    start = testbed.sim.now
    t0 = time.perf_counter()
    if mode == "aggregate":
        spec = PopulationSpec(
            name=f"pop-{users}",
            clients=users,
            qos=qos,
            read_rate=read_rate / users,
            update_rate=update_rate / users,
        )
        pool = AggregatedClientPool(
            testbed.sim,
            client,
            spec,
            duration=duration,
            batch_window=batch_window,
            probe_reads=probe_reads,
            probe_updates=probe_updates,
            seed=seed,
            warmup=warmup,
        )
        testbed.sim.run(until=start + duration + drain)
        if recorder is not None:
            recorder.flush()
        wall = time.perf_counter() - t0
        stats = pool.stats
        reads = stats.reads
        failures = stats.timing_failures
        ci = (
            binomial_confidence_interval(failures, reads, 0.95)
            if reads else (0.0, 0.0)
        )
        cell = Figure4Cell(
            deadline=deadline,
            min_probability=min_probability,
            lazy_update_interval=lazy_update_interval,
            avg_replicas_selected=stats.avg_replicas_selected,
            timing_failure_probability=stats.failure_probability,
            ci_low=ci[0],
            ci_high=ci[1],
            reads=reads,
            timing_failures=failures,
            deferred_fraction=stats.deferred_fraction,
            mean_response_time=stats.mean_response_time,
        )
        counts = np.rint(
            stats.modeled_response_cdf(cdf_points) * stats.reads_modeled
        ).astype(int)
        return ScaleCellResult(
            users=users,
            mode=mode,
            cell=cell,
            wall_seconds=wall,
            sim_seconds=duration,
            arrivals=reads,
            batches=stats.batches,
            probe_reads=stats.probe_reads,
            sample_reads=stats.reads_modeled,
            sample_failures=stats.failures_modeled,
            sample_deferred=stats.deferred_modeled,
            cdf_points=cdf_points,
            cdf_counts=tuple(int(c) for c in counts),
            timeline=(
                recorder.timeline().to_dict()
                if recorder is not None
                else None
            ),
        )

    # ---- discrete reference ------------------------------------------
    reader = PoissonReader(
        testbed.sim, client, testbed.rng, qos,
        rate=read_rate, duration=duration,
    )
    if update_rate > 0:
        OpenLoopUpdater(
            testbed.sim, client, testbed.rng,
            rate=update_rate, duration=duration,
        )
    testbed.sim.run(until=start + duration + drain)
    if recorder is not None:
        recorder.flush()
    wall = time.perf_counter() - t0
    cutoff = start + warmup
    records = [(t, o) for t, o in reader.records if t >= cutoff]
    reads = len(records)
    failures = sum(1 for _, o in records if o.timing_failure)
    deferred = sum(1 for _, o in records if o.deferred)
    selected = sum(o.replicas_selected for _, o in records)
    times = [o.response_time for _, o in records if o.response_time is not None]
    ci = (
        binomial_confidence_interval(failures, reads, 0.95)
        if reads else (0.0, 0.0)
    )
    cell = Figure4Cell(
        deadline=deadline,
        min_probability=min_probability,
        lazy_update_interval=lazy_update_interval,
        avg_replicas_selected=selected / reads if reads else 0.0,
        timing_failure_probability=failures / reads if reads else 0.0,
        ci_low=ci[0],
        ci_high=ci[1],
        reads=reads,
        timing_failures=failures,
        deferred_fraction=deferred / reads if reads else 0.0,
        mean_response_time=sum(times) / len(times) if times else 0.0,
    )
    counts = tuple(
        sum(1 for rt in times if rt <= x) for x in cdf_points
    )
    return ScaleCellResult(
        users=users,
        mode=mode,
        cell=cell,
        wall_seconds=wall,
        sim_seconds=duration,
        arrivals=reader.issued,
        batches=0,
        probe_reads=0,
        sample_reads=reads,
        sample_failures=failures,
        sample_deferred=deferred,
        cdf_points=cdf_points,
        cdf_counts=counts,
        timeline=(
            recorder.timeline().to_dict() if recorder is not None else None
        ),
    )


# ---------------------------------------------------------------------------
# Validation: fluid vs discrete under Wilson-interval overlap
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ValidationCell:
    """Aggregate-vs-discrete agreement for one population size."""

    users: int
    seed: int
    aggregate: ScaleCellResult
    discrete: ScaleCellResult
    failure_agree: bool
    deferred_agree: bool
    cdf_agree: tuple[bool, ...]

    @property
    def agree(self) -> bool:
        return self.failure_agree and self.deferred_agree and all(self.cdf_agree)


def compare_cells(
    aggregate: ScaleCellResult,
    discrete: ScaleCellResult,
    level: float = 0.95,
) -> ValidationCell:
    """Wilson-overlap agreement on failure/deferral/CDF proportions."""
    failure_agree = proportions_agree(
        aggregate.sample_failures, aggregate.sample_reads,
        discrete.sample_failures, discrete.sample_reads, level,
    )
    deferred_agree = proportions_agree(
        aggregate.sample_deferred, aggregate.sample_reads,
        discrete.sample_deferred, discrete.sample_reads, level,
    )
    cdf_agree = tuple(
        proportions_agree(
            ca, aggregate.sample_reads, cd, discrete.sample_reads, level
        )
        for ca, cd in zip(aggregate.cdf_counts, discrete.cdf_counts)
    )
    return ValidationCell(
        users=aggregate.users,
        seed=0,
        aggregate=aggregate,
        discrete=discrete,
        failure_agree=failure_agree,
        deferred_agree=deferred_agree,
        cdf_agree=cdf_agree,
    )


@dataclass
class ScaleValidationResult:
    cells: list[ValidationCell] = field(default_factory=list)

    @property
    def all_agree(self) -> bool:
        return all(cell.agree for cell in self.cells)


def run_scale_validation(
    populations: Sequence[int] = (100, 1000),
    seed: int = 0,
    duration: float = 240.0,
    warmup: float = 20.0,
    deadline: float = 0.160,
    min_probability: float = 0.9,
    lazy_update_interval: float = 2.0,
    staleness_threshold: int = 2,
    total_read_rate: float = VALIDATION_READ_RATE,
    total_update_rate: float = VALIDATION_UPDATE_RATE,
    batch_window: float = 2.0,
    level: float = 0.95,
    jobs: Optional[int] = 1,
    progress: bool = False,
    timeseries: Optional[float] = None,
) -> ScaleValidationResult:
    """Run both tiers per population and compare (constant cell demand).

    The default ``batch_window`` is wider than the production 0.25 s so
    the per-batch probe cap leaves most of the light validation demand to
    the *model* — the comparison needs modeled arrivals, and probes would
    otherwise eat the whole 2 req/s stream.
    """
    common = dict(
        deadline=deadline,
        min_probability=min_probability,
        lazy_update_interval=lazy_update_interval,
        staleness_threshold=staleness_threshold,
        duration=duration,
        warmup=warmup,
        seed=seed,
        total_read_rate=total_read_rate,
        total_update_rate=total_update_rate,
        batch_window=batch_window,
        timeseries=timeseries,
    )
    specs = [
        CellSpec(
            key=(users, mode),
            fn=run_scale_cell,
            kwargs=dict(users=users, mode=mode),
        )
        for users in populations
        for mode in ("aggregate", "discrete")
    ]
    cells = run_cells(
        specs, jobs=jobs, progress=progress, label="scale-validate",
        common=common,
    )
    by_key = {spec.key: cell for spec, cell in zip(specs, cells)}
    result = ScaleValidationResult()
    for users in populations:
        comparison = compare_cells(
            by_key[(users, "aggregate")], by_key[(users, "discrete")], level
        )
        result.cells.append(
            ValidationCell(
                users=comparison.users,
                seed=seed,
                aggregate=comparison.aggregate,
                discrete=comparison.discrete,
                failure_agree=comparison.failure_agree,
                deferred_agree=comparison.deferred_agree,
                cdf_agree=comparison.cdf_agree,
            )
        )
    return result


# ---------------------------------------------------------------------------
# Scaling surface + speedup
# ---------------------------------------------------------------------------
@dataclass
class ScaleSurfaceResult:
    cells: dict[tuple[int, int], ScaleCellResult] = field(default_factory=dict)
    # Discrete calibration: measured per-request wall cost (seconds).
    discrete_seconds_per_request: float = 0.0
    discrete_calibration_requests: int = 0

    def speedup(self, users: int, deadline_ms: int) -> float:
        """Measured aggregate wall vs discrete extrapolated to the same cell.

        The discrete simulator's cost is linear in simulated requests (it
        routes every one end-to-end), so its cost for N users is the
        calibrated per-request cost times the cell's arrival count.
        """
        cell = self.cells[(users, deadline_ms)]
        if cell.wall_seconds <= 0 or self.discrete_seconds_per_request <= 0:
            return 0.0
        discrete_wall = self.discrete_seconds_per_request * cell.arrivals
        return discrete_wall / cell.wall_seconds


def run_scale_surface(
    users_list: Sequence[int] = SCALE_USERS,
    deadlines_ms: Sequence[int] = DEADLINES_MS,
    duration: float = 60.0,
    warmup: float = 10.0,
    seed: int = 0,
    calibration_users: int = 500,
    calibration_duration: float = 30.0,
    jobs: Optional[int] = 1,
    progress: bool = False,
    timeseries: Optional[float] = None,
) -> ScaleSurfaceResult:
    """The Figure-4-style surface at population scale, aggregate tier only."""
    common = dict(
        duration=duration, warmup=warmup, seed=seed, mode="aggregate",
        timeseries=timeseries,
    )
    specs = [
        CellSpec(
            key=(users, deadline_ms),
            fn=run_scale_cell,
            kwargs=dict(users=users, deadline=deadline_ms / 1000.0),
        )
        for users in users_list
        for deadline_ms in deadlines_ms
    ]
    cells = run_cells(
        specs, jobs=jobs, progress=progress, label="scale", common=common,
    )
    result = ScaleSurfaceResult()
    for spec, cell in zip(specs, cells):
        result.cells[spec.key] = cell

    # Calibrate the discrete cost on a small population at the same
    # per-user rates (cost per simulated request is scale-invariant).
    reference = run_scale_cell(
        users=calibration_users,
        duration=calibration_duration,
        warmup=min(warmup, calibration_duration / 3),
        seed=seed,
        mode="discrete",
    )
    if reference.arrivals:
        result.discrete_seconds_per_request = (
            reference.wall_seconds / reference.arrivals
        )
        result.discrete_calibration_requests = reference.arrivals
    return result


# ---------------------------------------------------------------------------
# Reporting
# ---------------------------------------------------------------------------
def render_validation(result: ScaleValidationResult) -> str:
    rows = []
    for vc in result.cells:
        agg, ref = vc.aggregate, vc.discrete
        rows.append(
            (
                vc.users,
                f"{agg.sample_reads}/{ref.sample_reads}",
                f"{agg.sample_failures / max(1, agg.sample_reads):.3f}",
                f"{ref.sample_failures / max(1, ref.sample_reads):.3f}",
                "yes" if vc.failure_agree else "NO",
                f"{agg.sample_deferred / max(1, agg.sample_reads):.3f}",
                f"{ref.sample_deferred / max(1, ref.sample_reads):.3f}",
                "yes" if vc.deferred_agree else "NO",
                "/".join("y" if a else "N" for a in vc.cdf_agree),
                "PASS" if vc.agree else "FAIL",
            )
        )
    return format_table(
        ["users", "reads a/d", "P_fail agg", "P_fail disc", "agree",
         "defer agg", "defer disc", "agree", "cdf", "verdict"],
        rows,
        title="Aggregate vs discrete (Wilson 95% overlap, modeled arrivals only)",
    )


def render_surface(result: ScaleSurfaceResult) -> str:
    rows = []
    for key in sorted(result.cells):
        users, deadline_ms = key
        c = result.cells[key]
        rows.append(
            (
                users,
                deadline_ms,
                c.arrivals,
                f"{c.cell.timing_failure_probability:.4f}",
                f"{c.cell.avg_replicas_selected:.2f}",
                f"{c.cell.deferred_fraction:.3f}",
                f"{c.wall_seconds:.2f}",
                f"{c.arrivals_per_wall_second:,.0f}",
                f"{result.speedup(users, deadline_ms):,.0f}x",
            )
        )
    table = format_table(
        ["users", "deadline_ms", "reads", "P_fail", "avg_sel", "deferred",
         "wall_s", "reads/wall_s", "vs discrete"],
        rows,
        title="Scaling surface — aggregated client tier",
    )
    footer = (
        f"discrete cost calibration: "
        f"{result.discrete_seconds_per_request * 1e3:.3f} ms/request over "
        f"{result.discrete_calibration_requests} simulated requests"
    )
    return table + "\n" + footer


def _as_payload(result_v, result_s, meta):
    payload = {"meta": meta}
    if result_v is not None:
        payload["validation"] = {
            "all_agree": result_v.all_agree,
            "cells": [
                {
                    "users": vc.users,
                    "agree": vc.agree,
                    "failure_agree": vc.failure_agree,
                    "deferred_agree": vc.deferred_agree,
                    "cdf_agree": list(vc.cdf_agree),
                    "aggregate": {
                        "reads": vc.aggregate.sample_reads,
                        "failures": vc.aggregate.sample_failures,
                        "deferred": vc.aggregate.sample_deferred,
                        "wall_seconds": vc.aggregate.wall_seconds,
                    },
                    "discrete": {
                        "reads": vc.discrete.sample_reads,
                        "failures": vc.discrete.sample_failures,
                        "deferred": vc.discrete.sample_deferred,
                        "wall_seconds": vc.discrete.wall_seconds,
                    },
                }
                for vc in result_v.cells
            ],
        }
    if result_s is not None:
        payload["surface"] = {
            "discrete_seconds_per_request": result_s.discrete_seconds_per_request,
            "cells": [
                {
                    "users": users,
                    "deadline_ms": deadline_ms,
                    "reads": c.arrivals,
                    "timing_failure_probability":
                        c.cell.timing_failure_probability,
                    "avg_replicas_selected": c.cell.avg_replicas_selected,
                    "deferred_fraction": c.cell.deferred_fraction,
                    "wall_seconds": c.wall_seconds,
                    "arrivals_per_wall_second": c.arrivals_per_wall_second,
                    "speedup_vs_discrete": result_s.speedup(users, deadline_ms),
                }
                for (users, deadline_ms), c in sorted(result_s.cells.items())
            ],
        }
    return payload


def _collect_timelines(result_v, result_s) -> list[tuple[str, dict]]:
    """``(kind, merged Timeline.to_dict())`` per campaign section."""
    from repro.obs.timeseries import Timeline

    out: list[tuple[str, dict]] = []
    groups = []
    if result_v is not None:
        cells = [c.aggregate for c in result_v.cells]
        cells += [c.discrete for c in result_v.cells]
        groups.append(("validation", cells))
    if result_s is not None:
        groups.append(("surface", list(result_s.cells.values())))
    for kind, cells in groups:
        timelines = [
            Timeline.from_dict(c.timeline)
            for c in cells
            if c.timeline is not None
        ]
        if timelines:
            out.append((kind, Timeline.merge(*timelines).to_dict()))
    return out


def main(argv: Optional[list[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    validate = "--validate" in argv
    smoke = "--smoke" in argv
    quick = "--quick" in argv
    check = "--check" in argv
    jobs = add_jobs_argument(argv)
    seed = 0
    if "--seed" in argv:
        seed = int(argv[argv.index("--seed") + 1])
    users_list = list(SCALE_USERS)
    if "--users" in argv:
        users_list = [
            int(u) for u in argv[argv.index("--users") + 1].split(",")
        ]
    # Record 1 s-tick timelines only when an artifact will carry them.
    timeseries = 1.0 if "--metrics-out" in argv else None

    result_v = None
    result_s = None
    failures: list[str] = []

    if smoke:
        # CI shape: a short N=100 agreement check plus one 1M-user cell
        # that must clear its wall-clock budget.
        result_v = run_scale_validation(
            populations=(100,), seed=seed, duration=120.0, warmup=15.0,
            jobs=jobs, progress=jobs != 1, timeseries=timeseries,
        )
        result_s = run_scale_surface(
            users_list=(1_000_000,), deadlines_ms=(160,),
            duration=30.0, warmup=5.0, seed=seed,
            calibration_duration=15.0, jobs=1, timeseries=timeseries,
        )
        budget = 60.0
        cell = result_s.cells[(1_000_000, 160)]
        if cell.wall_seconds > budget:
            failures.append(
                f"1M-user cell took {cell.wall_seconds:.1f}s "
                f"(budget {budget:.0f}s)"
            )
        speedup = result_s.speedup(1_000_000, 160)
        if speedup < 100.0:
            failures.append(
                f"speedup vs discrete {speedup:.0f}x (need >= 100x)"
            )
    elif validate:
        result_v = run_scale_validation(
            populations=(100, 1000),
            seed=seed,
            duration=120.0 if quick else 240.0,
            warmup=15.0 if quick else 20.0,
            jobs=jobs,
            progress=jobs != 1,
            timeseries=timeseries,
        )
    else:
        result_s = run_scale_surface(
            users_list=users_list,
            deadlines_ms=(160,) if quick else DEADLINES_MS,
            duration=30.0 if quick else 60.0,
            warmup=5.0 if quick else 10.0,
            seed=seed,
            jobs=jobs,
            progress=jobs != 1,
            timeseries=timeseries,
        )

    if result_v is not None:
        print(render_validation(result_v))
        if not result_v.all_agree:
            failures.append("aggregate/discrete Wilson intervals disagree")
    if result_s is not None:
        if result_v is not None:
            print()
        print(render_surface(result_s))

    if "--save" in argv:
        from repro.experiments.report import save_results

        path = argv[argv.index("--save") + 1]
        meta = {
            "experiment": "scale", "seed": seed, "quick": quick,
            "smoke": smoke, "validate": validate,
        }
        save_results(path, _as_payload(result_v, result_s, meta))
        print(f"\nsaved to {path}")

    if "--metrics-out" in argv:
        from repro.experiments.report import write_experiment_artifact

        path = argv[argv.index("--metrics-out") + 1]
        payload = _as_payload(result_v, result_s, {})
        records = [
            {"event": section, **payload[section]}
            for section in ("validation", "surface")
            if section in payload
        ]
        for kind, timelines in _collect_timelines(result_v, result_s):
            records.append(
                {"event": "timeline", "kind": kind, "timeline": timelines}
            )
        write_experiment_artifact(
            path, "scale", records, seed=seed,
            quick=quick, smoke=smoke, validate=validate,
        )
        print(f"telemetry written to {path}")

    if failures:
        for line in failures:
            print(f"CHECK FAILED: {line}")
        return 1 if check else 0
    if check:
        print("\nall checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
