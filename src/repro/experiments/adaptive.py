"""Closed-loop SLA-guardian campaigns: adaptive controller vs. static grid.

Drives the login/cart/browse operation-class mix (see
:mod:`repro.workloads.scenarios`) under time-varying load through two
kinds of cells:

* **comparison cells** — every seed runs the closed-loop
  :class:`~repro.core.controller.ConsistencyController` *and* each
  setting of a static knob grid (``static-0`` … ``static-N``, the same
  relax ladder the controller walks, pinned open-loop).  Deterministic
  load surges are scheduled mid-run, so a fixed relaxed setting burns
  SLO budget during the surge and a fixed conservative setting pays
  maximum replication cost during the calm;
* **chaos cells** — the controller alone under seeded storm chaos
  (``load_storm`` faults), auditing the guardrail invariants where
  regressions actually happen.

Controller invariants audited on every decision log (DESIGN.md §16):

* **bounds** — ``T_L`` stays inside ``[t_l_min, t_l_max]``, every
  per-class staleness knob at or under its ceiling, every probability
  knob at or above its floor, the relax index inside
  ``[0, max_relax_steps]``;
* **anti-flap** — consecutive relax steps are at least
  ``cooldown_epochs`` apart and never within ``hold_epochs`` of a
  rollback;
* **rollback coupling** — every epoch that observes a burn regression
  while relaxed (index > 0) rolls back in that same epoch (safety moves
  are never rate-limited);
* **guardrails exercised** — across the chaos cells at least one
  rollback fired (otherwise the audit is vacuous).

Acceptance comparison: pooled over the comparison cells, the
controller's *SLA-satisfaction-per-cost* score must be at least that of
every static setting, where satisfaction is the mean over per-class SLOs
of ``min(1, compliance / objective)`` and cost is replication messages
(replica selections + lazy-update fan-out) per judged read.

A **bit-identity** gate runs alongside: a ``dry_run`` controller — one
that observes, decides, and records but never actuates — must leave the
workload byte-for-byte identical to a controller-free build (same reader
outcomes, same non-controller telemetry).

``python -m repro.experiments.adaptive --check`` (or ``repro adaptive``)
exits non-zero on any violation.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional

from repro.core.controller import ControllerConfig, STATE_LEVELS
from repro.experiments.report import format_table, render_report, save_results
from repro.experiments.runner import CellSpec, run_cells
from repro.net.chaos import ChaosConfig, ChaosEngine, ChaosTargets
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import Timeline
from repro.sim.rng import seed_for
from repro.sim.tracing import Trace
from repro.workloads.scenarios import (
    OPERATION_CLASSES,
    build_operation_mix_scenario,
)

WARMUP = 2.0
DRAIN_GRACE = 5.0

#: Static grid: the same knob-ladder indices the controller walks.
STATIC_GRID = (0, 1, 2, 3)

#: Deterministic load surges for the comparison cells, as
#: ``(start_fraction, end_fraction, rate_factor)`` of the campaign
#: duration (offsets are relative to the end of warmup).  A x20 *write*
#: surge makes secondaries lag hard: any relaxed lazy interval starts
#: deferring reads past their deadlines (deferral waits are bounded by
#: T_L, and the class deadlines sit just above the conservative 0.3 s
#: interval), while the conservative setting rides the surge out.
SURGES = ((0.30, 0.55, 20.0), (0.70, 0.95, 20.0))

#: Controller shape used by every cell (closed-loop cells actuate it,
#: static cells pin their knobs on the same ladder).  ``t_l_max`` is the
#: operator-declared ceiling: 1.2 s keeps the lazy interval compatible
#: with the login deadline, so exploration pressure lands on the
#: staleness/probability knobs where the ceilings and floors bite.
#: ``relax_slow_burn`` is loosened well past the default: the login
#: class budgets ~1% errors, so a strict slow-window gate would read as
#: "zero misses in the last 6 s" and keep the controller exiled at the
#: conservative index long after a surge has passed — recovery health is
#: instead judged on the fast window plus the paging signal, while the
#: *lifetime* budget still caps exploration beyond the last confirmed
#: index.  ``hold_epochs`` is shortened to match: one epoch of
#: post-rollback hysteresis per surge is enough when re-relaxing can
#: only return to a previously confirmed index.
#: ``max_relax_steps`` caps exploration one step past baseline: every
#: knob index is clean under calm load, so an uncapped greedy walk would
#: climb the whole ladder between surges and take the first surge at the
#: most fragile setting — and the guard's detection lag grows with the
#: lazy interval, so deep indices can even get *confirmed* mid-surge
#: before their misses land.  ``relax_fast_burn`` is tightened so the
#: guard's elevated burn (well under the default 1.0 while a surge is
#: still draining) vetoes relaxing back into pressure.
ADAPTIVE_CONFIG = ControllerConfig(
    t_l_max=1.2,
    relax_fast_burn=0.5,
    relax_slow_burn=10.0,
    hold_epochs=2,
    max_relax_steps=1,
)


def storm_chaos_config(duration: float) -> ChaosConfig:
    """A storm-only fault mix for the guardrail-audit cells."""
    return ChaosConfig(
        duration=duration,
        mean_interval=1.0,
        crash_weight=0.0,
        partition_weight=0.0,
        overload_weight=0.0,
        loss_weight=0.0,
        load_storm_weight=1.0,
        storm_window=(1.0, 2.5),
        storm_factor=(10.0, 25.0),
    )


@dataclass
class AdaptiveCellResult:
    """Outcome of one (seed, mode) campaign cell."""

    seed: int
    mode: str  # "controller" | "chaos" | "static-<i>"
    duration: float
    violations: list[str]
    storms: int
    satisfaction: float
    compliance: Dict[str, float]
    cost_per_read: float
    reads_judged: int
    replicas_selected: int
    lazy_messages: int
    rollbacks: int
    relaxes: int
    final_relax_index: int
    decisions: list[dict] = field(default_factory=list)
    events: list[str] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)
    timeline: Optional[dict] = None

    @property
    def clean(self) -> bool:
        return not self.violations

    @property
    def score(self) -> float:
        """SLA-satisfaction per unit replication cost."""
        if self.cost_per_read <= 0.0:
            return 0.0
        return self.satisfaction / self.cost_per_read


def _counter_sum(snapshot: dict, name: str) -> int:
    total = 0
    for series, entry in snapshot.items():
        if entry.get("type") != "counter":
            continue
        if series == name or series.startswith(name + "{"):
            total += entry["value"]
    return int(total)


def satisfaction_from_signals(signals: Dict[str, Dict[str, float]]) -> float:
    """Mean over *timeliness* SLOs of ``min(1, compliance / objective)``.

    The staleness-guard spec is the controller's leading indicator, not
    part of the customer-facing SLA, so it is excluded here (it burns by
    design whenever load surges, at every knob setting)."""
    specs = {k: s for k, s in signals.items() if k.startswith("timeliness-")}
    if not specs:
        return 0.0
    ratios = [
        min(1.0, s["compliance"] / s["objective"]) if s["objective"] > 0 else 1.0
        for s in specs.values()
    ]
    return sum(ratios) / len(ratios)


def run_adaptive_cell(
    seed: int,
    mode: str,
    duration: float = 12.0,
    trace_dir: Optional[str] = None,
) -> AdaptiveCellResult:
    """Run one seeded campaign cell.

    ``mode`` is ``"controller"`` (closed loop + deterministic surges),
    ``"chaos"`` (closed loop + seeded storm chaos), or ``"static-<i>"``
    (knobs pinned at ladder index ``i`` + the same deterministic surges).
    """
    chaos = mode == "chaos"
    closed_loop = chaos or mode == "controller"
    if not closed_loop:
        if not mode.startswith("static-"):
            raise ValueError(f"unknown mode {mode!r}")
        static_relax = int(mode.split("-", 1)[1])
    else:
        static_relax = 0

    trace = Trace(enabled=True)
    metrics = MetricsRegistry()
    span = WARMUP + duration + DRAIN_GRACE / 2
    scenario = build_operation_mix_scenario(
        seed=seed,
        duration=span,
        controller_config=ADAPTIVE_CONFIG if closed_loop else None,
        knob_config=ADAPTIVE_CONFIG,
        static_relax=static_relax,
        # A wide secondary pool makes the lazy-update fan-out a real
        # fraction of the message budget — the replication cost the
        # paper's T_L knob trades against consistency.
        num_secondaries=6,
        metrics=metrics,
        trace=trace,
    )
    sim, service = scenario.sim, scenario.service
    network = scenario.testbed.network
    rate = scenario.rate_controller

    engine = None
    if chaos:
        engine = ChaosEngine(
            network,
            ChaosTargets(
                primaries=tuple(p.name for p in service.primaries),
                secondaries=tuple(s.name for s in service.secondaries),
                protected=(service.primaries[0].name,),
            ),
            storm_chaos_config(duration),
            rng=scenario.testbed.rng.stream("chaos.engine"),
            trace=trace,
            metrics=metrics,
            rate_controller=rate,
        )
    else:
        # Deterministic phased load: calm -> surge -> calm -> surge.
        for start, end, factor in SURGES:
            sim.schedule(
                WARMUP + start * duration,
                lambda f=factor: rate.begin_storm(f),
            )
            sim.schedule(WARMUP + end * duration, rate.end_storm)

    sim.run(until=WARMUP)
    if engine is not None:
        engine.start()
    sim.run(until=WARMUP + duration + DRAIN_GRACE)
    scenario.recorder.flush()

    timeline = scenario.recorder.timeline()
    signals = scenario.engine.signals(timeline)
    snapshot = metrics.snapshot()
    reads_judged = _counter_sum(snapshot, "client_reads_judged")
    replicas_selected = _counter_sum(snapshot, "client_replicas_selected")
    lazy_messages = _counter_sum(snapshot, "replica_lazy_updates_sent") * len(
        service.secondaries
    )
    cost = (
        (replicas_selected + lazy_messages) / reads_judged
        if reads_judged
        else 0.0
    )

    controller = scenario.controller
    decisions = [d.to_dict() for d in controller.decisions] if controller else []
    storms = (
        sum(1 for e in engine.events if e.kind == "load-storm")
        if engine is not None
        else len(SURGES)
    )

    violations: list[str] = []
    if controller is not None:
        violations.extend(
            audit_decisions(decisions, ADAPTIVE_CONFIG, scenario.classes)
        )
    if chaos and engine is not None and storms == 0:
        violations.append("storm: no load storm was injected")

    result = AdaptiveCellResult(
        seed=seed,
        mode=mode,
        duration=duration,
        violations=violations,
        storms=storms,
        satisfaction=satisfaction_from_signals(signals),
        compliance={
            name: s["compliance"]
            for name, s in signals.items()
            if name.startswith("timeliness-")
        },
        cost_per_read=cost,
        reads_judged=reads_judged,
        replicas_selected=replicas_selected,
        lazy_messages=lazy_messages,
        rollbacks=controller.rollbacks if controller else 0,
        relaxes=controller.relaxes if controller else 0,
        final_relax_index=controller.relax_index if controller else static_relax,
        decisions=decisions,
        events=(
            [f"t={e.time:.3f} {e.kind} {e.target}" for e in engine.events]
            if engine is not None
            else [f"surge {s}-{e} x{f}" for s, e, f in SURGES]
        ),
        metrics=snapshot,
        timeline=timeline.to_dict(),
    )
    if result.violations and trace_dir is not None:
        directory = Path(trace_dir)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"adaptive-seed{seed}-{mode}.trace"
        with path.open("w") as fh:
            for line in result.violations:
                fh.write(f"VIOLATION {line}\n")
            for d in decisions:
                fh.write(f"DECISION {d}\n")
            for record in trace.records:
                fh.write(
                    f"{record.time:.6f} {record.category} "
                    f"{record.actor} {record.detail}\n"
                )
        (directory / f"adaptive-seed{seed}-{mode}.jsonl").write_text(
            trace.to_jsonl()
        )
    return result


def audit_decisions(
    decisions: list[dict], config: ControllerConfig, classes: dict
) -> list[str]:
    """Check the controller invariants on one cell's decision log."""
    violations: list[str] = []
    eps = 1e-9
    relax_epochs: list[int] = []
    rollback_epochs: list[int] = []
    prev_index = 0
    for d in decisions:
        epoch = d["epoch"]
        # Bounds.
        if not (config.t_l_min - eps <= d["t_l"] <= config.t_l_max + eps):
            violations.append(
                f"bounds: epoch {epoch} T_L {d['t_l']} outside "
                f"[{config.t_l_min}, {config.t_l_max}]"
            )
        if not (0 <= d["relax_index"] <= config.max_relax_steps):
            violations.append(
                f"bounds: epoch {epoch} relax index {d['relax_index']} "
                f"outside [0, {config.max_relax_steps}]"
            )
        for name, knob in d["knobs"].items():
            cls = classes.get(name)
            if cls is None:
                continue
            bounds = cls.bounds
            if knob["staleness_threshold"] > bounds.staleness_ceiling + eps:
                violations.append(
                    f"bounds: epoch {epoch} class {name} staleness "
                    f"{knob['staleness_threshold']} above ceiling "
                    f"{bounds.staleness_ceiling}"
                )
            floor = min(bounds.probability_floor, cls.qos.min_probability)
            if knob["min_probability"] < floor - eps:
                violations.append(
                    f"bounds: epoch {epoch} class {name} probability "
                    f"{knob['min_probability']} below floor {floor}"
                )
        if d["state"] not in STATE_LEVELS:
            violations.append(f"state: epoch {epoch} unknown {d['state']!r}")
        # Rollback coupling: a regression observed while relaxed must
        # roll back in the same epoch (safety is never rate-limited).
        if d["regression"] and prev_index > 0 and not d["rollback"]:
            violations.append(
                f"rollback: epoch {epoch} regressed at index {prev_index} "
                "without rolling back"
            )
        if d["rollback"] and d["relax_index"] >= prev_index:
            violations.append(
                f"rollback: epoch {epoch} claimed a rollback but index "
                f"went {prev_index} -> {d['relax_index']}"
            )
        if any(a.startswith("relax:") for a in d["actions"]):
            relax_epochs.append(epoch)
        if d["rollback"]:
            rollback_epochs.append(epoch)
        prev_index = d["relax_index"]
    # Anti-flap: relax steps rate-limited, and never inside the
    # post-rollback hold window.
    for a, b in zip(relax_epochs, relax_epochs[1:]):
        if b - a < config.cooldown_epochs:
            violations.append(
                f"anti-flap: relaxes at epochs {a} and {b} closer than "
                f"cooldown {config.cooldown_epochs}"
            )
    for r in rollback_epochs:
        for e in relax_epochs:
            if 0 < e - r < config.hold_epochs:
                violations.append(
                    f"anti-flap: relax at epoch {e} inside the "
                    f"{config.hold_epochs}-epoch hold after rollback at {r}"
                )
    return violations


# ---------------------------------------------------------------------------
# Bit-identity gate
# ---------------------------------------------------------------------------
def check_bit_identity(seed: int = 0, duration: float = 4.0) -> list[str]:
    """A ``dry_run`` controller must not perturb the workload at all.

    Runs the same seeded scenario twice — once with no controller, once
    with a dry-run controller (observe/decide/record, never actuate) —
    and compares every reader outcome and every non-controller metric
    series byte for byte.
    """
    outcomes = []
    snapshots = []
    for cfg in (None, ControllerConfig(dry_run=True)):
        scenario = build_operation_mix_scenario(
            seed=seed, duration=duration, controller_config=cfg
        )
        scenario.sim.run(until=duration + DRAIN_GRACE)
        scenario.recorder.flush()
        # request_id is a process-global counter, so back-to-back runs in
        # one process number their requests differently; everything else
        # about an outcome must match exactly.
        outcomes.append(
            {
                name: [
                    (
                        o.value,
                        o.response_time,
                        o.timing_failure,
                        o.replicas_selected,
                        o.deferred,
                        o.gsn,
                    )
                    for o in reader.outcomes
                ]
                for name, reader in scenario.readers.items()
            }
        )
        # controller_* series exist only in the dry-run build, and the
        # selection-overhead histogram measures host wall-clock time
        # (perf_counter), which no two runs ever reproduce.
        snapshots.append(
            {
                series: entry
                for series, entry in scenario.testbed.metrics.snapshot().items()
                if not series.startswith("controller_")
                and not series.startswith("client_selection_overhead_seconds")
            }
        )
    violations: list[str] = []
    if outcomes[0] != outcomes[1]:
        for name in outcomes[0]:
            if outcomes[0][name] != outcomes[1].get(name):
                violations.append(
                    f"bit-identity: reader {name!r} outcomes diverge under a "
                    "dry-run controller"
                )
    if snapshots[0] != snapshots[1]:
        diverged = sorted(
            set(snapshots[0]) ^ set(snapshots[1])
            | {
                s
                for s in set(snapshots[0]) & set(snapshots[1])
                if snapshots[0][s] != snapshots[1][s]
            }
        )
        violations.append(
            f"bit-identity: {len(diverged)} metric series diverge under a "
            f"dry-run controller (first: {diverged[:3]})"
        )
    return violations


# ---------------------------------------------------------------------------
# Suite harness + CLI
# ---------------------------------------------------------------------------
def run_adaptive_suite(
    seeds: list[int],
    duration: float = 12.0,
    jobs: int = 1,
    trace_dir: Optional[str] = None,
) -> list[AdaptiveCellResult]:
    """Controller + static grid + chaos audit for every seed."""
    modes = ["controller"] + [f"static-{i}" for i in STATIC_GRID] + ["chaos"]
    specs = [
        CellSpec(
            (seed, mode),
            run_adaptive_cell,
            {
                "seed": seed,
                "mode": mode,
                "duration": duration,
                "trace_dir": trace_dir,
            },
        )
        for seed in seeds
        for mode in modes
    ]
    return run_cells(specs, jobs=jobs, progress=True, label="adaptive")


def pooled_score(results: list[AdaptiveCellResult], mode: str) -> float:
    """Mean satisfaction over mean cost for one mode's cells."""
    cells = [r for r in results if r.mode == mode]
    if not cells:
        return 0.0
    mean_sat = sum(r.satisfaction for r in cells) / len(cells)
    mean_cost = sum(r.cost_per_read for r in cells) / len(cells)
    if mean_cost <= 0.0:
        return 0.0
    return mean_sat / mean_cost


def suite_violations(results: list[AdaptiveCellResult]) -> list[str]:
    """Cell violations + the cross-mode score acceptance check."""
    violations = [
        f"seed {r.seed} [{r.mode}]: {v}" for r in results for v in r.violations
    ]
    controller_score = pooled_score(results, "controller")
    for i in STATIC_GRID:
        static_score = pooled_score(results, f"static-{i}")
        if controller_score + 1e-9 < static_score:
            violations.append(
                f"score: controller {controller_score:.4f} below "
                f"static-{i} {static_score:.4f}"
            )
    chaos_cells = [r for r in results if r.mode == "chaos"]
    if chaos_cells and not any(r.rollbacks > 0 for r in chaos_cells):
        violations.append(
            "guardrails: no chaos cell ever rolled back — the audit is vacuous"
        )
    return violations


def summarize(results: list[AdaptiveCellResult]) -> str:
    rows = []
    for r in results:
        rows.append(
            [
                r.seed,
                r.mode,
                r.storms,
                f"{r.satisfaction:.4f}",
                f"{r.cost_per_read:.2f}",
                f"{r.score:.4f}",
                f"{r.relaxes}/{r.rollbacks}",
                r.final_relax_index,
                "CLEAN" if r.clean else f"{len(r.violations)} VIOLATIONS",
            ]
        )
    table = format_table(
        [
            "seed", "mode", "storms", "satisfaction", "cost/read", "score",
            "relax/rollbk", "idx", "verdict",
        ],
        rows,
        title="adaptive campaign (controller vs. static grid)",
    )
    lines = [table, ""]
    lines.append("pooled scores (satisfaction / cost-per-read):")
    for mode in ["controller"] + [f"static-{i}" for i in STATIC_GRID]:
        lines.append(f"  {mode:<12} {pooled_score(results, mode):.4f}")
    merged = MetricsRegistry.merge(
        *(
            r.metrics
            for r in results
            if r.mode in ("controller", "chaos") and r.metrics
        )
    )
    lines.append("")
    lines.append(
        render_report(metrics=merged, title="closed-loop cell telemetry")
    )
    return "\n".join(lines)


def write_metrics_artifact(
    path: str, results: list[AdaptiveCellResult], seeds: list[int]
) -> None:
    """JSONL artifact: cells, pooled scores, controller decision logs, and
    per-mode merged timelines (``repro dash`` input)."""
    from repro.experiments.report import write_experiment_artifact

    records: list[dict] = []
    for r in results:
        records.append(
            {
                "event": "cell",
                "seed": r.seed,
                "mode": r.mode,
                "storms": r.storms,
                "satisfaction": r.satisfaction,
                "compliance": r.compliance,
                "cost_per_read": r.cost_per_read,
                "score": r.score,
                "reads_judged": r.reads_judged,
                "rollbacks": r.rollbacks,
                "relaxes": r.relaxes,
                "final_relax_index": r.final_relax_index,
                "violations": r.violations,
            }
        )
    for mode in ["controller"] + [f"static-{i}" for i in STATIC_GRID]:
        records.append(
            {
                "event": "pooled",
                "mode": mode,
                "score": pooled_score(results, mode),
                "cells": sum(1 for r in results if r.mode == mode),
            }
        )
    for r in results:
        if r.decisions:
            records.append(
                {
                    "event": "controller",
                    "seed": r.seed,
                    "mode": r.mode,
                    "decisions": r.decisions,
                }
            )
    for mode in ("controller", "chaos") + tuple(
        f"static-{i}" for i in STATIC_GRID
    ):
        timelines = [
            Timeline.from_dict(r.timeline)
            for r in results
            if r.mode == mode and r.timeline is not None
        ]
        if timelines:
            records.append(
                {
                    "event": "timeline",
                    "mode": mode,
                    "timeline": Timeline.merge(*timelines).to_dict(),
                }
            )
    write_experiment_artifact(path, "adaptive", records, seeds=seeds)


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, default=3, help="campaigns per mode")
    parser.add_argument("--seed", type=int, default=0, help="base seed")
    parser.add_argument("--duration", type=float, default=12.0)
    parser.add_argument("--quick", action="store_true", help="2 seeds x 8s")
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero on any invariant, identity, or score violation",
    )
    parser.add_argument("--jobs", type=int, default=1, metavar="N")
    parser.add_argument("--save", type=str, default=None)
    parser.add_argument(
        "--metrics-out", type=str, default=None, help="write telemetry as JSONL"
    )
    parser.add_argument(
        "--trace-dir",
        type=str,
        default=None,
        help="dump the full trace of any violating cell here",
    )
    args = parser.parse_args(argv)

    count = 2 if args.quick else args.seeds
    duration = 8.0 if args.quick else args.duration
    seeds = [seed_for(args.seed, "adaptive", i) for i in range(count)]
    results = run_adaptive_suite(
        seeds, duration=duration, jobs=args.jobs, trace_dir=args.trace_dir
    )
    print(summarize(results))

    violations = suite_violations(results)
    violations.extend(check_bit_identity(seed=seeds[0]))
    for line in violations:
        print(f"VIOLATION {line}", file=sys.stderr)

    if args.save:
        save_results(
            args.save,
            [r.__dict__ for r in results],
            meta={
                "experiment": "adaptive",
                "seeds": seeds,
                "duration": duration,
                "violations": violations,
            },
        )
    if args.metrics_out:
        write_metrics_artifact(args.metrics_out, results, seeds)
        print(f"telemetry written to {args.metrics_out}")

    if args.check and violations:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
