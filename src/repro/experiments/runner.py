"""Parallel experiment-execution engine.

The paper's evaluation (§6, Figures 3–4) — and every ablation grown on
top of it — is a grid of *independent* simulation cells: one full
simulated run per (deadline, P_c, lazy-update-interval, seed)
combination.  Cells share no state, so the sweep is embarrassingly
parallel; this module is the one place that knows how to fan a list of
cells out across worker processes and collect the results in order.

Design points:

* :class:`CellSpec` is pickle-safe by construction: the cell function is
  a *module-level* callable (pickled by reference) and the kwargs are
  plain data.  Whatever a worker needs is in the spec — workers never
  read ambient state.
* Seeds are data, not position: a spec carries the exact seed the serial
  loop would have used, and sweeps that need per-cell streams derive
  them with :func:`repro.sim.rng.seed_for` *before* building specs, so
  results are independent of execution order and process placement.
* ``jobs=1`` bypasses the executor entirely — cells run in-process, in
  list order, making the serial path bit-identical to a hand-written
  ``for`` loop (and to the pre-runner behaviour of every sweep).
* Results come back as a list aligned with the input specs regardless of
  completion order; the first worker exception is re-raised after the
  remaining futures are cancelled.

Typical use::

    specs = [CellSpec(key, run_figure4_cell, kwargs) for key, kwargs in grid]
    cells = run_cells(specs, jobs=4, progress=True, label="figure4")
    results = dict(zip([s.key for s in specs], cells))
"""

from __future__ import annotations

import os
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Optional, Sequence, TextIO


@dataclass(frozen=True)
class CellSpec:
    """One independent simulation cell of a sweep.

    ``fn`` must be importable at module level in the worker (pickled by
    reference); ``kwargs`` must be picklable data.  ``key`` identifies
    the cell in result dictionaries and progress output and is never
    sent to the function.
    """

    key: Hashable
    fn: Callable[..., Any]
    kwargs: dict[str, Any] = field(default_factory=dict)

    def run(self) -> Any:
        return self.fn(**self.kwargs)


def _run_indexed(index: int, spec: CellSpec) -> tuple[int, Any]:
    """Worker entry point: tag the result with its submission index."""
    return index, spec.run()


class SweepProgress:
    """Single-line progress/ETA reporter for a sweep (stderr, ``\\r``-style).

    ETA is the naive completed-cells extrapolation, which is accurate for
    grids of similar-cost cells (the common case here).  Disabled
    instances are no-ops so library callers can pass ``progress=False``
    without branching.
    """

    def __init__(
        self,
        total: int,
        label: str = "sweep",
        enabled: bool = True,
        stream: Optional[TextIO] = None,
    ) -> None:
        self.total = total
        self.label = label
        self.enabled = enabled and total > 0
        self.stream = stream if stream is not None else sys.stderr
        self.started = time.perf_counter()
        self.done = 0

    def update(self, completed: int = 1) -> None:
        self.done += completed
        if not self.enabled:
            return
        elapsed = time.perf_counter() - self.started
        if self.done > 0 and self.done < self.total:
            eta = elapsed * (self.total - self.done) / self.done
            tail = f"eta {eta:5.1f}s"
        else:
            tail = "eta   0.0s"
        self.stream.write(
            f"\r[{self.label}] {self.done}/{self.total} cells, "
            f"elapsed {elapsed:5.1f}s, {tail}"
        )
        self.stream.flush()

    def finish(self) -> float:
        """Close the progress line; returns total elapsed seconds."""
        elapsed = time.perf_counter() - self.started
        if self.enabled:
            self.stream.write("\n")
            self.stream.flush()
        return elapsed


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` means all cores."""
    if jobs is None or jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def run_cells(
    specs: Sequence[CellSpec],
    jobs: Optional[int] = 1,
    progress: bool = False,
    label: str = "sweep",
) -> list[Any]:
    """Run every cell and return results in spec order.

    ``jobs=1`` (the default) runs cells in-process in list order — the
    exact serial loop the sweeps used before this engine existed.
    ``jobs>1`` fans out across a :class:`ProcessPoolExecutor`;
    ``jobs=None`` or ``jobs<=0`` uses every core.
    """
    jobs = resolve_jobs(jobs)
    reporter = SweepProgress(len(specs), label=label, enabled=progress)
    if jobs == 1 or len(specs) <= 1:
        results = []
        for spec in specs:
            results.append(spec.run())
            reporter.update()
        reporter.finish()
        return results

    results: list[Any] = [None] * len(specs)
    with ProcessPoolExecutor(max_workers=min(jobs, len(specs))) as pool:
        futures = {
            pool.submit(_run_indexed, index, spec)
            for index, spec in enumerate(specs)
        }
        try:
            while futures:
                finished, futures = wait(futures, return_when=FIRST_COMPLETED)
                for future in finished:
                    index, value = future.result()
                    results[index] = value
                    reporter.update()
        except BaseException:
            for future in futures:
                future.cancel()
            raise
        finally:
            reporter.finish()
    return results


def add_jobs_argument(argv: Sequence[str], default: int = 1) -> int:
    """Parse ``--jobs N`` / ``--jobs=N`` out of a raw argv-style list.

    The figure modules keep their historical hand-rolled flag parsing
    (``--quick``, ``--save PATH``); this helper gives them a consistent
    ``--jobs`` without pulling argparse into each ``main``.
    """
    for index, arg in enumerate(argv):
        if arg == "--jobs":
            if index + 1 >= len(argv):
                raise SystemExit("--jobs requires a value")
            return int(argv[index + 1])
        if arg.startswith("--jobs="):
            return int(arg.split("=", 1)[1])
    return default
