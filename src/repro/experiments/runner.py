"""Parallel experiment-execution engine: persistent warm workers.

The paper's evaluation (§6, Figures 3–4) — and every ablation grown on
top of it — is a grid of *independent* simulation cells: one full
simulated run per (deadline, P_c, lazy-update-interval, seed)
combination.  Cells share no state, so the sweep is embarrassingly
parallel; this module is the one place that knows how to fan a list of
cells out across worker processes and collect the results in order.

The first runner (ISSUE 2) paid for its parallelism twice per sweep: a
fresh ``ProcessPoolExecutor`` per ``run_cells`` call (process start-up,
re-imports under spawn-like start methods) and one pickled round-trip
per *cell* (kwargs out, nested result dicts back).  On short sweeps the
overhead ate the speedup — ``benchmarks/results.txt`` recorded 0.94x.
This version removes both costs:

* **Warm persistent pools.**  Worker pools outlive a single ``run_cells``
  call: they are cached per ``(workers, shared-config token)`` and reused
  by every subsequent sweep with a compatible configuration, so workers
  are forked once, import the simulation stack once, and stay warm for
  the whole bench session.  The start method prefers ``fork`` (workers
  inherit the parent's imports and read-only tables copy-on-write), then
  ``forkserver``, then ``spawn``.
* **Shared read-only config.**  ``run_cells(..., common=...)`` ships the
  kwargs every cell has in common (workload tables, request counts,
  strategy objects) exactly once per worker — through the pool
  initializer — so per-cell dispatch is only the small varying part of
  the :class:`CellSpec`.
* **Chunked dispatch.**  Cells are dispatched in chunks of ``k`` so one
  executor round-trip (submit, pickle, wake worker, return) is amortized
  over ``k`` cells.  Results are reassembled in spec order regardless of
  chunking or completion order, and the chunk size only affects wall
  clock, never results.
* **Compact returns.**  Optional ``encode``/``decode`` hooks run on the
  worker/parent side of the boundary so bulky results (telemetry
  snapshots) cross the pipe as flat byte payloads instead of nested
  dicts — see :func:`repro.obs.metrics.encode_snapshot`.

Unchanged invariants:

* :class:`CellSpec` is pickle-safe by construction: the cell function is
  a *module-level* callable (pickled by reference) and the kwargs are
  plain data.  Whatever a worker needs is in the spec (or the shared
  ``common`` mapping) — workers never read ambient state.
* Seeds are data, not position: a spec carries the exact seed the serial
  loop would have used, and sweeps that need per-cell streams derive
  them with :func:`repro.sim.rng.seed_for` *before* building specs, so
  results are independent of execution order, chunking, and process
  placement.
* ``jobs=1`` bypasses the executor entirely — cells run in-process, in
  list order, making the serial path bit-identical to a hand-written
  ``for`` loop (and to the pre-runner behaviour of every sweep).
* A cell that raises in a worker surfaces as :class:`CellError` carrying
  the cell key and the *original* remote traceback; remaining work is
  cancelled and the pool stays usable.

Typical use::

    specs = [CellSpec(key, run_figure4_cell, kwargs) for key, kwargs in grid]
    cells = run_cells(specs, jobs=4, progress=True, label="figure4",
                      common=shared_kwargs)
    results = dict(zip([s.key for s in specs], cells))
"""

from __future__ import annotations

import atexit
import hashlib
import multiprocessing
import os
import pickle
import sys
import time
import traceback
from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Optional, Sequence, TextIO


@dataclass(frozen=True)
class CellSpec:
    """One independent simulation cell of a sweep.

    ``fn`` must be importable at module level in the worker (pickled by
    reference); ``kwargs`` must be picklable data.  ``key`` identifies
    the cell in result dictionaries, progress output, and error messages
    and is never sent to the function.  Kwargs shared by every cell of a
    sweep belong in ``run_cells(..., common=...)`` instead — per-spec
    kwargs override common ones on collision.
    """

    key: Hashable
    fn: Callable[..., Any]
    kwargs: dict[str, Any] = field(default_factory=dict)

    def run(self, common: Optional[dict] = None) -> Any:
        if common:
            return self.fn(**{**common, **self.kwargs})
        return self.fn(**self.kwargs)


class CellError(RuntimeError):
    """A cell raised inside a worker process.

    The original traceback is part of the message (workers format it at
    the raise site and ship the string), so the failure reads exactly as
    it would have under ``jobs=1`` — plus the cell key that produced it.
    """

    def __init__(self, key: Hashable, remote_traceback: str) -> None:
        super().__init__(
            f"cell {key!r} failed in worker\n"
            f"--- remote traceback ---\n{remote_traceback}"
        )
        self.key = key
        self.remote_traceback = remote_traceback


class SweepProgress:
    """Single-line progress/ETA reporter for a sweep (stderr, ``\\r``-style).

    ETA is the naive completed-cells extrapolation, which is accurate for
    grids of similar-cost cells (the common case here).  Disabled
    instances are no-ops so library callers can pass ``progress=False``
    without branching.
    """

    def __init__(
        self,
        total: int,
        label: str = "sweep",
        enabled: bool = True,
        stream: Optional[TextIO] = None,
    ) -> None:
        self.total = total
        self.label = label
        self.enabled = enabled and total > 0
        self.stream = stream if stream is not None else sys.stderr
        self.started = time.perf_counter()
        self.done = 0

    def update(self, completed: int = 1) -> None:
        self.done += completed
        if not self.enabled:
            return
        elapsed = time.perf_counter() - self.started
        if self.done > 0 and self.done < self.total:
            eta = elapsed * (self.total - self.done) / self.done
            tail = f"eta {eta:5.1f}s"
        else:
            tail = "eta   0.0s"
        self.stream.write(
            f"\r[{self.label}] {self.done}/{self.total} cells, "
            f"elapsed {elapsed:5.1f}s, {tail}"
        )
        self.stream.flush()

    def finish(self) -> float:
        """Close the progress line; returns total elapsed seconds."""
        elapsed = time.perf_counter() - self.started
        if self.enabled:
            self.stream.write("\n")
            self.stream.flush()
        return elapsed


# ---------------------------------------------------------------------------
# Job-count / chunk-size resolution
# ---------------------------------------------------------------------------
def available_cpus() -> int:
    """CPUs actually usable by this process, not the machine's total.

    Prefers :func:`os.process_cpu_count` (Python 3.13+: respects cgroup
    quotas and CPU affinity, so containers don't over-subscribe), then
    the affinity mask, then :func:`os.cpu_count`.
    """
    process_cpu_count = getattr(os, "process_cpu_count", None)
    if process_cpu_count is not None:
        count = process_cpu_count()
        if count:
            return count
    sched_getaffinity = getattr(os, "sched_getaffinity", None)
    if sched_getaffinity is not None:
        try:
            count = len(sched_getaffinity(0))
            if count:
                return count
        except OSError:  # pragma: no cover - platform-specific
            pass
    return os.cpu_count() or 1


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0``/negative means all
    usable cores (see :func:`available_cpus`)."""
    if jobs is None or jobs <= 0:
        return available_cpus()
    return jobs


def resolve_chunk_size(
    chunk_size: Optional[int], num_cells: int, jobs: int
) -> int:
    """Pick the number of cells dispatched per worker round-trip.

    The heuristic targets ~4 chunks per worker: large enough to amortize
    the submit/pickle/wake round-trip on big grids, small enough that the
    tail of a sweep still load-balances across the pool.  Small grids
    (fewer cells than 4x workers) degenerate to one cell per chunk, which
    is optimal for balance.  Explicit positive ``chunk_size`` wins.
    """
    if chunk_size is not None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size!r}")
        return chunk_size
    return max(1, num_cells // (jobs * 4))


# ---------------------------------------------------------------------------
# Warm worker pools
# ---------------------------------------------------------------------------
#: Worker-side store for the shared read-only config, installed once per
#: worker by the pool initializer (fork children also inherit the parent's
#: copy via copy-on-write, but the initializer works for every start method).
_WORKER_COMMON: dict[str, Optional[dict]] = {}

#: Parent-side cache of live pools, keyed by (workers, common token).  Small
#: and LRU-evicted: a bench session alternating jobs levels keeps each level's
#: pool warm without accumulating process trees.
_POOLS: "OrderedDict[tuple[int, Optional[str]], ProcessPoolExecutor]" = OrderedDict()
_MAX_POOLS = 3


def _worker_init(token: Optional[str], common: Optional[dict]) -> None:
    """Pool initializer: runs once per worker process."""
    if token is not None:
        _WORKER_COMMON[token] = common


def _run_chunk(
    token: Optional[str],
    items: Sequence[tuple[int, Callable[..., Any], dict]],
    encode: Optional[Callable[[Any], Any]],
) -> list[tuple[int, bool, Any]]:
    """Worker entry point: run a chunk of cells, tagging each result.

    Each element of the returned list is ``(index, ok, payload)`` where
    ``payload`` is the (optionally encoded) result on success or the
    formatted remote traceback on failure.  Exceptions never propagate
    through the executor machinery, so one bad cell cannot poison the
    other results of its chunk nor obscure which cell failed.
    """
    common = _WORKER_COMMON.get(token) if token is not None else None
    out: list[tuple[int, bool, Any]] = []
    for index, fn, kwargs in items:
        try:
            value = fn(**{**common, **kwargs}) if common else fn(**kwargs)
            if encode is not None:
                value = encode(value)
            out.append((index, True, value))
        except Exception:
            out.append((index, False, traceback.format_exc()))
    return out


def _mp_context() -> multiprocessing.context.BaseContext:
    """Fork-family context when the platform offers one (cheap start-up,
    copy-on-write inheritance of imports and read-only tables)."""
    methods = multiprocessing.get_all_start_methods()
    for preferred in ("fork", "forkserver", "spawn"):
        if preferred in methods:
            return multiprocessing.get_context(preferred)
    return multiprocessing.get_context()  # pragma: no cover - unreachable


def _common_token(common: Optional[dict]) -> Optional[str]:
    """Stable content digest of the shared config (pool-cache key part).

    Two sweeps whose ``common`` pickles identically share a warm pool;
    a different config forks a fresh pool so workers never see stale
    shared state.
    """
    if common is None:
        return None
    payload = pickle.dumps(sorted(common.items(), key=lambda kv: kv[0]))
    return hashlib.sha256(payload).hexdigest()


def warm_pool(
    workers: int, common: Optional[dict] = None
) -> ProcessPoolExecutor:
    """Return the persistent pool for ``(workers, common)``, creating it
    on first use.  Pools survive across ``run_cells`` calls; the least
    recently used pool is shut down once more than ``_MAX_POOLS`` are
    alive."""
    key = (workers, _common_token(common))
    pool = _POOLS.get(key)
    if pool is not None:
        _POOLS.move_to_end(key)
        return pool
    while len(_POOLS) >= _MAX_POOLS:
        _, stale = _POOLS.popitem(last=False)
        stale.shutdown(wait=False, cancel_futures=True)
    pool = ProcessPoolExecutor(
        max_workers=workers,
        mp_context=_mp_context(),
        initializer=_worker_init,
        initargs=(key[1], common),
    )
    _POOLS[key] = pool
    return pool


def _discard_pool(pool: ProcessPoolExecutor) -> None:
    """Drop a broken pool from the cache so the next sweep starts fresh."""
    for key, cached in list(_POOLS.items()):
        if cached is pool:
            del _POOLS[key]
    pool.shutdown(wait=False, cancel_futures=True)


def shutdown_pools() -> None:
    """Shut down every warm pool (atexit hook; also useful in tests)."""
    while _POOLS:
        _, pool = _POOLS.popitem(last=False)
        pool.shutdown(wait=True, cancel_futures=True)


atexit.register(shutdown_pools)


# ---------------------------------------------------------------------------
# run_cells
# ---------------------------------------------------------------------------
def run_cells(
    specs: Sequence[CellSpec],
    jobs: Optional[int] = 1,
    progress: bool = False,
    label: str = "sweep",
    chunk_size: Optional[int] = None,
    common: Optional[dict] = None,
    encode: Optional[Callable[[Any], Any]] = None,
    decode: Optional[Callable[[Any], Any]] = None,
) -> list[Any]:
    """Run every cell and return results in spec order.

    ``jobs=1`` (the default) runs cells in-process in list order — the
    exact serial loop the sweeps used before this engine existed.
    ``jobs>1`` fans chunks of cells out across a persistent warm pool
    (see module docstring); ``jobs=None``/``jobs<=0`` uses every usable
    core.

    ``common`` holds kwargs shared by every cell; it is shipped once per
    worker (not per cell) and merged under each spec's kwargs, with the
    spec winning on collision.  ``encode`` runs on each result inside the
    worker and ``decode`` on the parent — a matched pair turns bulky
    results into flat payloads for the trip home.  Both must be
    module-level callables; neither runs on the serial path, so a codec
    must round-trip exactly for ``jobs=1 == jobs=N`` to hold (the
    property tests enforce this).
    """
    jobs = resolve_jobs(jobs)
    reporter = SweepProgress(len(specs), label=label, enabled=progress)
    if jobs == 1 or len(specs) <= 1:
        results = []
        for spec in specs:
            results.append(spec.run(common))
            reporter.update()
        reporter.finish()
        return results

    chunk = resolve_chunk_size(chunk_size, len(specs), jobs)
    indexed = [(i, spec.fn, spec.kwargs) for i, spec in enumerate(specs)]
    chunks = [indexed[i : i + chunk] for i in range(0, len(indexed), chunk)]
    keys = [spec.key for spec in specs]
    token = _common_token(common) if common is not None else None

    results: list[Any] = [None] * len(specs)
    pool = warm_pool(jobs, common)
    futures: set = set()
    try:
        # Submission stays inside the guard: a worker dying mid-loop makes
        # the *next* submit raise BrokenProcessPool too.
        for chunk_items in chunks:
            futures.add(pool.submit(_run_chunk, token, chunk_items, encode))
        while futures:
            finished, futures = wait(futures, return_when=FIRST_COMPLETED)
            for future in finished:
                chunk_results = future.result()
                for index, ok, payload in chunk_results:
                    if not ok:
                        raise CellError(keys[index], payload)
                    results[index] = decode(payload) if decode is not None else payload
                reporter.update(len(chunk_results))
    except BrokenProcessPool as exc:
        # A worker died without reporting (segfault, OOM-kill, os._exit):
        # the pool is unusable, so evict it — the next sweep forks fresh.
        _discard_pool(pool)
        raise RuntimeError(
            f"a worker process of the {label!r} sweep died abruptly "
            "(killed or crashed); the warm pool was discarded"
        ) from exc
    except BaseException:
        for future in futures:
            future.cancel()
        raise
    finally:
        reporter.finish()
    return results


# ---------------------------------------------------------------------------
# --jobs flag parsing
# ---------------------------------------------------------------------------
def add_jobs_argument(argv: Sequence[str], default: int = 1) -> int:
    """Parse ``--jobs N`` / ``--jobs=N`` out of a raw argv-style list.

    The figure modules keep their historical hand-rolled flag parsing
    (``--quick``, ``--save PATH``); this helper gives them a consistent
    ``--jobs`` without pulling argparse into each ``main``.

    Semantics match the CLI's argparse flag: the last occurrence wins
    when the flag is repeated; a trailing ``--jobs`` with no value, a
    non-integer value, or a negative value exits with a usage error
    (``0`` is valid and means "all usable cores").
    """
    value = default
    for index, arg in enumerate(argv):
        raw: Optional[str] = None
        if arg == "--jobs":
            if index + 1 >= len(argv):
                raise SystemExit("--jobs requires a value")
            raw = argv[index + 1]
        elif arg.startswith("--jobs="):
            raw = arg.split("=", 1)[1]
        if raw is None:
            continue
        try:
            parsed = int(raw)
        except ValueError:
            raise SystemExit(f"--jobs expects an integer, got {raw!r}") from None
        if parsed < 0:
            raise SystemExit(f"--jobs must be >= 0, got {parsed}")
        value = parsed
    return value
