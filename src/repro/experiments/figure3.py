"""Figure 3: overhead of the probabilistic selection algorithm.

The paper measures the per-read cost of computing the response-time
distributions and running Algorithm 1 as the number of available replicas
grows from 2 to 10, for sliding windows of sizes 10 and 20; it reports
≈400–1300 µs on 2002 hardware, growing with replica count, higher for the
larger window, with 90 % of the time in distribution computation.

We time our implementation the same way (wall clock around the exact code
the client gateway runs per read).  Absolute numbers differ — different
language and two decades of hardware — but the reproduction targets are
the *shape*: monotone growth with replica count, the window-20 curve above
window-10, and distribution computation dominating.

Run: ``python -m repro.experiments.figure3``
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.experiments.harness import SelectionOverheadResult, measure_selection_overhead
from repro.experiments.report import format_table

REPLICA_COUNTS = (2, 3, 4, 5, 6, 7, 8, 9, 10)
WINDOW_SIZES = (10, 20)


def _rank_correlation(values: list[float]) -> float:
    """Spearman rank correlation of ``values`` against their index."""
    n = len(values)
    if n < 2:
        return 1.0
    order = sorted(range(n), key=lambda i: values[i])
    ranks = [0] * n
    for rank, index in enumerate(order):
        ranks[index] = rank
    d2 = sum((ranks[i] - i) ** 2 for i in range(n))
    return 1.0 - (6.0 * d2) / (n * (n * n - 1))


@dataclass
class Figure3Result:
    """All the points of Figure 3, keyed by (window, replicas)."""

    points: dict[tuple[int, int], SelectionOverheadResult] = field(default_factory=dict)

    def series(self, window_size: int) -> list[SelectionOverheadResult]:
        return [
            self.points[(window_size, n)]
            for n in REPLICA_COUNTS
            if (window_size, n) in self.points
        ]

    def is_monotone_in_replicas(
        self, window_size: int, min_rank_correlation: float = 0.7
    ) -> bool:
        """Overhead should grow with replica count.

        Wall-clock timings are noisy — a single CPU-scheduling spike can
        make one point jump 50 % — so this is a *trend* check, robust to
        individual outliers: the endpoints must rise clearly and the
        Spearman rank correlation between replica count and cost must be
        strongly positive.
        """
        series = self.series(window_size)
        if len(series) < 3:
            return True
        endpoints_rise = series[-1].total_us > 1.3 * series[0].total_us
        return endpoints_rise and (
            _rank_correlation([p.total_us for p in series])
            >= min_rank_correlation
        )

    def window20_above_window10(self, tolerance: float = 0.1) -> bool:
        """The larger window costs more — compared across the whole sweep
        (sum over replica counts) so one noisy point cannot flip it."""
        total_10 = sum(p.total_us for p in self.series(10))
        total_20 = sum(p.total_us for p in self.series(20))
        if total_10 == 0 or total_20 == 0:
            return True
        return total_20 >= total_10 * (1.0 - tolerance)


def run_figure3(
    repetitions: int = 300,
    seed: int = 0,
    replica_counts: tuple[int, ...] = REPLICA_COUNTS,
    window_sizes: tuple[int, ...] = WINDOW_SIZES,
    use_cache: bool = False,
) -> Figure3Result:
    """The Figure 3 sweep (uncached by default — the paper's semantics)."""
    result = Figure3Result()
    for window in window_sizes:
        for n in replica_counts:
            result.points[(window, n)] = measure_selection_overhead(
                num_replicas=n,
                window_size=window,
                repetitions=repetitions,
                seed=seed,
                use_cache=use_cache,
            )
    return result


@dataclass(frozen=True)
class CacheComparisonPoint:
    """Prediction-cache effect at one (replicas, window) Figure 3 point.

    ``steady`` is the cache's best case (no new measurements between
    reads: every lookup after the first is a hit); ``churn`` is its worst
    case (a fresh broadcast before every read: every lookup invalidates).
    """

    uncached: SelectionOverheadResult
    steady: SelectionOverheadResult
    churn_uncached: SelectionOverheadResult
    churn_cached: SelectionOverheadResult

    @property
    def steady_speedup(self) -> float:
        """Whole-pass speedup of cached steady-state reads."""
        if self.steady.total_us == 0:
            return float("inf")
        return self.uncached.total_us / self.steady.total_us

    @property
    def steady_distribution_speedup(self) -> float:
        """Speedup of the distribution computation alone (the ~90 %)."""
        if self.steady.distribution_us == 0:
            return float("inf")
        return self.uncached.distribution_us / self.steady.distribution_us

    @property
    def churn_ratio(self) -> float:
        """Cached/uncached cost under per-read invalidation (~1.0 = no
        regression)."""
        if self.churn_uncached.total_us == 0:
            return float("inf")
        return self.churn_cached.total_us / self.churn_uncached.total_us


def run_cache_comparison(
    repetitions: int = 300,
    seed: int = 0,
    replica_counts: tuple[int, ...] = (4, 8),
    window_size: int = 20,
) -> dict[int, CacheComparisonPoint]:
    """Measure the versioned prediction cache against fresh recomputation."""
    points: dict[int, CacheComparisonPoint] = {}
    for n in replica_counts:
        common = dict(
            num_replicas=n, window_size=window_size,
            repetitions=repetitions, seed=seed,
        )
        points[n] = CacheComparisonPoint(
            uncached=measure_selection_overhead(**common, use_cache=False),
            steady=measure_selection_overhead(**common, use_cache=True),
            churn_uncached=measure_selection_overhead(
                **common, use_cache=False, fresh_measurements=True
            ),
            churn_cached=measure_selection_overhead(
                **common, use_cache=True, fresh_measurements=True
            ),
        )
    return points


def render_cache_comparison(points: dict[int, CacheComparisonPoint]) -> str:
    rows = []
    for n, point in sorted(points.items()):
        rows.append(
            (
                n,
                point.uncached.total_us,
                point.steady.total_us,
                f"{point.steady_speedup:.1f}x",
                f"{point.steady_distribution_speedup:.1f}x",
                f"{100 * point.steady.cache_hit_rate:.0f}%",
                f"{point.churn_ratio:.2f}",
            )
        )
    return format_table(
        [
            "replicas",
            "uncached_us",
            "cached_us",
            "speedup",
            "dist_speedup",
            "hit_rate",
            "churn_ratio",
        ],
        rows,
        title=(
            "Prediction cache — steady-state reads vs fresh recomputation "
            "(churn_ratio: cached/uncached cost when every read carries a "
            "new measurement)"
        ),
    )


def render(result: Figure3Result) -> str:
    rows = []
    show_cache = any(
        p.cache_hits or p.cache_misses for p in result.points.values()
    )
    for (window, n), point in sorted(result.points.items()):
        row = [
            n,
            window,
            point.total_us,
            point.distribution_us,
            point.selection_us,
            f"{100 * point.distribution_share:.0f}%",
        ]
        if show_cache:
            row.append(f"{100 * point.cache_hit_rate:.0f}%")
        rows.append(tuple(row))
    headers = [
        "replicas", "window", "total_us", "distribution_us", "selection_us", "dist_share",
    ]
    if show_cache:
        headers.append("cache_hits")
    return format_table(
        headers,
        rows,
        title="Figure 3 — selection algorithm overhead (microseconds per read)",
    )


def main(argv: Optional[list[str]] = None) -> None:
    import sys

    argv = sys.argv[1:] if argv is None else argv
    result = run_figure3()
    print(render(result))
    print()
    print(render_cache_comparison(run_cache_comparison()))
    if "--save" in argv:
        from repro.experiments.report import save_results

        path = argv[argv.index("--save") + 1]
        save_results(
            path,
            sorted(result.points.values(), key=lambda p: (p.window_size, p.num_replicas)),
            meta={"experiment": "figure3"},
        )
        print(f"\nsaved to {path}")
    if "--metrics-out" in argv:
        path = argv[argv.index("--metrics-out") + 1]
        write_metrics_artifact(path, result)
        print(f"\ntelemetry written to {path}")


def write_metrics_artifact(path: str, result: Figure3Result) -> None:
    """JSONL telemetry: per-point cost and cache counters, plus totals."""
    from repro.obs.export import write_jsonl

    records = [{"event": "meta", "experiment": "figure3"}]
    totals = {"cache_hits": 0, "cache_misses": 0, "cache_invalidations": 0}
    for (window, n), point in sorted(result.points.items()):
        records.append(
            {
                "event": "point",
                "window": window,
                "replicas": n,
                "total_us": point.total_us,
                "distribution_us": point.distribution_us,
                "selection_us": point.selection_us,
                "cache_hits": point.cache_hits,
                "cache_misses": point.cache_misses,
                "cache_invalidations": point.cache_invalidations,
            }
        )
        totals["cache_hits"] += point.cache_hits
        totals["cache_misses"] += point.cache_misses
        totals["cache_invalidations"] += point.cache_invalidations
    records.append({"event": "totals", **totals})
    write_jsonl(path, records)


if __name__ == "__main__":
    main()
