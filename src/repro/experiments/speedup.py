"""Runner-speedup measurement: the quick Figure 4 sweep at several
``--jobs`` levels.

This is the regression harness for the warm-worker runner (DESIGN.md
§12): it times the same 12-cell quick sweep serially and parallel, and
reports one row per jobs level with cells-per-second and the speedup
over ``--jobs 1``.  The table always states how many CPUs the process
may actually use (:func:`repro.experiments.runner.available_cpus`),
because a speedup number without its core count is how the repo once
recorded a "0.94x parallel" result that was really two serial runs on a
one-core container racing each other.

CI runs ``repro speedup --check`` (the ``runner-speedup`` job): on a
multi-core runner it fails the build if ``--jobs 2`` stops beating
``--jobs 1`` by at least ``--min-speedup``; on a single-core box the
gate is reported as skipped — there is no parallelism to regress.

Run: ``python -m repro.experiments.speedup [--jobs-levels 1,2,4]
[--out PATH] [--check] [--min-speedup X]``  (or ``python -m repro
speedup ...``).
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.experiments.report import format_table
from repro.experiments.runner import (
    available_cpus,
    resolve_chunk_size,
    shutdown_pools,
)

#: The quick Figure 4 grid (same shape the bench suite and CI use):
#: 3 deadlines x 2 P_c x 2 LUI = 12 independent cells.
QUICK_GRID = dict(
    deadlines_ms=(100, 160, 220),
    probabilities=(0.9, 0.5),
    lazy_intervals=(2.0, 4.0),
    total_requests=200,
    seed=0,
)


@dataclass(frozen=True)
class SpeedupRow:
    """One jobs level of the sweep-timing table."""

    jobs: int
    cells: int
    seconds: float
    cells_per_second: float
    speedup: float  # vs. the jobs=1 row of the same run
    # Cells per worker round-trip actually used by the runner for this
    # level (the default heuristic unless the caller pinned one).
    chunk: int = 1


@dataclass(frozen=True)
class SpeedupReport:
    cores: int
    rows: tuple[SpeedupRow, ...]

    def row_for(self, jobs: int) -> Optional[SpeedupRow]:
        for row in self.rows:
            if row.jobs == jobs:
                return row
        return None


def measure_speedup(
    jobs_levels: Sequence[int] = (1, 2, 4),
    grid: Optional[dict] = None,
    warm: bool = True,
) -> SpeedupReport:
    """Time the quick sweep once per jobs level (jobs=1 first, as baseline).

    With ``warm=True`` (the default, and what CI measures) each parallel
    level gets one untimed throwaway sweep first so the timed number
    reflects the steady state the warm pools exist for — a bench session
    or a long campaign — rather than the one-off fork cost.
    """
    from repro.experiments.figure4 import run_figure4

    grid = dict(QUICK_GRID if grid is None else grid)
    levels = sorted(set(jobs_levels))
    if 1 not in levels:
        levels = [1] + levels
    num_cells = (
        len(grid["deadlines_ms"])
        * len(grid["probabilities"])
        * len(grid["lazy_intervals"])
    )
    rows: list[SpeedupRow] = []
    serial_seconds: Optional[float] = None
    baseline = None
    for jobs in levels:
        if warm and jobs != 1:
            run_figure4(jobs=jobs, **grid)
        start = time.perf_counter()
        result = run_figure4(jobs=jobs, **grid)
        seconds = time.perf_counter() - start
        if jobs == 1:
            serial_seconds = seconds
            baseline = result
        elif baseline is not None and result.cells != baseline.cells:
            raise AssertionError(
                f"jobs={jobs} produced different cells than jobs=1"
            )
        rows.append(
            SpeedupRow(
                jobs=jobs,
                cells=num_cells,
                seconds=seconds,
                cells_per_second=num_cells / seconds if seconds > 0 else 0.0,
                speedup=(serial_seconds / seconds)
                if serial_seconds and seconds > 0
                else 1.0,
                chunk=resolve_chunk_size(None, num_cells, jobs),
            )
        )
    return SpeedupReport(cores=available_cpus(), rows=tuple(rows))


def render(report: SpeedupReport) -> str:
    table = format_table(
        ["jobs", "cells", "chunk", "seconds", "cells/s", "speedup vs jobs=1"],
        [
            (row.jobs, row.cells, row.chunk, row.seconds,
             row.cells_per_second, f"{row.speedup:.2f}x")
            for row in report.rows
        ],
        title=(
            "Quick Figure 4 sweep — warm-worker runner throughput "
            f"({report.cores} usable core{'s' if report.cores != 1 else ''})"
        ),
    )
    if report.cores == 1:
        table += (
            "\nnote: single usable core — parallel rows measure runner "
            "overhead, not speedup"
        )
    return table


def main(argv: Optional[list[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    levels = (1, 2, 4)
    out = None
    check = False
    min_speedup = 1.2
    check_jobs = 2
    it = iter(range(len(argv)))
    for i in it:
        arg = argv[i]
        if arg == "--jobs-levels":
            levels = tuple(int(v) for v in argv[i + 1].split(","))
            next(it, None)
        elif arg == "--out":
            out = argv[i + 1]
            next(it, None)
        elif arg == "--check":
            check = True
        elif arg == "--min-speedup":
            min_speedup = float(argv[i + 1])
            next(it, None)
        elif arg == "--check-jobs":
            check_jobs = int(argv[i + 1])
            next(it, None)
        else:
            raise SystemExit(f"unknown argument {arg!r}")

    report = measure_speedup(jobs_levels=levels)
    shutdown_pools()
    text = render(report)
    print(text)
    if out is not None:
        with open(out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"\ntiming table written to {out}")

    if check:
        if report.cores < 2:
            print(
                f"\ncheck skipped: {report.cores} usable core(s); "
                "the speedup gate needs at least 2"
            )
            return 0
        row = report.row_for(check_jobs)
        if row is None:
            print(f"\ncheck failed: no --jobs {check_jobs} row measured")
            return 1
        if row.speedup < min_speedup:
            print(
                f"\ncheck FAILED: --jobs {check_jobs} speedup {row.speedup:.2f}x "
                f"< required {min_speedup:.2f}x on {report.cores} cores"
            )
            return 1
        print(
            f"\ncheck passed: --jobs {check_jobs} speedup {row.speedup:.2f}x "
            f">= {min_speedup:.2f}x"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
