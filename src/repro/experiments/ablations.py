"""Parameter ablations and robustness studies.

The conclusion of the paper mentions "other extensive experiments by
varying the different parameters, such as the lazy update interval and
request delay"; DESIGN.md indexes these as A1–A9:

* A1 ``lui_sweep`` — lazy update interval ∈ {1, 2, 4, 8} s;
* A2 ``request_delay_sweep`` — request delay ∈ {0.25, 0.5, 1, 2} s;
* A3 ``window_sweep`` — sliding window ∈ {5, 10, 20, 40};
* A4 ``staleness_sweep`` — staleness threshold ∈ {0, 1, 2, 4, 8, 16};
* A5 ``baseline_comparison`` — Algorithm 1 vs. the naive strategies;
* A6 ``failover_study`` — crash the sequencer / the lazy publisher / a
  frequently selected replica mid-run and check the run still meets QoS;
* A7 ``adaptive_lui_study`` — closed-loop T_L tuning vs. static intervals;
* A8 ``overload_study`` — selection adapting around a transient overload;
* A9 ``deferral_model_study`` — Eq. 3's independent deferred term vs. the
  correlation-aware variant, out of the paper's regime (DESIGN.md §5a).

Run: ``python -m repro.experiments.ablations [--quick] [--jobs N]``
(``--jobs`` fans the independent cells of each study across worker
processes; the tables are identical for any jobs value).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.baselines.strategies import (
    AllReplicasSelection,
    FixedSizeSelection,
    PrimaryOnlySelection,
    RandomSingleSelection,
    RoundRobinSelection,
)
from repro.core.selection import SelectionStrategy, StateBasedSelection
from repro.experiments.harness import Figure4Cell, run_figure4_cell
from repro.experiments.report import format_table
from repro.experiments.runner import CellSpec, add_jobs_argument, run_cells
from repro.workloads.scenarios import build_paper_scenario


@dataclass(frozen=True)
class AblationRow:
    """One configuration's summary in an ablation table."""

    label: str
    avg_replicas_selected: float
    timing_failure_probability: float
    deferred_fraction: float
    mean_response_time_ms: float
    meets_qos: bool


def _row(label: str, cell: Figure4Cell) -> AblationRow:
    return AblationRow(
        label=label,
        avg_replicas_selected=cell.avg_replicas_selected,
        timing_failure_probability=cell.timing_failure_probability,
        deferred_fraction=cell.deferred_fraction,
        mean_response_time_ms=cell.mean_response_time * 1000,
        meets_qos=cell.meets_qos(),
    )


# ---------------------------------------------------------------------------
# A1: lazy update interval
# ---------------------------------------------------------------------------
def lui_sweep(
    luis: Sequence[float] = (1.0, 2.0, 4.0, 8.0),
    deadline: float = 0.160,
    min_probability: float = 0.9,
    total_requests: int = 400,
    seed: int = 0,
    jobs: Optional[int] = 1,
) -> list[AblationRow]:
    """Longer LUI ⇒ staler secondaries ⇒ more deferred reads and more
    replicas needed (§6.1's second observation, extended)."""
    common = dict(
        deadline=deadline,
        min_probability=min_probability,
        total_requests=total_requests,
        seed=seed,
    )
    specs = [
        CellSpec(
            key=f"LUI={lui:g}s",
            fn=run_figure4_cell,
            kwargs=dict(lazy_update_interval=lui),
        )
        for lui in luis
    ]
    cells = run_cells(specs, jobs=jobs, label="A1-lui", common=common)
    return [_row(spec.key, cell) for spec, cell in zip(specs, cells)]


# ---------------------------------------------------------------------------
# A2: request delay
# ---------------------------------------------------------------------------
def request_delay_sweep(
    delays: Sequence[float] = (0.25, 0.5, 1.0, 2.0),
    deadline: float = 0.160,
    min_probability: float = 0.9,
    total_requests: int = 400,
    seed: int = 0,
    jobs: Optional[int] = 1,
) -> list[AblationRow]:
    """Shorter request delay ⇒ higher update arrival rate λ_u ⇒ staler
    secondaries between lazy updates ⇒ more deferrals."""
    common = dict(
        deadline=deadline,
        min_probability=min_probability,
        lazy_update_interval=2.0,
        total_requests=total_requests,
        seed=seed,
    )
    specs = [
        CellSpec(
            key=f"request_delay={delay:g}s",
            fn=run_figure4_cell,
            kwargs=dict(request_delay=delay),
        )
        for delay in delays
    ]
    cells = run_cells(specs, jobs=jobs, label="A2-delay", common=common)
    return [_row(spec.key, cell) for spec, cell in zip(specs, cells)]


# ---------------------------------------------------------------------------
# A3: sliding window size
# ---------------------------------------------------------------------------
def _window_cell(
    window: int,
    deadline: float,
    min_probability: float,
    total_requests: int,
    seed: int,
) -> AblationRow:
    """One window-size configuration (module-level so cells can pickle)."""
    scenario = build_paper_scenario(
        deadline=deadline,
        min_probability=min_probability,
        lazy_update_interval=2.0,
        total_requests=total_requests,
        seed=seed,
        window_size=window,
    )
    scenario.run()
    client2 = scenario.client2
    return AblationRow(
        label=f"window={window}",
        avg_replicas_selected=client2.average_replicas_selected(),
        timing_failure_probability=client2.timing_failure_probability(),
        deferred_fraction=client2.deferred_fraction(),
        mean_response_time_ms=client2.mean_response_time() * 1000,
        meets_qos=client2.timing_failure_probability()
        <= 1.0 - min_probability + 1e-9,
    )


def window_sweep(
    windows: Sequence[int] = (5, 10, 20, 40),
    deadline: float = 0.160,
    min_probability: float = 0.9,
    total_requests: int = 400,
    seed: int = 0,
    jobs: Optional[int] = 1,
) -> list[AblationRow]:
    """Window size trades prediction freshness against noise (§5.2: chosen
    "to include a reasonable number of recently measured values, while
    eliminating obsolete measurements")."""
    common = dict(
        deadline=deadline,
        min_probability=min_probability,
        total_requests=total_requests,
        seed=seed,
    )
    specs = [
        CellSpec(
            key=f"window={window}",
            fn=_window_cell,
            kwargs=dict(window=window),
        )
        for window in windows
    ]
    return run_cells(specs, jobs=jobs, label="A3-window", common=common)


# ---------------------------------------------------------------------------
# A4: staleness threshold
# ---------------------------------------------------------------------------
def staleness_sweep(
    thresholds: Sequence[int] = (0, 1, 2, 4, 8, 16),
    deadline: float = 0.160,
    min_probability: float = 0.9,
    lazy_update_interval: float = 4.0,
    total_requests: int = 400,
    seed: int = 0,
    jobs: Optional[int] = 1,
) -> list[AblationRow]:
    """§6.1: "when the client specifies a staleness threshold that is much
    smaller than the lazy update interval, fewer replicas are available to
    respond immediately" — relaxing the threshold should monotonically cut
    deferrals and timing failures."""
    common = dict(
        deadline=deadline,
        min_probability=min_probability,
        lazy_update_interval=lazy_update_interval,
        total_requests=total_requests,
        seed=seed,
    )
    specs = [
        CellSpec(
            key=f"a={threshold}",
            fn=run_figure4_cell,
            kwargs=dict(staleness_threshold=threshold),
        )
        for threshold in thresholds
    ]
    cells = run_cells(specs, jobs=jobs, label="A4-staleness", common=common)
    return [_row(spec.key, cell) for spec, cell in zip(specs, cells)]


# ---------------------------------------------------------------------------
# A5: baseline strategies
# ---------------------------------------------------------------------------
def baseline_strategies() -> dict[str, Callable[[], SelectionStrategy]]:
    return {
        "algorithm-1": StateBasedSelection,
        "all-replicas": AllReplicasSelection,
        "random-single": lambda: RandomSingleSelection(seed=1),
        "round-robin": RoundRobinSelection,
        "fixed-k3": lambda: FixedSizeSelection(3),
        "primary-only": PrimaryOnlySelection,
    }


def baseline_comparison(
    deadline: float = 0.160,
    min_probability: float = 0.9,
    lazy_update_interval: float = 2.0,
    total_requests: int = 400,
    seed: int = 0,
    jobs: Optional[int] = 1,
) -> list[AblationRow]:
    """Algorithm 1 should match all-replicas' failure rate at a fraction of
    its replica usage, and beat the single-replica policies on failures."""
    common = dict(
        deadline=deadline,
        min_probability=min_probability,
        lazy_update_interval=lazy_update_interval,
        total_requests=total_requests,
        seed=seed,
    )
    specs = [
        CellSpec(
            key=label,
            fn=run_figure4_cell,
            kwargs=dict(strategy2=factory()),
        )
        for label, factory in baseline_strategies().items()
    ]
    cells = run_cells(specs, jobs=jobs, label="A5-baselines", common=common)
    return [_row(spec.key, cell) for spec, cell in zip(specs, cells)]


# ---------------------------------------------------------------------------
# A6: failure injection
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class FailoverResult:
    label: str
    timing_failure_probability: float
    reads: int
    final_sequencer: Optional[str]
    final_publisher: Optional[str]
    updates_converged: bool


def failover_study(
    crash: str,
    deadline: float = 0.200,
    min_probability: float = 0.9,
    total_requests: int = 300,
    crash_after: float = 60.0,
    seed: int = 0,
) -> FailoverResult:
    """Crash one role mid-run: ``sequencer``, ``publisher``, or ``secondary``.

    The run must finish, updates must converge on the surviving primaries,
    and timing failures must stay bounded (Algorithm 1 selects sets that
    tolerate one crash; the membership layer elects replacements).
    """
    scenario = build_paper_scenario(
        deadline=deadline,
        min_probability=min_probability,
        lazy_update_interval=2.0,
        total_requests=total_requests,
        seed=seed,
    )
    testbed = scenario.testbed
    service = scenario.service
    if crash == "sequencer":
        victim = service.sequencer_name
    elif crash == "publisher":
        victim = service.primaries[0].name  # rank-1 member = designated publisher
    elif crash == "secondary":
        victim = service.secondaries[0].name
    else:
        raise ValueError(f"unknown crash target {crash!r}")
    assert victim is not None
    testbed.sim.schedule_at(crash_after, testbed.network.crash, victim)
    scenario.run()

    survivors = [
        p for p in service.primaries if testbed.network.is_up(p.name)
    ]
    any_primary = survivors[0] if survivors else service.primaries[0]
    # The current sequencer no longer executes updates (§4.1: the leader
    # "does not actually service the client's request"), so convergence is
    # asserted over the *serving* survivors only.
    serving = [p for p in survivors if p.name != any_primary.sequencer_name]
    values = {p.app.value for p in serving if hasattr(p.app, "value")}
    return FailoverResult(
        label=f"crash-{crash}",
        timing_failure_probability=scenario.client2.timing_failure_probability(),
        reads=len(scenario.client2.read_outcomes),
        final_sequencer=any_primary.sequencer_name,
        final_publisher=getattr(any_primary, "lazy_publisher_name", None),
        updates_converged=len(values) <= 1,
    )


# ---------------------------------------------------------------------------
# A7: adaptive lazy update interval
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class AdaptiveLuiRow:
    """Static vs. adaptive T_L under a two-phase update load."""

    label: str
    lazy_updates_sent: int
    staleness_target_hit_fraction: float
    final_interval: float


def adaptive_lui_study(
    quiet_rate: float = 0.2,
    busy_rate: float = 4.0,
    phase_length: float = 60.0,
    threshold: int = 2,
    probability: float = 0.9,
    seed: int = 0,
) -> list[AdaptiveLuiRow]:
    """Quiet phase then an update storm: a static T_L either wastes
    propagation messages when quiet or blows the staleness target when
    busy; the adaptive controller (repro.core.tuning) does neither."""
    from repro.core.service import ServiceConfig, build_testbed
    from repro.core.tuning import StalenessTarget
    from repro.sim.rng import Constant
    from repro.workloads.generators import OpenLoopUpdater

    rows = []
    configurations = [
        ("static T_L=1s", dict(lazy_update_interval=1.0)),
        ("static T_L=4s", dict(lazy_update_interval=4.0)),
        (
            f"adaptive (a={threshold}, p={probability})",
            dict(
                lazy_update_interval=2.0,
                adaptive_lazy_target=StalenessTarget(threshold, probability),
            ),
        ),
    ]
    for label, overrides in configurations:
        config = ServiceConfig(
            name="svc", num_primaries=2, num_secondaries=2,
            read_service_time=Constant(0.010), **overrides,
        )
        testbed = build_testbed(config, seed=seed)
        feed = testbed.service.create_client("feed", read_only_methods={"get"})
        OpenLoopUpdater(
            testbed.sim, feed, testbed.rng, rate=quiet_rate,
            duration=phase_length,
        )
        testbed.sim.schedule_at(
            phase_length,
            lambda tb=testbed, f=feed: OpenLoopUpdater(
                tb.sim, f, tb.rng, rate=busy_rate, duration=phase_length
            ),
        )

        publisher = testbed.service.primaries[0]
        secondary = testbed.service.secondaries[0]
        hits = []

        def sample(tb=testbed, pub=publisher, sec=secondary, hits=hits):
            staleness = max(0, pub.my_csn - sec.my_csn)
            hits.append(staleness <= threshold)
            tb.sim.schedule(0.1, sample)

        testbed.sim.schedule(0.1, sample)
        testbed.sim.run(until=2 * phase_length)
        rows.append(
            AdaptiveLuiRow(
                label=label,
                lazy_updates_sent=publisher.lazy_updates_sent,
                staleness_target_hit_fraction=sum(hits) / len(hits),
                final_interval=publisher.lazy_update_interval,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# A8: transient overload adaptivity
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class OverloadStudyResult:
    """Selection behaviour around a transient overload of one replica."""

    victim: str
    share_before: float  # victim's share of first-replies before overload
    share_during: float
    share_after: float
    failure_rate_during: float
    reads_during: int


def overload_study(
    overload_factor: float = 10.0,
    phase_length: float = 40.0,
    read_period: float = 0.25,
    deadline: float = 0.200,
    seed: int = 0,
) -> OverloadStudyResult:
    """§1 motivates the design with hosts that "tend to become slow due to
    transient overloads".  Overload one secondary's host mid-run: the
    monitored service times inflate, its predicted CDF collapses, and the
    selection must route around it while keeping failures bounded."""
    from repro.core.qos import QoSSpec
    from repro.core.service import ServiceConfig, build_testbed
    from repro.net.failures import FailureInjector, OverloadWindow
    from repro.sim.rng import Normal
    from repro.workloads.generators import PeriodicReader

    config = ServiceConfig(
        name="svc", num_primaries=2, num_secondaries=4,
        lazy_update_interval=2.0,
        read_service_time=Normal(0.050, 0.010, floor=0.002),
    )
    testbed = build_testbed(config, seed=seed)
    service = testbed.service
    victim = service.secondaries[0]
    host = testbed.network.host_of(victim.name)
    assert host is not None

    injector = FailureInjector(testbed.network)
    injector.overload(
        host,
        OverloadWindow(
            start=phase_length, end=2 * phase_length, factor=overload_factor
        ),
    )

    client = service.create_client("c", read_only_methods={"get"})
    qos = QoSSpec(staleness_threshold=50, deadline=deadline, min_probability=0.9)
    total_reads = int(3 * phase_length / read_period) - 4
    reader = PeriodicReader(
        testbed.sim, client, qos, period=read_period, count=total_reads
    )
    testbed.sim.run(until=3 * phase_length + 30.0)

    # Partition outcomes by issue order (periodic -> index maps to time).
    per_phase = {"before": [], "during": [], "after": []}
    for index, outcome in enumerate(reader.outcomes):
        t = (index + 1) * read_period
        if t < phase_length:
            per_phase["before"].append(outcome)
        elif t < 2 * phase_length:
            per_phase["during"].append(outcome)
        else:
            per_phase["after"].append(outcome)

    def victim_share(outcomes):
        answered = [o for o in outcomes if o.first_replica is not None]
        if not answered:
            return 0.0
        return sum(1 for o in answered if o.first_replica == victim.name) / len(
            answered
        )

    during = per_phase["during"]
    failures = sum(1 for o in during if o.timing_failure)
    return OverloadStudyResult(
        victim=victim.name,
        share_before=victim_share(per_phase["before"]),
        share_during=victim_share(during),
        share_after=victim_share(per_phase["after"]),
        failure_rate_during=failures / len(during) if during else 0.0,
        reads_during=len(during),
    )


# ---------------------------------------------------------------------------
# A9: deferred-read correlation (Eq. 3's independence assumption)
# ---------------------------------------------------------------------------
def deferral_model_study(
    deadline: float = 0.5,
    lazy_update_interval: float = 1.0,
    reads_per_client: int = 30,
    num_clients: int = 6,
    min_probability: float = 0.8,
    staleness_threshold: int = 5,
    seed: int = 0,
) -> list[AblationRow]:
    """Out of the paper's regime (deadline ≈ T_L/2, update pressure well
    above the staleness budget, a large secondary pool), Eq. 3's
    independent deferred term is over-confident because all stale
    secondaries answer after the same lazy update; the correlation-aware
    variant (minimum instead of product) selects more conservatively and
    cuts timing failures.  See DESIGN.md §5a."""
    from repro.core.qos import QoSSpec
    from repro.core.service import ServiceConfig, build_testbed
    from repro.sim.process import Process, Timeout
    from repro.sim.rng import Normal

    rows = []
    for label, make_strategy in [
        ("Eq.3 independent (paper)", lambda: StateBasedSelection()),
        ("correlation-aware",
         lambda: StateBasedSelection(correlated_deferral=True)),
    ]:
        config = ServiceConfig(
            name="svc", num_primaries=5, num_secondaries=15,
            lazy_update_interval=lazy_update_interval,
            read_service_time=Normal(0.050, 0.020, floor=0.002),
        )
        testbed = build_testbed(config, seed=seed)
        service = testbed.service
        qos = QoSSpec(staleness_threshold, deadline, min_probability)
        reads = []
        for i in range(num_clients):
            client = service.create_client(
                f"c{i}", read_only_methods={"get"}, strategy=make_strategy()
            )

            def run(client=client):
                for _ in range(reads_per_client):
                    yield client.call("increment")
                    yield Timeout(0.1)
                    outcome = yield client.call("get", (), qos)
                    reads.append(outcome)
                    yield Timeout(0.1)

            Process(testbed.sim, run())
        testbed.sim.run(until=600.0)
        # Judge the steady state (second half), past window bootstrap.
        steady = reads[len(reads) // 2:]
        failures = sum(1 for o in steady if o.timing_failure)
        answered = [o for o in steady if o.response_time is not None]
        rows.append(
            AblationRow(
                label=label,
                avg_replicas_selected=(
                    sum(o.replicas_selected for o in steady) / len(steady)
                ),
                timing_failure_probability=failures / len(steady),
                deferred_fraction=(
                    sum(1 for o in steady if o.deferred) / len(steady)
                ),
                mean_response_time_ms=1000
                * sum(o.response_time for o in answered)
                / len(answered),
                meets_qos=failures / len(steady) <= 1 - min_probability + 1e-9,
            )
        )
    return rows


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def _render_rows(title: str, rows: list[AblationRow]) -> str:
    return format_table(
        ["config", "avg_selected", "P(fail)", "deferred", "mean_rt_ms", "QoS met"],
        [
            (
                r.label,
                r.avg_replicas_selected,
                r.timing_failure_probability,
                r.deferred_fraction,
                r.mean_response_time_ms,
                "yes" if r.meets_qos else "NO",
            )
            for r in rows
        ],
        title=title,
    )


def main(argv: Optional[list[str]] = None) -> None:
    argv = sys.argv[1:] if argv is None else argv
    quick = "--quick" in argv
    jobs = add_jobs_argument(argv)
    n = 150 if quick else 400
    print(_render_rows(
        "A1 — lazy update interval", lui_sweep(total_requests=n, jobs=jobs)
    ))
    print()
    print(_render_rows(
        "A2 — request delay", request_delay_sweep(total_requests=n, jobs=jobs)
    ))
    print()
    print(_render_rows(
        "A3 — sliding window size", window_sweep(total_requests=n, jobs=jobs)
    ))
    print()
    print(_render_rows(
        "A4 — staleness threshold", staleness_sweep(total_requests=n, jobs=jobs)
    ))
    print()
    print(_render_rows(
        "A5 — selection strategies", baseline_comparison(total_requests=n, jobs=jobs)
    ))
    print()
    crash_specs = [
        CellSpec(key=crash, fn=failover_study, kwargs=dict(crash=crash))
        for crash in ("sequencer", "publisher", "secondary")
    ]
    crash_common = dict(total_requests=100 if quick else 300)
    rows = []
    for res in run_cells(
        crash_specs, jobs=jobs, label="A6-failover", common=crash_common
    ):
        rows.append(
            (
                res.label,
                res.timing_failure_probability,
                res.reads,
                res.final_sequencer,
                res.final_publisher,
                "yes" if res.updates_converged else "NO",
            )
        )
    print(
        format_table(
            ["crash", "P(fail)", "reads", "sequencer_after", "publisher_after", "converged"],
            rows,
            title="A6 — failure injection",
        )
    )
    print()
    print(
        format_table(
            ["config", "lazy_msgs", "target_hit_fraction", "final_T_L"],
            [
                (r.label, r.lazy_updates_sent,
                 r.staleness_target_hit_fraction, r.final_interval)
                for r in adaptive_lui_study(
                    phase_length=30.0 if quick else 60.0
                )
            ],
            title="A7 — adaptive lazy update interval",
        )
    )
    print()
    print(_render_rows(
        "A9 — deferred-read correlation (out-of-regime; DESIGN.md §5a)",
        deferral_model_study(reads_per_client=15 if quick else 30),
    ))
    print()
    overload = overload_study(phase_length=20.0 if quick else 40.0)
    print(
        format_table(
            ["victim", "share_before", "share_during", "share_after",
             "P(fail) during", "reads_during"],
            [(
                overload.victim,
                overload.share_before,
                overload.share_during,
                overload.share_after,
                overload.failure_rate_during,
                overload.reads_during,
            )],
            title="A8 — transient overload adaptivity",
        )
    )


if __name__ == "__main__":
    main()
