"""Load-storm campaigns: shedding + degradation vs. unbounded queues.

Drives seeded traffic bursts (the ``load_storm`` chaos fault) through two
configurations of the same testbed:

* **shed** — replicas carry an :class:`~repro.core.overload.OverloadConfig`
  (bounded queue, deadline-aware shedding, deferred-read expiry) and the
  clients walk the :class:`~repro.core.overload.DegradationPolicy` ladder;
* **unbounded** — the pre-overload runtime: queues grow without bound and
  every queued read is served, however late.

Each shed cell is audited against the overload invariants (DESIGN.md §11):

* **bounded queues** — no replica's queue-depth peak ever exceeds the
  configured capacity (plus the one in-service slot and the single
  unsheddable update the commit path keeps in flight);
* **no stranded deferred reads** — after the drain window every
  secondary's deferred-read buffer is empty: expired and recovery-dropped
  reads were *bounced*, not leaked;
* **audited degradation** — every ladder transition appears both in the
  client's recovery counters and in the trace, and every locally-shed
  read is accounted;
* **storm pressure is real** — at least one storm was injected and the
  replica-side shed path actually fired (otherwise the comparison below
  is vacuous).

Across the suite, the acceptance comparison: the high-priority (vip)
client's p99 effective latency under storms must be strictly better with
shedding than without — that is the whole point of bouncing bulk traffic
early.

``python -m repro.experiments.overload --check`` (or ``repro overload``)
exits non-zero on any violation.
"""

from __future__ import annotations

import argparse
import math
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.core.client import RetryPolicy
from repro.core.overload import (
    DegradationConfig,
    DegradationPolicy,
    OverloadConfig,
)
from repro.core.priority import PriorityMapper
from repro.core.qos import QoSSpec
from repro.core.service import ServiceConfig, build_testbed
from repro.experiments.report import format_table, render_report, save_results
from repro.experiments.runner import CellSpec, run_cells
from repro.groups.membership import MembershipConfig
from repro.net.chaos import ChaosConfig, ChaosEngine, ChaosTargets
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import Timeline, TimeseriesRecorder
from repro.sim.rng import Normal, seed_for
from repro.sim.tracing import Trace
from repro.workloads.generators import (
    ArrivalRateController,
    OpenLoopUpdater,
    PeriodicReader,
)

#: The platinum client: tight staleness, high P_c(d) — never sheddable by
#: the ladder (its priority sits above the bronze shed floor).
VIP_QOS = QoSSpec(staleness_threshold=10, deadline=0.5, min_probability=0.99)
#: The bulk client: relaxed staleness, bronze P_c(d) — first to be shed.
BULK_QOS = QoSSpec(staleness_threshold=30, deadline=0.5, min_probability=0.5)

#: Replica-side protection used by the shed cells.
SHED_CONFIG = OverloadConfig(queue_capacity=16, defer_capacity=64)

WARMUP = 2.0
DRAIN_GRACE = 5.0

#: Recorder tick for overload cells — storms last 1-2.5 s, so a 100 ms
#: grid resolves the burn-rate ramp the SLO engine alerts on.
TIMELINE_INTERVAL = 0.1


def storm_chaos_config(duration: float) -> ChaosConfig:
    """A storm-only fault mix: no crashes, partitions, or loss."""
    return ChaosConfig(
        duration=duration,
        mean_interval=1.0,
        crash_weight=0.0,
        partition_weight=0.0,
        overload_weight=0.0,
        loss_weight=0.0,
        load_storm_weight=1.0,
        storm_window=(1.0, 2.5),
        storm_factor=(4.0, 8.0),
    )


@dataclass
class OverloadCellResult:
    """Outcome of one (seed, mode) campaign cell."""

    seed: int
    mode: str  # "shed" | "unbounded"
    duration: float
    violations: list[str]
    storms: int
    vip_issued: int
    vip_resolved: int
    vip_timing_failures: int
    vip_latencies: list[float]  # effective latency per vip read
    bulk_issued: int
    bulk_timing_failures: int
    replica_reads_shed: int
    client_reads_shed: int
    overload_replies: int
    degradation_steps_down: int
    degradation_steps_up: int
    queue_depth_peaks: dict[str, int] = field(default_factory=dict)
    recovery: dict[str, int] = field(default_factory=dict)
    events: list[str] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)
    # Timeline.to_dict() of the cell's 100 ms-tick recorder (SLO engine +
    # ``repro dash`` input); plain dict so cells stay picklable.
    timeline: Optional[dict] = None

    @property
    def clean(self) -> bool:
        return not self.violations

    @property
    def vip_p99(self) -> float:
        return percentile(self.vip_latencies, 0.99)


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile; +inf for an empty sample."""
    if not values:
        return float("inf")
    ordered = sorted(values)
    index = max(0, math.ceil(q * len(ordered)) - 1)
    return ordered[index]


def effective_latency(outcome, deadline: float) -> float:
    """Latency a caller *experienced*: late or lost reads cost 2x the
    deadline, so percentiles cannot be flattered by dropped replies."""
    if outcome.value is not None and outcome.response_time is not None:
        return outcome.response_time
    return 2.0 * deadline


def run_overload_cell(
    seed: int,
    mode: str,
    duration: float = 12.0,
    trace_dir: Optional[str] = None,
    calm: bool = False,
    degradation_config: Optional[DegradationConfig] = None,
) -> OverloadCellResult:
    """Run one seeded storm campaign in ``shed`` or ``unbounded`` mode.

    ``calm=True`` keeps everything — workload, seeding, recorder —
    identical but never starts the chaos engine, giving the storm-free
    control run the SLO burn-alert tests compare against.

    ``degradation_config`` overrides the clients' ladder shape; the SLO
    acceptance campaign uses a cautious ladder (longer step cooldown) so
    the burn-rate pager is expected to lead the slide into CRITICAL.
    """
    if mode not in ("shed", "unbounded"):
        raise ValueError(f"unknown mode {mode!r}")
    shed = mode == "shed"
    trace = Trace(enabled=True)
    metrics = MetricsRegistry()
    config = ServiceConfig(
        name="svc",
        num_primaries=3,
        num_secondaries=3,
        lazy_update_interval=0.3,
        read_service_time=Normal(0.020, 0.005, floor=0.002),
        heartbeat_interval=0.1,
        suspect_timeout=0.35,
        gsn_wait_timeout=0.15,
        gc_timeout=4.0,
        overload=SHED_CONFIG if shed else None,
    )
    testbed = build_testbed(
        config,
        seed=seed,
        trace=trace,
        metrics=metrics,
        membership_config=MembershipConfig(
            heartbeat_interval=0.1, suspect_timeout=0.35, sweep_interval=0.1
        ),
    )
    sim, service, network = testbed.sim, testbed.service, testbed.network

    mapper = PriorityMapper()
    policy = RetryPolicy(max_retries=1)
    ladder_config = degradation_config or DegradationConfig()
    vip_ladder = DegradationPolicy(ladder_config, mapper) if shed else None
    bulk_ladder = DegradationPolicy(ladder_config, mapper) if shed else None
    feed = service.create_client("feed", read_only_methods={"get"})
    vip = service.create_client(
        "vip",
        read_only_methods={"get"},
        retry_policy=policy,
        degradation=vip_ladder,
        priority="platinum",
    )
    bulk = service.create_client(
        "bulk",
        read_only_methods={"get"},
        retry_policy=policy,
        degradation=bulk_ladder,
        priority="bronze",
    )

    controller = ArrivalRateController()
    span = WARMUP + duration + DRAIN_GRACE / 2
    updater = OpenLoopUpdater(
        sim, feed, testbed.rng, rate=2.0, duration=span
    )
    vip_reader = PeriodicReader(
        sim, vip, VIP_QOS, period=0.04, duration=span,
        rate_controller=controller,
    )
    bulk_reader = PeriodicReader(
        sim, bulk, BULK_QOS, period=0.02, duration=span,
        rate_controller=controller,
    )

    engine = ChaosEngine(
        network,
        ChaosTargets(
            primaries=tuple(p.name for p in service.primaries),
            secondaries=tuple(s.name for s in service.secondaries),
            protected=(service.primaries[0].name,),
        ),
        storm_chaos_config(duration),
        rng=testbed.rng.stream("chaos.engine"),
        trace=trace,
        metrics=metrics,
        rate_controller=controller,
    )

    recorder = TimeseriesRecorder(
        sim, metrics, interval=TIMELINE_INTERVAL
    ).start()
    sim.run(until=WARMUP)
    if not calm:
        engine.start()
    sim.run(until=WARMUP + duration + DRAIN_GRACE)
    recorder.flush()

    storms = sum(1 for e in engine.events if e.kind == "load-storm")
    recovery: dict[str, int] = {}
    for client in (vip, bulk):
        for key, value in client.recovery_stats().items():
            recovery[key] = recovery.get(key, 0) + value
    peaks = {
        handler.name: handler.queue_depth_peak
        for handler in service.all_replicas()
    }
    replica_shed = sum(
        entry["value"]
        for series, entry in metrics.snapshot().items()
        if series.startswith("replica_reads_shed{") or series == "replica_reads_shed"
        if entry["type"] == "counter"
    )

    violations = (
        _check_overload_invariants(
            testbed, (vip, bulk), (vip_ladder, bulk_ladder), storms, trace,
            expect_storms=not calm,
        )
        if shed
        else []
    )

    result = OverloadCellResult(
        seed=seed,
        mode=mode,
        duration=duration,
        violations=violations,
        storms=storms,
        vip_issued=vip_reader.issued,
        vip_resolved=sum(1 for o in vip_reader.outcomes if o.value is not None),
        vip_timing_failures=sum(
            1 for o in vip_reader.outcomes if o.timing_failure
        ),
        vip_latencies=[
            effective_latency(o, VIP_QOS.deadline) for o in vip_reader.outcomes
        ],
        bulk_issued=bulk_reader.issued,
        bulk_timing_failures=sum(
            1 for o in bulk_reader.outcomes if o.timing_failure
        ),
        replica_reads_shed=int(replica_shed),
        client_reads_shed=vip.reads_shed + bulk.reads_shed,
        overload_replies=vip.overload_replies + bulk.overload_replies,
        degradation_steps_down=recovery.get("degradation_steps_down", 0),
        degradation_steps_up=recovery.get("degradation_steps_up", 0),
        queue_depth_peaks=peaks,
        recovery=recovery,
        events=[f"t={e.time:.3f} {e.kind} {e.target}" for e in engine.events],
        metrics=metrics.snapshot(),
        timeline=recorder.timeline().to_dict(),
    )
    if result.violations and trace_dir is not None:
        directory = Path(trace_dir)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"overload-seed{seed}-{mode}.trace"
        with path.open("w") as fh:
            for line in result.violations:
                fh.write(f"VIOLATION {line}\n")
            for line in result.events:
                fh.write(f"EVENT {line}\n")
            for record in trace.records:
                fh.write(
                    f"{record.time:.6f} {record.category} "
                    f"{record.actor} {record.detail}\n"
                )
        (directory / f"overload-seed{seed}-{mode}.jsonl").write_text(
            trace.to_jsonl()
        )
    return result


def _check_overload_invariants(
    testbed, clients, ladders, storms: int, trace: Trace,
    expect_storms: bool = True,
) -> list[str]:
    violations: list[str] = []
    service = testbed.service

    # Bounded queues: capacity, plus the in-service slot (queue_depth
    # counts it) and the single unsheddable update the commit path keeps
    # in flight on a primary.
    capacity = SHED_CONFIG.queue_capacity
    assert capacity is not None
    bound = capacity + 2
    for handler in service.all_replicas():
        if handler.queue_depth_peak > bound:
            violations.append(
                f"queue-bound: {handler.name} peaked at "
                f"{handler.queue_depth_peak} > {bound}"
            )

    # No stranded deferred reads after the drain window.
    for handler in service.secondaries:
        stranded = len(getattr(handler, "_deferred", ()))
        if stranded:
            violations.append(
                f"deferred-leak: {handler.name} still buffers {stranded} reads"
            )

    # Audited degradation: counters, policy state, and trace must agree.
    traced_steps = len(list(trace.filter("client.degradation")))
    policy_steps = sum(len(ladder.steps) for ladder in ladders)
    counted_steps = sum(
        client.recovery_stats()["degradation_steps_down"]
        + client.recovery_stats()["degradation_steps_up"]
        for client in clients
    )
    if not traced_steps == policy_steps == counted_steps:
        violations.append(
            f"degradation-audit: trace={traced_steps} "
            f"policy={policy_steps} counters={counted_steps} disagree"
        )
    for client, ladder in zip(clients, ladders):
        if client.reads_shed != ladder.reads_shed:
            violations.append(
                f"shed-audit: {client.name} counted {client.reads_shed} "
                f"local sheds but its ladder shed {ladder.reads_shed}"
            )

    # Every issued read was judged: nothing is silently dropped.
    for client in clients:
        if client.reads_issued != client.reads_judged:
            violations.append(
                f"accounting: {client.name} issued {client.reads_issued} "
                f"reads but judged {client.reads_judged}"
            )

    if expect_storms and storms == 0:
        violations.append("storm: no load storm was injected")
    return violations


# ---------------------------------------------------------------------------
# Suite harness + CLI
# ---------------------------------------------------------------------------
def run_overload_suite(
    seeds: list[int],
    duration: float = 12.0,
    jobs: int = 1,
    trace_dir: Optional[str] = None,
) -> list[OverloadCellResult]:
    """Both modes for every seed; results ordered seed-major."""
    specs = [
        CellSpec(
            (seed, mode),
            run_overload_cell,
            {
                "seed": seed,
                "mode": mode,
                "duration": duration,
                "trace_dir": trace_dir,
            },
        )
        for seed in seeds
        for mode in ("shed", "unbounded")
    ]
    return run_cells(specs, jobs=jobs, progress=True, label="overload")


def suite_violations(results: list[OverloadCellResult]) -> list[str]:
    """Cell-level violations plus the cross-mode p99 acceptance check."""
    violations = [
        f"seed {r.seed} [{r.mode}]: {v}" for r in results for v in r.violations
    ]
    shed = [x for r in results if r.mode == "shed" for x in r.vip_latencies]
    unbounded = [
        x for r in results if r.mode == "unbounded" for x in r.vip_latencies
    ]
    if shed and unbounded:
        shed_p99 = percentile(shed, 0.99)
        unbounded_p99 = percentile(unbounded, 0.99)
        if not shed_p99 < unbounded_p99:
            violations.append(
                f"p99: vip effective latency with shedding ({shed_p99:.4f}s) "
                f"is not better than unbounded ({unbounded_p99:.4f}s)"
            )
    return violations


def summarize(results: list[OverloadCellResult]) -> str:
    rows = []
    for r in results:
        rows.append(
            [
                r.seed,
                r.mode,
                r.storms,
                r.vip_issued,
                f"{percentile(r.vip_latencies, 0.99):.4f}",
                r.vip_timing_failures,
                r.bulk_timing_failures,
                r.replica_reads_shed,
                r.client_reads_shed,
                f"{r.degradation_steps_down}/{r.degradation_steps_up}",
                "CLEAN" if r.clean else f"{len(r.violations)} VIOLATIONS",
            ]
        )
    table = format_table(
        [
            "seed", "mode", "storms", "vip reads", "vip p99", "vip late",
            "bulk late", "shed@replica", "shed@client", "steps v/^", "verdict",
        ],
        rows,
        title="overload campaign (shed vs. unbounded)",
    )
    totals: dict[str, int] = {}
    for r in results:
        if r.mode != "shed":
            continue
        for key, value in r.recovery.items():
            totals[key] = totals.get(key, 0) + value
    merged = MetricsRegistry.merge(
        *(r.metrics for r in results if r.mode == "shed" and r.metrics)
    )
    return (
        table
        + "\n\n"
        + render_report(
            metrics=merged, recovery=totals, title="shed-cell telemetry"
        )
    )


def write_metrics_artifact(
    path: str, results: list[OverloadCellResult], seeds: list[int]
) -> None:
    """JSONL artifact: one record per cell, the pooled comparison, and a
    per-mode merged timeline (``repro dash`` input)."""
    from repro.experiments.report import write_experiment_artifact

    records: list[dict] = []
    for r in results:
        records.append(
            {
                "event": "cell",
                "seed": r.seed,
                "mode": r.mode,
                "storms": r.storms,
                "vip_p99": percentile(r.vip_latencies, 0.99),
                "vip_timing_failures": r.vip_timing_failures,
                "bulk_timing_failures": r.bulk_timing_failures,
                "replica_reads_shed": r.replica_reads_shed,
                "client_reads_shed": r.client_reads_shed,
                "overload_replies": r.overload_replies,
                "degradation_steps_down": r.degradation_steps_down,
                "degradation_steps_up": r.degradation_steps_up,
                "queue_depth_peaks": r.queue_depth_peaks,
                "violations": r.violations,
            }
        )
    for mode in ("shed", "unbounded"):
        pooled = [
            x for r in results if r.mode == mode for x in r.vip_latencies
        ]
        records.append(
            {
                "event": "pooled",
                "mode": mode,
                "vip_p99": percentile(pooled, 0.99),
                "samples": len(pooled),
            }
        )
    for mode in ("shed", "unbounded"):
        timelines = [
            Timeline.from_dict(r.timeline)
            for r in results
            if r.mode == mode and r.timeline is not None
        ]
        if timelines:
            records.append(
                {
                    "event": "timeline",
                    "mode": mode,
                    "timeline": Timeline.merge(*timelines).to_dict(),
                }
            )
    write_experiment_artifact(path, "overload", records, seeds=seeds)


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, default=5, help="campaigns per mode")
    parser.add_argument("--seed", type=int, default=0, help="base seed")
    parser.add_argument("--duration", type=float, default=12.0)
    parser.add_argument("--quick", action="store_true", help="2 seeds x 6s")
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero on any invariant or p99 violation",
    )
    parser.add_argument("--jobs", type=int, default=1, metavar="N")
    parser.add_argument("--save", type=str, default=None)
    parser.add_argument(
        "--metrics-out", type=str, default=None, help="write telemetry as JSONL"
    )
    parser.add_argument(
        "--trace-dir",
        type=str,
        default=None,
        help="dump the full trace of any violating cell here",
    )
    args = parser.parse_args(argv)

    count = 2 if args.quick else args.seeds
    duration = 6.0 if args.quick else args.duration
    seeds = [seed_for(args.seed, "overload", i) for i in range(count)]
    results = run_overload_suite(
        seeds, duration=duration, jobs=args.jobs, trace_dir=args.trace_dir
    )
    print(summarize(results))

    violations = suite_violations(results)
    for line in violations:
        print(f"VIOLATION {line}", file=sys.stderr)

    if args.save:
        save_results(
            args.save,
            [r.__dict__ for r in results],
            meta={
                "experiment": "overload",
                "seeds": seeds,
                "duration": duration,
                "violations": violations,
            },
        )
    if args.metrics_out:
        write_metrics_artifact(args.metrics_out, results, seeds)
        print(f"telemetry written to {args.metrics_out}")

    if args.check and violations:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
