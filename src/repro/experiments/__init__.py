"""Experiment harness: regenerates every figure in the paper's evaluation.

* :mod:`repro.experiments.figure3` — overhead of the probabilistic
  selection algorithm vs. number of available replicas (Figure 3);
* :mod:`repro.experiments.figure4` — adaptivity of the probabilistic
  model: average number of replicas selected (Figure 4a) and observed
  timing-failure probability (Figure 4b) vs. client deadline, for
  P_c ∈ {0.9, 0.5} and LUI ∈ {2 s, 4 s};
* :mod:`repro.experiments.ablations` — the "other extensive experiments"
  the conclusion mentions (LUI, request delay, window size, staleness
  threshold) plus baseline and failure-injection studies;
* :mod:`repro.experiments.harness` / :mod:`repro.experiments.report` —
  shared runners and text-table formatting.

Each figure module is runnable: ``python -m repro.experiments.figure4``.
"""

from repro.experiments.harness import (
    Figure4Cell,
    SelectionOverheadResult,
    measure_selection_overhead,
    run_figure4_cell,
)
from repro.experiments.analysis import (
    client_consistency_report,
    message_profile,
    replica_load_report,
    selection_profile,
)
from repro.experiments.report import (
    format_series,
    format_table,
    load_results,
    save_results,
)
from repro.experiments.runner import (
    CellSpec,
    SweepProgress,
    resolve_jobs,
    run_cells,
)

__all__ = [
    "Figure4Cell",
    "SelectionOverheadResult",
    "measure_selection_overhead",
    "run_figure4_cell",
    "client_consistency_report",
    "message_profile",
    "replica_load_report",
    "selection_profile",
    "format_series",
    "format_table",
    "load_results",
    "save_results",
    "CellSpec",
    "SweepProgress",
    "resolve_jobs",
    "run_cells",
]
