"""Post-run analysis of a simulated deployment.

Turns handler counters, traces, and client outcomes into the reports an
operator (or a reviewer) would ask for:

* :func:`replica_load_report` — per-replica reads/updates/deferred counts,
  utilization (busy time over elapsed time), and the load-imbalance metric
  used by the hot-spot validation;
* :func:`message_profile` — traffic accounting by payload type from the
  network trace (what the protocol actually costs on the wire);
* :func:`client_consistency_report` — client-observable consistency and
  timeliness: response-time percentiles, timing-failure and deferred
  fractions, and *observed staleness* — how far behind the newest version
  this client had already seen each response was (a client-side analogue
  of TACT's staleness metric, measurable without global knowledge);
* :func:`selection_profile` — the distribution of selected-set sizes, the
  direct client-side view of Figure 4(a).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.core.client import ClientHandler
from repro.core.requests import ReadOutcome
from repro.core.service import ReplicatedService
from repro.sim.tracing import Trace
from repro.stats.summary import percentile


# ---------------------------------------------------------------------------
# Replica load
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ReplicaLoad:
    name: str
    role: str  # "sequencer" / "primary" / "secondary"
    reads_served: int
    updates_committed: int
    deferred_reads: int
    utilization: float


@dataclass(frozen=True)
class LoadReport:
    replicas: tuple[ReplicaLoad, ...]

    def read_imbalance(self) -> float:
        """max/mean reads served over the serving replicas (1.0 = even)."""
        counts = [
            r.reads_served for r in self.replicas if r.role != "sequencer"
        ]
        if not counts or sum(counts) == 0:
            return 1.0
        mean = sum(counts) / len(counts)
        return max(counts) / mean

    def total_reads(self) -> int:
        return sum(r.reads_served for r in self.replicas)

    def rows(self) -> list[tuple]:
        return [
            (r.name, r.role, r.reads_served, r.updates_committed,
             r.deferred_reads, round(r.utilization, 4))
            for r in self.replicas
        ]


def replica_load_report(service: ReplicatedService, elapsed: float) -> LoadReport:
    """Summarize what every replica did during ``elapsed`` seconds."""
    if elapsed <= 0:
        raise ValueError(f"elapsed must be positive, got {elapsed!r}")
    loads = []
    sequencer_name = service.sequencer_name
    for handler in service.all_replicas():
        if handler.name == sequencer_name:
            role = "sequencer"
        elif handler.is_primary:
            role = "primary"
        else:
            role = "secondary"
        loads.append(
            ReplicaLoad(
                name=handler.name,
                role=role,
                reads_served=handler.reads_served,
                updates_committed=handler.updates_committed,
                deferred_reads=handler.deferred_reads_served,
                utilization=min(1.0, handler.busy_time / elapsed),
            )
        )
    return LoadReport(tuple(loads))


# ---------------------------------------------------------------------------
# Wire traffic
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class MessageProfile:
    delivered_by_kind: dict[str, int]
    dropped_by_reason: dict[str, int]

    def total_delivered(self) -> int:
        return sum(self.delivered_by_kind.values())

    def total_dropped(self) -> int:
        return sum(self.dropped_by_reason.values())

    def rows(self) -> list[tuple]:
        return sorted(
            self.delivered_by_kind.items(), key=lambda kv: -kv[1]
        )


def message_profile(trace: Trace) -> MessageProfile:
    """Traffic accounting from a network trace (``net.deliver``/``net.drop``)."""
    delivered: dict[str, int] = {}
    dropped: dict[str, int] = {}
    for record in trace.filter(category="net.deliver"):
        kind = record.detail.get("kind", "?")
        delivered[kind] = delivered.get(kind, 0) + 1
    for record in trace.filter(category="net.drop"):
        reason = record.detail.get("reason", "?")
        dropped[reason] = dropped.get(reason, 0) + 1
    return MessageProfile(delivered, dropped)


# ---------------------------------------------------------------------------
# Client-observable consistency and timeliness
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ClientConsistencyReport:
    reads: int
    timing_failure_fraction: float
    deferred_fraction: float
    response_time_p50_ms: float
    response_time_p95_ms: float
    response_time_p99_ms: float
    # Observed staleness: versions behind the freshest version this client
    # had seen by the time of each response (0 = monotone-fresh).
    observed_staleness_max: int
    observed_staleness_mean: float
    staleness_bound_violations: int  # vs. each read's own threshold


def client_consistency_report(
    outcomes: Sequence[ReadOutcome],
    staleness_thresholds: Optional[Sequence[int]] = None,
) -> ClientConsistencyReport:
    """Summarize a client's reads.

    ``staleness_thresholds`` aligns with ``outcomes`` when per-read
    thresholds vary; a single-element sequence is broadcast.
    """
    answered = [o for o in outcomes if o.response_time is not None]
    if not answered:
        raise ValueError("no answered reads to analyze")
    times_ms = [o.response_time * 1000 for o in answered]

    newest = 0
    staleness_values: list[int] = []
    violations = 0
    if staleness_thresholds is not None and len(staleness_thresholds) == 1:
        staleness_thresholds = list(staleness_thresholds) * len(outcomes)
    for index, outcome in enumerate(outcomes):
        if outcome.response_time is None:
            continue
        staleness = max(0, newest - outcome.gsn)
        staleness_values.append(staleness)
        newest = max(newest, outcome.gsn)
        if staleness_thresholds is not None:
            if staleness > staleness_thresholds[index]:
                violations += 1

    return ClientConsistencyReport(
        reads=len(outcomes),
        timing_failure_fraction=(
            sum(1 for o in outcomes if o.timing_failure) / len(outcomes)
        ),
        deferred_fraction=sum(1 for o in outcomes if o.deferred) / len(outcomes),
        response_time_p50_ms=percentile(times_ms, 50),
        response_time_p95_ms=percentile(times_ms, 95),
        response_time_p99_ms=percentile(times_ms, 99),
        observed_staleness_max=max(staleness_values),
        observed_staleness_mean=sum(staleness_values) / len(staleness_values),
        staleness_bound_violations=violations,
    )


# ---------------------------------------------------------------------------
# Selection behaviour
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SelectionProfile:
    histogram: dict[int, int]  # selected-set size -> count

    def mean(self) -> float:
        total = sum(self.histogram.values())
        if total == 0:
            return 0.0
        return sum(size * count for size, count in self.histogram.items()) / total

    def mode(self) -> int:
        if not self.histogram:
            return 0
        return max(self.histogram.items(), key=lambda kv: (kv[1], -kv[0]))[0]

    def rows(self) -> list[tuple[int, int]]:
        return sorted(self.histogram.items())


def selection_profile(client: ClientHandler) -> SelectionProfile:
    histogram: dict[int, int] = {}
    for count in client.selected_counts:
        histogram[count] = histogram.get(count, 0) + 1
    return SelectionProfile(histogram)
