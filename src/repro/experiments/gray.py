"""Gray-failure campaigns: φ-accrual detection vs. fixed timeouts.

Drives seeded *gray* fault storms — slow nodes, flapping links, one-way
partitions, duplication churn (:mod:`repro.net.chaos`) — through two
configurations of the same testbed:

* **detector** — clients and replicas carry a
  :class:`~repro.core.detector.DetectorConfig`: suspicion-weighted
  candidate ejection before Algorithm-1, suspicion-triggered hedging,
  probe-based re-admission, the adaptive commit-gap watchdog, and
  slow-publisher reassignment;
* **baseline** — the pre-detector runtime: fixed timeouts everywhere,
  replicas are only ever *crashed or fine*.

Each detector cell is audited against the gray invariants (DESIGN.md §14):

* **no permanent ejection** — after the campaign heals and the drain
  window passes, no peer is still suspected: probes re-admitted every
  ejected replica;
* **bounded false positives** — joining the client's suspicion
  transitions against the chaos engine's ground-truth
  :class:`~repro.net.chaos.GrayFault` schedule
  (:func:`repro.obs.detection.score_detection`), at most half of all
  suspect edges may lack a covering fault window;
* **the detector actually fired** — at least one gray fault hit a
  serving replica and at least one suspicion was raised (otherwise the
  comparison below is vacuous);
* **accounting** — every issued read was judged; nothing is silently
  dropped.

Across the suite, the acceptance comparison: pooled read p99 effective
latency must be strictly better with the detector than without, and the
SLA satisfaction rate (reads meeting their deadline) must be no worse —
routing around an alive-but-slow replica is the whole point.

``python -m repro.experiments.gray --check`` (or ``repro gray``) exits
non-zero on any violation.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.core.client import RetryPolicy
from repro.core.detector import DetectorConfig
from repro.core.qos import QoSSpec
from repro.core.service import ServiceConfig, build_testbed
from repro.experiments.overload import effective_latency, percentile
from repro.experiments.report import format_table, render_report, save_results
from repro.experiments.runner import CellSpec, run_cells
from repro.groups.membership import MembershipConfig
from repro.net.chaos import ChaosConfig, ChaosEngine, ChaosTargets
from repro.obs.detection import DetectionReport, score_detection
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import Timeline, TimeseriesRecorder
from repro.sim.rng import Normal, seed_for
from repro.sim.tracing import Trace
from repro.workloads.generators import OpenLoopUpdater, PeriodicReader

#: The audited reader: moderate staleness, tight deadline — the client
#: whose p99 the detector must defend.
READ_QOS = QoSSpec(staleness_threshold=10, deadline=0.25, min_probability=0.9)

#: Detection tuning used by the detector cells.  Spelled out rather than
#: defaulted so the experiment is reproducible against config drift.
DETECTOR_CONFIG = DetectorConfig(
    window_size=48,
    phi_suspect=8.0,
    phi_hedge=4.0,
    min_samples=6,
    min_std=0.005,
    probe_interval=0.3,
    min_eject_keep=1,
    watchdog_multiplier=6.0,
)

#: Suspicions raised this long (seconds) after a fault healed are still
#: attributed to it — the evidence (a missing arrival) trails the fault.
SCORING_GRACE = 1.0

WARMUP = 2.0
DRAIN_GRACE = 5.0
TIMELINE_INTERVAL = 0.25  # recorder tick: resolves 1.5-3.5 s gray windows


def gray_chaos_config(duration: float) -> ChaosConfig:
    """A gray-only fault mix: no crashes, no symmetric partitions.

    ``slow_jitter`` is pushed well above the defaults so a slow node
    actually blows the 0.25 s read deadline (per-message jitter up to
    0.25 s on both the request and the reply leg).
    """
    return ChaosConfig(
        duration=duration,
        mean_interval=0.8,
        crash_weight=0.0,
        partition_weight=0.0,
        overload_weight=0.0,
        loss_weight=0.0,
        slow_node_weight=4.0,
        flapping_link_weight=1.5,
        oneway_partition_weight=1.0,
        dup_storm_weight=1.0,
        slow_window=(1.5, 3.5),
        slow_factor=(3.0, 8.0),
        slow_jitter=(0.08, 0.25),
        flap_window=(1.0, 2.5),
        flap_period=(0.1, 0.3),
        dup_window=(0.5, 2.0),
        dup_probability=(0.1, 0.35),
    )


@dataclass
class GrayCellResult:
    """Outcome of one (seed, mode) campaign cell."""

    seed: int
    mode: str  # "detector" | "baseline"
    duration: float
    violations: list[str]
    gray_faults: int
    faults_by_kind: dict[str, int]
    reads_issued: int
    reads_resolved: int
    timing_failures: int
    latencies: list[float]  # effective latency per read
    detector_ejections: int
    detector_hedges: int
    detector_probes: int
    suspects_total: int
    clears_total: int
    still_suspected: list[str]
    detection: Optional[dict] = None  # DetectionReport.to_dict(), detector mode
    events: list[str] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)
    timeline: Optional[dict] = None  # Timeline.to_dict() (repro dash input)

    @property
    def clean(self) -> bool:
        return not self.violations

    @property
    def p99(self) -> float:
        return percentile(self.latencies, 0.99)

    @property
    def sla_rate(self) -> float:
        """Fraction of issued reads that met their deadline."""
        if not self.reads_issued:
            return 1.0
        return 1.0 - self.timing_failures / self.reads_issued


def run_gray_cell(
    seed: int,
    mode: str,
    duration: float = 14.0,
    trace_dir: Optional[str] = None,
) -> GrayCellResult:
    """Run one seeded gray-fault campaign in ``detector`` or ``baseline``
    mode.

    The chaos schedule is a pure function of the seed: the engine draws
    from its own ``chaos.engine`` stream and no gray fault consults
    protocol state, so both modes of a seed face the identical storm.
    """
    if mode not in ("detector", "baseline"):
        raise ValueError(f"unknown mode {mode!r}")
    detecting = mode == "detector"
    trace = Trace(enabled=True)
    metrics = MetricsRegistry()
    config = ServiceConfig(
        name="svc",
        num_primaries=3,
        num_secondaries=3,
        lazy_update_interval=0.3,
        read_service_time=Normal(0.020, 0.005, floor=0.002),
        heartbeat_interval=0.1,
        suspect_timeout=0.35,
        gsn_wait_timeout=0.15,
        gc_timeout=4.0,
        detector=DETECTOR_CONFIG if detecting else None,
    )
    testbed = build_testbed(
        config,
        seed=seed,
        trace=trace,
        metrics=metrics,
        membership_config=MembershipConfig(
            heartbeat_interval=0.1, suspect_timeout=0.35, sweep_interval=0.1
        ),
    )
    sim, service, network = testbed.sim, testbed.service, testbed.network

    feed = service.create_client("feed", read_only_methods={"get"})
    reader_client = service.create_client(
        "app",
        read_only_methods={"get"},
        retry_policy=RetryPolicy(max_retries=1, hedge=True),
    )

    span = WARMUP + duration + DRAIN_GRACE / 2
    updater = OpenLoopUpdater(sim, feed, testbed.rng, rate=2.0, duration=span)
    reader = PeriodicReader(sim, reader_client, READ_QOS, period=0.03, duration=span)

    serving = tuple(p.name for p in service.primaries) + tuple(
        s.name for s in service.secondaries
    )
    engine = ChaosEngine(
        network,
        ChaosTargets(
            primaries=tuple(p.name for p in service.primaries),
            secondaries=tuple(s.name for s in service.secondaries),
            protected=(service.primaries[0].name,),
        ),
        gray_chaos_config(duration),
        rng=testbed.rng.stream("chaos.engine"),
        trace=trace,
        metrics=metrics,
    )

    recorder = TimeseriesRecorder(
        sim, metrics, interval=TIMELINE_INTERVAL
    ).start()
    sim.run(until=WARMUP)
    engine.start()
    sim.run(until=WARMUP + duration + DRAIN_GRACE)
    recorder.flush()

    recovery = reader_client.recovery_stats()
    detector = reader_client.detector
    detection: Optional[DetectionReport] = None
    if detector is not None:
        detection = score_detection(
            detector.transitions,
            engine.gray_schedule,
            observable=set(serving),
            grace=SCORING_GRACE,
        )

    violations = (
        _check_gray_invariants(reader_client, engine, detection, set(serving))
        if detecting
        else []
    )

    by_kind: dict[str, int] = {}
    for fault in engine.gray_schedule:
        by_kind[fault.kind] = by_kind.get(fault.kind, 0) + 1

    result = GrayCellResult(
        seed=seed,
        mode=mode,
        duration=duration,
        violations=violations,
        gray_faults=len(engine.gray_schedule),
        faults_by_kind=by_kind,
        reads_issued=reader.issued,
        reads_resolved=sum(1 for o in reader.outcomes if o.value is not None),
        timing_failures=sum(1 for o in reader.outcomes if o.timing_failure),
        latencies=[
            effective_latency(o, READ_QOS.deadline) for o in reader.outcomes
        ],
        detector_ejections=recovery.get("detector_ejections", 0),
        detector_hedges=recovery.get("detector_hedges", 0),
        detector_probes=recovery.get("detector_probes", 0),
        suspects_total=(
            0 if detector is None else detector.stats()["suspects_total"]
        ),
        clears_total=(
            0 if detector is None else detector.stats()["clears_total"]
        ),
        still_suspected=[] if detector is None else detector.suspected(),
        detection=None if detection is None else detection.to_dict(),
        events=[f"t={e.time:.3f} {e.kind} {e.target}" for e in engine.events],
        metrics=metrics.snapshot(),
        timeline=recorder.timeline().to_dict(),
    )
    if result.violations and trace_dir is not None:
        directory = Path(trace_dir)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"gray-seed{seed}-{mode}.trace"
        with path.open("w") as fh:
            for line in result.violations:
                fh.write(f"VIOLATION {line}\n")
            for line in result.events:
                fh.write(f"EVENT {line}\n")
            for record in trace.records:
                fh.write(
                    f"{record.time:.6f} {record.category} "
                    f"{record.actor} {record.detail}\n"
                )
        (directory / f"gray-seed{seed}-{mode}.jsonl").write_text(
            trace.to_jsonl()
        )
    return result


def _check_gray_invariants(
    client, engine: ChaosEngine, detection: Optional[DetectionReport],
    serving: set[str],
) -> list[str]:
    violations: list[str] = []
    detector = client.detector
    assert detector is not None and detection is not None

    # The storm must be real: gray faults on serving replicas, and the
    # detector must have reacted to at least one of them.
    observable = [f for f in engine.gray_schedule if f.target in serving]
    if not observable:
        violations.append("storm: no gray fault hit a serving replica")
    elif detector.stats()["suspects_total"] == 0:
        violations.append("detector-idle: gray faults injected, zero suspicions")

    # No permanent ejection: the campaign healed everything, the drain
    # window passed, so probes must have re-admitted every suspect.
    stuck = detector.suspected()
    if stuck:
        violations.append(
            f"permanent-ejection: still suspected after heal+drain: {stuck}"
        )

    # Bounded false positives against the ground-truth schedule.
    if detection.suspect_edges and detection.false_positive_rate > 0.5:
        violations.append(
            f"false-positives: {detection.false_positives}/"
            f"{detection.suspect_edges} suspect edges "
            f"({detection.false_positive_rate:.0%}) lack a covering fault"
        )

    # Every issued read was judged: nothing is silently dropped.
    if client.reads_issued != client.reads_judged:
        violations.append(
            f"accounting: issued {client.reads_issued} reads "
            f"but judged {client.reads_judged}"
        )
    return violations


# ---------------------------------------------------------------------------
# Suite harness + CLI
# ---------------------------------------------------------------------------
def run_gray_suite(
    seeds: list[int],
    duration: float = 14.0,
    jobs: int = 1,
    trace_dir: Optional[str] = None,
) -> list[GrayCellResult]:
    """Both modes for every seed; results ordered seed-major."""
    specs = [
        CellSpec(
            (seed, mode),
            run_gray_cell,
            {
                "seed": seed,
                "mode": mode,
                "duration": duration,
                "trace_dir": trace_dir,
            },
        )
        for seed in seeds
        for mode in ("detector", "baseline")
    ]
    return run_cells(specs, jobs=jobs, progress=True, label="gray")


def suite_violations(results: list[GrayCellResult]) -> list[str]:
    """Cell-level violations plus the cross-mode acceptance checks."""
    violations = [
        f"seed {r.seed} [{r.mode}]: {v}" for r in results for v in r.violations
    ]
    det = [x for r in results if r.mode == "detector" for x in r.latencies]
    base = [x for r in results if r.mode == "baseline" for x in r.latencies]
    if det and base:
        det_p99 = percentile(det, 0.99)
        base_p99 = percentile(base, 0.99)
        if not det_p99 < base_p99:
            violations.append(
                f"p99: read effective latency with the detector "
                f"({det_p99:.4f}s) is not better than baseline "
                f"({base_p99:.4f}s)"
            )
    det_cells = [r for r in results if r.mode == "detector"]
    base_cells = [r for r in results if r.mode == "baseline"]
    if det_cells and base_cells:
        det_sla = _pooled_sla(det_cells)
        base_sla = _pooled_sla(base_cells)
        if det_sla < base_sla:
            violations.append(
                f"sla: satisfaction with the detector ({det_sla:.2%}) "
                f"is worse than baseline ({base_sla:.2%})"
            )
    return violations


def _pooled_sla(cells: list[GrayCellResult]) -> float:
    issued = sum(r.reads_issued for r in cells)
    late = sum(r.timing_failures for r in cells)
    if not issued:
        return 1.0
    return 1.0 - late / issued


def summarize(results: list[GrayCellResult]) -> str:
    rows = []
    for r in results:
        ttd = None if r.detection is None else r.detection["mean_time_to_detect"]
        rows.append(
            [
                r.seed,
                r.mode,
                r.gray_faults,
                r.reads_issued,
                f"{r.p99:.4f}",
                f"{r.sla_rate:.2%}",
                r.timing_failures,
                f"{r.detector_ejections}/{r.detector_hedges}/{r.detector_probes}",
                "-" if ttd is None else f"{ttd:.3f}",
                (
                    "-" if r.detection is None
                    else f"{r.detection['false_positive_rate']:.0%}"
                ),
                "CLEAN" if r.clean else f"{len(r.violations)} VIOLATIONS",
            ]
        )
    table = format_table(
        [
            "seed", "mode", "faults", "reads", "p99", "sla", "late",
            "eject/hedge/probe", "ttd", "fp", "verdict",
        ],
        rows,
        title="gray-failure campaign (detector vs. baseline)",
    )
    merged = MetricsRegistry.merge(
        *(r.metrics for r in results if r.mode == "detector" and r.metrics)
    )
    return (
        table
        + "\n\n"
        + render_report(metrics=merged, title="detector-cell telemetry")
    )


def write_metrics_artifact(
    path: str, results: list[GrayCellResult], seeds: list[int]
) -> None:
    """JSONL artifact: one record per cell, the pooled comparison, and a
    per-mode merged timeline (``repro dash`` input)."""
    from repro.experiments.report import write_experiment_artifact

    records: list[dict] = []
    for r in results:
        records.append(
            {
                "event": "cell",
                "seed": r.seed,
                "mode": r.mode,
                "gray_faults": r.gray_faults,
                "faults_by_kind": r.faults_by_kind,
                "reads_issued": r.reads_issued,
                "timing_failures": r.timing_failures,
                "p99": r.p99,
                "sla_rate": r.sla_rate,
                "detector_ejections": r.detector_ejections,
                "detector_hedges": r.detector_hedges,
                "detector_probes": r.detector_probes,
                "suspects_total": r.suspects_total,
                "clears_total": r.clears_total,
                "still_suspected": r.still_suspected,
                "detection": r.detection,
                "violations": r.violations,
            }
        )
    for mode in ("detector", "baseline"):
        cells = [r for r in results if r.mode == mode]
        pooled = [x for r in cells for x in r.latencies]
        records.append(
            {
                "event": "pooled",
                "mode": mode,
                "p99": percentile(pooled, 0.99),
                "sla_rate": _pooled_sla(cells),
                "samples": len(pooled),
            }
        )
    for mode in ("detector", "baseline"):
        timelines = [
            Timeline.from_dict(r.timeline)
            for r in results
            if r.mode == mode and r.timeline is not None
        ]
        if timelines:
            records.append(
                {
                    "event": "timeline",
                    "mode": mode,
                    "timeline": Timeline.merge(*timelines).to_dict(),
                }
            )
    write_experiment_artifact(path, "gray", records, seeds=seeds)


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, default=5, help="campaigns per mode")
    parser.add_argument("--seed", type=int, default=0, help="base seed")
    parser.add_argument("--duration", type=float, default=14.0)
    parser.add_argument("--quick", action="store_true", help="2 seeds x 8s")
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero on any invariant or acceptance violation",
    )
    parser.add_argument("--jobs", type=int, default=1, metavar="N")
    parser.add_argument("--save", type=str, default=None)
    parser.add_argument(
        "--metrics-out", type=str, default=None, help="write telemetry as JSONL"
    )
    parser.add_argument(
        "--trace-dir",
        type=str,
        default=None,
        help="dump the full trace of any violating cell here",
    )
    args = parser.parse_args(argv)

    count = 2 if args.quick else args.seeds
    duration = 8.0 if args.quick else args.duration
    seeds = [seed_for(args.seed, "gray", i) for i in range(count)]
    results = run_gray_suite(
        seeds, duration=duration, jobs=args.jobs, trace_dir=args.trace_dir
    )
    print(summarize(results))

    det_cells = [r for r in results if r.mode == "detector"]
    base_cells = [r for r in results if r.mode == "baseline"]
    if det_cells and base_cells:
        det_lat = [x for r in det_cells for x in r.latencies]
        base_lat = [x for r in base_cells for x in r.latencies]
        print(
            f"pooled: detector p99={percentile(det_lat, 0.99):.4f}s "
            f"sla={_pooled_sla(det_cells):.2%} | baseline "
            f"p99={percentile(base_lat, 0.99):.4f}s "
            f"sla={_pooled_sla(base_cells):.2%}"
        )

    violations = suite_violations(results)
    for line in violations:
        print(f"VIOLATION {line}", file=sys.stderr)

    if args.save:
        save_results(
            args.save,
            [r.__dict__ for r in results],
            meta={
                "experiment": "gray",
                "seeds": seeds,
                "duration": duration,
                "violations": violations,
            },
        )
    if args.metrics_out:
        write_metrics_artifact(args.metrics_out, results, seeds)
        print(f"telemetry written to {args.metrics_out}")

    if args.check and violations:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
