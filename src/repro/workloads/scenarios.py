"""Canned experimental setups.

:func:`build_paper_scenario` reproduces the §6 testbed exactly:

* 10 server replicas in addition to the sequencer — 4 primary, 6 secondary;
* background load simulated by a normally distributed service delay with a
  mean of 100 ms (spread 50 ms);
* two clients on different machines, each issuing ``total_requests``
  alternating write/read requests with a 1000 ms request delay;
* client 1 fixed at ``<a=4, d=200 ms, P_c=0.1>``; client 2's deadline,
  probability, and the lazy update interval are the swept parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.qos import QoSSpec
from repro.core.selection import SelectionStrategy
from repro.core.service import ServiceConfig, Testbed, build_testbed
from repro.obs.calibration import CalibrationTracker
from repro.obs.metrics import MetricsRegistry
from repro.sim.rng import Distribution, Normal
from repro.sim.tracing import Trace
from repro.workloads.clients import AlternatingClient, ClientWorkloadConfig


@dataclass
class PaperScenario:
    """A built §6 testbed: run ``sim`` until both workloads finish."""

    testbed: Testbed
    client1: AlternatingClient
    client2: AlternatingClient

    @property
    def sim(self):
        return self.testbed.sim

    @property
    def service(self):
        return self.testbed.service

    def run(self, slack: float = 120.0) -> None:
        """Run until both clients finish (with a generous time bound)."""
        cfg1 = self.client1.config
        cfg2 = self.client2.config
        worst = max(
            cfg1.total_requests * (cfg1.request_delay + 5.0),
            cfg2.total_requests * (cfg2.request_delay + 5.0),
        )
        bound = self.sim.now + worst + slack
        while not (self.client1.finished and self.client2.finished):
            if self.sim.now >= bound:
                raise RuntimeError("scenario did not finish within its time bound")
            if not self.sim.step():
                raise RuntimeError("simulation went idle before workloads finished")


def build_paper_scenario(
    deadline: float = 0.200,
    min_probability: float = 0.9,
    lazy_update_interval: float = 2.0,
    staleness_threshold: int = 2,
    total_requests: int = 1000,
    request_delay: float = 1.0,
    seed: int = 0,
    client1_qos: Optional[QoSSpec] = None,
    num_primaries: int = 4,
    num_secondaries: int = 6,
    service_time: Optional[Distribution] = None,
    window_size: int = 20,
    strategy2: Optional[SelectionStrategy] = None,
    warmup_requests: int = 0,
    metrics: Optional[MetricsRegistry] = None,
    calibration: Optional[CalibrationTracker] = None,
    trace: Optional[Trace] = None,
) -> PaperScenario:
    """The §6 testbed with client 2's QoS as the swept variable.

    ``strategy2`` swaps client 2's selection policy (baseline ablations);
    ``warmup_requests`` excludes leading requests from client statistics;
    ``trace`` enables event tracing (e.g. the per-read
    ``replica.attribution`` staleness decomposition records).
    """
    config = ServiceConfig(
        name="svc",
        num_primaries=num_primaries,
        num_secondaries=num_secondaries,
        lazy_update_interval=lazy_update_interval,
        window_size=window_size,
        read_service_time=service_time or Normal(0.100, 0.050, floor=0.002),
    )
    testbed = build_testbed(
        config, seed=seed, metrics=metrics, calibration=calibration, trace=trace
    )
    service = testbed.service

    qos1 = client1_qos or QoSSpec(
        staleness_threshold=4, deadline=0.200, min_probability=0.1
    )
    qos2 = QoSSpec(
        staleness_threshold=staleness_threshold,
        deadline=deadline,
        min_probability=min_probability,
    )

    handler1 = service.create_client("client-1", read_only_methods={"get"})
    handler2 = service.create_client(
        "client-2", read_only_methods={"get"}, strategy=strategy2
    )

    workload1 = AlternatingClient(
        testbed.sim,
        handler1,
        ClientWorkloadConfig(
            total_requests=total_requests,
            request_delay=request_delay,
            qos=qos1,
            warmup_requests=warmup_requests,
        ),
    )
    workload2 = AlternatingClient(
        testbed.sim,
        handler2,
        ClientWorkloadConfig(
            total_requests=total_requests,
            request_delay=request_delay,
            qos=qos2,
            warmup_requests=warmup_requests,
        ),
    )
    return PaperScenario(testbed, workload1, workload2)
