"""Canned experimental setups.

:func:`build_paper_scenario` reproduces the §6 testbed exactly:

* 10 server replicas in addition to the sequencer — 4 primary, 6 secondary;
* background load simulated by a normally distributed service delay with a
  mean of 100 ms (spread 50 ms);
* two clients on different machines, each issuing ``total_requests``
  alternating write/read requests with a 1000 ms request delay;
* client 1 fixed at ``<a=4, d=200 ms, P_c=0.1>``; client 2's deadline,
  probability, and the lazy update interval are the swept parameters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.client import ClientHandler
from repro.core.controller import (
    ClassBounds,
    ConsistencyController,
    ControllerConfig,
    class_adjustment_at,
    t_l_at,
)
from repro.core.overload import DegradationConfig, DegradationPolicy
from repro.core.priority import PriorityMapper
from repro.core.qos import QoSSpec
from repro.core.selection import SelectionStrategy
from repro.core.service import ServiceConfig, Testbed, build_testbed
from repro.groups.membership import MembershipConfig
from repro.obs.calibration import CalibrationTracker
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import SloEngine, SloSpec
from repro.obs.timeseries import TimeseriesRecorder
from repro.sim.rng import Distribution, LogNormal, Normal
from repro.sim.tracing import Trace
from repro.workloads.clients import AlternatingClient, ClientWorkloadConfig
from repro.workloads.generators import (
    ArrivalRateController,
    OpenLoopUpdater,
    PeriodicReader,
)


@dataclass
class PaperScenario:
    """A built §6 testbed: run ``sim`` until both workloads finish."""

    testbed: Testbed
    client1: AlternatingClient
    client2: AlternatingClient

    @property
    def sim(self):
        return self.testbed.sim

    @property
    def service(self):
        return self.testbed.service

    def run(self, slack: float = 120.0) -> None:
        """Run until both clients finish (with a generous time bound)."""
        cfg1 = self.client1.config
        cfg2 = self.client2.config
        worst = max(
            cfg1.total_requests * (cfg1.request_delay + 5.0),
            cfg2.total_requests * (cfg2.request_delay + 5.0),
        )
        bound = self.sim.now + worst + slack
        while not (self.client1.finished and self.client2.finished):
            if self.sim.now >= bound:
                raise RuntimeError("scenario did not finish within its time bound")
            if not self.sim.step():
                raise RuntimeError("simulation went idle before workloads finished")


def build_paper_scenario(
    deadline: float = 0.200,
    min_probability: float = 0.9,
    lazy_update_interval: float = 2.0,
    staleness_threshold: int = 2,
    total_requests: int = 1000,
    request_delay: float = 1.0,
    seed: int = 0,
    client1_qos: Optional[QoSSpec] = None,
    num_primaries: int = 4,
    num_secondaries: int = 6,
    service_time: Optional[Distribution] = None,
    window_size: int = 20,
    strategy2: Optional[SelectionStrategy] = None,
    warmup_requests: int = 0,
    metrics: Optional[MetricsRegistry] = None,
    calibration: Optional[CalibrationTracker] = None,
    trace: Optional[Trace] = None,
) -> PaperScenario:
    """The §6 testbed with client 2's QoS as the swept variable.

    ``strategy2`` swaps client 2's selection policy (baseline ablations);
    ``warmup_requests`` excludes leading requests from client statistics;
    ``trace`` enables event tracing (e.g. the per-read
    ``replica.attribution`` staleness decomposition records).
    """
    config = ServiceConfig(
        name="svc",
        num_primaries=num_primaries,
        num_secondaries=num_secondaries,
        lazy_update_interval=lazy_update_interval,
        window_size=window_size,
        read_service_time=service_time or Normal(0.100, 0.050, floor=0.002),
    )
    testbed = build_testbed(
        config, seed=seed, metrics=metrics, calibration=calibration, trace=trace
    )
    service = testbed.service

    qos1 = client1_qos or QoSSpec(
        staleness_threshold=4, deadline=0.200, min_probability=0.1
    )
    qos2 = QoSSpec(
        staleness_threshold=staleness_threshold,
        deadline=deadline,
        min_probability=min_probability,
    )

    handler1 = service.create_client("client-1", read_only_methods={"get"})
    handler2 = service.create_client(
        "client-2", read_only_methods={"get"}, strategy=strategy2
    )

    workload1 = AlternatingClient(
        testbed.sim,
        handler1,
        ClientWorkloadConfig(
            total_requests=total_requests,
            request_delay=request_delay,
            qos=qos1,
            warmup_requests=warmup_requests,
        ),
    )
    workload2 = AlternatingClient(
        testbed.sim,
        handler2,
        ClientWorkloadConfig(
            total_requests=total_requests,
            request_delay=request_delay,
            qos=qos2,
            warmup_requests=warmup_requests,
        ),
    )
    return PaperScenario(testbed, workload1, workload2)


# ---------------------------------------------------------------------------
# Per-operation consistency classes (DESIGN.md §16)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class OperationClass:
    """One operation class of a storefront-style workload.

    ``qos`` is the declared (conservative) per-read specification;
    ``bounds`` the hard guardrails the closed-loop controller may relax
    within; ``objective`` the class's timeliness SLO; ``read_period`` the
    base inter-read gap of its open-loop reader; ``priority`` feeds the
    degradation ladder's shed floor.
    """

    name: str
    qos: QoSSpec
    bounds: ClassBounds
    objective: float
    read_period: float
    priority: str


#: The canonical class mix: logins demand strong consistency (read your
#: own authentication state), carts tolerate bounded session staleness,
#: and catalogue browsing is happily eventual — exactly the per-operation
#: spectrum SNIPPETS/OptCon argue a single static setting cannot serve.
#:
#: Deadlines sit just above the conservative lazy interval (0.3 s): at
#: the declared knobs a deferred read always makes its deadline, but
#: every relax step of ``T_L`` pushes part of the deferral-wait range
#: past the deadlines — cheap and safe in calm, cheap and *bleeding*
#: under a write surge, which is the regime an adaptive controller
#: exists for.
OPERATION_CLASSES: tuple[OperationClass, ...] = (
    OperationClass(
        name="login",
        qos=QoSSpec(staleness_threshold=0, deadline=0.45, min_probability=0.95),
        bounds=ClassBounds(staleness_ceiling=2, probability_floor=0.90,
                           staleness_step=1, probability_step=0.01),
        objective=0.99,
        read_period=0.08,
        priority="platinum",
    ),
    OperationClass(
        name="cart",
        qos=QoSSpec(staleness_threshold=4, deadline=0.40, min_probability=0.85),
        bounds=ClassBounds(staleness_ceiling=16, probability_floor=0.60),
        objective=0.95,
        read_period=0.05,
        priority="gold",
    ),
    OperationClass(
        name="browse",
        qos=QoSSpec(staleness_threshold=12, deadline=0.35, min_probability=0.60),
        bounds=ClassBounds(staleness_ceiling=60, probability_floor=0.30,
                           staleness_step=8, probability_step=0.1),
        objective=0.90,
        read_period=0.025,
        priority="bronze",
    ),
)


def default_mix_service_time() -> Distribution:
    """Normally distributed replica service time, mean 20 ms."""
    return Normal(0.020, 0.005, floor=0.002)


#: Leading-indicator SLO over the replica deferral-wait histogram.  The
#: conservative knob setting hides load surges from the timeliness SLOs
#: (deferral waits stay bounded by the short lazy interval, under every
#: deadline), so a controller parked there would read "healthy" mid-surge
#: and relax straight into it.  Deferral *waits* shift right under a
#: write surge at every knob setting, so this guard burns while the
#: system is under pressure and recovers shortly after — it gates the
#: controller's exploration but is not part of the SLA satisfaction
#: score (see :mod:`repro.experiments.adaptive`).
STALENESS_GUARD = SloSpec(
    name="staleness-guard",
    objective=0.70,
    kind="staleness",
    staleness_bound=0.2,
)


def operation_slo_specs(
    classes: tuple[OperationClass, ...] = OPERATION_CLASSES,
    *,
    guard: bool = True,
) -> tuple[SloSpec, ...]:
    """One timeliness SLO per class (selected by the client label), plus
    the :data:`STALENESS_GUARD` leading indicator unless ``guard`` is
    off."""
    specs = tuple(
        SloSpec(
            name=f"timeliness-{cls.name}",
            objective=cls.objective,
            kind="timeliness",
            client=cls.name,
        )
        for cls in classes
    )
    if guard:
        specs += (STALENESS_GUARD,)
    return specs


@dataclass
class OperationMixScenario:
    """A built class-mix testbed: readers, sensors, optional controller."""

    testbed: Testbed
    classes: Dict[str, OperationClass]
    clients: Dict[str, ClientHandler]
    readers: Dict[str, PeriodicReader]
    updater: OpenLoopUpdater
    recorder: TimeseriesRecorder
    engine: SloEngine
    rate_controller: ArrivalRateController
    controller: Optional[ConsistencyController] = None
    static_relax: int = 0
    ladders: Dict[str, DegradationPolicy] = field(default_factory=dict)

    @property
    def sim(self):
        return self.testbed.sim

    @property
    def service(self):
        return self.testbed.service


def build_operation_mix_scenario(
    seed: int = 0,
    duration: float = 12.0,
    *,
    controller_config: Optional[ControllerConfig] = None,
    knob_config: Optional[ControllerConfig] = None,
    static_relax: int = 0,
    with_ladder: bool = True,
    update_rate: float = 2.0,
    lazy_update_interval: float = 0.3,
    num_primaries: int = 3,
    num_secondaries: int = 3,
    recorder_interval: float = 0.1,
    service_time: Optional[Distribution] = None,
    metrics: Optional[MetricsRegistry] = None,
    trace: Optional[Trace] = None,
    classes: tuple[OperationClass, ...] = OPERATION_CLASSES,
) -> OperationMixScenario:
    """Build the login/cart/browse mix, closed- or open-loop.

    With ``controller_config`` the scenario attaches a started
    :class:`~repro.core.controller.ConsistencyController` driving all
    three knob families.  Without one, ``static_relax`` pins every knob
    at that ladder index **using the exact same knob math** the
    controller would apply (``t_l_at`` / ``class_adjustment_at``), which
    is what makes the controller-vs-static grid in
    ``experiments/adaptive.py`` a fair comparison.

    ``duration`` is the reader/updater horizon in simulated seconds; the
    caller owns warmup and drain.
    """
    metrics = metrics if metrics is not None else MetricsRegistry()
    # Static cells pin their knobs with the same ladder shape the
    # controller walks; pass ``knob_config`` explicitly so a static grid
    # stays comparable to a closed-loop run with a non-default config.
    knob_config = knob_config or controller_config or ControllerConfig()
    closed_loop = controller_config is not None
    static_t_l = t_l_at(knob_config, lazy_update_interval, static_relax)

    config = ServiceConfig(
        name="svc",
        num_primaries=num_primaries,
        num_secondaries=num_secondaries,
        lazy_update_interval=(
            lazy_update_interval if closed_loop else static_t_l
        ),
        read_service_time=service_time or default_mix_service_time(),
        heartbeat_interval=0.1,
        suspect_timeout=0.35,
        gsn_wait_timeout=0.15,
        gc_timeout=4.0,
        controller=controller_config,
    )
    testbed = build_testbed(
        config,
        seed=seed,
        metrics=metrics,
        trace=trace,
        membership_config=MembershipConfig(
            heartbeat_interval=0.1, suspect_timeout=0.35, sweep_interval=0.1
        ),
    )
    sim, service = testbed.sim, testbed.service

    mapper = PriorityMapper()
    rate_controller = ArrivalRateController()
    clients: Dict[str, ClientHandler] = {}
    readers: Dict[str, PeriodicReader] = {}
    ladders: Dict[str, DegradationPolicy] = {}
    feed = service.create_client("feed", read_only_methods={"get"})
    # The rate controller modulates the *write* stream: a load storm is a
    # write surge, which is what stresses lazy propagation and staleness
    # (a read surge would melt queues identically at every consistency
    # setting and tell us nothing about the knobs).
    updater = OpenLoopUpdater(
        sim,
        feed,
        testbed.rng,
        rate=update_rate,
        duration=duration,
        rate_controller=rate_controller,
    )
    for cls in classes:
        ladder = (
            DegradationPolicy(DegradationConfig(), mapper)
            if with_ladder
            else None
        )
        qos = cls.qos
        if not closed_loop and static_relax > 0:
            qos = class_adjustment_at(
                knob_config, cls.bounds, static_relax
            ).apply(qos)
        handler = service.create_client(
            cls.name,
            read_only_methods={"get"},
            degradation=ladder,
            priority=cls.priority,
        )
        clients[cls.name] = handler
        if ladder is not None:
            ladders[cls.name] = ladder
        readers[cls.name] = PeriodicReader(
            sim,
            handler,
            qos,
            period=cls.read_period,
            duration=duration,
        )

    engine = SloEngine(operation_slo_specs(classes))
    recorder = TimeseriesRecorder(
        sim, metrics, interval=recorder_interval
    ).start()

    controller = None
    if closed_loop:
        controller = service.attach_controller(engine, recorder)
        for cls in classes:
            controller.register_class(
                cls.name, [clients[cls.name]], cls.bounds, cls.qos
            )
            if cls.name in ladders:
                controller.register_ladder(clients[cls.name])
        controller.start()

    return OperationMixScenario(
        testbed=testbed,
        classes={cls.name: cls for cls in classes},
        clients=clients,
        readers=readers,
        updater=updater,
        recorder=recorder,
        engine=engine,
        rate_controller=rate_controller,
        controller=controller,
        static_relax=static_relax,
        ladders=ladders,
    )
