"""Client workload generation.

* :mod:`repro.workloads.clients` — closed-loop clients reproducing the §6
  request pattern: alternating write/read requests with a *request delay*
  ("the duration that elapses before a client issues its next request
  after completion of its previous request");
* :mod:`repro.workloads.generators` — open-loop arrival processes
  (Poisson/periodic updaters) for experiments that pin the update arrival
  rate ``lambda_u``;
* :mod:`repro.workloads.scenarios` — canned experimental setups, including
  the paper's exact §6 testbed;
* :mod:`repro.workloads.aggregate` — the fluid-approximation client tier:
  one pooled-arrival process per population, for million-user cells.
"""

from repro.workloads.aggregate import (
    AggregatedClientPool,
    AggregateStats,
    PopulationSpec,
)
from repro.workloads.clients import AlternatingClient, ClientWorkloadConfig
from repro.workloads.generators import OpenLoopUpdater, PeriodicReader
from repro.workloads.scenarios import PaperScenario, build_paper_scenario

__all__ = [
    "AggregateStats",
    "AggregatedClientPool",
    "AlternatingClient",
    "ClientWorkloadConfig",
    "OpenLoopUpdater",
    "PeriodicReader",
    "PaperScenario",
    "PopulationSpec",
    "build_paper_scenario",
]
