"""Closed-loop client workloads (§6's request pattern).

"each of the two clients issued 1000 alternating write and read requests
to the service" with "a 1000 millisecond request delay, which we define as
the duration that elapses before a client issues its next request after
completion of its previous request."

:class:`AlternatingClient` reproduces that pattern as a simulation process
on top of a :class:`~repro.core.client.ClientHandler`, collecting every
outcome for post-run analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.core.client import ClientHandler
from repro.core.qos import QoSSpec
from repro.core.requests import ReadOutcome, UpdateOutcome
from repro.sim.kernel import Simulator
from repro.sim.process import Process, Timeout


@dataclass
class ClientWorkloadConfig:
    """Shape of one closed-loop client."""

    total_requests: int = 1000  # alternating: ceil/2 writes, floor/2 reads
    request_delay: float = 1.0  # seconds between completion and next issue
    qos: QoSSpec = field(
        default_factory=lambda: QoSSpec(
            staleness_threshold=2, deadline=0.200, min_probability=0.9
        )
    )
    update_method: str = "increment"
    update_args: Callable[[int], tuple] = lambda i: ()
    read_method: str = "get"
    read_args: Callable[[int], tuple] = lambda i: ()
    start_with_update: bool = True
    warmup_requests: int = 0  # leading requests excluded from statistics

    def __post_init__(self) -> None:
        if self.total_requests < 0:
            raise ValueError("negative request count")
        if self.request_delay < 0:
            raise ValueError("negative request delay")
        if self.warmup_requests < 0:
            raise ValueError("negative warmup count")


class AlternatingClient:
    """Drives a client handler through the §6 alternating pattern."""

    def __init__(
        self,
        sim: Simulator,
        handler: ClientHandler,
        config: ClientWorkloadConfig,
    ) -> None:
        self.sim = sim
        self.handler = handler
        self.config = config
        self.read_outcomes: list[ReadOutcome] = []
        self.update_outcomes: list[UpdateOutcome] = []
        self.warmup_skipped = 0
        self.process = Process(sim, self._run(), name=f"workload-{handler.name}")

    @property
    def finished(self) -> bool:
        return not self.process.alive

    # ------------------------------------------------------------------
    # Metrics over the post-warmup reads
    # ------------------------------------------------------------------
    def timing_failure_count(self) -> int:
        return sum(1 for o in self.read_outcomes if o.timing_failure)

    def timing_failure_probability(self) -> float:
        if not self.read_outcomes:
            return 0.0
        return self.timing_failure_count() / len(self.read_outcomes)

    def average_replicas_selected(self) -> float:
        if not self.read_outcomes:
            return 0.0
        return sum(o.replicas_selected for o in self.read_outcomes) / len(
            self.read_outcomes
        )

    def mean_response_time(self) -> float:
        times = [
            o.response_time for o in self.read_outcomes if o.response_time is not None
        ]
        if not times:
            return 0.0
        return sum(times) / len(times)

    def deferred_fraction(self) -> float:
        if not self.read_outcomes:
            return 0.0
        return sum(1 for o in self.read_outcomes if o.deferred) / len(
            self.read_outcomes
        )

    # ------------------------------------------------------------------
    # The workload process
    # ------------------------------------------------------------------
    def _run(self):
        cfg = self.config
        is_update = cfg.start_with_update
        for i in range(cfg.total_requests):
            if is_update:
                outcome = yield self.handler.call(
                    cfg.update_method, cfg.update_args(i)
                )
                self._record(outcome, i)
            else:
                outcome = yield self.handler.call(
                    cfg.read_method, cfg.read_args(i), cfg.qos
                )
                self._record(outcome, i)
            is_update = not is_update
            if cfg.request_delay > 0:
                yield Timeout(cfg.request_delay)
        return {
            "reads": len(self.read_outcomes),
            "updates": len(self.update_outcomes),
        }

    def _record(self, outcome: Any, index: int) -> None:
        if index < self.config.warmup_requests:
            self.warmup_skipped += 1
            return
        if isinstance(outcome, ReadOutcome):
            self.read_outcomes.append(outcome)
        elif isinstance(outcome, UpdateOutcome):
            self.update_outcomes.append(outcome)
