"""Open-loop workload generators.

Unlike the closed-loop clients, these issue requests on an arrival process
independent of completions.  :class:`OpenLoopUpdater` pins the update
arrival rate ``lambda_u`` — the quantity Eq. 4's Poisson staleness model
assumes — so tests can check the staleness-factor estimate against a known
ground truth.  :class:`PeriodicReader` issues reads on a fixed period for
steady sampling of the selection behaviour.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.client import ClientHandler
from repro.core.qos import QoSSpec
from repro.core.requests import ReadOutcome, UpdateOutcome
from repro.sim.kernel import Simulator
from repro.sim.process import Process, Timeout
from repro.sim.rng import RngRegistry


class ArrivalRateController:
    """A shared, mutable arrival-rate multiplier for the generators.

    Generators that accept a ``rate_controller`` consult :attr:`factor`
    before every inter-arrival gap, so a change takes effect on the next
    request.  The chaos engine's ``load_storm`` fault raises the factor
    for a bounded window to simulate a traffic burst (DESIGN.md §11);
    anything else holding the same instance observes the storm too.
    """

    def __init__(self, factor: float = 1.0) -> None:
        if factor <= 0:
            raise ValueError(f"rate factor must be positive, got {factor!r}")
        self.factor = factor
        self.storms_started = 0

    def begin_storm(self, factor: float) -> None:
        if factor <= 0:
            raise ValueError(f"storm factor must be positive, got {factor!r}")
        self.factor = factor
        self.storms_started += 1

    def end_storm(self) -> None:
        self.factor = 1.0

    @property
    def storming(self) -> bool:
        return self.factor != 1.0


class OpenLoopUpdater:
    """Issues update requests as a Poisson (or periodic) arrival process."""

    def __init__(
        self,
        sim: Simulator,
        handler: ClientHandler,
        rng: RngRegistry,
        rate: float,
        duration: float,
        method: str = "increment",
        args: Callable[[int], tuple] = lambda i: (),
        poisson: bool = True,
        rate_controller: Optional[ArrivalRateController] = None,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate!r}")
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration!r}")
        self.sim = sim
        self.handler = handler
        self.rate = rate
        self.duration = duration
        self.method = method
        self.args = args
        self.poisson = poisson
        self.rate_controller = rate_controller
        self.issued = 0
        self.outcomes: list[UpdateOutcome] = []
        self._rng = rng.stream(f"updater.{handler.name}")
        self.process = Process(sim, self._run(), name=f"updater-{handler.name}")

    def _effective_rate(self) -> float:
        if self.rate_controller is None:
            return self.rate
        return self.rate * self.rate_controller.factor

    def _gap(self) -> float:
        rate = self._effective_rate()
        if self.poisson:
            return self._rng.expovariate(rate)
        return 1.0 / rate

    def _run(self):
        deadline = self.sim.now + self.duration
        while True:
            gap = self._gap()
            if self.sim.now + gap > deadline:
                break
            yield Timeout(gap)
            self.handler.invoke(
                self.method, self.args(self.issued), callback=self.outcomes.append
            )
            self.issued += 1
        return self.issued


class BurstyUpdater:
    """Markov-modulated update arrivals: busy bursts separated by silence.

    Used to stress the Poisson staleness model (Eq. 4 assumes a constant
    rate) — the *mean* rate equals ``burst_rate * duty_cycle``, but counts
    over a lazy interval are heavily over-dispersed.
    """

    def __init__(
        self,
        sim: Simulator,
        handler: ClientHandler,
        rng: RngRegistry,
        burst_rate: float,
        burst_length: float,
        idle_length: float,
        duration: float,
        method: str = "increment",
        args: Callable[[int], tuple] = lambda i: (),
    ) -> None:
        if burst_rate <= 0:
            raise ValueError(f"burst rate must be positive, got {burst_rate!r}")
        if burst_length <= 0 or idle_length < 0:
            raise ValueError("invalid burst/idle lengths")
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration!r}")
        self.sim = sim
        self.handler = handler
        self.burst_rate = burst_rate
        self.burst_length = burst_length
        self.idle_length = idle_length
        self.duration = duration
        self.method = method
        self.args = args
        self.issued = 0
        self._rng = rng.stream(f"bursty.{handler.name}")
        self.process = Process(sim, self._run(), name=f"bursty-{handler.name}")

    @property
    def mean_rate(self) -> float:
        cycle = self.burst_length + self.idle_length
        return self.burst_rate * self.burst_length / cycle

    def _run(self):
        deadline = self.sim.now + self.duration
        while self.sim.now < deadline:
            burst_end = min(deadline, self.sim.now + self.burst_length)
            while True:
                gap = self._rng.expovariate(self.burst_rate)
                if self.sim.now + gap > burst_end:
                    break
                yield Timeout(gap)
                self.handler.invoke(self.method, self.args(self.issued))
                self.issued += 1
            remaining = burst_end - self.sim.now
            if remaining > 0:
                yield Timeout(remaining)
            if self.idle_length > 0 and self.sim.now < deadline:
                yield Timeout(min(self.idle_length, deadline - self.sim.now))
        return self.issued


class PoissonReader:
    """Open-loop Poisson read arrivals — the merged-stream ground truth.

    The discrete reference for the aggregated client tier
    (:mod:`repro.workloads.aggregate`): ``N`` independent Poisson readers
    at per-client rate ``λ`` are statistically indistinguishable from one
    reader at rate ``N·λ`` (Poisson superposition), so a single
    ``PoissonReader`` at the population's *total* rate is the exact
    per-request simulation of the whole population.  Outcomes are
    recorded with their issue times so summaries can drop a warmup
    prefix the same way the pool does.
    """

    def __init__(
        self,
        sim: Simulator,
        handler: ClientHandler,
        rng: RngRegistry,
        qos: QoSSpec,
        rate: float,
        duration: float,
        method: str = "get",
        args: Callable[[int], tuple] = lambda i: (),
        rate_controller: Optional[ArrivalRateController] = None,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate!r}")
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration!r}")
        self.sim = sim
        self.handler = handler
        self.qos = qos
        self.rate = rate
        self.duration = duration
        self.method = method
        self.args = args
        self.rate_controller = rate_controller
        self.issued = 0
        # (issued_at, outcome) pairs, in completion order.
        self.records: list[tuple[float, ReadOutcome]] = []
        self._rng = rng.stream(f"poisson-reader.{handler.name}")
        self.process = Process(sim, self._run(), name=f"preader-{handler.name}")

    def _effective_rate(self) -> float:
        if self.rate_controller is None:
            return self.rate
        return self.rate * self.rate_controller.factor

    def _issue(self, i: int) -> None:
        issued_at = self.sim.now
        self.handler.invoke(
            self.method,
            self.args(i),
            self.qos,
            callback=lambda outcome: self.records.append((issued_at, outcome)),
        )
        self.issued += 1

    def _run(self):
        deadline = self.sim.now + self.duration
        while True:
            gap = self._rng.expovariate(self._effective_rate())
            if self.sim.now + gap > deadline:
                break
            yield Timeout(gap)
            self._issue(self.issued)
        return self.issued


class PeriodicReader:
    """Issues reads on a fixed period, recording every outcome.

    With a ``rate_controller``, the period shrinks by the controller's
    current factor (a load storm makes the reader *faster*, not longer);
    with ``duration`` set, the reader runs until that much simulated time
    has elapsed instead of for a fixed count — the natural shape under
    storms, where the arrival count is itself the variable under test.
    """

    def __init__(
        self,
        sim: Simulator,
        handler: ClientHandler,
        qos: QoSSpec,
        period: float,
        count: int = 0,
        method: str = "get",
        args: Callable[[int], tuple] = lambda i: (),
        rate_controller: Optional[ArrivalRateController] = None,
        duration: Optional[float] = None,
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period!r}")
        if count < 0:
            raise ValueError(f"negative read count {count!r}")
        if duration is None and count == 0:
            raise ValueError("need a positive count or a duration")
        if duration is not None and duration <= 0:
            raise ValueError(f"duration must be positive, got {duration!r}")
        self.sim = sim
        self.handler = handler
        self.qos = qos
        self.period = period
        self.count = count
        self.method = method
        self.args = args
        self.rate_controller = rate_controller
        self.duration = duration
        self.issued = 0
        self.outcomes: list[ReadOutcome] = []
        self.process = Process(sim, self._run(), name=f"reader-{handler.name}")

    def _gap(self) -> float:
        if self.rate_controller is None:
            return self.period
        return self.period / self.rate_controller.factor

    def _issue(self, i: int) -> None:
        self.handler.invoke(
            self.method, self.args(i), self.qos, callback=self.outcomes.append
        )
        self.issued += 1

    def _run(self):
        if self.duration is not None:
            deadline = self.sim.now + self.duration
            while True:
                gap = self._gap()
                if self.sim.now + gap > deadline:
                    break
                yield Timeout(gap)
                self._issue(self.issued)
            return self.issued
        for i in range(self.count):
            yield Timeout(self._gap())
            self._issue(i)
        return self.count
