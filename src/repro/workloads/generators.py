"""Open-loop workload generators.

Unlike the closed-loop clients, these issue requests on an arrival process
independent of completions.  :class:`OpenLoopUpdater` pins the update
arrival rate ``lambda_u`` — the quantity Eq. 4's Poisson staleness model
assumes — so tests can check the staleness-factor estimate against a known
ground truth.  :class:`PeriodicReader` issues reads on a fixed period for
steady sampling of the selection behaviour.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.client import ClientHandler
from repro.core.qos import QoSSpec
from repro.core.requests import ReadOutcome, UpdateOutcome
from repro.sim.kernel import Simulator
from repro.sim.process import Process, Timeout
from repro.sim.rng import RngRegistry


class OpenLoopUpdater:
    """Issues update requests as a Poisson (or periodic) arrival process."""

    def __init__(
        self,
        sim: Simulator,
        handler: ClientHandler,
        rng: RngRegistry,
        rate: float,
        duration: float,
        method: str = "increment",
        args: Callable[[int], tuple] = lambda i: (),
        poisson: bool = True,
    ) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate!r}")
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration!r}")
        self.sim = sim
        self.handler = handler
        self.rate = rate
        self.duration = duration
        self.method = method
        self.args = args
        self.poisson = poisson
        self.issued = 0
        self.outcomes: list[UpdateOutcome] = []
        self._rng = rng.stream(f"updater.{handler.name}")
        self.process = Process(sim, self._run(), name=f"updater-{handler.name}")

    def _gap(self) -> float:
        if self.poisson:
            return self._rng.expovariate(self.rate)
        return 1.0 / self.rate

    def _run(self):
        deadline = self.sim.now + self.duration
        while True:
            gap = self._gap()
            if self.sim.now + gap > deadline:
                break
            yield Timeout(gap)
            self.handler.invoke(
                self.method, self.args(self.issued), callback=self.outcomes.append
            )
            self.issued += 1
        return self.issued


class BurstyUpdater:
    """Markov-modulated update arrivals: busy bursts separated by silence.

    Used to stress the Poisson staleness model (Eq. 4 assumes a constant
    rate) — the *mean* rate equals ``burst_rate * duty_cycle``, but counts
    over a lazy interval are heavily over-dispersed.
    """

    def __init__(
        self,
        sim: Simulator,
        handler: ClientHandler,
        rng: RngRegistry,
        burst_rate: float,
        burst_length: float,
        idle_length: float,
        duration: float,
        method: str = "increment",
        args: Callable[[int], tuple] = lambda i: (),
    ) -> None:
        if burst_rate <= 0:
            raise ValueError(f"burst rate must be positive, got {burst_rate!r}")
        if burst_length <= 0 or idle_length < 0:
            raise ValueError("invalid burst/idle lengths")
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration!r}")
        self.sim = sim
        self.handler = handler
        self.burst_rate = burst_rate
        self.burst_length = burst_length
        self.idle_length = idle_length
        self.duration = duration
        self.method = method
        self.args = args
        self.issued = 0
        self._rng = rng.stream(f"bursty.{handler.name}")
        self.process = Process(sim, self._run(), name=f"bursty-{handler.name}")

    @property
    def mean_rate(self) -> float:
        cycle = self.burst_length + self.idle_length
        return self.burst_rate * self.burst_length / cycle

    def _run(self):
        deadline = self.sim.now + self.duration
        while self.sim.now < deadline:
            burst_end = min(deadline, self.sim.now + self.burst_length)
            while True:
                gap = self._rng.expovariate(self.burst_rate)
                if self.sim.now + gap > burst_end:
                    break
                yield Timeout(gap)
                self.handler.invoke(self.method, self.args(self.issued))
                self.issued += 1
            remaining = burst_end - self.sim.now
            if remaining > 0:
                yield Timeout(remaining)
            if self.idle_length > 0 and self.sim.now < deadline:
                yield Timeout(min(self.idle_length, deadline - self.sim.now))
        return self.issued


class PeriodicReader:
    """Issues reads on a fixed period, recording every outcome."""

    def __init__(
        self,
        sim: Simulator,
        handler: ClientHandler,
        qos: QoSSpec,
        period: float,
        count: int,
        method: str = "get",
        args: Callable[[int], tuple] = lambda i: (),
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period!r}")
        if count < 0:
            raise ValueError(f"negative read count {count!r}")
        self.sim = sim
        self.handler = handler
        self.qos = qos
        self.period = period
        self.count = count
        self.method = method
        self.args = args
        self.outcomes: list[ReadOutcome] = []
        self.process = Process(sim, self._run(), name=f"reader-{handler.name}")

    def _run(self):
        for i in range(self.count):
            yield Timeout(self.period)
            self.handler.invoke(
                self.method, self.args(i), self.qos, callback=self.outcomes.append
            )
        return self.count
