"""Fluid-approximation client tier: pooled arrivals for huge populations.

The discrete per-client event loop tops out around ~10^5 kernel events per
second, which puts million-user cells four orders of magnitude out of
reach.  This module replaces *populations* of statistically identical
clients with one :class:`AggregatedClientPool` per (class, priority,
region) population, exploiting two classical results:

* **Poisson superposition** — the merged arrival stream of ``N``
  independent Poisson clients at per-client rate ``λ`` is one Poisson
  process at rate ``N·λ``.  The pool therefore draws whole *batches* of
  arrivals (count ~ Poisson(Λ·W), times uniform in the window) instead of
  simulating clients;
* **the paper's own §5 model** — the per-replica response-time pmfs
  (``S ⊛ W`` shifted by ``G``; deferred adds the lazy wait ``U``) and the
  Poisson staleness factor of Eq. 4 describe outcome distributions well
  (the calibration experiments pin this), so the pool *samples* outcomes
  from those distributions instead of routing every request through the
  simulated network.

Per batch the pool runs replica selection (Algorithm 1) **once** over the
shared gateway's candidate views, then realizes all outcomes with
vectorized numpy draws: a correlated freshness Bernoulli per arrival
(one lazy multicast refreshes the whole secondary group), inverse-CDF
response-time draws per selected replica, and a min-reduce for the
first-reply time.  Results are folded into the ordinary ``client_*``
telemetry through :meth:`ClientHandler.record_aggregate_batch`.

A small *probe* subsample per batch is issued as real discrete requests —
these keep the load-bearing machinery alive: sliding windows, gateway
delays, ``ert``, performance broadcasts, the sequencer, and the lazy
publisher all continue to run on genuine traffic, which is exactly what
the sampled distributions are conditioned on.

Validity envelope (see DESIGN.md §13): the fluid tier assumes the cell
operates in the utilization regime its probes measure — i.e. capacity is
provisioned with population, so modeled requests would not have shifted
the queueing distributions had they been real.  ``repro scale
--validate`` checks the approximation against the discrete simulator via
Wilson-interval overlap.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.client import ClientHandler
from repro.core.qos import QoSSpec
from repro.core.requests import ReadOutcome
from repro.sim.kernel import Simulator
from repro.sim.rng import seed_for
from repro.stats.poisson import poisson_cdf
from repro.workloads.generators import ArrivalRateController


@dataclass(frozen=True)
class PopulationSpec:
    """One homogeneous client population, aggregated into a single pool.

    ``read_rate``/``update_rate`` are *per-client* arrival rates in
    requests per second; the pool's merged rate is ``clients`` times
    that.  ``arrival="bursty"`` models clients that are active only a
    ``duty_cycle`` fraction of the time but burst at ``rate/duty_cycle``
    while active: the number of active clients is redrawn per batch
    (Binomial), which preserves the mean rate while over-dispersing
    counts — at large ``N`` it converges back to Poisson, exactly the
    Palm–Khintchine behaviour of superposed on/off sources.
    """

    name: str
    clients: int
    qos: QoSSpec
    read_rate: float
    update_rate: float = 0.0
    read_method: str = "get"
    update_method: str = "increment"
    arrival: str = "poisson"  # "poisson" | "bursty"
    duty_cycle: float = 1.0
    region: str = "local"
    priority: Optional[str] = None

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ValueError(f"population needs clients >= 1, got {self.clients!r}")
        if self.read_rate < 0 or self.update_rate < 0:
            raise ValueError("negative arrival rate")
        if self.read_rate == 0 and self.update_rate == 0:
            raise ValueError("population with no traffic at all")
        if self.arrival not in ("poisson", "bursty"):
            raise ValueError(f"unknown arrival process {self.arrival!r}")
        if not 0.0 < self.duty_cycle <= 1.0:
            raise ValueError(f"duty cycle {self.duty_cycle!r} outside (0, 1]")

    @property
    def total_read_rate(self) -> float:
        return self.clients * self.read_rate

    @property
    def total_update_rate(self) -> float:
        return self.clients * self.update_rate


@dataclass
class AggregateStats:
    """Outcome accounting of one pool: modeled batches plus probes.

    ``response_hist`` counts resolved response times on the pmf grid
    (``quantum``-second bins); its final slot is the beyond-grid
    overflow.  ``unresolved`` are modeled arrivals whose selected
    replicas had no history yet (sampled as "no reply": timing failures
    with no response time), mirroring the discrete garbage-collect path.
    """

    quantum: float
    response_hist: np.ndarray
    reads_modeled: int = 0
    failures_modeled: int = 0
    deferred_modeled: int = 0
    selected_modeled: int = 0
    response_sum: float = 0.0
    unresolved: int = 0
    updates_modeled: int = 0
    batches: int = 0
    warmup_skipped: int = 0
    probe_reads: int = 0
    probe_failures: int = 0
    probe_deferred: int = 0
    probe_selected: int = 0
    probe_updates: int = 0
    probe_response_times: list = field(default_factory=list)

    # -- combined (modeled + probe) views --------------------------------
    @property
    def reads(self) -> int:
        return self.reads_modeled + self.probe_reads

    @property
    def timing_failures(self) -> int:
        return self.failures_modeled + self.probe_failures

    @property
    def deferred(self) -> int:
        return self.deferred_modeled + self.probe_deferred

    @property
    def failure_probability(self) -> float:
        return self.timing_failures / self.reads if self.reads else 0.0

    @property
    def deferred_fraction(self) -> float:
        return self.deferred / self.reads if self.reads else 0.0

    @property
    def avg_replicas_selected(self) -> float:
        if not self.reads:
            return 0.0
        return (self.selected_modeled + self.probe_selected) / self.reads

    @property
    def mean_response_time(self) -> float:
        resolved = int(self.response_hist.sum()) + len(self.probe_response_times)
        if resolved == 0:
            return 0.0
        total = self.response_sum + sum(self.probe_response_times)
        return total / resolved

    # -- modeled-only views --------------------------------------------
    # The validation comparison uses these: the probe subsample is itself
    # discretely simulated, so folding it in would dilute the test of the
    # analytic model with data generated by the reference mechanism.
    @property
    def modeled_failure_probability(self) -> float:
        if not self.reads_modeled:
            return 0.0
        return self.failures_modeled / self.reads_modeled

    @property
    def modeled_deferred_fraction(self) -> float:
        if not self.reads_modeled:
            return 0.0
        return self.deferred_modeled / self.reads_modeled

    def _grid_counts_at(self, xs: np.ndarray) -> np.ndarray:
        """Cumulative grid-histogram counts P-numerator at each x."""
        grid_counts = self.response_hist[:-1]
        cum = np.cumsum(grid_counts)
        # Grid bin i holds responses sampled at value i*q, so the count
        # with response <= x is cum[floor(x/q)].
        bins = np.floor(xs / self.quantum + 1e-9).astype(int)
        bins = np.clip(bins, -1, grid_counts.size - 1)
        padded = np.concatenate(([0.0], cum))
        return padded[bins + 1]

    def modeled_response_cdf(self, xs) -> np.ndarray:
        """Empirical P(response <= x) over modeled reads only."""
        xs = np.asarray(xs, dtype=float)
        if self.reads_modeled == 0:
            return np.zeros(xs.shape)
        return self._grid_counts_at(xs) / self.reads_modeled

    def response_cdf(self, xs) -> np.ndarray:
        """Empirical P(response <= x) over *all* reads at each x.

        Never-resolved reads count in the denominator (their response
        time is effectively infinite), matching how the discrete tier's
        outcome lists are summarized for the validation comparison.
        """
        xs = np.asarray(xs, dtype=float)
        if self.reads == 0:
            return np.zeros(xs.shape)
        counts = self._grid_counts_at(xs)
        probe = np.asarray(sorted(self.probe_response_times), dtype=float)
        if probe.size:
            counts = counts + np.searchsorted(probe, xs, side="right")
        return counts / self.reads


class AggregatedClientPool:
    """One pooled-arrival process standing in for a whole population.

    Ticks once per ``batch_window`` seconds of virtual time.  Each tick:

    1. draws the batch's read/update arrival counts from the merged
       process (rate scaled by the optional
       :class:`~repro.workloads.generators.ArrivalRateController`, so
       chaos load storms modulate pools exactly like discrete
       generators);
    2. issues up to ``probe_reads``/``probe_updates`` of them as real
       requests through the shared gateway handler, bulk-inserted with
       :meth:`Simulator.schedule_batch`;
    3. runs Algorithm 1 once over the gateway's candidate views and
       samples the remaining arrivals' outcomes from the §5 model,
       vectorized (see module docstring);
    4. folds the batch into :class:`AggregateStats` and the gateway's
       standard telemetry counters.

    The staleness inputs are analytic: the pool knows its own true
    update rate (the repository's broadcast-based estimate would only
    see probe updates), and each arrival's lazy-cycle phase ``t_l`` is
    derived from the repository's observed phase plus the arrival's
    offset within the batch.
    """

    def __init__(
        self,
        sim: Simulator,
        handler: ClientHandler,
        spec: PopulationSpec,
        duration: float,
        *,
        batch_window: float = 0.25,
        probe_reads: int = 1,
        probe_updates: int = 1,
        seed: int = 0,
        warmup: float = 0.0,
        rate_controller: Optional[ArrivalRateController] = None,
        response_grid_max: Optional[float] = None,
    ) -> None:
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration!r}")
        if batch_window <= 0:
            raise ValueError(f"batch window must be positive, got {batch_window!r}")
        if probe_reads < 0 or probe_updates < 0:
            raise ValueError("negative probe count")
        if warmup < 0 or warmup >= duration:
            raise ValueError(f"warmup {warmup!r} outside [0, duration)")
        self.sim = sim
        self.handler = handler
        self.spec = spec
        self.duration = duration
        self.batch_window = batch_window
        self.probe_reads = probe_reads
        self.probe_updates = probe_updates
        self.rate_controller = rate_controller
        self._rng = np.random.default_rng(
            seed_for(seed, "aggregate", spec.name)
        )
        self._start = sim.now
        self._end = sim.now + duration
        self._warmup_until = sim.now + warmup
        self.finished = False

        quantum = handler.predictor.quantum
        grid_max = response_grid_max or max(4.0 * spec.qos.deadline, 1.0)
        bins = max(1, int(math.ceil(grid_max / quantum)))
        self.stats = AggregateStats(
            quantum=quantum,
            response_hist=np.zeros(bins + 1, dtype=np.int64),
        )

        labels = {"client": handler.name, "population": spec.name}
        metrics = handler.metrics
        self._m_batches = metrics.counter("aggregate_batches", **labels)
        self._m_reads_modeled = metrics.counter("aggregate_reads_modeled", **labels)
        self._m_updates_modeled = metrics.counter(
            "aggregate_updates_modeled", **labels
        )

        sim.schedule(0.0, self._tick)

    # ------------------------------------------------------------------
    # Arrival generation
    # ------------------------------------------------------------------
    def _active_clients(self) -> float:
        """Client-equivalents contributing this batch (bursty: Binomial)."""
        spec = self.spec
        if spec.arrival == "poisson" or spec.duty_cycle >= 1.0:
            return float(spec.clients)
        active = self._rng.binomial(spec.clients, spec.duty_cycle)
        return active / spec.duty_cycle

    def _factor(self) -> float:
        if self.rate_controller is None:
            return 1.0
        return self.rate_controller.factor

    # ------------------------------------------------------------------
    # The batch tick
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        now = self.sim.now
        if now >= self._end - 1e-12:
            self.finished = True
            return
        window = min(self.batch_window, self._end - now)
        factor = self._factor()
        activity = self._active_clients()
        read_rate = activity * self.spec.read_rate * factor
        update_rate = activity * self.spec.update_rate * factor

        k_reads = int(self._rng.poisson(read_rate * window)) if read_rate else 0
        k_updates = int(self._rng.poisson(update_rate * window)) if update_rate else 0

        if k_updates:
            n_probe_u = min(k_updates, self.probe_updates)
            offsets = self._rng.random(n_probe_u) * window
            self.sim.schedule_batch(now + offsets, self._issue_probe_update)
            modeled_u = k_updates - n_probe_u
            self.stats.updates_modeled += modeled_u
            self._m_updates_modeled.inc(modeled_u)

        if k_reads:
            offsets = self._rng.random(k_reads) * window
            n_probe_r = min(k_reads, self.probe_reads)
            if n_probe_r:
                include = now >= self._warmup_until
                self.sim.schedule_batch(
                    now + offsets[:n_probe_r],
                    self._issue_probe_read,
                    args_list=[(include,)] * n_probe_r,
                )
            modeled = k_reads - n_probe_r
            if modeled:
                if now >= self._warmup_until:
                    self._resolve_batch(offsets[n_probe_r:], update_rate, window)
                else:
                    self.stats.warmup_skipped += modeled

        self.stats.batches += 1
        self._m_batches.inc()
        self.sim.schedule(window, self._tick)

    # ------------------------------------------------------------------
    # Probe subsample: real discrete traffic
    # ------------------------------------------------------------------
    def _issue_probe_read(self, include: bool) -> None:
        spec = self.spec

        def _outcome(outcome: ReadOutcome) -> None:
            if not include:
                return
            stats = self.stats
            stats.probe_reads += 1
            stats.probe_selected += outcome.replicas_selected
            if outcome.timing_failure:
                stats.probe_failures += 1
            if outcome.deferred:
                stats.probe_deferred += 1
            if outcome.response_time is not None:
                stats.probe_response_times.append(outcome.response_time)

        self.handler.invoke(spec.read_method, (), spec.qos, callback=_outcome)

    def _issue_probe_update(self) -> None:
        self.stats.probe_updates += 1
        self.handler.invoke(self.spec.update_method, ())

    # ------------------------------------------------------------------
    # Analytic resolution of the non-probe arrivals
    # ------------------------------------------------------------------
    @staticmethod
    def _poisson_cdf_many(threshold: int, means: np.ndarray) -> np.ndarray:
        """Vectorized ``P(Poisson(mean) <= threshold)`` (Eq. 4 per arrival)."""
        means = np.asarray(means, dtype=float)
        term = np.exp(-means)
        out = term.copy()
        for k in range(1, threshold + 1):
            term = term * means / k
            out += term
        return np.clip(out, 0.0, 1.0)

    def _resolve_batch(
        self, offsets: np.ndarray, update_rate: float, window: float
    ) -> None:
        m = offsets.size
        qos = self.spec.qos
        handler = self.handler
        predictor = handler.predictor
        now = self.sim.now
        rng = self._rng
        stats = self.stats

        views = handler.candidate_views(qos)
        lazy_interval = predictor.lazy_update_interval
        t_l_now = handler.repository.time_since_lazy_update(now, lazy_interval)
        # Selection sees the same Eq. 4 factor a discrete gateway would
        # compute, except λ_u is the pool's own (true) rate — the
        # broadcast-based estimate only reflects probe updates.
        stale_now = poisson_cdf(
            qos.staleness_threshold, update_rate * t_l_now
        )
        result = handler.strategy.select(views, qos, stale_now)
        selected = result.replicas

        # Correlated freshness: one lazy multicast refreshes the whole
        # secondary group, so each *arrival* draws a single Bernoulli that
        # applies to every selected secondary.  The arrival's own phase in
        # the lazy cycle sets its staleness mean.
        t_l = np.mod(t_l_now + offsets, lazy_interval)
        p_fresh = self._poisson_cdf_many(qos.staleness_threshold, update_rate * t_l)
        fresh = rng.random(m) < p_fresh

        response = np.full(m, np.inf)
        deferred_win = np.zeros(m, dtype=bool)
        view_by_name = {view.name: view for view in views}
        n_fresh = int(np.count_nonzero(fresh))
        for name in selected:
            view = view_by_name[name]
            immediate, deferred = predictor.response_pmfs(name)
            if immediate is None:
                continue  # no history yet: this replica contributes no reply
            if view.is_primary:
                draws = immediate.sample(m, rng)
                was_deferred = None
            else:
                draws = np.empty(m, dtype=float)
                if n_fresh:
                    draws[fresh] = immediate.sample(n_fresh, rng)
                if m - n_fresh:
                    draws[~fresh] = deferred.sample(m - n_fresh, rng)
                was_deferred = ~fresh
            better = draws < response
            response[better] = draws[better]
            if was_deferred is None:
                deferred_win[better] = False
            else:
                deferred_win[better] = was_deferred[better]

        resolved = np.isfinite(response)
        unresolved = m - int(np.count_nonzero(resolved))
        failures = int(np.count_nonzero(response > qos.deadline))
        deferred_count = int(np.count_nonzero(deferred_win))
        times = response[resolved]

        stats.reads_modeled += m
        stats.failures_modeled += failures
        stats.deferred_modeled += deferred_count
        stats.selected_modeled += len(selected) * m
        stats.unresolved += unresolved
        stats.response_sum += float(times.sum())
        grid = stats.response_hist
        if times.size:
            bins = np.minimum(
                (times / stats.quantum + 0.5).astype(int), grid.size - 1
            )
            grid += np.bincount(bins, minlength=grid.size)

        self._m_reads_modeled.inc(m)
        handler.record_aggregate_batch(
            m, failures, deferred_count, len(selected) * m, times
        )
