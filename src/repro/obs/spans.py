"""Request-span tracing layered on :mod:`repro.sim.tracing`.

A *span* is a trace record in category ``"span"`` whose detail dict carries
three reserved keys — ``span`` (the span id), ``parent`` (the parent span id
or ``None``), and ``name`` (what happened) — plus free-form annotations
(GSN/CSN, staleness, deadline, response time, ...).  Spans ride the existing
:class:`~repro.sim.tracing.Trace` transport, so capacity limits, subscribers,
and ``to_jsonl`` artifact dumps all apply unchanged, and disabling the trace
disables span emission with it.

Span-id scheme (all ids derive from the request id, so they survive process
boundaries and need no global coordination):

=========================  =====================================================
``req-<rid>``              root span, one per read/update (name ``read``/``update``)
``req-<rid>/d<n>``         n-th dispatch of the request to some target
                           (annotations: ``target``, ``reason`` — ``select``,
                           ``sequencer``, ``hedge``, ``update``, ``timeout``,
                           ``failover``)
``req-<rid>/q``            sequencer stamp/assign (annotations: ``gsn``, ...)
``req-<rid>/s/<replica>``  replica serve/complete (``ts``, ``tq``, ``tb``,
                           ``gsn``, ``staleness``, ``deferred``)
``req-<rid>/b/<replica>``  deferred-read buffering at a replica
``req-<rid>/r``            first reply accepted by the client
``req-<rid>/j``            the judgement (``timely``, ``predicted``)
=========================  =====================================================

Replica-side emitters don't know which dispatch span carried the request to
them, so they emit with ``parent=None`` and :func:`build_span_trees` stitches
them under the latest prior dispatch span whose ``target`` matches the
emitting actor — exactly the message edge the simulator delivered on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.sim.tracing import Trace, TraceRecord

__all__ = [
    "SPAN_CATEGORY",
    "Span",
    "span_root",
    "emit_span",
    "request_id_of",
    "build_span_trees",
]

SPAN_CATEGORY = "span"

_RESERVED = ("span", "parent", "name")


def span_root(request_id: int) -> str:
    """Root span id for a request."""
    return f"req-{request_id}"


def emit_span(
    trace: Trace,
    time: float,
    actor: str,
    span_id: str,
    name: str,
    parent_id: Optional[str] = None,
    **annotations,
) -> None:
    """Emit one span record through ``trace`` (no-op when tracing is off)."""
    trace.emit(
        time, SPAN_CATEGORY, actor,
        span=span_id, parent=parent_id, name=name, **annotations,
    )


def request_id_of(span_id: str) -> Optional[int]:
    """Extract the request id from any span id, or ``None`` if malformed."""
    if not span_id.startswith("req-"):
        return None
    head = span_id[4:].split("/", 1)[0]
    try:
        return int(head)
    except ValueError:
        return None


@dataclass
class Span:
    """One node of a reconstructed request tree."""

    span_id: str
    name: str
    actor: str
    time: float
    parent_id: Optional[str]
    annotations: Dict[str, object] = field(default_factory=dict)
    children: List["Span"] = field(default_factory=list)

    def find(self, name: str) -> List["Span"]:
        """All descendants (including self) with the given span name."""
        hits = [self] if self.name == name else []
        for child in self.children:
            hits.extend(child.find(name))
        return hits

    def walk(self) -> Iterable["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        return {
            "span": self.span_id,
            "name": self.name,
            "actor": self.actor,
            "time": self.time,
            "annotations": dict(self.annotations),
            "children": [c.to_dict() for c in self.children],
        }


def _is_dispatch(span: Span) -> bool:
    return "/d" in span.span_id and "target" in span.annotations


def build_span_trees(source) -> Dict[int, Span]:
    """Reconstruct one tree per request from span records.

    ``source`` is a :class:`Trace` or an iterable of
    :class:`~repro.sim.tracing.TraceRecord`.  Returns ``{request_id: root}``;
    requests whose root record was dropped are skipped.

    Stitching rules, in priority order:

    1. explicit ``parent`` pointing at a known span;
    2. replica-side spans (no parent): the latest dispatch span of the same
       request with ``target == actor`` and ``time <= span.time``;
    3. otherwise the request's root span.
    """
    records: Iterable[TraceRecord]
    records = source.records if isinstance(source, Trace) else source

    spans: Dict[str, Span] = {}
    order: List[Span] = []
    for record in records:
        if record.category != SPAN_CATEGORY:
            continue
        detail = record.detail
        span = Span(
            span_id=detail["span"],
            name=detail.get("name", ""),
            actor=record.actor,
            time=record.time,
            parent_id=detail.get("parent"),
            annotations={k: v for k, v in detail.items() if k not in _RESERVED},
        )
        spans[span.span_id] = span
        order.append(span)

    roots: Dict[int, Span] = {}
    dispatches: Dict[int, List[Span]] = {}
    for span in order:
        rid = request_id_of(span.span_id)
        if rid is None:
            continue
        if span.span_id == span_root(rid):
            roots[rid] = span
        elif _is_dispatch(span):
            dispatches.setdefault(rid, []).append(span)

    for span in order:
        rid = request_id_of(span.span_id)
        if rid is None or span.span_id == span_root(rid):
            continue
        parent: Optional[Span] = None
        if span.parent_id is not None:
            parent = spans.get(span.parent_id)
        if parent is None:
            for candidate in reversed(dispatches.get(rid, ())):
                if (
                    candidate.annotations.get("target") == span.actor
                    and candidate.time <= span.time
                ):
                    parent = candidate
                    break
        if parent is None:
            parent = roots.get(rid)
        if parent is not None and parent is not span:
            parent.children.append(span)

    return roots
