"""Metrics registry: counters, gauges, and log-scale histograms.

The registry is the numeric half of the telemetry layer (spans are the
structural half, see :mod:`repro.obs.spans`).  Design constraints, in order:

* **Cheap when off.**  A disabled registry hands out a shared no-op
  instrument, so instrumented code pays one attribute lookup and one no-op
  call per event — no branching at the call site.
* **Mergeable.**  The parallel experiment runner executes cells in worker
  processes; workers ship :meth:`MetricsRegistry.snapshot` dictionaries
  (plain picklable data) back to the parent, which folds them together with
  :meth:`MetricsRegistry.merge`.  Merge is commutative and associative so
  ``--jobs 4`` totals equal ``--jobs 1`` totals for the same seed.
* **Simulation-clock-aware.**  Instruments never read wall clocks; any
  timestamps come from the caller, which passes simulation time.

Instruments are memoized per ``(name, labels)`` pair, so holding onto the
returned object is an optimisation, not a requirement — but hot paths should
hold it (the client caches its counters in ``_m_*`` attributes).
"""

from __future__ import annotations

import json
import struct
from bisect import bisect_right
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "DEFAULT_TIME_BUCKETS",
    "encode_snapshot",
    "decode_snapshot",
]

#: Log-scale (base-2) bucket boundaries for time-like observations, in
#: seconds: 100 µs, 200 µs, ... ~209 s.  Observations above the last
#: boundary land in the overflow bucket.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = tuple(1e-4 * (2.0 ** k) for k in range(22))

_LabelKey = Tuple[Tuple[str, str], ...]


class Counter:
    """A monotonically increasing integer-or-float counter."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A last-write-wins scalar (current queue depth, configured interval)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-boundary histogram with an overflow bucket.

    ``counts[i]`` holds observations ``<= boundaries[i]`` (and greater than
    ``boundaries[i-1]``); ``counts[-1]`` is the overflow bucket.  Boundaries
    are shared tuples, so a registry full of time histograms stores one
    boundary list.
    """

    __slots__ = ("boundaries", "counts", "count", "sum")

    def __init__(self, boundaries: Sequence[float] = DEFAULT_TIME_BUCKETS) -> None:
        self.boundaries: Tuple[float, ...] = tuple(boundaries)
        self.counts = [0] * (len(self.boundaries) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_right(self.boundaries, value)] += 1
        self.count += 1
        self.sum += value

    def observe_many(self, values) -> None:
        """Fold a whole vector of observations in at once.

        Equivalent to calling :meth:`observe` per element; the bucketing
        runs as one ``searchsorted`` + ``bincount`` pass, which is what
        lets the aggregated client tier account a batch of thousands of
        modeled response times without a Python-level loop.
        """
        import numpy as np

        values = np.asarray(values, dtype=float)
        if values.size == 0:
            return
        indices = np.searchsorted(self.boundaries, values, side="right")
        bucket_counts = np.bincount(indices, minlength=len(self.counts))
        counts = self.counts
        for i, c in enumerate(bucket_counts):
            if c:
                counts[i] += int(c)
        self.count += int(values.size)
        self.sum += float(values.sum())

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper-boundary estimate of the ``q``-quantile (0 <= q <= 1)."""
        if not self.count:
            return 0.0
        target = q * self.count
        seen = 0
        for i, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if seen >= target and bucket_count:
                if i < len(self.boundaries):
                    return self.boundaries[i]
                return self.boundaries[-1] if self.boundaries else float("inf")
        return self.boundaries[-1] if self.boundaries else float("inf")


class _NoopInstrument:
    """Stands in for every instrument type when the registry is disabled."""

    __slots__ = ()

    value = 0
    count = 0
    sum = 0.0
    mean = 0.0
    boundaries: Tuple[float, ...] = ()
    counts: list = []

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, values) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0


_NOOP = _NoopInstrument()


def _label_key(labels: Dict[str, str]) -> _LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _series_name(name: str, key: _LabelKey) -> str:
    if not key:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in key)
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Factory and store for named instruments.

    ``counter``/``gauge``/``histogram`` create-or-return the instrument for
    ``(name, labels)``.  A name must keep a single instrument type for the
    registry's lifetime (mirrors Prometheus' data model and keeps snapshots
    unambiguous).
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._instruments: Dict[Tuple[str, _LabelKey], object] = {}
        self._types: Dict[str, str] = {}

    # -- instrument factories -------------------------------------------------

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(name, "counter", Counter, labels)  # type: ignore[return-value]

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(name, "gauge", Gauge, labels)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        boundaries: Sequence[float] = DEFAULT_TIME_BUCKETS,
        **labels: str,
    ) -> Histogram:
        return self._get(  # type: ignore[return-value]
            name, "histogram", lambda: Histogram(boundaries), labels
        )

    def _get(self, name, type_name, factory, labels):
        if not self.enabled:
            return _NOOP
        declared = self._types.setdefault(name, type_name)
        if declared != type_name:
            raise TypeError(
                f"metric {name!r} already registered as {declared}, "
                f"requested as {type_name}"
            )
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = self._instruments[key] = factory()
        return instrument

    # -- introspection --------------------------------------------------------

    def size(self) -> int:
        """Number of registered instruments (cheap; never shrinks)."""
        return len(self._instruments)

    def instruments(self) -> list:
        """``[(series, type, instrument)]`` in creation order.

        The live-instrument view behind :class:`~repro.obs.timeseries.
        TimeseriesRecorder`: reading instruments directly skips the
        per-tick dict/string building a full :meth:`snapshot` pays.
        """
        return [
            (_series_name(name, key), self._types[name], instrument)
            for (name, key), instrument in self._instruments.items()
        ]

    # -- snapshots ------------------------------------------------------------

    def snapshot(self) -> Dict[str, dict]:
        """Picklable, JSON-able view of every registered series.

        Keys are Prometheus-style series names (``name{k="v"}``); values are
        small dicts tagged with the instrument type.
        """
        out: Dict[str, dict] = {}
        for (name, key), instrument in self._instruments.items():
            series = _series_name(name, key)
            kind = self._types[name]
            if kind == "histogram":
                out[series] = {
                    "type": "histogram",
                    "boundaries": list(instrument.boundaries),
                    "counts": list(instrument.counts),
                    "sum": instrument.sum,
                    "count": instrument.count,
                }
            else:
                out[series] = {"type": kind, "value": instrument.value}
        return out

    @staticmethod
    def merge(*snapshots: Dict[str, dict]) -> Dict[str, dict]:
        """Fold snapshots: counters and histograms add, gauges take max.

        Max (not last-write) keeps the fold commutative, which is what makes
        parallel-runner totals independent of worker scheduling.
        """
        merged: Dict[str, dict] = {}
        for snap in snapshots:
            for series, entry in snap.items():
                have = merged.get(series)
                if have is None:
                    merged[series] = {
                        k: (list(v) if isinstance(v, list) else v)
                        for k, v in entry.items()
                    }
                    continue
                if have["type"] != entry["type"]:
                    raise TypeError(
                        f"series {series!r} has conflicting types: "
                        f"{have['type']} vs {entry['type']}"
                    )
                if entry["type"] == "counter":
                    have["value"] += entry["value"]
                elif entry["type"] == "gauge":
                    have["value"] = max(have["value"], entry["value"])
                else:
                    if have["boundaries"] != entry["boundaries"]:
                        raise ValueError(
                            f"series {series!r} has mismatched histogram "
                            "boundaries; cannot merge"
                        )
                    have["counts"] = [
                        a + b for a, b in zip(have["counts"], entry["counts"])
                    ]
                    have["sum"] += entry["sum"]
                    have["count"] += entry["count"]
        return merged

    @staticmethod
    def diff(new: Dict[str, dict], old: Dict[str, dict]) -> Dict[str, dict]:
        """Per-series delta ``new - old`` (gauges report their new value).

        Series absent from ``old`` are taken verbatim from ``new``; this is
        what ``--watch`` uses to print per-interval activity.
        """
        out: Dict[str, dict] = {}
        for series, entry in new.items():
            prev = old.get(series)
            if prev is None or entry["type"] == "gauge":
                out[series] = {
                    k: (list(v) if isinstance(v, list) else v)
                    for k, v in entry.items()
                }
                continue
            if entry["type"] == "counter":
                out[series] = {"type": "counter", "value": entry["value"] - prev["value"]}
            else:
                out[series] = {
                    "type": "histogram",
                    "boundaries": list(entry["boundaries"]),
                    "counts": [
                        a - b for a, b in zip(entry["counts"], prev["counts"])
                    ],
                    "sum": entry["sum"] - prev["sum"],
                    "count": entry["count"] - prev["count"],
                }
        return out


#: Shared disabled registry, analogous to ``sim.tracing.NULL_TRACE``: hand it
#: to components whose telemetry you want fully off.
NULL_METRICS = MetricsRegistry(enabled=False)


# ---------------------------------------------------------------------------
# Compact snapshot codec
# ---------------------------------------------------------------------------
#
# The parallel runner ships one snapshot per cell from worker to parent.  As
# plain nested dicts a §6 testbed snapshot is hundreds of heterogeneous
# Python objects for pickle to walk — and most of the bytes are histogram
# bucket lists plus boundary tables that every series repeats verbatim.  The
# codec below flattens a snapshot into three parts:
#
# * a small JSON header naming each series and its shape, with histogram
#   boundary tables **deduplicated** (every time-histogram in the registry
#   shares ``DEFAULT_TIME_BUCKETS``, so the table is stored once),
# * one packed ``int64`` array holding every integer in the snapshot
#   (counter values, histogram bucket counts and totals), and
# * one packed ``float64`` array holding every float (gauge values,
#   histogram sums).
#
# The round-trip is exact: ``decode_snapshot(encode_snapshot(s)) == s``,
# including value types (an int counter decodes as ``int``, a float gauge as
# ``float``) — which is what lets the runner's ``jobs=1 == jobs=N`` property
# hold bit-for-bit when telemetry rides along.  JSON is safe for the float
# boundary tables because Python's ``json`` serializes floats with ``repr``,
# which round-trips every finite double exactly.

SNAPSHOT_CODEC_VERSION = 1
_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1


def encode_snapshot(snapshot: Dict[str, dict]) -> bytes:
    """Pack a :meth:`MetricsRegistry.snapshot` dict into a flat byte payload.

    Layout: ``<u32 header_len, u32 n_int64, u32 n_float64>`` followed by the
    JSON header, the int64 array, and the float64 array (little-endian).
    """
    ints: list[int] = []
    floats: list[float] = []
    series: list = []
    boundary_tables: list[list[float]] = []
    boundary_index: Dict[Tuple[float, ...], int] = {}
    for name, entry in snapshot.items():
        kind = entry["type"]
        if kind == "histogram":
            key = tuple(entry["boundaries"])
            table = boundary_index.get(key)
            if table is None:
                table = boundary_index[key] = len(boundary_tables)
                boundary_tables.append(list(key))
            counts = entry["counts"]
            series.append([name, "h", table, len(counts)])
            ints.extend(counts)
            ints.append(entry["count"])
            floats.append(entry["sum"])
        elif kind in ("counter", "gauge"):
            tag = "c" if kind == "counter" else "g"
            value = entry["value"]
            if isinstance(value, int) and not isinstance(value, bool):
                if _INT64_MIN <= value <= _INT64_MAX:
                    series.append([name, tag, "i"])
                    ints.append(value)
                else:  # bignum escape hatch: carry it in the header verbatim
                    series.append([name, tag, "j", value])
            else:
                series.append([name, tag, "f"])
                floats.append(float(value))
        else:
            raise TypeError(f"series {name!r} has unknown type {kind!r}")
    header = json.dumps(
        {
            "v": SNAPSHOT_CODEC_VERSION,
            "series": series,
            "boundaries": boundary_tables,
        },
        separators=(",", ":"),
    ).encode("utf-8")
    int_array = np.asarray(ints, dtype="<i8")
    float_array = np.asarray(floats, dtype="<f8")
    return (
        struct.pack("<III", len(header), int_array.size, float_array.size)
        + header
        + int_array.tobytes()
        + float_array.tobytes()
    )


def decode_snapshot(payload: bytes) -> Dict[str, dict]:
    """Inverse of :func:`encode_snapshot` — exact, including value types."""
    header_len, n_ints, n_floats = struct.unpack_from("<III", payload, 0)
    pos = struct.calcsize("<III")
    header = json.loads(payload[pos : pos + header_len].decode("utf-8"))
    if header.get("v") != SNAPSHOT_CODEC_VERSION:
        raise ValueError(f"unsupported snapshot codec version {header.get('v')!r}")
    pos += header_len
    ints = np.frombuffer(payload, dtype="<i8", count=n_ints, offset=pos)
    pos += ints.nbytes
    floats = np.frombuffer(payload, dtype="<f8", count=n_floats, offset=pos)
    boundary_tables = header["boundaries"]
    out: Dict[str, dict] = {}
    int_at = 0
    float_at = 0
    for entry in header["series"]:
        name, tag = entry[0], entry[1]
        if tag == "h":
            table, n_counts = entry[2], entry[3]
            counts = [int(v) for v in ints[int_at : int_at + n_counts]]
            int_at += n_counts
            out[name] = {
                "type": "histogram",
                "boundaries": list(boundary_tables[table]),
                "counts": counts,
                "sum": float(floats[float_at]),
                "count": int(ints[int_at]),
            }
            int_at += 1
            float_at += 1
        else:
            kind = "counter" if tag == "c" else "gauge"
            value_tag = entry[2]
            if value_tag == "i":
                value: object = int(ints[int_at])
                int_at += 1
            elif value_tag == "f":
                value = float(floats[float_at])
                float_at += 1
            else:  # "j": literal carried in the header
                value = entry[3]
            out[name] = {"type": kind, "value": value}
    return out
